/// Quickstart: the minimal ONEX session — generate a collection, build the
/// ONEX base, run a time-warped similarity query, inspect the match.
///
///   $ ./quickstart
///
/// Mirrors the paper's pipeline (Fig 1): preprocessing groups subsequences
/// with Euclidean distance; exploration answers DTW queries on the compact
/// base.
#include <cstdio>

#include "onex/engine/engine.h"
#include "onex/gen/generators.h"
#include "onex/viz/charts.h"

int main() {
  onex::Engine engine;

  // 1. Load a dataset (here: synthetic sinusoid families; use
  //    engine.LoadUcrFile(...) for UCR-format files on disk).
  onex::gen::SineFamilyOptions gen_options;
  gen_options.num_series = 12;
  gen_options.length = 64;
  gen_options.seed = 7;
  if (onex::Status s = engine.LoadDataset(
          "demo", onex::gen::MakeSineFamilies(gen_options));
      !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Preprocess into the ONEX base: similarity threshold ST = 0.15 over
  //    subsequence lengths 8..24.
  onex::BaseBuildOptions build;
  build.st = 0.15;
  build.min_length = 8;
  build.max_length = 24;
  if (onex::Status s = engine.Prepare("demo", build); !s.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto prepared = engine.Get("demo");
  std::printf("ONEX base: %zu subsequences -> %zu groups (compaction %.3f)\n",
              (*prepared)->base->TotalMembers(),
              (*prepared)->base->TotalGroups(),
              (*prepared)->base->stats().CompactionRatio());

  // 3. Similarity query: the second half of series 3.
  onex::QuerySpec query;
  query.series = 3;
  query.start = 32;
  query.length = 24;
  onex::Result<onex::MatchResult> match = engine.SimilaritySearch("demo", query);
  if (!match.ok()) {
    std::fprintf(stderr, "query failed: %s\n", match.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "best match: %s[%zu..%zu)  normalized DTW %.4f  (%.2f ms, "
      "%zu of %zu groups pruned)\n",
      match->matched_series_name.c_str(), match->match.ref.start,
      match->match.ref.start + match->match.ref.length,
      match->match.normalized_dtw, match->elapsed_ms,
      match->stats.groups_pruned_lb, match->stats.groups_total);

  // 4. Visualize: the demo's multiple-lines chart with warped-point links.
  onex::Result<onex::viz::MultiLineChartData> chart =
      engine.MatchMultiLineChart("demo", *match);
  if (chart.ok()) {
    std::printf("\n%s\n", onex::viz::RenderMultiLineChart(*chart).c_str());
  }
  return 0;
}
