/// The paper's Similarity-View walkthrough (Fig 2 + Fig 3) on the
/// MATTERS-like economic panel: overview pane, pick Massachusetts, find the
/// most similar state, and inspect the match across linked views.
///
///   $ ./economic_explorer [--csv-dir DIR]
///
/// With --csv-dir, the three chart datasets are also exported as CSV files.
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <string>

#include "onex/engine/engine.h"
#include "onex/gen/economic_panel.h"
#include "onex/viz/charts.h"
#include "onex/viz/exporters.h"

int main(int argc, char** argv) {
  std::string csv_dir;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv-dir") csv_dir = argv[i + 1];
  }

  onex::Engine engine;
  onex::gen::EconomicPanelOptions panel;
  panel.indicator = onex::gen::Indicator::kGrowthRate;
  panel.years = 25;
  if (!engine.LoadDataset("growth", onex::gen::MakeEconomicPanel(panel)).ok()) {
    return 1;
  }

  // "Loading a new dataset ... triggers the preprocessing of this data at
  // the server side and its loading into the respective ONEX Base."
  onex::BaseBuildOptions build;
  build.st = 0.1;
  build.min_length = 6;
  if (onex::Status s = engine.Prepare("growth", build); !s.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Overview Pane: typical patterns, intensity = group cardinality.
  onex::OverviewOptions overview_options;
  overview_options.top_n = 8;
  const auto overview = engine.Overview("growth", overview_options);
  std::printf("=== Overview Pane: group representatives ===\n%s\n",
              onex::viz::RenderOverviewPane(
                  onex::viz::BuildOverviewPane(*overview))
                  .c_str());

  // Query Selection: Massachusetts; Preview: the full 25-year trend.
  const auto prepared = engine.Get("growth");
  const std::size_t ma = *(*prepared)->raw->FindByName("Massachusetts");
  onex::QuerySpec query;
  query.series = ma;
  query.length = 0;

  // Whole-series comparison (the demo's "state with the most similar
  // economic growth rate"), skipping MA's own trivial self-match via k=2.
  onex::QueryOptions qopt;
  qopt.min_length = panel.years;
  qopt.max_length = panel.years;
  qopt.exhaustive = true;  // exact best state, not just best-group answer
  const auto knn = engine.Knn("growth", query, 2, qopt);
  if (!knn.ok() || knn->size() < 2) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  const onex::MatchResult& best = (*knn)[1];  // [0] is MA itself
  std::printf("=== Similarity Results ===\n");
  std::printf("state most similar to Massachusetts: %s  (normalized DTW %.4f, "
              "%.2f ms)\n\n",
              best.matched_series_name.c_str(), best.match.normalized_dtw,
              best.elapsed_ms);

  // Results Pane: multiple-lines chart with the warped-point dotted links.
  const auto multiline = engine.MatchMultiLineChart("growth", best);
  std::printf("%s\n", onex::viz::RenderMultiLineChart(*multiline).c_str());

  // Linked perspectives (Fig 3): radial chart and connected scatter plot.
  const auto radial = engine.MatchRadialChart("growth", best);
  std::printf("%s\n", onex::viz::RenderRadialChart(*radial).c_str());
  const auto scatter = engine.MatchConnectedScatter("growth", best);
  std::printf("%s\n", onex::viz::RenderConnectedScatter(*scatter).c_str());

  if (!csv_dir.empty()) {
    std::ofstream ml(csv_dir + "/multiline.csv");
    std::ofstream ra(csv_dir + "/radial.csv");
    std::ofstream sc(csv_dir + "/scatter.csv");
    onex::viz::WriteMultiLineCsv(*multiline, ml);
    onex::viz::WriteRadialCsv(*radial, ra);
    onex::viz::WriteConnectedScatterCsv(*scatter, sc);
    std::printf("CSV exports written to %s\n", csv_dir.c_str());
  }
  return 0;
}
