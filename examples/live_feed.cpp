/// Live feed: the streaming-maintenance loop (DESIGN.md §12) in one
/// process — prepare a collection once, then keep appending points to its
/// series while querying, exactly what a dashboard tailing live feeds does
/// against onexd with EXTEND/DRIFT frames.
///
///   $ ./live_feed
///
/// Each simulated poll cycle extends a few series through the protocol
/// executor (the same code path a TCP session exercises), prints the drift
/// the write caused, and re-runs a similarity query that reaches the newest
/// points. A hair-trigger drift threshold shows the background regroup
/// firing and the query surviving it.
#include <cstdio>
#include <string>

#include "onex/engine/engine.h"
#include "onex/json/json.h"
#include "onex/net/protocol.h"

namespace {

/// One protocol frame through the executor; prints the response line.
onex::json::Value Call(onex::Engine* engine, onex::net::Session* session,
                       const std::string& line) {
  const onex::Result<onex::net::Command> cmd =
      onex::net::ParseCommandLine(line);
  if (!cmd.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 cmd.status().ToString().c_str());
    return onex::net::ErrorResponse(cmd.status());
  }
  const onex::json::Value response =
      onex::net::ExecuteCommand(engine, session, *cmd);
  std::printf("> %s\n  %s", line.c_str(),
              onex::net::FormatResponse(response).c_str());
  return response;
}

}  // namespace

int main() {
  onex::Engine engine;
  onex::net::Session session;

  // Seed collection + one-time preprocessing, then arm the drift trigger.
  Call(&engine, &session, "GEN feeds sine num=8 len=48 seed=21");
  Call(&engine, &session, "PREPARE feeds st=0.2 minlen=8 maxlen=24 lenstep=4");
  Call(&engine, &session, "USE feeds");
  Call(&engine, &session, "DRIFT threshold=0.001");

  // The tail loop: every "poll cycle" a few feeds tick forward. Values are
  // original units; the engine renormalizes the tail with the frozen
  // parameters before inserting the new subsequences.
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::printf("\n-- poll cycle %d --\n", cycle);
    const std::string points =
        cycle % 2 == 0 ? "0.31,0.52,0.44,0.39" : "-0.12,0.08,0.27,0.41";
    Call(&engine, &session,
         "EXTEND series=" + std::to_string(cycle % 8) + " points=" + points);
    // The freshest tail is immediately searchable: query the newest window
    // of the series that just grew.
    const onex::json::Value stats = Call(&engine, &session, "STATS");
    const int len = static_cast<int>(stats["max_length"].as_number());
    Call(&engine, &session,
         "MATCH q=" + std::to_string(cycle % 8) + ":" +
             std::to_string(len - 12) + ":12");
  }

  std::printf("\n-- maintenance report --\n");
  Call(&engine, &session, "DRIFT");
  Call(&engine, &session, "DATASETS");
  return 0;
}
