/// Live feed: the streaming-maintenance loop (DESIGN.md §12), end-to-end
/// over TCP — an in-process reactor server (DESIGN.md §15), a client that
/// negotiates the ONEXB binary frame, and poll cycles that ship EXTEND
/// points as raw float64 payloads instead of ASCII.
///
///   $ ./live_feed
///
/// Each simulated poll cycle pipelines an EXTEND (a mutator, so the server
/// runs it as a barrier) and a STATS behind it in one SendMany, prints the
/// drift the write caused, and re-runs a similarity query that reaches the
/// newest points. The MATCH response frame carries the matched subsequence
/// values in its binary section — no numbers ride as JSON text that the
/// dashboard would immediately re-parse.
#include <cstdio>
#include <string>
#include <vector>

#include "onex/engine/engine.h"
#include "onex/json/json.h"
#include "onex/net/client.h"
#include "onex/net/reactor.h"

namespace {

/// One round-trip; prints the response body like a protocol transcript.
onex::json::Value Call(onex::net::OnexClient* client, const std::string& line) {
  onex::Result<onex::json::Value> response = client->Call(line);
  if (!response.ok()) {
    std::fprintf(stderr, "transport error: %s\n",
                 response.status().ToString().c_str());
    return onex::json::Value();
  }
  std::printf("> %s\n  %s\n", line.c_str(), response->Dump().c_str());
  return std::move(response).value();
}

}  // namespace

int main() {
  onex::Engine engine;
  onex::net::ReactorServer server(&engine);
  if (onex::Status s = server.Start(0); !s.ok()) {
    std::fprintf(stderr, "server: %s\n", s.ToString().c_str());
    return 1;
  }
  onex::Result<onex::net::OnexClient> connected =
      onex::net::OnexClient::Connect("127.0.0.1", server.port());
  if (!connected.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 connected.status().ToString().c_str());
    return 1;
  }
  onex::net::OnexClient client = std::move(connected).value();

  // Seed collection + one-time preprocessing, then arm the drift trigger.
  Call(&client, "GEN feeds sine num=8 len=48 seed=21");
  Call(&client, "PREPARE feeds st=0.2 minlen=8 maxlen=24 lenstep=4");
  Call(&client, "USE feeds");
  Call(&client, "DRIFT threshold=0.001");

  // Everything after this line is ONEXB frames on the wire.
  if (onex::Status s = client.UpgradeBinary(); !s.ok()) {
    std::fprintf(stderr, "BIN upgrade: %s\n", s.ToString().c_str());
    return 1;
  }

  // The tail loop: every "poll cycle" a few feeds tick forward. Values are
  // original units, shipped as the request frame's raw float64 section; the
  // engine renormalizes the tail with the frozen parameters before
  // inserting the new subsequences.
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::printf("\n-- poll cycle %d --\n", cycle);
    const std::vector<double> points =
        cycle % 2 == 0 ? std::vector<double>{0.31, 0.52, 0.44, 0.39}
                       : std::vector<double>{-0.12, 0.08, 0.27, 0.41};
    std::vector<onex::net::WireRequest> cycle_requests(2);
    cycle_requests[0].command = "EXTEND series=" + std::to_string(cycle % 8);
    cycle_requests[0].values = points;  // in place of points=...
    cycle_requests[1].command = "STATS";
    onex::Result<std::vector<onex::net::WireResponse>> replies =
        client.SendMany(cycle_requests);
    if (!replies.ok()) {
      std::fprintf(stderr, "pipeline: %s\n",
                   replies.status().ToString().c_str());
      return 1;
    }
    for (std::size_t i = 0; i < replies->size(); ++i) {
      std::printf("> %s\n  %s\n", cycle_requests[i].command.c_str(),
                  (*replies)[i].body.Dump().c_str());
    }
    // The freshest tail is immediately searchable: query the newest window
    // of the series that just grew.
    const int len =
        static_cast<int>((*replies)[1].body["max_length"].as_number());
    onex::net::WireRequest match;
    match.command = "MATCH q=" + std::to_string(cycle % 8) + ":" +
                    std::to_string(len - 12) + ":12";
    onex::Result<onex::net::WireResponse> matched = client.CallWire(match);
    if (!matched.ok()) {
      std::fprintf(stderr, "match: %s\n", matched.status().ToString().c_str());
      return 1;
    }
    std::printf("> %s\n  %s\n  [%zu matched values in the binary section]\n",
                match.command.c_str(), matched->body.Dump().c_str(),
                matched->values.size());
  }

  std::printf("\n-- maintenance report --\n");
  Call(&client, "DRIFT");
  Call(&client, "DATASETS");
  Call(&client, "METRICS");
  client.Close();
  server.Stop();
  return 0;
}
