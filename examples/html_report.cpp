/// Generates a self-contained HTML report with every view of the demo's web
/// interface rendered as SVG: overview pane, the MA similarity match with
/// warped links (Fig 2), the linked radial + connected-scatter perspectives
/// (Fig 3), and the seasonal view on power usage (Fig 4).
///
///   $ ./html_report [output.html]
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "onex/engine/engine.h"
#include "onex/gen/economic_panel.h"
#include "onex/gen/electricity.h"
#include "onex/viz/svg_export.h"

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "/tmp/onex_report.html";
  onex::Engine engine;
  std::vector<std::pair<std::string, std::string>> sections;

  // --- Similarity walkthrough on the growth panel (Figs 2-3). ---
  {
    onex::gen::EconomicPanelOptions panel;
    panel.years = 25;
    if (!engine.LoadDataset("growth", onex::gen::MakeEconomicPanel(panel))
             .ok()) {
      return 1;
    }
    onex::BaseBuildOptions build;
    build.st = 0.1;
    build.min_length = 6;
    build.threads = 0;
    if (!engine.Prepare("growth", build).ok()) return 1;

    const auto overview = engine.Overview("growth");
    if (!overview.ok()) return 1;
    sections.emplace_back(
        "Overview Pane — group representatives (opacity = cardinality)",
        onex::viz::RenderSvgOverview(onex::viz::BuildOverviewPane(*overview)));

    const auto prepared = engine.Get("growth");
    onex::QuerySpec query;
    query.series = *(*prepared)->raw->FindByName("Massachusetts");
    onex::QueryOptions qopt;
    qopt.min_length = panel.years;
    qopt.max_length = panel.years;
    qopt.exhaustive = true;
    const auto knn = engine.Knn("growth", query, 2, qopt);
    if (!knn.ok() || knn->size() < 2) return 1;
    const onex::MatchResult& best = (*knn)[1];

    const auto multiline = engine.MatchMultiLineChart("growth", best);
    sections.emplace_back(
        "Similarity Results — Massachusetts vs " + best.matched_series_name +
            " with warped-point links",
        onex::viz::RenderSvgMultiLine(*multiline));

    const auto radial = engine.MatchRadialChart("growth", best);
    sections.emplace_back("Radial Chart — compacted traces",
                          onex::viz::RenderSvgRadial(*radial));

    const auto scatter = engine.MatchConnectedScatter("growth", best);
    sections.emplace_back(
        "Connected Scatter Plot — points near the diagonal = close match",
        onex::viz::RenderSvgConnectedScatter(*scatter));
  }

  // --- Seasonal view on power usage (Fig 4). ---
  {
    onex::gen::ElectricityOptions eopt;
    eopt.num_households = 1;
    eopt.length = 24 * 21;
    if (!engine.LoadDataset("power", onex::gen::MakeElectricityLoad(eopt))
             .ok()) {
      return 1;
    }
    onex::BaseBuildOptions build;
    build.st = 0.12;
    build.min_length = 24;
    build.max_length = 24;
    if (!engine.Prepare("power", build).ok()) return 1;
    onex::SeasonalOptions sopt;
    sopt.length = 24;
    sopt.top_k = 3;
    const auto view = engine.SeasonalView("power", 0, sopt);
    if (!view.ok()) return 1;
    sections.emplace_back(
        "Seasonal View — alternating bands mark recurring daily patterns",
        onex::viz::RenderSvgSeasonal(*view));
  }

  const std::string html = onex::viz::WrapHtmlPage(
      "ONEX — Online Exploration of Time Series", sections);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << html;
  std::printf("wrote %s (%zu sections, %zu bytes) — open it in a browser\n",
              out_path.c_str(), sections.size(), html.size());
  return 0;
}
