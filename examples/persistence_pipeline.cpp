/// Operational pipeline: CSV ingestion -> preprocessing -> persistence ->
/// reload in a fresh session -> incremental append of newly arrived data.
/// The lifecycle a production deployment of the demo's server would run.
///
///   $ ./persistence_pipeline [workdir]
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "onex/engine/engine.h"
#include "onex/gen/economic_panel.h"
#include "onex/ts/csv_io.h"

int main(int argc, char** argv) {
  const std::string workdir = argc > 1 ? argv[1] : "/tmp";
  const std::string csv_path = workdir + "/onex_growth_panel.csv";
  const std::string base_path = workdir + "/onex_growth_panel.onexbase";

  // --- Session 1: ingest a CSV panel, prepare, persist. ---
  {
    // Export a MATTERS-like panel to CSV first (stand-in for the analyst's
    // own spreadsheet; see DESIGN.md §3).
    onex::gen::EconomicPanelOptions panel;
    panel.years = 25;
    const onex::Dataset raw = onex::gen::MakeEconomicPanel(panel);
    if (!onex::WriteCsvPanelFile(raw, csv_path).ok()) return 1;
    std::printf("wrote %s (%zu states x %zu years)\n", csv_path.c_str(),
                raw.size(), raw[0].length());

    onex::Engine engine;
    onex::Result<onex::Dataset> panel_ds = onex::ReadCsvPanelFile(csv_path);
    if (!panel_ds.ok()) {
      std::fprintf(stderr, "csv load: %s\n",
                   panel_ds.status().ToString().c_str());
      return 1;
    }
    if (!engine.LoadDataset("growth", std::move(panel_ds).value()).ok()) {
      return 1;
    }

    onex::BaseBuildOptions build;
    build.st = 0.1;
    build.min_length = 6;
    build.threads = 0;  // use every core for the offline step
    if (onex::Status s = engine.Prepare("growth", build); !s.ok()) {
      std::fprintf(stderr, "prepare: %s\n", s.ToString().c_str());
      return 1;
    }
    if (onex::Status s = engine.SavePrepared("growth", base_path); !s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto prepared = engine.Get("growth");
    std::printf("prepared and saved: %zu groups over %zu subsequences -> %s\n",
                (*prepared)->base->TotalGroups(),
                (*prepared)->base->TotalMembers(), base_path.c_str());
  }

  // --- Session 2 (fresh process, conceptually): reload, query, append. ---
  {
    onex::Engine engine;
    if (onex::Status s = engine.LoadPrepared("growth", base_path); !s.ok()) {
      std::fprintf(stderr, "reload: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto prepared = engine.Get("growth");
    std::printf("reloaded prepared base: %zu groups (no re-clustering)\n",
                (*prepared)->base->TotalGroups());

    // Query against the reloaded base.
    const std::size_t ma = *(*prepared)->raw->FindByName("Massachusetts");
    onex::QuerySpec spec;
    spec.series = ma;
    spec.start = 12;
    onex::QueryOptions qopt;
    qopt.min_length = 8;
    const auto match = engine.SimilaritySearch("growth", spec, qopt);
    if (!match.ok()) return 1;
    std::printf("MA recent-trend best match: %s (normalized DTW %.4f)\n",
                match->matched_series_name.c_str(),
                match->match.normalized_dtw);

    // A new territory reports data: append incrementally.
    std::vector<double> pr_values;
    for (int t = 0; t < 25; ++t) {
      pr_values.push_back(2.0 + 0.8 * std::sin(0.4 * t) + 0.05 * t);
    }
    if (onex::Status s = engine.AppendSeries(
            "growth", onex::TimeSeries("PuertoRico", pr_values));
        !s.ok()) {
      std::fprintf(stderr, "append: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto updated = engine.Get("growth");
    std::printf(
        "appended PuertoRico incrementally: %zu series, %zu groups "
        "(was %zu)\n",
        (*updated)->raw->size(), (*updated)->base->TotalGroups(),
        (*prepared)->base->TotalGroups());

    // The appended series is immediately queryable.
    onex::QuerySpec pr_spec;
    pr_spec.series = (*updated)->raw->size() - 1;
    pr_spec.length = 0;
    onex::QueryOptions pr_opt;
    pr_opt.min_length = 25;
    pr_opt.max_length = 25;
    pr_opt.exhaustive = true;
    const auto pr_knn = engine.Knn("growth", pr_spec, 2, pr_opt);
    if (pr_knn.ok() && pr_knn->size() == 2) {
      std::printf("state most similar to PuertoRico: %s\n",
                  (*pr_knn)[1].matched_series_name.c_str());
    }
  }

  std::remove(csv_path.c_str());
  std::remove(base_path.c_str());
  return 0;
}
