/// onexd — the ONEX analytics server (the demo's server tier). Clients speak
/// the newline-delimited command protocol; responses are single-line JSON.
///
///   $ ./onexd [port]          # default: ephemeral port, printed on stdout
///
/// Try it with the bundled CLI:
///   $ ./onexd 7700 &
///   $ ./onex_cli 7700 "GEN demo sine num=8 len=32" "PREPARE demo st=0.15"
///   $ ./onex_cli 7700 "MATCH demo q=0:4:16"
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "onex/common/logging.h"
#include "onex/engine/engine.h"
#include "onex/net/server.h"

namespace {
std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  const std::uint16_t port =
      argc > 1 ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 0;

  onex::SetLogLevel(onex::LogLevel::kInfo);
  onex::Engine engine;
  onex::net::OnexServer server(&engine);
  if (onex::Status s = server.Start(port); !s.ok()) {
    std::fprintf(stderr, "onexd: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("onexd listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load() && server.running()) {
    // The accept loop runs on its own thread; park cheaply here.
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("onexd: shutting down\n");
  server.Stop();
  return 0;
}
