/// onexd — the ONEX analytics server (the demo's server tier). Clients speak
/// the newline-delimited command protocol (single-line JSON responses) and
/// may upgrade to the ONEXB binary frame with BIN; METRICS reports serving
/// statistics. The default serving path is the epoll reactor (DESIGN.md
/// §15) — thousands of connections on one thread; --legacy-threads selects
/// the original thread-per-connection server instead.
///
///   $ ./onexd [port] [--data-dir=DIR] [--checkpoint-every=N] [--no-fsync]
///            [--budget=BYTES] [--no-mmap-tier] [--legacy-threads]
///            [--cluster-nodes=host:port,host:port,...] [--cluster-self=N]
///
/// --budget bounds resident prepared bases (0 = unlimited); with durability
/// on, over-budget slots downgrade to their mmap'd arena checkpoints (the
/// mapped tier, DESIGN.md §17) instead of being stripped — disable with
/// --no-mmap-tier to get strip-and-rebuild eviction back.
///
/// With --data-dir, the server is durable (DESIGN.md §13): state found in
/// DIR is recovered before the first client connects, every acknowledged
/// mutation is journaled write-ahead, and prepared datasets checkpoint in
/// the background every N journaled mutations (default 256; 0 = manual
/// CHECKPOINT only). Kill the process however you like — the next start
/// with the same --data-dir answers queries identically.
///
/// With --cluster-nodes, the server joins a cluster (DESIGN.md §16): the
/// list names every node (identical on all of them), --cluster-self=N is
/// this node's index into it, and the node's own port comes from the listed
/// endpoint. Cluster mode requires --data-dir (replication ships the WAL)
/// and forces --checkpoint-every=0 (replica catch-up replays the log from
/// its start). See README.md "Running a 3-node cluster".
///
/// Try it with the bundled CLI:
///   $ ./onexd 7700 --data-dir=/tmp/onex-data &
///   $ ./onex_cli 7700 "GEN demo sine num=8 len=32" "PREPARE demo st=0.15"
///   $ ./onex_cli 7700 "MATCH demo q=0:4:16"
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "onex/common/logging.h"
#include "onex/engine/engine.h"
#include "onex/net/cluster.h"
#include "onex/net/reactor.h"
#include "onex/net/server.h"

namespace {
std::atomic<bool> g_stop{false};
void HandleSignal(int) { g_stop.store(true); }

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(begin));
      break;
    }
    out.push_back(csv.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  bool legacy_threads = false;
  onex::DurabilityOptions durability;
  durability.checkpoint_every = 256;
  onex::DatasetRegistryOptions registry_options;
  std::vector<std::string> cluster_nodes;
  long long cluster_self = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--legacy-threads") {
      legacy_threads = true;
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      durability.dir = arg.substr(std::strlen("--data-dir="));
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      const long long every =
          std::atoll(arg.c_str() + std::strlen("--checkpoint-every="));
      if (every < 0) {
        std::fprintf(stderr, "onexd: --checkpoint-every must be >= 0\n");
        return 2;
      }
      durability.checkpoint_every = static_cast<std::uint64_t>(every);
    } else if (arg == "--no-fsync") {
      durability.fsync = false;
    } else if (arg.rfind("--budget=", 0) == 0) {
      const long long bytes = std::atoll(arg.c_str() + std::strlen("--budget="));
      if (bytes < 0) {
        std::fprintf(stderr, "onexd: --budget must be >= 0 bytes\n");
        return 2;
      }
      registry_options.prepared_budget_bytes =
          static_cast<std::size_t>(bytes);
    } else if (arg == "--no-mmap-tier") {
      registry_options.mapped_tier = false;
    } else if (arg.rfind("--cluster-nodes=", 0) == 0) {
      cluster_nodes = SplitCsv(arg.substr(std::strlen("--cluster-nodes=")));
    } else if (arg.rfind("--cluster-self=", 0) == 0) {
      cluster_self = std::atoll(arg.c_str() + std::strlen("--cluster-self="));
    } else if (!arg.empty() && arg[0] != '-') {
      port = static_cast<std::uint16_t>(std::atoi(arg.c_str()));
    } else {
      std::fprintf(stderr,
                   "onexd: unknown flag '%s'\nusage: onexd [port] "
                   "[--data-dir=DIR] [--checkpoint-every=N] [--no-fsync] "
                   "[--budget=BYTES] [--no-mmap-tier] "
                   "[--legacy-threads] [--cluster-nodes=h:p,...] "
                   "[--cluster-self=N]\n",
                   arg.c_str());
      return 2;
    }
  }

  const bool cluster_mode = !cluster_nodes.empty();
  if (cluster_mode) {
    if (cluster_self < 0 ||
        static_cast<std::size_t>(cluster_self) >= cluster_nodes.size()) {
      std::fprintf(stderr,
                   "onexd: cluster mode needs --cluster-self=N with N "
                   "indexing --cluster-nodes\n");
      return 2;
    }
    if (durability.dir.empty()) {
      std::fprintf(stderr,
                   "onexd: cluster mode requires --data-dir (replication "
                   "ships the write-ahead log)\n");
      return 2;
    }
    if (legacy_threads) {
      std::fprintf(stderr,
                   "onexd: cluster mode needs the reactor server (drop "
                   "--legacy-threads)\n");
      return 2;
    }
    // Replica catch-up replays the primary's WAL from its first record; a
    // checkpoint rotation would truncate exactly that (DESIGN.md §16).
    durability.checkpoint_every = 0;
    const std::string& self =
        cluster_nodes[static_cast<std::size_t>(cluster_self)];
    const std::size_t colon = self.rfind(':');
    if (colon != std::string::npos) {
      port = static_cast<std::uint16_t>(std::atoi(self.c_str() + colon + 1));
    }
  }

  onex::SetLogLevel(onex::LogLevel::kInfo);
  onex::Engine engine(registry_options);
  if (!durability.dir.empty()) {
    if (onex::Status s = engine.EnableDurability(durability); !s.ok()) {
      std::fprintf(stderr, "onexd: recovery failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    std::printf("onexd: durable in %s (%zu dataset(s) recovered)\n",
                durability.dir.c_str(), engine.registry().Describe().size());
  }

  std::unique_ptr<onex::net::ClusterNode> cluster;
  if (cluster_mode) {
    onex::net::ClusterNode::Options copt;
    copt.nodes = cluster_nodes;
    copt.self = static_cast<std::size_t>(cluster_self);
    cluster = std::make_unique<onex::net::ClusterNode>(&engine, copt);
  }

  onex::net::OnexServer legacy_server(&engine);
  onex::net::ReactorServer reactor_server(&engine);
  if (cluster != nullptr) reactor_server.SetCluster(cluster.get());
  std::uint16_t bound_port = 0;
  if (legacy_threads) {
    if (onex::Status s = legacy_server.Start(port); !s.ok()) {
      std::fprintf(stderr, "onexd: %s\n", s.ToString().c_str());
      return 1;
    }
    bound_port = legacy_server.port();
  } else {
    if (onex::Status s = reactor_server.Start(port); !s.ok()) {
      std::fprintf(stderr, "onexd: %s\n", s.ToString().c_str());
      return 1;
    }
    bound_port = reactor_server.port();
  }
  if (cluster != nullptr) {
    // After the listener is up: peers dial in for replication as soon as
    // their own hubs start, and this node's hub starts shipping to them.
    if (onex::Status s = cluster->Start(); !s.ok()) {
      std::fprintf(stderr, "onexd: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("onexd: cluster node %lld of %zu\n", cluster_self,
                cluster_nodes.size());
  }
  std::printf("onexd listening on 127.0.0.1:%u (%s)\n", bound_port,
              legacy_threads ? "thread-per-connection" : "epoll reactor");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load() &&
         (legacy_threads ? legacy_server.running()
                         : reactor_server.running())) {
    // Serving runs on its own thread(s); park cheaply here.
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("onexd: shutting down\n");
  legacy_server.Stop();
  reactor_server.Stop();
  // The hub's WAL sink is uninstalled only here, after the server stopped
  // executing commands that could fire it.
  if (cluster != nullptr) cluster->Stop();
  return 0;
}
