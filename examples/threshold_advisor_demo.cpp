/// Threshold recommendation across domains (paper §3.3): "the similarity in
/// growth rate percentages may require very small thresholds, whereas
/// similarity between unemployment figures ... uses higher thresholds."
///
///   $ ./threshold_advisor_demo
#include <cstdio>

#include "onex/engine/engine.h"
#include "onex/gen/economic_panel.h"

namespace {

void Report(onex::Engine* engine, const char* name) {
  onex::ThresholdAdvisorOptions options;
  options.sample_pairs = 1500;
  options.percentiles = {1.0, 5.0, 10.0, 25.0};
  const auto report = engine->RecommendThresholds(name, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s: %s\n", name,
                 report.status().ToString().c_str());
    return;
  }
  std::printf("%-14s  median pair distance %.6g   (sampled %zu pairs)\n",
              name, report->median_distance, report->pairs_sampled);
  for (const onex::ThresholdRecommendation& r : report->recommendations) {
    std::printf("    p%-5.1f -> ST = %.6g\n", r.percentile, r.st);
  }
}

}  // namespace

int main() {
  onex::Engine engine;
  onex::gen::EconomicPanelOptions panel;
  panel.indicator = onex::gen::Indicator::kGrowthRate;
  engine.LoadDataset("growth", onex::gen::MakeEconomicPanel(panel));
  panel.indicator = onex::gen::Indicator::kUnemployment;
  engine.LoadDataset("unemployment", onex::gen::MakeEconomicPanel(panel));

  std::printf("=== Raw domain units: thresholds differ by orders of "
              "magnitude ===\n");
  Report(&engine, "growth");
  Report(&engine, "unemployment");

  // After preparation both datasets are min-max normalized; the same ST
  // becomes meaningful for either domain.
  onex::BaseBuildOptions build;
  build.st = 0.1;
  build.min_length = 6;
  build.max_length = 12;
  engine.Prepare("growth", build);
  engine.Prepare("unemployment", build);
  std::printf("\n=== After ONEX normalization: one scale fits both ===\n");
  Report(&engine, "growth");
  Report(&engine, "unemployment");

  std::printf(
      "\nfeed a recommended ST back into Prepare() to rebuild the base with "
      "a data-driven threshold.\n");
  return 0;
}
