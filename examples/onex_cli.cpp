/// onex_cli — command-line client for onexd (the browser stand-in).
///
///   $ ./onex_cli PORT [command ...]    # one-shot: run commands, print JSON
///   $ ./onex_cli PORT                  # interactive: read lines from stdin
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "onex/net/client.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s PORT [command ...]\n", argv[0]);
    return 2;
  }
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[1]));
  onex::Result<onex::net::OnexClient> client =
      onex::net::OnexClient::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  auto run = [&](const std::string& line) -> bool {
    onex::Result<onex::json::Value> response = client->Call(line);
    if (!response.ok()) {
      std::fprintf(stderr, "transport error: %s\n",
                   response.status().ToString().c_str());
      return false;
    }
    std::printf("%s\n", response->Dump(2).c_str());
    return true;
  };

  if (argc > 2) {
    for (int i = 2; i < argc; ++i) {
      if (!run(argv[i])) return 1;
    }
    return 0;
  }

  std::string line;
  std::printf("onex> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == "exit" || line == "quit") break;
    if (!line.empty() && !run(line)) break;
    std::printf("onex> ");
    std::fflush(stdout);
  }
  return 0;
}
