/// The paper's Seasonal-View walkthrough (Fig 4): one household's electrical
/// consumption across a year, with repeating daily/weekly usage patterns
/// recovered and displayed as alternating segments.
///
///   $ ./electricity_seasonal [days] [pattern_hours]
#include <cstddef>
#include <cstdio>
#include <cstdlib>

#include "onex/engine/engine.h"
#include "onex/gen/electricity.h"
#include "onex/viz/charts.h"

int main(int argc, char** argv) {
  const std::size_t days =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 28;
  const std::size_t pattern_hours =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 24;

  onex::Engine engine;
  onex::gen::ElectricityOptions gen_options;
  gen_options.num_households = 1;
  gen_options.length = 24 * days;
  gen_options.noise_stddev = 0.05;
  if (!engine
           .LoadDataset("power", onex::gen::MakeElectricityLoad(gen_options))
           .ok()) {
    return 1;
  }

  onex::BaseBuildOptions build;
  build.st = 0.12;
  build.min_length = pattern_hours;
  build.max_length = pattern_hours;
  if (onex::Status s = engine.Prepare("power", build); !s.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto prepared = engine.Get("power");
  std::printf(
      "prepared %zu days of hourly consumption: %zu windows -> %zu groups\n\n",
      days, (*prepared)->base->TotalMembers(),
      (*prepared)->base->TotalGroups());

  onex::SeasonalOptions seasonal;
  seasonal.length = pattern_hours;
  seasonal.top_k = 4;
  const auto view = engine.SeasonalView("power", 0, seasonal);
  if (!view.ok()) {
    std::fprintf(stderr, "seasonal mining failed: %s\n",
                 view.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Seasonal View (b/g = alternating occurrences) ===\n%s\n",
              onex::viz::RenderSeasonalView(*view).c_str());

  // "The top graph displays a monthly pattern indicating that this household
  // tends to use electricity in a consistent manner..."
  if (!view->patterns.empty()) {
    const auto& top = view->patterns.front();
    std::printf(
        "dominant pattern: %zu occurrences of a %zu-hour shape, typical gap "
        "%zu h (%s)\n",
        top.segments.size(), top.length, top.typical_gap,
        top.typical_gap % 24 == 0 ? "a whole number of days — daily habit"
                                  : "irregular");
  }
  return 0;
}
