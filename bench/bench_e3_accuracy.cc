/// E3 — headline claim: "while still delivering up to 19% more accurate
/// results [5]". On time-warped data an ED-based retrieval misses warped
/// twins; ONEX's DTW-over-groups retrieval recovers them. Accuracy is scored
/// against the exact-DTW optimum: accuracy(X) = optimum_dtw / dtw(X's
/// answer), 1.0 = perfect.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "bench_util.h"
#include "onex/baseline/brute_force.h"
#include "onex/core/query_processor.h"
#include "onex/distance/dtw.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"

namespace {

std::shared_ptr<const onex::Dataset> MakeShapes(double warp,
                                                std::uint64_t seed) {
  onex::gen::WarpedShapeOptions opt;
  opt.num_series = 24;
  opt.length = 48;
  opt.num_shapes = 4;
  opt.warp_intensity = warp;
  opt.noise_stddev = 0.01;
  opt.seed = seed;
  // Corpus and probes share the template shapes (fresh warps + noise only),
  // so every query has a true warped twin in the corpus.
  opt.template_seed = 20170514;
  auto norm = onex::Normalize(onex::gen::MakeWarpedShapes(opt),
                              onex::NormalizationKind::kMinMaxDataset);
  return std::make_shared<const onex::Dataset>(std::move(norm).value());
}

}  // namespace

int main() {
  using onex::bench::Fmt;

  onex::bench::Banner(
      "E3 accuracy", "headline claim ('up to 19% more accurate')",
      "DTW-based ONEX retrieval vs exact-ED retrieval, both scored by DTW "
      "distance of the returned match against the exact-DTW optimum");

  const std::size_t kQlen = 16;
  onex::ScanScope scope;
  scope.min_length = kQlen;
  scope.max_length = kQlen;

  onex::bench::Table table({"warp", "onex_accuracy", "ed_accuracy",
                            "onex_gain", "queries"});

  for (const double warp : {0.0, 0.2, 0.4, 0.6}) {
    auto data = MakeShapes(warp, 7);
    onex::BaseBuildOptions bopt;
    bopt.st = 0.1;
    bopt.min_length = kQlen;
    bopt.max_length = kQlen;
    auto base = onex::OnexBase::Build(data, bopt);
    if (!base.ok()) return 1;
    onex::QueryProcessor qp(&*base);

    // Queries: fresh warped instances (same templates, disjoint seed), so
    // neither method has a verbatim copy in the base.
    auto probes = MakeShapes(warp, 1234);
    onex::Rng rng(55);
    double onex_acc = 0.0, ed_acc = 0.0;
    int queries = 0;
    for (int t = 0; t < 12; ++t) {
      const std::size_t series = rng.UniformIndex(probes->size());
      const std::size_t start =
          rng.UniformIndex((*probes)[series].length() - kQlen + 1);
      const std::span<const double> q = (*probes)[series].Slice(start, kQlen);

      auto exact = onex::BruteForceBestMatch(*data, q,
                                             onex::ScanDistance::kDtw, scope);
      auto ed = onex::BruteForceBestMatch(
          *data, q, onex::ScanDistance::kEuclidean, scope);
      onex::QueryOptions qopt;
      qopt.min_length = kQlen;
      qopt.max_length = kQlen;
      auto onex_ans = qp.BestMatchQuery(q, qopt);
      if (!exact.ok() || !ed.ok() || !onex_ans.ok()) return 1;

      // Score the ED answer by its *DTW* distance (what the analyst cares
      // about); the ONEX answer already is a DTW distance.
      const double ed_dtw = onex::NormalizedDtwDistance(
          q, ed->ref.Resolve(*data));
      const double opt_dtw = exact->normalized;
      onex_acc += opt_dtw > 1e-12 ? opt_dtw / onex_ans->normalized_dtw : 1.0;
      ed_acc += opt_dtw > 1e-12 ? opt_dtw / ed_dtw : 1.0;
      ++queries;
    }
    onex_acc /= queries;
    ed_acc /= queries;
    table.AddRow({Fmt("%.1f", warp), Fmt("%.3f", onex_acc),
                  Fmt("%.3f", ed_acc),
                  Fmt("%+.1f%%", (onex_acc - ed_acc) / ed_acc * 100.0),
                  std::to_string(queries)});
  }
  table.Print();
  std::printf(
      "\nshape check: ONEX stays near 1.0 at every warp level while the "
      "exact-ED answer is consistently ~10-15%% farther from the true best "
      "match under DTW — the regime behind the paper's 'up to 19%% more "
      "accurate'. (Even at warp=0 DTW retrieval wins slightly: warping "
      "absorbs observation noise that ED must pay for point-wise.)\n");
  return 0;
}
