/// E11 — kernel-table and cascade sweep (DESIGN.md §14): the same best-match
/// workload as E2, run under every combination of kernel table (scalar
/// reference vs the runtime-dispatched SIMD table) and pruning cascade
/// (LB_Kim → LB_Keogh → early-abandon DTW on vs everything off). Isolates
/// where the PR-level speedup comes from: vectorized inner loops, pruning,
/// or both — and proves the answers do not move while the work counters do.
///
/// With --json <path>, machine-readable results land in <path> (the repo's
/// BENCH_kernels.json trajectory file; see scripts/bench.sh).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "onex/core/query_processor.h"
#include "onex/distance/kernels.h"
#include "onex/gen/generators.h"
#include "onex/json/json.h"
#include "onex/ts/normalization.h"

namespace {

struct Workload {
  std::shared_ptr<const onex::Dataset> data;
  std::vector<std::vector<double>> queries;
};

Workload MakeWorkload(const char* kind, std::size_t n, std::size_t len,
                      std::size_t qlen, std::uint64_t seed) {
  onex::Dataset raw;
  if (std::string(kind) == "walk") {
    onex::gen::RandomWalkOptions opt;
    opt.num_series = n;
    opt.length = len;
    opt.seed = seed;
    raw = onex::gen::MakeRandomWalks(opt);
  } else {
    onex::gen::SineFamilyOptions opt;
    opt.num_series = n;
    opt.length = len;
    opt.num_shapes = 6;
    opt.seed = seed;
    raw = onex::gen::MakeSineFamilies(opt);
  }
  auto norm = onex::Normalize(raw, onex::NormalizationKind::kMinMaxDataset);
  Workload w;
  w.data = std::make_shared<const onex::Dataset>(std::move(norm).value());
  onex::Rng rng(seed + 99);
  for (int q = 0; q < 8; ++q) {
    const std::size_t series = rng.UniformIndex(w.data->size());
    const std::size_t start =
        rng.UniformIndex((*w.data)[series].length() - qlen + 1);
    const std::span<const double> vals = (*w.data)[series].Slice(start, qlen);
    std::vector<double> query(vals.begin(), vals.end());
    for (double& v : query) v += rng.Gaussian(0.0, 0.12);
    w.queries.push_back(std::move(query));
  }
  return w;
}

struct CellResult {
  double ms_per_query = 0.0;
  double mean_dist = 0.0;       ///< Mean best normalized DTW (answer check).
  std::size_t dtw_evals = 0;    ///< Summed over the workload's queries.
  std::size_t pruned_kim = 0;
  std::size_t pruned_keogh = 0;
};

CellResult RunCell(const onex::QueryProcessor& qp, const Workload& w,
                   onex::KernelMode mode, bool cascade) {
  onex::SetKernelMode(mode);
  onex::QueryOptions qo;
  qo.compute_path = false;
  qo.use_lower_bounds = cascade;
  qo.use_early_abandon = cascade;
  CellResult r;
  for (const std::vector<double>& q : w.queries) {
    onex::QueryStats stats;
    double dist = 0.0;
    r.ms_per_query += onex::bench::MedianMs(
        [&] { dist = qp.BestMatchQuery(q, qo, &stats)->normalized_dtw; }, 3);
    r.mean_dist += dist;
    r.dtw_evals += stats.dtw_evals;
    r.pruned_kim += stats.pruned_kim;
    r.pruned_keogh += stats.pruned_keogh;
  }
  const double nq = static_cast<double>(w.queries.size());
  r.ms_per_query /= nq;
  r.mean_dist /= nq;
  onex::SetKernelMode(onex::KernelMode::kAuto);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using onex::bench::Fmt;
  using onex::bench::FmtZu;

  std::string json_path;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--json" && a + 1 < argc) {
      json_path = argv[a + 1];
      ++a;
    }
  }

  onex::bench::Banner(
      "E11 kernel sweep", "distance-kernel layer ablation (DESIGN.md §14)",
      "best-match latency under scalar vs SIMD kernel tables, pruning "
      "cascade on vs off — where the speedup comes from, with answer and "
      "work-counter crosschecks");

  std::printf("kernel tables: scalar='%s', simd='%s' (dispatch %s)\n\n",
              onex::ScalarKernel().name, onex::SimdKernel().name,
              onex::SimdDispatchAvailable() ? "widened ISA" : "portable");

  onex::bench::Table table({"dataset", "scal+casc", "simd+casc", "scal_raw",
                            "simd_raw", "simd_gain", "casc_gain", "total",
                            "dtw_evals c/r", "same_ans"});
  onex::json::Value datasets_json = onex::json::Value::MakeArray();

  const std::size_t kMinLen = 8, kMaxLen = 32, kStep = 4, kQlen = 24;
  for (const auto& [name, kind, n, len, seed] :
       {std::tuple{"sine N=100 L=64", "sine", 100u, 64u, 2u},
        std::tuple{"sine N=100 L=128", "sine", 100u, 128u, 5u},
        std::tuple{"walk N=100 L=64", "walk", 100u, 64u, 4u}}) {
    const Workload w = MakeWorkload(kind, n, len, kQlen, seed);
    onex::BaseBuildOptions bopt;
    bopt.st = 0.25;
    bopt.min_length = kMinLen;
    bopt.max_length = kMaxLen;
    bopt.length_step = kStep;
    auto base = onex::OnexBase::Build(w.data, bopt);
    if (!base.ok()) return 1;
    onex::QueryProcessor qp(&*base);

    // The four sweep cells. "raw" = cascade off (every representative and
    // refined member pays a full DTW).
    const CellResult scal_casc =
        RunCell(qp, w, onex::KernelMode::kScalar, /*cascade=*/true);
    const CellResult simd_casc =
        RunCell(qp, w, onex::KernelMode::kSimd, /*cascade=*/true);
    const CellResult scal_raw =
        RunCell(qp, w, onex::KernelMode::kScalar, /*cascade=*/false);
    const CellResult simd_raw =
        RunCell(qp, w, onex::KernelMode::kSimd, /*cascade=*/false);

    // Answers must agree across all four cells (to ulp-level tolerance;
    // the tables may reassociate sums).
    const double ref = scal_raw.mean_dist;
    const auto close = [&](double v) {
      return v <= ref + 1e-9 * (1.0 + ref) && v >= ref - 1e-9 * (1.0 + ref);
    };
    const bool same_answer = close(scal_casc.mean_dist) &&
                             close(simd_casc.mean_dist) &&
                             close(simd_raw.mean_dist);

    table.AddRow(
        {name, Fmt("%.2f", scal_casc.ms_per_query),
         Fmt("%.2f", simd_casc.ms_per_query),
         Fmt("%.2f", scal_raw.ms_per_query),
         Fmt("%.2f", simd_raw.ms_per_query),
         Fmt("%.1fx", scal_casc.ms_per_query / simd_casc.ms_per_query),
         Fmt("%.1fx", simd_raw.ms_per_query / simd_casc.ms_per_query),
         Fmt("%.1fx", scal_raw.ms_per_query / simd_casc.ms_per_query),
         FmtZu(simd_casc.dtw_evals) + "/" + FmtZu(simd_raw.dtw_evals),
         same_answer ? "yes" : "NO"});

    onex::json::Value d = onex::json::Value::MakeObject();
    d.Set("name", name);
    d.Set("scalar_cascade_ms", scal_casc.ms_per_query);
    d.Set("simd_cascade_ms", simd_casc.ms_per_query);
    d.Set("scalar_raw_ms", scal_raw.ms_per_query);
    d.Set("simd_raw_ms", simd_raw.ms_per_query);
    d.Set("simd_speedup", scal_casc.ms_per_query / simd_casc.ms_per_query);
    d.Set("cascade_speedup", simd_raw.ms_per_query / simd_casc.ms_per_query);
    d.Set("total_speedup", scal_raw.ms_per_query / simd_casc.ms_per_query);
    d.Set("dtw_evals_cascade", simd_casc.dtw_evals);
    d.Set("dtw_evals_raw", simd_raw.dtw_evals);
    d.Set("pruned_kim", simd_casc.pruned_kim);
    d.Set("pruned_keogh", simd_casc.pruned_keogh);
    d.Set("same_answer", same_answer);
    datasets_json.Append(std::move(d));
  }
  table.Print();
  std::printf(
      "\nshape check: simd_gain > 1 (vectorized inner loops), casc_gain > 1 "
      "(pruning removes DTW evaluations: dtw_evals c << r), total is their "
      "product, and same_ans=yes everywhere — neither the kernel table nor "
      "the cascade may move the answer.\n");

  if (!json_path.empty()) {
    onex::json::Value root = onex::json::Value::MakeObject();
    root.Set("bench", "e11_kernel_sweep");
    root.Set("scalar_kernel", std::string(onex::ScalarKernel().name));
    root.Set("simd_kernel", std::string(onex::SimdKernel().name));
    root.Set("simd_dispatch_available", onex::SimdDispatchAvailable());
    root.Set("datasets", std::move(datasets_json));
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << root.Dump() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
