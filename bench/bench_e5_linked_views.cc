/// E5 — Fig 3 (Radial Chart + Connected Scatter Plot): the linked
/// perspectives are cheap projections of one match, and the connected
/// scatter's diagonal-deviation metric separates close matches from poor
/// ones (the demo's "close to a 45 degree angle" reading).
#include "bench_util.h"

#include <cstddef>
#include <cstdio>
#include <string>

#include "onex/engine/engine.h"
#include "onex/gen/economic_panel.h"
#include "onex/viz/charts.h"

int main() {
  using onex::bench::Fmt;

  onex::bench::Banner(
      "E5 linked views", "Fig 3 (radial chart, connected scatter)",
      "alternative visuals of the same match cost milliseconds; points near "
      "the 45-degree diagonal mean an extremely close match");

  onex::Engine engine;
  onex::gen::EconomicPanelOptions panel;
  panel.indicator = onex::gen::Indicator::kTechEmployment;
  panel.years = 25;
  if (!engine.LoadDataset("tech", onex::gen::MakeEconomicPanel(panel)).ok()) {
    return 1;
  }
  onex::BaseBuildOptions build;
  build.st = 0.1;
  build.min_length = 6;
  if (!engine.Prepare("tech", build).ok()) return 1;

  const auto prepared = engine.Get("tech");
  const std::size_t ma = *(*prepared)->raw->FindByName("Massachusetts");
  onex::QuerySpec query;
  query.series = ma;
  onex::QueryOptions qopt;
  qopt.min_length = panel.years;
  qopt.max_length = panel.years;
  qopt.exhaustive = true;
  const auto knn = engine.Knn("tech", query, 50, qopt);
  if (!knn.ok() || knn->size() < 3) return 1;
  const onex::MatchResult& best = (*knn)[1];      // closest non-self state
  const onex::MatchResult& worst = knn->back();   // farthest retrieved state

  onex::bench::Table table(
      {"view", "build+render_ms", "metric", "value"});

  const double radial_ms = onex::bench::MedianMs([&] {
    const auto radial = engine.MatchRadialChart("tech", best);
    (void)onex::viz::RenderRadialChart(*radial);
  });
  table.AddRow({"Radial Chart (best pair)", Fmt("%.2f", radial_ms),
                "points per trace", std::to_string(best.query_values.size())});

  const auto best_scatter = engine.MatchConnectedScatter("tech", best);
  const auto worst_scatter = engine.MatchConnectedScatter("tech", worst);
  const double scatter_ms = onex::bench::MedianMs([&] {
    const auto s = engine.MatchConnectedScatter("tech", best);
    (void)onex::viz::RenderConnectedScatter(*s);
  });
  table.AddRow({"Connected Scatter (best pair)", Fmt("%.2f", scatter_ms),
                "diagonal deviation",
                Fmt("%.4f", best_scatter->diagonal_deviation)});
  table.AddRow({"Connected Scatter (worst pair)", "-", "diagonal deviation",
                Fmt("%.4f", worst_scatter->diagonal_deviation)});
  table.Print();

  std::printf(
      "\nMA (query) vs %s — best pair, diagonal deviation %.4f:\n%s\n",
      best.matched_series_name.c_str(), best_scatter->diagonal_deviation,
      onex::viz::RenderConnectedScatter(*best_scatter).c_str());
  std::printf(
      "shape check: the best pair's deviation is far below the worst pair's "
      "(diagonal closeness == match quality), and both views render in "
      "milliseconds.\n");
  return 0;
}
