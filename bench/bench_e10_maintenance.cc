/// E10 — extension experiments beyond the demo paper: operational
/// maintenance of the ONEX base. (a) Parallel construction: length classes
/// are independent, so the offline step scales with cores. (b) Incremental
/// append vs full rebuild: a growing collection (the paper's "data sets
/// updated with new yearly data") should not pay the full preprocessing
/// price per arrival. (c) Base persistence: reload vs rebuild.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "bench_util.h"
#include "onex/core/base_io.h"
#include "onex/core/incremental.h"
#include "onex/core/onex_base.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"

namespace {

std::shared_ptr<const onex::Dataset> MakeData(std::size_t n,
                                              std::uint64_t seed) {
  onex::gen::SineFamilyOptions opt;
  opt.num_series = n;
  opt.length = 96;
  opt.seed = seed;
  auto norm = onex::Normalize(onex::gen::MakeSineFamilies(opt),
                              onex::NormalizationKind::kMinMaxDataset);
  return std::make_shared<const onex::Dataset>(std::move(norm).value());
}

onex::BaseBuildOptions Opt(std::size_t threads) {
  onex::BaseBuildOptions opt;
  opt.st = 0.15;
  opt.min_length = 8;
  opt.max_length = 64;
  opt.length_step = 4;
  opt.threads = threads;
  return opt;
}

}  // namespace

int main() {
  using onex::bench::Fmt;
  using onex::bench::FmtZu;

  onex::bench::Banner(
      "E10 maintenance (extension)", "beyond the demo: operating the base",
      "parallel construction, incremental append and persistence keep the "
      "offline step from ever being repeated in full");

  auto data = MakeData(40, 3);

  std::printf("\n-- parallel construction (N=40, L=96, 15 length classes) --\n");
  {
    onex::bench::Table table({"threads", "build_ms", "speedup", "groups"});
    double serial_ms = 0.0;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      const auto opt = Opt(threads);
      double ms = 0.0;
      std::size_t groups = 0;
      ms = onex::bench::MedianMs(
          [&] {
            auto base = onex::OnexBase::Build(data, opt);
            groups = base->TotalGroups();
          },
          3);
      if (threads == 1) serial_ms = ms;
      table.AddRow({FmtZu(threads), Fmt("%.1f", ms),
                    Fmt("%.2fx", serial_ms / ms), FmtZu(groups)});
    }
    table.Print();
  }

  std::printf("\n-- incremental append vs full rebuild --\n");
  {
    onex::bench::Table table(
        {"arrivals", "rebuild_ms", "append_ms", "speedup", "groups_delta"});
    auto base = onex::OnexBase::Build(data, Opt(1));
    onex::gen::SineFamilyOptions extra_opt;
    extra_opt.num_series = 8;
    extra_opt.length = 96;
    extra_opt.seed = 777;
    auto extra_norm = onex::Normalize(
        onex::gen::MakeSineFamilies(extra_opt),
        onex::NormalizationKind::kMinMaxDataset);

    for (const std::size_t arrivals : {1u, 4u, 8u}) {
      // Incremental: chain appends.
      onex::OnexBase chained = *base;
      const double append_ms = onex::bench::TimeOnceMs([&] {
        for (std::size_t i = 0; i < arrivals; ++i) {
          chained = std::move(
              onex::AppendSeries(chained, (*extra_norm)[i])).value();
        }
      });
      // Full rebuild over the extended collection.
      onex::Dataset extended(data->name());
      for (const onex::TimeSeries& ts : data->series()) extended.Add(ts);
      for (std::size_t i = 0; i < arrivals; ++i) {
        extended.Add((*extra_norm)[i]);
      }
      auto extended_ptr =
          std::make_shared<const onex::Dataset>(std::move(extended));
      std::size_t rebuilt_groups = 0;
      const double rebuild_ms = onex::bench::TimeOnceMs([&] {
        auto rebuilt = onex::OnexBase::Build(extended_ptr, Opt(1));
        rebuilt_groups = rebuilt->TotalGroups();
      });
      const long long delta =
          static_cast<long long>(chained.TotalGroups()) -
          static_cast<long long>(rebuilt_groups);
      table.AddRow({FmtZu(arrivals), Fmt("%.1f", rebuild_ms),
                    Fmt("%.1f", append_ms), Fmt("%.1fx", rebuild_ms / append_ms),
                    Fmt("%+g", static_cast<double>(delta))});
    }
    table.Print();
  }

  std::printf("\n-- persistence: reload vs rebuild --\n");
  {
    onex::bench::Table table({"operation", "ms"});
    auto base = onex::OnexBase::Build(data, Opt(1));
    std::stringstream buf;
    const double save_ms =
        onex::bench::TimeOnceMs([&] { (void)onex::SaveBase(*base, buf); });
    const std::string payload = buf.str();
    double load_ms = 0.0;
    load_ms = onex::bench::MedianMs(
        [&] {
          std::istringstream in(payload);
          (void)*onex::LoadBase(in);
        },
        3);
    const double rebuild_ms = onex::bench::MedianMs(
        [&] { (void)*onex::OnexBase::Build(data, Opt(1)); }, 3);
    table.AddRow({"full rebuild", Fmt("%.1f", rebuild_ms)});
    table.AddRow({"SaveBase", Fmt("%.1f", save_ms)});
    table.AddRow({"LoadBase", Fmt("%.1f", load_ms)});
    table.Print();
  }

  std::printf(
      "\nshape check: construction parallelizes across length classes; "
      "appending a few series is far cheaper than rebuilding (group counts "
      "agree within leader-order noise); reloading a saved base costs I/O, "
      "not clustering.\n");
  return 0;
}
