/// E10 — extension experiments beyond the demo paper: operational
/// maintenance of the ONEX base. (a) Parallel construction: length classes
/// are independent, so the offline step scales with cores. (b) Incremental
/// append vs full rebuild: a growing collection (the paper's "data sets
/// updated with new yearly data") should not pay the full preprocessing
/// price per arrival. (c) Base persistence: reload vs rebuild.
/// (d) Streaming maintenance (DESIGN.md §12): point-append throughput
/// through Engine::ExtendSeries, the drift scan, drift-regroup latency and
/// query latency while a regroup runs in the background.
///
/// With --json <path>, machine-readable results land in <path> (the repo's
/// BENCH_maintenance.json trajectory file; see scripts/bench.sh).
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "onex/core/base_io.h"
#include "onex/core/incremental.h"
#include "onex/core/onex_base.h"
#include "onex/core/query_processor.h"
#include "onex/engine/engine.h"
#include "onex/gen/generators.h"
#include "onex/json/json.h"
#include "onex/ts/normalization.h"

namespace {

std::shared_ptr<const onex::Dataset> MakeData(std::size_t n,
                                              std::uint64_t seed) {
  onex::gen::SineFamilyOptions opt;
  opt.num_series = n;
  opt.length = 96;
  opt.seed = seed;
  auto norm = onex::Normalize(onex::gen::MakeSineFamilies(opt),
                              onex::NormalizationKind::kMinMaxDataset);
  return std::make_shared<const onex::Dataset>(std::move(norm).value());
}

onex::BaseBuildOptions Opt(std::size_t threads) {
  onex::BaseBuildOptions opt;
  opt.st = 0.15;
  opt.min_length = 8;
  opt.max_length = 64;
  opt.length_step = 4;
  opt.threads = threads;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using onex::bench::Fmt;
  using onex::bench::FmtZu;

  std::string json_path;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--json" && a + 1 < argc) {
      json_path = argv[a + 1];
      ++a;
    }
  }

  onex::bench::Banner(
      "E10 maintenance (extension)", "beyond the demo: operating the base",
      "parallel construction, incremental append, persistence and streaming "
      "point-appends keep the offline step from ever being repeated in full");

  auto data = MakeData(40, 3);
  onex::json::Value record = onex::json::Value::MakeObject();
  record.Set("bench", "e10_maintenance");

  std::printf("\n-- parallel construction (N=40, L=96, 15 length classes) --\n");
  {
    onex::bench::Table table({"threads", "build_ms", "speedup", "groups"});
    double serial_ms = 0.0;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      const auto opt = Opt(threads);
      double ms = 0.0;
      std::size_t groups = 0;
      ms = onex::bench::MedianMs(
          [&] {
            auto base = onex::OnexBase::Build(data, opt);
            groups = base->TotalGroups();
          },
          3);
      if (threads == 1) serial_ms = ms;
      table.AddRow({FmtZu(threads), Fmt("%.1f", ms),
                    Fmt("%.2fx", serial_ms / ms), FmtZu(groups)});
    }
    table.Print();
  }

  std::printf("\n-- incremental append vs full rebuild --\n");
  {
    onex::bench::Table table(
        {"arrivals", "rebuild_ms", "append_ms", "speedup", "groups_delta"});
    auto base = onex::OnexBase::Build(data, Opt(1));
    onex::gen::SineFamilyOptions extra_opt;
    extra_opt.num_series = 8;
    extra_opt.length = 96;
    extra_opt.seed = 777;
    auto extra_norm = onex::Normalize(
        onex::gen::MakeSineFamilies(extra_opt),
        onex::NormalizationKind::kMinMaxDataset);

    for (const std::size_t arrivals : {1u, 4u, 8u}) {
      // Incremental: chain appends.
      onex::OnexBase chained = *base;
      const double append_ms = onex::bench::TimeOnceMs([&] {
        for (std::size_t i = 0; i < arrivals; ++i) {
          chained = std::move(
              onex::AppendSeries(chained, (*extra_norm)[i])).value();
        }
      });
      // Full rebuild over the extended collection.
      onex::Dataset extended(data->name());
      for (const onex::TimeSeries& ts : data->series()) extended.Add(ts);
      for (std::size_t i = 0; i < arrivals; ++i) {
        extended.Add((*extra_norm)[i]);
      }
      auto extended_ptr =
          std::make_shared<const onex::Dataset>(std::move(extended));
      std::size_t rebuilt_groups = 0;
      const double rebuild_ms = onex::bench::TimeOnceMs([&] {
        auto rebuilt = onex::OnexBase::Build(extended_ptr, Opt(1));
        rebuilt_groups = rebuilt->TotalGroups();
      });
      const long long delta =
          static_cast<long long>(chained.TotalGroups()) -
          static_cast<long long>(rebuilt_groups);
      table.AddRow({FmtZu(arrivals), Fmt("%.1f", rebuild_ms),
                    Fmt("%.1f", append_ms), Fmt("%.1fx", rebuild_ms / append_ms),
                    Fmt("%+g", static_cast<double>(delta))});
      if (arrivals == 8) {
        record.Set("append8_ms", append_ms);
        record.Set("rebuild8_ms", rebuild_ms);
        record.Set("append_speedup_8", rebuild_ms / append_ms);
      }
    }
    table.Print();
  }

  std::printf("\n-- persistence: reload vs rebuild --\n");
  {
    onex::bench::Table table({"operation", "ms"});
    auto base = onex::OnexBase::Build(data, Opt(1));
    std::stringstream buf;
    const double save_ms =
        onex::bench::TimeOnceMs([&] { (void)onex::SaveBase(*base, buf); });
    const std::string payload = buf.str();
    double load_ms = 0.0;
    load_ms = onex::bench::MedianMs(
        [&] {
          std::istringstream in(payload);
          (void)*onex::LoadBase(in);
        },
        3);
    const double rebuild_ms = onex::bench::MedianMs(
        [&] { (void)*onex::OnexBase::Build(data, Opt(1)); }, 3);
    table.AddRow({"full rebuild", Fmt("%.1f", rebuild_ms)});
    table.AddRow({"SaveBase", Fmt("%.1f", save_ms)});
    table.AddRow({"LoadBase", Fmt("%.1f", load_ms)});
    table.Print();
  }

  std::printf("\n-- streaming maintenance: extend, drift, regroup --\n");
  {
    // The live-feed shape, end to end through the engine: EXTEND-sized
    // writes against a prepared multi-length base, with conditional
    // installs, frozen-parameter tail normalization and drift accounting
    // all included in the measured path.
    onex::gen::SineFamilyOptions gopt;
    gopt.num_series = 40;
    gopt.length = 96;
    gopt.seed = 3;
    onex::Engine engine;
    if (onex::Status s =
            engine.LoadDataset("live", onex::gen::MakeSineFamilies(gopt));
        !s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    onex::BaseBuildOptions opt = Opt(1);
    if (onex::Status s = engine.Prepare("live", opt); !s.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n", s.ToString().c_str());
      return 1;
    }

    constexpr std::size_t kTicks = 50;
    constexpr std::size_t kPointsPerTick = 4;
    onex::Rng rng(11);
    double last_max_drift = 0.0;
    const double extend_total_ms = onex::bench::TimeOnceMs([&] {
      for (std::size_t tick = 0; tick < kTicks; ++tick) {
        std::vector<double> points;
        points.reserve(kPointsPerTick);
        for (std::size_t p = 0; p < kPointsPerTick; ++p) {
          points.push_back(rng.Uniform(-1.0, 1.0));
        }
        auto summary = engine.ExtendSeries("live", tick % gopt.num_series,
                                           std::move(points));
        if (summary.ok()) last_max_drift = summary->max_drift;
      }
    });
    const double extend_ms = extend_total_ms / kTicks;
    const double points_per_sec =
        static_cast<double>(kTicks * kPointsPerTick) /
        (extend_total_ms / 1000.0);

    auto snapshot_r = engine.registry().GetPrepared("live");
    if (!snapshot_r.ok()) {
      std::fprintf(stderr, "snapshot read failed: %s\n",
                   snapshot_r.status().ToString().c_str());
      return 1;
    }
    const auto& snapshot = *snapshot_r;
    double drift_max = 0.0;
    std::vector<std::size_t> lengths;
    double drift_scan_ms = 0.0;
    drift_scan_ms = onex::bench::MedianMs(
        [&] {
          drift_max = 0.0;
          lengths.clear();
          for (const auto& d : onex::ComputeDrift(*snapshot->base)) {
            drift_max = std::max(drift_max, d.fraction());
            lengths.push_back(d.length);
          }
        },
        3);

    // Drift-regroup latency: schedule → rebuild → conditional install.
    const double regroup_ms = onex::bench::TimeOnceMs([&] {
      auto ticket = engine.registry().RegroupAsync("live", lengths);
      (void)ticket.Wait();
    });

    // Query latency while a regroup runs vs idle.
    onex::QuerySpec spec;
    spec.series = 0;
    spec.start = 8;
    spec.length = 24;
    const double query_idle_ms = onex::bench::MedianMs(
        [&] { (void)engine.SimilaritySearch("live", spec); }, 5);
    auto ticket = engine.registry().RegroupAsync("live", lengths);
    double query_during_ms = 0.0;
    std::size_t sampled = 0;
    while (!ticket.done() && sampled < 64) {
      query_during_ms += onex::bench::TimeOnceMs(
          [&] { (void)engine.SimilaritySearch("live", spec); });
      ++sampled;
    }
    (void)ticket.Wait();
    query_during_ms =
        sampled == 0 ? query_idle_ms
                     : query_during_ms / static_cast<double>(sampled);

    onex::bench::Table table({"metric", "value"});
    table.AddRow({"extend_ms_per_tick (4 pts)", Fmt("%.2f", extend_ms)});
    table.AddRow({"extend_points_per_sec", Fmt("%.0f", points_per_sec)});
    table.AddRow({"drift_scan_ms", Fmt("%.2f", drift_scan_ms)});
    table.AddRow({"drift_max_fraction", Fmt("%.4f", drift_max)});
    table.AddRow({"regroup_ms (all classes)", Fmt("%.1f", regroup_ms)});
    table.AddRow({"query_ms idle", Fmt("%.2f", query_idle_ms)});
    table.AddRow({"query_ms during regroup", Fmt("%.2f", query_during_ms)});
    table.Print();

    record.Set("extend_ms_per_tick", extend_ms);
    record.Set("extend_points_per_sec", points_per_sec);
    record.Set("extend_last_max_drift", last_max_drift);
    record.Set("drift_scan_ms", drift_scan_ms);
    record.Set("drift_max_fraction", drift_max);
    record.Set("regroup_ms", regroup_ms);
    record.Set("query_idle_ms", query_idle_ms);
    record.Set("query_during_regroup_ms", query_during_ms);
    record.Set("query_during_regroup_samples", sampled);
  }

  std::printf(
      "\nshape check: construction parallelizes across length classes; "
      "appending a few series is far cheaper than rebuilding (group counts "
      "agree within leader-order noise); reloading a saved base costs I/O, "
      "not clustering; streaming extends cost milliseconds per tick while "
      "queries keep answering — including during a background regroup.\n");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << record.Dump() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
