/// E4 — Fig 2 (Similarity View): every interaction of the demo walkthrough
/// on the MATTERS-like growth-rate panel, with per-interaction latency. The
/// demo's promise is "near real-time responsiveness" after one offline
/// preprocessing step.
#include "bench_util.h"

#include <cstddef>
#include <cstdio>
#include <string>

#include "onex/engine/engine.h"
#include "onex/gen/economic_panel.h"
#include "onex/viz/charts.h"

int main() {
  using onex::bench::Fmt;

  onex::bench::Banner(
      "E4 similarity view", "Fig 2 (Overview / Selection / Preview / Results)",
      "one offline PREPARE, then every interactive operation answers at "
      "interactive latency on the compact base");

  onex::Engine engine;
  onex::gen::EconomicPanelOptions panel;
  panel.years = 25;
  if (!engine.LoadDataset("growth", onex::gen::MakeEconomicPanel(panel)).ok()) {
    return 1;
  }

  onex::bench::Table table({"interaction", "ms", "notes"});

  onex::BaseBuildOptions build;
  build.st = 0.1;
  build.min_length = 6;
  const double prepare_ms =
      onex::bench::TimeOnceMs([&] { (void)engine.Prepare("growth", build); });
  const auto prepared = engine.Get("growth");
  table.AddRow({"PREPARE (offline, once)", Fmt("%.1f", prepare_ms),
                std::to_string((*prepared)->base->TotalMembers()) +
                    " subsequences -> " +
                    std::to_string((*prepared)->base->TotalGroups()) +
                    " groups"});

  // Overview Pane.
  std::string overview_note;
  const double overview_ms = onex::bench::MedianMs([&] {
    const auto entries = engine.Overview("growth");
    overview_note = std::to_string(entries->size()) + " representative cells";
  });
  table.AddRow({"Overview Pane", Fmt("%.2f", overview_ms), overview_note});

  // Query Selection + Preview: resolve MA's brushed range.
  const std::size_t ma = *(*prepared)->raw->FindByName("Massachusetts");
  onex::QuerySpec brushed;
  brushed.series = ma;
  brushed.start = 12;
  const double resolve_ms = onex::bench::MedianMs(
      [&] { (void)engine.ResolveQuery(**prepared, brushed); });
  table.AddRow({"Query Preview (brush)", Fmt("%.2f", resolve_ms),
                "second half of MA growth rate"});

  // Similarity search: most similar state (whole series, skip self).
  onex::QuerySpec whole;
  whole.series = ma;
  onex::QueryOptions qopt;
  qopt.min_length = panel.years;
  qopt.max_length = panel.years;
  qopt.exhaustive = true;
  std::string match_note;
  const double match_ms = onex::bench::MedianMs([&] {
    const auto knn = engine.Knn("growth", whole, 2, qopt);
    match_note = "best non-self match: " + (*knn)[1].matched_series_name;
  });
  table.AddRow({"Similarity Results", Fmt("%.2f", match_ms), match_note});

  // Sub-sequence query (the brushed preview as query).
  onex::QueryOptions sub_opt;
  sub_opt.min_length = 8;
  const double sub_ms = onex::bench::MedianMs(
      [&] { (void)engine.SimilaritySearch("growth", brushed, sub_opt); });
  table.AddRow({"Brushed-range search", Fmt("%.2f", sub_ms),
                "matches across all lengths"});

  // Results Pane rendering (multiple-lines chart with warped links).
  const auto knn = engine.Knn("growth", whole, 2, qopt);
  const onex::MatchResult& best = (*knn)[1];
  const double chart_ms = onex::bench::MedianMs([&] {
    const auto chart = engine.MatchMultiLineChart("growth", best);
    (void)onex::viz::RenderMultiLineChart(*chart);
  });
  table.AddRow({"Results Pane chart", Fmt("%.2f", chart_ms),
                std::to_string(best.match.path.size()) + " warped links"});

  table.Print();
  std::printf(
      "\nshape check: PREPARE dominates (offline); every online interaction "
      "is in the interactive regime, orders of magnitude below the offline "
      "step.\n");
  return 0;
}
