/// E2 — headline claim: "ONEX has been shown to be several times faster than
/// the fastest known method [UCR Suite]". Best-match latency of ONEX
/// (grouped base + DTW) vs a UCR-style exact scan vs unpruned brute force,
/// all searching the identical subsequence space. A second sweep measures
/// the parallel query path (QueryOptions::threads over the shared TaskPool)
/// and batch fan-out: per-query latency and 8-query batch throughput at
/// 1/2/4/N threads, with a determinism crosscheck against the serial run.
///
/// Queries are perturbed subsequences (noise sigma 0.08): far enough from
/// any base member that the scanners cannot rely on a near-zero best-so-far,
/// the regime interactive exploration actually operates in.
///
/// With --json <path>, machine-readable results land in <path> (the repo's
/// BENCH_query.json trajectory file; see scripts/bench.sh).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "onex/baseline/brute_force.h"
#include "onex/baseline/ucr_suite.h"
#include "onex/common/task_pool.h"
#include "onex/core/query_processor.h"
#include "onex/gen/generators.h"
#include "onex/json/json.h"
#include "onex/ts/normalization.h"

namespace {

struct Workload {
  std::shared_ptr<const onex::Dataset> data;
  std::vector<std::vector<double>> queries;
};

Workload MakeWorkload(const char* kind, std::size_t n, std::size_t len,
                      std::size_t qlen, std::uint64_t seed) {
  onex::Dataset raw;
  if (std::string(kind) == "walk") {
    onex::gen::RandomWalkOptions opt;
    opt.num_series = n;
    opt.length = len;
    opt.seed = seed;
    raw = onex::gen::MakeRandomWalks(opt);
  } else {
    onex::gen::SineFamilyOptions opt;
    opt.num_series = n;
    opt.length = len;
    opt.num_shapes = 6;
    opt.seed = seed;
    raw = onex::gen::MakeSineFamilies(opt);
  }
  auto norm = onex::Normalize(raw, onex::NormalizationKind::kMinMaxDataset);
  Workload w;
  w.data = std::make_shared<const onex::Dataset>(std::move(norm).value());
  onex::Rng rng(seed + 99);
  for (int q = 0; q < 8; ++q) {
    const std::size_t series = rng.UniformIndex(w.data->size());
    const std::size_t start =
        rng.UniformIndex((*w.data)[series].length() - qlen + 1);
    const std::span<const double> vals = (*w.data)[series].Slice(start, qlen);
    std::vector<double> query(vals.begin(), vals.end());
    for (double& v : query) v += rng.Gaussian(0.0, 0.12);
    w.queries.push_back(std::move(query));
  }
  return w;
}

/// Thread counts for the scaling sweep: 1/2/4 plus the machine width.
std::vector<std::size_t> SweepThreads() {
  std::vector<std::size_t> threads{1, 2, 4};
  const std::size_t hw = onex::TaskPool::Shared().worker_count() + 1;
  if (hw > 4) threads.push_back(hw);
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  using onex::bench::Fmt;
  using onex::bench::FmtZu;

  std::string json_path;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--json" && a + 1 < argc) {
      json_path = argv[a + 1];
      ++a;
    }
  }

  onex::bench::Banner(
      "E2 query speedup", "headline claim vs [6] (UCR Suite)",
      "'several times faster than the fastest known method' — same best-match "
      "workload, identical search space, per-query latency; plus the "
      "parallel-path scaling sweep");

  // The thread-scaling numbers are only meaningful with real cores behind
  // them; state the machine width up front so a reader (or a regression
  // diff across machines) never misreads a 1-core ~1x as a regression.
  const std::size_t hardware_threads =
      std::thread::hardware_concurrency() == 0
          ? 1
          : std::thread::hardware_concurrency();
  const bool single_core = hardware_threads <= 1;
  std::printf("hardware_threads: %zu%s\n\n", hardware_threads,
              single_core
                  ? "  (single core: thread-sweep speedups reported as n/a)"
                  : "");

  const std::size_t kMinLen = 8, kMaxLen = 32, kStep = 4, kQlen = 24;
  onex::ScanScope scope;
  scope.min_length = kMinLen;
  scope.max_length = kMaxLen;
  scope.length_step = kStep;

  onex::bench::Table table({"dataset", "subseq", "groups", "onex_ms",
                            "ucr_ms", "brute_ms", "vs_ucr", "vs_brute",
                            "onex_vs_exact"});
  const std::vector<std::size_t> sweep = SweepThreads();
  std::vector<std::string> scale_headers{"dataset"};
  for (const std::size_t t : sweep) {
    scale_headers.push_back("q_ms@" + std::to_string(t) + "t");
  }
  for (const std::size_t t : sweep) {
    scale_headers.push_back("batch8_ms@" + std::to_string(t) + "t");
  }
  scale_headers.push_back("batch_speedup");
  scale_headers.push_back("identical");
  onex::bench::Table scale_table(scale_headers);

  onex::json::Value datasets_json = onex::json::Value::MakeArray();

  for (const auto& [name, kind, n, len, seed] :
       {std::tuple{"sine N=50 L=64", "sine", 50u, 64u, 1u},
        std::tuple{"sine N=100 L=64", "sine", 100u, 64u, 2u},
        std::tuple{"sine N=200 L=64", "sine", 200u, 64u, 3u},
        std::tuple{"sine N=100 L=128", "sine", 100u, 128u, 5u},
        std::tuple{"walk N=100 L=64", "walk", 100u, 64u, 4u}}) {
    const Workload w = MakeWorkload(kind, n, len, kQlen, seed);

    onex::BaseBuildOptions bopt;
    bopt.st = 0.25;
    bopt.min_length = kMinLen;
    bopt.max_length = kMaxLen;
    bopt.length_step = kStep;
    auto base = onex::OnexBase::Build(w.data, bopt);
    if (!base.ok()) return 1;
    onex::QueryProcessor qp(&*base);

    double onex_ms = 0.0, ucr_ms = 0.0, brute_ms = 0.0;
    double quality = 0.0;
    for (const std::vector<double>& q : w.queries) {
      double onex_dist = 0.0, exact_dist = 0.0;
      onex::QueryOptions qo;
      qo.compute_path = false;
      onex_ms += onex::bench::MedianMs(
          [&] { onex_dist = qp.BestMatchQuery(q, qo)->normalized_dtw; }, 3);
      onex::UcrSearchOptions uopt;
      uopt.scope = scope;
      ucr_ms += onex::bench::MedianMs(
          [&] {
            exact_dist = onex::UcrBestMatch(*w.data, q, uopt)->normalized;
          },
          3);
      brute_ms += onex::bench::MedianMs(
          [&] {
            (void)*onex::BruteForceBestMatch(*w.data, q,
                                             onex::ScanDistance::kDtw, scope);
          },
          3);
      quality += exact_dist > 1e-12 ? onex_dist / exact_dist : 1.0;
    }
    const double nq = static_cast<double>(w.queries.size());
    table.AddRow({name, FmtZu(base->TotalMembers()),
                  FmtZu(base->TotalGroups()), Fmt("%.2f", onex_ms / nq),
                  Fmt("%.2f", ucr_ms / nq), Fmt("%.2f", brute_ms / nq),
                  Fmt("%.1fx", ucr_ms / onex_ms),
                  Fmt("%.1fx", brute_ms / onex_ms),
                  Fmt("%.2f", quality / nq)});

    // ---- Parallel scaling sweep: per-query latency and batch throughput.
    // Exhaustive mode touches far more of the base than the default
    // best-representative rule, which is the regime where intra-query
    // parallelism matters; it is also the strongest determinism stressor.
    onex::QueryOptions pq;
    pq.compute_path = false;
    pq.exhaustive = true;

    std::vector<double> serial_dists;
    for (const std::vector<double>& q : w.queries) {
      serial_dists.push_back(qp.BestMatchQuery(q, pq)->normalized_dtw);
    }

    bool identical = true;
    std::vector<double> latency_ms;  // mean per-query latency per thread cnt
    std::vector<double> batch_ms;    // wall time for all 8 queries per cnt
    for (const std::size_t t : sweep) {
      onex::QueryOptions opt = pq;
      opt.threads = t;
      double lat = 0.0;
      for (std::size_t qi = 0; qi < w.queries.size(); ++qi) {
        double dist = 0.0;
        lat += onex::bench::MedianMs(
            [&] {
              dist = qp.BestMatchQuery(w.queries[qi], opt)->normalized_dtw;
            },
            3);
        if (dist != serial_dists[qi]) identical = false;
      }
      latency_ms.push_back(lat / nq);

      // Batch fan-out: independent queries across the pool, the
      // Engine::SimilaritySearchBatch / net BATCH shape. Per-query serial,
      // parallelism across queries.
      onex::QueryOptions bq = pq;
      bq.threads = 1;
      batch_ms.push_back(onex::bench::MedianMs(
          [&] {
            std::vector<double> out(w.queries.size());
            onex::TaskPool::Shared().ParallelFor(
                w.queries.size(),
                [&](std::size_t qi) {
                  out[qi] =
                      qp.BestMatchQuery(w.queries[qi], bq)->normalized_dtw;
                },
                t);
            for (std::size_t qi = 0; qi < out.size(); ++qi) {
              if (out[qi] != serial_dists[qi]) identical = false;
            }
          },
          3));
    }

    std::vector<std::string> row{name};
    for (const double v : latency_ms) row.push_back(Fmt("%.2f", v));
    for (const double v : batch_ms) row.push_back(Fmt("%.2f", v));
    // Speedup at the 4-thread point (index 2 of the sweep) vs serial —
    // meaningless without multiple cores, so report n/a there.
    const double batch_speedup = batch_ms[0] / batch_ms[2];
    row.push_back(single_core ? "n/a" : Fmt("%.2fx", batch_speedup));
    row.push_back(identical ? "yes" : "NO");
    scale_table.AddRow(row);

    onex::json::Value d = onex::json::Value::MakeObject();
    d.Set("name", name);
    d.Set("subsequences", base->TotalMembers());
    d.Set("groups", base->TotalGroups());
    d.Set("onex_ms", onex_ms / nq);
    d.Set("ucr_ms", ucr_ms / nq);
    d.Set("brute_ms", brute_ms / nq);
    d.Set("speedup_vs_ucr", ucr_ms / onex_ms);
    d.Set("quality_vs_exact", quality / nq);
    onex::json::Value lat_obj = onex::json::Value::MakeObject();
    onex::json::Value batch_obj = onex::json::Value::MakeObject();
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      lat_obj.Set(std::to_string(sweep[i]), latency_ms[i]);
      batch_obj.Set(std::to_string(sweep[i]), batch_ms[i]);
    }
    d.Set("query_latency_ms_by_threads", std::move(lat_obj));
    d.Set("batch8_wall_ms_by_threads", std::move(batch_obj));
    // On a single core the thread-sweep ratios are noise, not speedups;
    // record null so trajectory tooling never charts them as regressions.
    if (single_core) {
      d.Set("latency_speedup_4t", onex::json::Value(nullptr));
      d.Set("batch_speedup_4t", onex::json::Value(nullptr));
    } else {
      d.Set("latency_speedup_4t", latency_ms[0] / latency_ms[2]);
      d.Set("batch_speedup_4t", batch_speedup);
    }
    d.Set("parallel_identical_to_serial", identical);
    datasets_json.Append(std::move(d));
  }
  table.Print();
  std::printf("\n-- parallel query scaling (exhaustive mode, 8 queries) --\n");
  scale_table.Print();
  std::printf(
      "\nshape check: ONEX examines groups (<< subseq), so onex_ms beats "
      "ucr_ms by a multiple and brute force by orders of magnitude — the "
      "paper's 'several times faster' — while onex_vs_exact stays near 1 "
      "(answers remain near-optimal). The scaling table must say "
      "identical=yes everywhere: threads are a pure latency knob. Speedups "
      "track physical cores (a 1-core container legitimately reports ~1x).\n");

  if (!json_path.empty()) {
    onex::json::Value root = onex::json::Value::MakeObject();
    root.Set("bench", "e2_query_speedup");
    root.Set("hardware_threads", hardware_threads);
    root.Set("thread_speedups_valid", !single_core);
    onex::json::Value sweep_arr = onex::json::Value::MakeArray();
    for (const std::size_t t : sweep) {
      sweep_arr.Append(onex::json::Value(t));
    }
    root.Set("thread_sweep", std::move(sweep_arr));
    root.Set("datasets", std::move(datasets_json));
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << root.Dump() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
