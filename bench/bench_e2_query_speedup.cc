/// E2 — headline claim: "ONEX has been shown to be several times faster than
/// the fastest known method [UCR Suite]". Best-match latency of ONEX
/// (grouped base + DTW) vs a UCR-style exact scan vs unpruned brute force,
/// all searching the identical subsequence space.
///
/// Queries are perturbed subsequences (noise sigma 0.08): far enough from
/// any base member that the scanners cannot rely on a near-zero best-so-far,
/// the regime interactive exploration actually operates in.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "onex/baseline/brute_force.h"
#include "onex/baseline/ucr_suite.h"
#include "onex/core/query_processor.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"

namespace {

struct Workload {
  std::shared_ptr<const onex::Dataset> data;
  std::vector<std::vector<double>> queries;
};

Workload MakeWorkload(const char* kind, std::size_t n, std::size_t len,
                      std::size_t qlen, std::uint64_t seed) {
  onex::Dataset raw;
  if (std::string(kind) == "walk") {
    onex::gen::RandomWalkOptions opt;
    opt.num_series = n;
    opt.length = len;
    opt.seed = seed;
    raw = onex::gen::MakeRandomWalks(opt);
  } else {
    onex::gen::SineFamilyOptions opt;
    opt.num_series = n;
    opt.length = len;
    opt.num_shapes = 6;
    opt.seed = seed;
    raw = onex::gen::MakeSineFamilies(opt);
  }
  auto norm = onex::Normalize(raw, onex::NormalizationKind::kMinMaxDataset);
  Workload w;
  w.data = std::make_shared<const onex::Dataset>(std::move(norm).value());
  onex::Rng rng(seed + 99);
  for (int q = 0; q < 8; ++q) {
    const std::size_t series = rng.UniformIndex(w.data->size());
    const std::size_t start =
        rng.UniformIndex((*w.data)[series].length() - qlen + 1);
    const std::span<const double> vals = (*w.data)[series].Slice(start, qlen);
    std::vector<double> query(vals.begin(), vals.end());
    for (double& v : query) v += rng.Gaussian(0.0, 0.12);
    w.queries.push_back(std::move(query));
  }
  return w;
}

}  // namespace

int main() {
  using onex::bench::Fmt;
  using onex::bench::FmtZu;

  onex::bench::Banner(
      "E2 query speedup", "headline claim vs [6] (UCR Suite)",
      "'several times faster than the fastest known method' — same best-match "
      "workload, identical search space, per-query latency");

  const std::size_t kMinLen = 8, kMaxLen = 32, kStep = 4, kQlen = 24;
  onex::ScanScope scope;
  scope.min_length = kMinLen;
  scope.max_length = kMaxLen;
  scope.length_step = kStep;

  onex::bench::Table table({"dataset", "subseq", "groups", "onex_ms",
                            "ucr_ms", "brute_ms", "vs_ucr", "vs_brute",
                            "onex_vs_exact"});

  for (const auto& [name, kind, n, len, seed] :
       {std::tuple{"sine N=50 L=64", "sine", 50u, 64u, 1u},
        std::tuple{"sine N=100 L=64", "sine", 100u, 64u, 2u},
        std::tuple{"sine N=200 L=64", "sine", 200u, 64u, 3u},
        std::tuple{"sine N=100 L=128", "sine", 100u, 128u, 5u},
        std::tuple{"walk N=100 L=64", "walk", 100u, 64u, 4u}}) {
    const Workload w = MakeWorkload(kind, n, len, kQlen, seed);

    onex::BaseBuildOptions bopt;
    bopt.st = 0.25;
    bopt.min_length = kMinLen;
    bopt.max_length = kMaxLen;
    bopt.length_step = kStep;
    auto base = onex::OnexBase::Build(w.data, bopt);
    if (!base.ok()) return 1;
    onex::QueryProcessor qp(&*base);

    double onex_ms = 0.0, ucr_ms = 0.0, brute_ms = 0.0;
    double quality = 0.0;
    for (const std::vector<double>& q : w.queries) {
      double onex_dist = 0.0, exact_dist = 0.0;
      onex::QueryOptions qo;
      qo.compute_path = false;
      onex_ms += onex::bench::MedianMs(
          [&] { onex_dist = qp.BestMatchQuery(q, qo)->normalized_dtw; }, 3);
      onex::UcrSearchOptions uopt;
      uopt.scope = scope;
      ucr_ms += onex::bench::MedianMs(
          [&] {
            exact_dist = onex::UcrBestMatch(*w.data, q, uopt)->normalized;
          },
          3);
      brute_ms += onex::bench::MedianMs(
          [&] {
            (void)*onex::BruteForceBestMatch(*w.data, q,
                                             onex::ScanDistance::kDtw, scope);
          },
          3);
      quality += exact_dist > 1e-12 ? onex_dist / exact_dist : 1.0;
    }
    const double nq = static_cast<double>(w.queries.size());
    table.AddRow({name, FmtZu(base->TotalMembers()),
                  FmtZu(base->TotalGroups()), Fmt("%.2f", onex_ms / nq),
                  Fmt("%.2f", ucr_ms / nq), Fmt("%.2f", brute_ms / nq),
                  Fmt("%.1fx", ucr_ms / onex_ms),
                  Fmt("%.1fx", brute_ms / onex_ms),
                  Fmt("%.2f", quality / nq)});
  }
  table.Print();
  std::printf(
      "\nshape check: ONEX examines groups (<< subseq), so onex_ms beats "
      "ucr_ms by a multiple and brute force by orders of magnitude — the "
      "paper's 'several times faster' — while onex_vs_exact stays near 1 "
      "(answers remain near-optimal).\n");
  return 0;
}
