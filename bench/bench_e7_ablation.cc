/// E7 — §3.3 ablation: "several optimization strategies ranging from
/// indexing of time series using bounding envelopes to early pruning of
/// unpromising candidates". Each pruning stage is toggled; centroid policies
/// (DESIGN.md §5) are compared on build cost and answer quality.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "onex/baseline/brute_force.h"
#include "onex/core/query_processor.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"

namespace {

std::shared_ptr<const onex::Dataset> MakeData(std::uint64_t seed) {
  onex::gen::SineFamilyOptions opt;
  opt.num_series = 24;
  opt.length = 48;
  opt.num_shapes = 6;
  opt.seed = seed;
  auto norm = onex::Normalize(onex::gen::MakeSineFamilies(opt),
                              onex::NormalizationKind::kMinMaxDataset);
  return std::make_shared<const onex::Dataset>(std::move(norm).value());
}

std::vector<std::vector<double>> MakeQueries(const onex::Dataset& ds,
                                             std::size_t qlen, int count,
                                             std::uint64_t seed) {
  onex::Rng rng(seed);
  std::vector<std::vector<double>> out;
  for (int i = 0; i < count; ++i) {
    const std::size_t series = rng.UniformIndex(ds.size());
    const std::size_t start = rng.UniformIndex(ds[series].length() - qlen + 1);
    const std::span<const double> vals = ds[series].Slice(start, qlen);
    std::vector<double> q(vals.begin(), vals.end());
    for (double& v : q) v += rng.Uniform(-0.02, 0.02);
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace

int main() {
  using onex::bench::Fmt;
  using onex::bench::FmtZu;

  onex::bench::Banner(
      "E7 ablation", "§3.3 optimization strategies",
      "envelope lower bounds and early abandoning each cut DTW work without "
      "changing answers; centroid policies trade build cost for invariant "
      "tightness");

  auto data = MakeData(11);
  onex::BaseBuildOptions bopt;
  bopt.st = 0.15;
  bopt.min_length = 8;
  bopt.max_length = 24;
  bopt.length_step = 4;
  auto base = onex::OnexBase::Build(data, bopt);
  if (!base.ok()) return 1;
  onex::QueryProcessor qp(&*base);
  const auto queries = MakeQueries(*data, 16, 8, 3);

  std::printf("\n-- pruning cascade ablation (%zu groups, 8 queries) --\n",
              base->TotalGroups());
  {
    onex::bench::Table table({"configuration", "median_ms", "rep_dtw_evals",
                              "member_dtw_evals", "answer_delta"});
    struct Config {
      const char* name;
      bool lb, ea;
    };
    double reference = -1.0;
    for (const Config& cfg :
         {Config{"no pruning", false, false},
          Config{"lower bounds only", true, false},
          Config{"early abandon only", false, true},
          Config{"full cascade (ONEX)", true, true}}) {
      onex::QueryOptions qo;
      qo.use_lower_bounds = cfg.lb;
      qo.use_early_abandon = cfg.ea;
      qo.compute_path = false;
      onex::QueryStats stats;
      double answer_sum = 0.0;
      const double ms = onex::bench::MedianMs(
          [&] {
            stats = onex::QueryStats();
            answer_sum = 0.0;
            for (const auto& q : queries) {
              answer_sum += qp.BestMatchQuery(q, qo, &stats)->normalized_dtw;
            }
          },
          3);
      if (reference < 0.0) reference = answer_sum;
      table.AddRow({cfg.name, Fmt("%.2f", ms),
                    FmtZu(stats.rep_dtw_evaluations),
                    FmtZu(stats.member_dtw_evaluations),
                    Fmt("%.2e", std::abs(answer_sum - reference))});
    }
    table.Print();
  }

  std::printf("\n-- centroid policy ablation --\n");
  {
    onex::bench::Table table({"policy", "build_ms", "groups", "repaired",
                              "mean_rel_err_vs_exact"});
    onex::ScanScope scope;
    scope.min_length = bopt.min_length;
    scope.max_length = bopt.max_length;
    scope.length_step = bopt.length_step;
    for (const onex::CentroidPolicy policy :
         {onex::CentroidPolicy::kFixedLeader,
          onex::CentroidPolicy::kRunningMean,
          onex::CentroidPolicy::kRunningMeanRepair}) {
      onex::BaseBuildOptions pb = bopt;
      pb.centroid_policy = policy;
      auto b = onex::OnexBase::Build(data, pb);
      if (!b.ok()) return 1;
      onex::QueryProcessor pqp(&*b);
      double rel_err = 0.0;
      int counted = 0;
      for (const auto& q : queries) {
        const auto ans = pqp.BestMatchQuery(q);
        const auto exact = onex::BruteForceBestMatch(
            *data, q, onex::ScanDistance::kDtw, scope);
        if (!ans.ok() || !exact.ok()) return 1;
        if (exact->normalized > 1e-12) {
          rel_err += (ans->normalized_dtw - exact->normalized) /
                     exact->normalized;
          ++counted;
        }
      }
      table.AddRow({onex::CentroidPolicyToString(policy),
                    Fmt("%.1f", b->stats().build_seconds * 1e3),
                    FmtZu(b->TotalGroups()),
                    FmtZu(b->stats().repaired_members),
                    Fmt("%.4f", counted ? rel_err / counted : 0.0)});
    }
    table.Print();
  }
  std::printf(
      "\nshape check: every configuration returns the same answers "
      "(answer_delta ~ 0); the full cascade does the least DTW work; the "
      "repair policy pays a small build premium to restore the exact ST/2 "
      "invariant.\n");
  return 0;
}
