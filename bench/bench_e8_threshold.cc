/// E8 — §3.3 threshold recommendations: "the similarity in growth rate
/// percentages may require very small thresholds, whereas similarity between
/// unemployment figures ... uses higher thresholds". The advisor's
/// percentile thresholds are shown for both raw domains, then one
/// recommended (normalized) ST is applied to both bases.
#include "bench_util.h"

#include <cstdio>

#include "onex/engine/engine.h"
#include "onex/gen/economic_panel.h"

int main() {
  using onex::bench::Fmt;
  using onex::bench::FmtZu;

  onex::bench::Banner(
      "E8 threshold recommendation", "§3.3 'Threshold recommendations'",
      "data-driven ST selection bridges domains whose raw scales differ by "
      "three orders of magnitude");

  onex::Engine engine;
  onex::gen::EconomicPanelOptions panel;
  panel.indicator = onex::gen::Indicator::kGrowthRate;
  engine.LoadDataset("growth", onex::gen::MakeEconomicPanel(panel));
  panel.indicator = onex::gen::Indicator::kUnemployment;
  engine.LoadDataset("unemployment", onex::gen::MakeEconomicPanel(panel));

  onex::ThresholdAdvisorOptions advisor;
  advisor.sample_pairs = 1500;
  advisor.percentiles = {1.0, 5.0, 10.0, 25.0};

  std::printf("\n-- raw domain units --\n");
  {
    onex::bench::Table table(
        {"dataset", "p1_st", "p5_st", "p10_st", "p25_st", "median_pair_dist"});
    for (const char* name : {"growth", "unemployment"}) {
      const auto report = engine.RecommendThresholds(name, advisor);
      if (!report.ok()) return 1;
      table.AddRow({name, Fmt("%.4g", report->recommendations[0].st),
                    Fmt("%.4g", report->recommendations[1].st),
                    Fmt("%.4g", report->recommendations[2].st),
                    Fmt("%.4g", report->recommendations[3].st),
                    Fmt("%.4g", report->median_distance)});
    }
    table.Print();
  }

  // Normalize (Prepare) both, re-run the advisor, and apply its p5
  // recommendation to each base.
  onex::BaseBuildOptions build;
  build.st = 0.2;  // placeholder; replaced by the recommendation below
  build.min_length = 6;
  build.max_length = 12;
  if (!engine.Prepare("growth", build).ok()) return 1;
  if (!engine.Prepare("unemployment", build).ok()) return 1;

  std::printf("\n-- normalized space: one ST fits both domains --\n");
  {
    onex::bench::Table table({"dataset", "recommended_p5_st", "groups_at_p5",
                              "subsequences", "compaction"});
    for (const char* name : {"growth", "unemployment"}) {
      const auto report = engine.RecommendThresholds(name, advisor);
      if (!report.ok()) return 1;
      const double st = report->recommendations[1].st;  // p5
      onex::BaseBuildOptions rebuilt = build;
      rebuilt.st = st;
      if (!engine.Prepare(name, rebuilt).ok()) return 1;
      const auto prepared = engine.Get(name);
      table.AddRow({name, Fmt("%.4f", st),
                    FmtZu((*prepared)->base->TotalGroups()),
                    FmtZu((*prepared)->base->TotalMembers()),
                    Fmt("%.4f", (*prepared)->base->stats().CompactionRatio())});
    }
    table.Print();
  }
  std::printf(
      "\nshape check: raw thresholds differ by ~1000x between domains "
      "(percent vs head-count); after ONEX normalization the recommended "
      "thresholds land on the same scale and yield comparable compaction — "
      "the paper's data-driven parameter story.\n");
  return 0;
}
