/// E9 — distance-kernel microbenchmarks backing E2: the cost hierarchy the
/// ONEX pruning cascade exploits (LB_Kim << LB_Keogh << banded DTW << full
/// DTW, with ED as the cheap grouping workhorse). google-benchmark binary.
#include <benchmark/benchmark.h>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "onex/common/random.h"
#include "onex/distance/dtw.h"
#include "onex/distance/envelope.h"
#include "onex/distance/euclidean.h"
#include "onex/distance/kernels.h"

namespace {

std::vector<double> MakeSeries(std::size_t n, std::uint64_t seed) {
  onex::Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += rng.Gaussian(0.0, 0.1);
    out.push_back(v);
  }
  return out;
}

void BM_Euclidean(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = MakeSeries(n, 1), b = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(onex::Euclidean(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Euclidean)->Range(32, 1024)->Complexity(benchmark::oN);

void BM_EuclideanEarlyAbandon(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = MakeSeries(n, 1), b = MakeSeries(n, 2);
  // A tight cutoff: abandons quickly, the common case during grouping.
  const double cutoff_sq = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        onex::SquaredEuclideanEarlyAbandon(a, b, cutoff_sq));
  }
}
BENCHMARK(BM_EuclideanEarlyAbandon)->Range(32, 1024);

void BM_DtwFull(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = MakeSeries(n, 1), b = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(onex::DtwDistance(a, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DtwFull)->Range(32, 512)->Complexity(benchmark::oNSquared);

void BM_DtwBanded(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = MakeSeries(n, 1), b = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(onex::DtwDistance(a, b, 8));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DtwBanded)->Range(32, 1024)->Complexity(benchmark::oN);

void BM_DtwEarlyAbandon(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = MakeSeries(n, 1), b = MakeSeries(n, 2);
  const double cutoff = 0.05;  // tight best-so-far: abandons early
  for (auto _ : state) {
    benchmark::DoNotOptimize(onex::DtwDistanceEarlyAbandon(a, b, cutoff));
  }
}
BENCHMARK(BM_DtwEarlyAbandon)->Range(32, 512);

void BM_DtwWithPath(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = MakeSeries(n, 1), b = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(onex::DtwWithPath(a, b).distance);
  }
}
BENCHMARK(BM_DtwWithPath)->Range(32, 256);

void BM_LbKim(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = MakeSeries(n, 1), b = MakeSeries(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(onex::LbKim(a, b));
  }
}
BENCHMARK(BM_LbKim)->Range(32, 1024);

void BM_LbKeogh(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = MakeSeries(n, 1), b = MakeSeries(n, 2);
  const onex::Envelope env = onex::ComputeKeoghEnvelope(a, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(onex::LbKeogh(env, b));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LbKeogh)->Range(32, 1024)->Complexity(benchmark::oN);

void BM_ComputeEnvelope(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = MakeSeries(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(onex::ComputeKeoghEnvelope(a, 8).size());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ComputeEnvelope)->Range(32, 1024)->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
