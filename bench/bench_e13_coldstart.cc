/// E13 — tiered-storage cold start (DESIGN.md §17): time-to-first-query
/// when a fleet of prepared datasets comes back after a restart.
///
/// Three serving paths, measured at 16/64/256 datasets:
///
///   resident          the base is hot in RAM — the floor every other row
///                     is compared against.
///   cold (mmap)       restart with the mapped tier on: recovery mmaps each
///                     clean arena checkpoint instead of materializing it,
///                     and the first query pages the base in. Reported as
///                     both the per-fleet recovery time and the
///                     first-query latency on a mapped slot.
///   evicted-rebuild   the pre-arena behavior: the slot's base was stripped
///                     (LRU eviction with the mapped tier off) and the
///                     first query pays a full transparent re-preparation.
///
/// The headline claim scripts/bench.sh records into BENCH_tier.json: first
/// query served off the arena is >= 10x faster than the evicted-rebuild
/// path, because paging in a finished base costs page faults while
/// rebuilding one costs the whole grouping pipeline. The bench also proves
/// the answers identical (bitwise DTW) across all three paths — speed that
/// changed the answer would be a bug, not a result.
///
/// With --json <path>, machine-readable results land in <path>. --smoke
/// shrinks the fleet for CI gating (scripts/check.sh): checkpoint ->
/// restart -> first MATCH served from the arena, answer identical, else
/// exit nonzero.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "onex/engine/engine.h"
#include "onex/json/json.h"
#include "tests/test_util.h"

namespace {

namespace fs = std::filesystem;

struct ScaleResult {
  std::size_t datasets = 0;
  double build_corpus_ms = 0.0;
  double recover_mapped_ms = 0.0;       ///< Restart, mapped tier on.
  double recover_materialize_ms = 0.0;  ///< Restart, mapped tier off.
  double resident_query_ms = 0.0;
  double mapped_first_query_ms = 0.0;
  double rebuild_first_query_ms = 0.0;
  std::size_t mapped_bytes = 0;
  bool mapped_tier_served = false;  ///< Target slot actually tier=mapped.
  bool answers_identical = false;
  double speedup() const {
    return mapped_first_query_ms > 0.0
               ? rebuild_first_query_ms / mapped_first_query_ms
               : 0.0;
  }
};

/// Per-dataset shape. Sized so one dataset's preparation (the grouping
/// pipeline an evicted-rebuild repeats) is real work — the serving-fleet
/// regime the tier exists for — while a 256-dataset corpus still builds in
/// tens of seconds.
constexpr std::size_t kSeriesPerDataset = 8;
constexpr std::size_t kSeriesLength = 384;

onex::BaseBuildOptions BuildOptions() {
  onex::BaseBuildOptions opt;
  opt.st = 0.25;
  opt.min_length = 4;
  opt.max_length = 32;
  return opt;
}

std::string DatasetName(std::size_t i) { return "d" + std::to_string(i); }

onex::QuerySpec TargetQuery() {
  onex::QuerySpec spec;
  spec.series = 0;
  spec.start = 4;
  spec.length = 24;
  return spec;
}

/// %.17g fingerprint of one answer; identical strings == identical bits.
std::string AnswerKey(const onex::MatchResult& m) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%zu.%zu.%zu:%.17g:%.17g",
                m.match.ref.series, m.match.ref.start, m.match.ref.length,
                m.match.dtw, m.match.normalized_dtw);
  return buf;
}

ScaleResult RunScale(std::size_t n, const std::string& root) {
  ScaleResult result;
  result.datasets = n;
  const std::string dir = root + "/fleet_" + std::to_string(n);
  fs::remove_all(dir);
  fs::create_directories(dir);
  onex::DurabilityOptions durability;
  durability.dir = dir;
  durability.checkpoint_every = 0;
  durability.fsync = false;

  // The corpus: n prepared, checkpointed datasets with clean WALs — the
  // state a durable server carries into any restart.
  result.build_corpus_ms = onex::bench::TimeOnceMs([&] {
    onex::Engine builder;
    if (!builder.EnableDurability(durability).ok()) return;
    for (std::size_t i = 0; i < n; ++i) {
      if (!builder
               .LoadDataset(DatasetName(i),
                            onex::testing::SmallDataset(
                                kSeriesPerDataset, kSeriesLength, 1000 + i))
               .ok() ||
          !builder.Prepare(DatasetName(i), BuildOptions()).ok() ||
          !builder.registry().Checkpoint(DatasetName(i)).ok()) {
        return;
      }
    }
  });
  const std::string target = DatasetName(n - 1);
  const onex::QuerySpec spec = TargetQuery();

  // ---- cold (mmap): restart + first query off the arena -----------------
  onex::Engine cold;
  result.recover_mapped_ms = onex::bench::TimeOnceMs(
      [&] { (void)cold.EnableDurability(durability); });
  {
    onex::Result<std::string> tier = cold.registry().Tier(target);
    result.mapped_tier_served = tier.ok() && *tier == "mapped";
  }
  result.mapped_bytes = cold.registry().mapped_bytes();
  std::string mapped_answer;
  result.mapped_first_query_ms = onex::bench::TimeOnceMs([&] {
    onex::Result<onex::MatchResult> m = cold.SimilaritySearch(target, spec);
    if (m.ok()) mapped_answer = AnswerKey(*m);
  });

  // ---- legacy restart + resident floor + evicted-rebuild ----------------
  onex::DatasetRegistryOptions legacy_options;
  legacy_options.mapped_tier = false;
  onex::Engine legacy(legacy_options);
  result.recover_materialize_ms = onex::bench::TimeOnceMs(
      [&] { (void)legacy.EnableDurability(durability); });
  std::string resident_answer;
  {
    onex::Result<onex::MatchResult> warmup =
        legacy.SimilaritySearch(target, spec);
    if (warmup.ok()) resident_answer = AnswerKey(*warmup);
  }
  result.resident_query_ms = onex::bench::MedianMs(
      [&] { (void)legacy.SimilaritySearch(target, spec); });

  // Strip every base (the mapped tier is off, so over-budget slots journal
  // an evict instead of downgrading), then pay the transparent rebuild.
  legacy.registry().SetPreparedBudget(1);
  legacy.registry().SetPreparedBudget(0);
  std::string rebuilt_answer;
  result.rebuild_first_query_ms = onex::bench::TimeOnceMs([&] {
    onex::Result<onex::MatchResult> m = legacy.SimilaritySearch(target, spec);
    if (m.ok()) rebuilt_answer = AnswerKey(*m);
  });

  result.answers_identical = !mapped_answer.empty() &&
                             mapped_answer == resident_answer &&
                             mapped_answer == rebuilt_answer;
  fs::remove_all(dir);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using onex::bench::Fmt;
  using onex::bench::FmtZu;

  std::string json_path;
  bool smoke = false;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--json" && a + 1 < argc) {
      json_path = argv[a + 1];
      ++a;
    } else if (std::string(argv[a]) == "--smoke") {
      smoke = true;
    }
  }

  onex::bench::Banner(
      "E13 tiered-storage cold start", "thousands of datasets on one node",
      "time-to-first-query after restart: mmap'd arena page-in vs "
      "evicted-rebuild vs resident, at 16/64/256 datasets");
  std::printf("mode: %s\n\n", smoke ? "smoke" : "full");

  const std::vector<std::size_t> scales =
      smoke ? std::vector<std::size_t>{4, 8}
            : std::vector<std::size_t>{16, 64, 256};
  const std::string root = fs::temp_directory_path().string() + "/onex_e13";
  fs::remove_all(root);
  fs::create_directories(root);

  std::vector<ScaleResult> results;
  for (const std::size_t n : scales) {
    std::printf("fleet of %zu datasets...\n", n);
    results.push_back(RunScale(n, root));
  }
  fs::remove_all(root);

  onex::bench::Table table({"datasets", "recover_mmap_ms", "recover_mat_ms",
                            "resident_ms", "mapped_first_ms",
                            "rebuild_first_ms", "speedup", "identical"});
  for (const ScaleResult& r : results) {
    table.AddRow({FmtZu(r.datasets), Fmt("%.1f", r.recover_mapped_ms),
                  Fmt("%.1f", r.recover_materialize_ms),
                  Fmt("%.3f", r.resident_query_ms),
                  Fmt("%.3f", r.mapped_first_query_ms),
                  Fmt("%.1f", r.rebuild_first_query_ms),
                  Fmt("%.1fx", r.speedup()),
                  r.answers_identical ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "\nReading the table: recover_mmap is the whole-fleet restart with the "
      "mapped tier (mmap + checksum walk, no materialization); recover_mat "
      "is the same restart materializing every base. mapped_first is the "
      "first MATCH on a mapped slot (page-in + query), rebuild_first the "
      "same MATCH after a strip-eviction (full re-preparation + query). "
      "The identical column is the point of the differential battery: all "
      "three paths must serve the same bits.\n");

  if (!json_path.empty()) {
    onex::json::Value doc = onex::json::Value::MakeObject();
    doc.Set("bench", "e13_coldstart");
    doc.Set("smoke", smoke);
    onex::json::Value rows = onex::json::Value::MakeArray();
    for (const ScaleResult& r : results) {
      onex::json::Value row = onex::json::Value::MakeObject();
      row.Set("datasets", r.datasets);
      row.Set("build_corpus_ms", r.build_corpus_ms);
      row.Set("recover_mapped_ms", r.recover_mapped_ms);
      row.Set("recover_materialize_ms", r.recover_materialize_ms);
      row.Set("resident_query_ms", r.resident_query_ms);
      row.Set("mapped_first_query_ms", r.mapped_first_query_ms);
      row.Set("rebuild_first_query_ms", r.rebuild_first_query_ms);
      row.Set("mapped_bytes", r.mapped_bytes);
      row.Set("mapped_tier_served", r.mapped_tier_served);
      row.Set("answers_identical", r.answers_identical);
      row.Set("speedup_mapped_vs_rebuild", r.speedup());
      row.Set("target_10x_met", r.speedup() >= 10.0);
      rows.Append(std::move(row));
    }
    doc.Set("scales", std::move(rows));
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << doc.Dump() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Smoke gates CI on correctness, not timing (CI boxes are too noisy to
  // assert a ratio): every fleet must restart into the mapped tier and
  // every path must serve identical answers.
  if (smoke) {
    for (const ScaleResult& r : results) {
      if (!r.mapped_tier_served) {
        std::fprintf(stderr,
                     "FAIL: %zu-dataset restart did not serve from arena\n",
                     r.datasets);
        return 1;
      }
      if (!r.answers_identical) {
        std::fprintf(stderr,
                     "FAIL: %zu-dataset fleet answers diverged across "
                     "tiers\n",
                     r.datasets);
        return 1;
      }
    }
    std::printf("smoke: OK\n");
  }
  return 0;
}
