#ifndef ONEX_BENCH_BENCH_UTIL_H_
#define ONEX_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace onex::bench {

/// Milliseconds elapsed running fn once.
inline double TimeOnceMs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Median of `reps` timed runs (the statistic the tables report; robust to
/// scheduler noise).
inline double MedianMs(const std::function<void()>& fn, int reps = 5) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) times.push_back(TimeOnceMs(fn));
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Fixed-width console table, printed paper-style:
///
///   Table header
///   ------------
///   col1        col2   ...
///   value       value  ...
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]),
                    c < cells.size() ? cells[c].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

inline std::string FmtZu(std::size_t v) { return std::to_string(v); }

/// Experiment banner: ties console output back to DESIGN.md's index.
inline void Banner(const char* experiment, const char* paper_artifact,
                   const char* claim) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", experiment, paper_artifact);
  std::printf("paper: %s\n", claim);
  std::printf("==========================================================\n");
}

}  // namespace onex::bench

#endif  // ONEX_BENCH_BENCH_UTIL_H_
