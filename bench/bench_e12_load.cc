/// E12 — the serving path under load (DESIGN.md §15): the epoll reactor vs
/// the legacy thread-per-connection server. Three claims, measured:
///
///   1. Connection scale: ten thousand concurrent idle connections cost the
///      reactor file descriptors, not threads — and the serving path stays
///      responsive underneath them.
///   2. Pipelined throughput: 64 clients streaming requests through the
///      ONEXB binary frame with a 64-deep pipeline sustain >= 5x the
///      request rate of the same clients doing one blocking text
///      round-trip at a time against the legacy server. The 5x verdict is
///      scored on multicore hosts only (one reactor thread vs 64 server
///      threads needs real cores); single-core runs record the raw ratio
///      and null the verdict, bench_e2's convention.
///   3. Dialect equivalence: a session replayed over text and over binary
///      frames produces byte-identical JSON bodies.
///
/// The idle-connection fleet lives in a forked child process: the host caps
/// file descriptors per process, and each held connection costs one fd on
/// each side of the loopback.
///
/// With --json <path>, machine-readable results land in <path> (the repo's
/// BENCH_net.json trajectory file; see scripts/bench.sh). --smoke shrinks
/// the fleet and request counts for CI gating (scripts/check.sh).
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "onex/engine/engine.h"
#include "onex/json/json.h"
#include "onex/net/client.h"
#include "onex/net/reactor.h"
#include "onex/net/server.h"
#include "onex/net/socket.h"

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Strips wall-clock fields so two executions of one command compare equal.
void ScrubVolatile(onex::json::Value* v) {
  if (v->is_object()) {
    v->mutable_object().erase("elapsed_ms");
    v->mutable_object().erase("build_seconds");
    v->mutable_object().erase("uptime_s");
    for (auto& entry : v->mutable_object()) ScrubVolatile(&entry.second);
  } else if (v->is_array()) {
    for (auto& entry : v->mutable_array()) ScrubVolatile(&entry);
  }
}

/// ---- Claim 1: idle-connection scale ------------------------------------
/// Forks a child that opens `target` connections and holds them open until
/// told to release; the parent watches the reactor's live-connection gauge
/// climb and proves the serving path still answers underneath the fleet.
struct IdleResult {
  std::size_t target = 0;
  std::size_t established = 0;
  double seconds = 0.0;
  bool ping_ok = false;
};

IdleResult RunIdleFleet(onex::net::ReactorServer* server, std::size_t target) {
  IdleResult result;
  result.target = target;

  int ready_pipe[2], go_pipe[2];
  if (pipe(ready_pipe) != 0 || pipe(go_pipe) != 0) return result;
  const auto t0 = std::chrono::steady_clock::now();
  const pid_t child = fork();
  if (child < 0) return result;
  if (child == 0) {
    // Child: connect the fleet, report the count, hold until released.
    close(ready_pipe[0]);
    close(go_pipe[1]);
    std::vector<onex::net::Socket> fleet;
    fleet.reserve(target);
    for (std::size_t i = 0; i < target; ++i) {
      onex::Result<onex::net::Socket> s =
          onex::net::ConnectTcp("127.0.0.1", server->port());
      if (!s.ok()) break;
      fleet.push_back(std::move(*s));
    }
    const std::uint32_t established =
        static_cast<std::uint32_t>(fleet.size());
    (void)!write(ready_pipe[1], &established, sizeof(established));
    char go = 0;
    (void)!read(go_pipe[0], &go, 1);  // blocks until the parent releases
    _exit(0);
  }
  close(ready_pipe[1]);
  close(go_pipe[0]);

  std::uint32_t established = 0;
  if (read(ready_pipe[0], &established, sizeof(established)) !=
      sizeof(established)) {
    established = 0;
  }
  result.established = established;

  // The child has connected; wait for the reactor to have accepted them all.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (server->metrics().connections_live() < established &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  result.seconds = SecondsSince(t0);

  // The fleet is parked; the serving path must still answer promptly.
  onex::Result<onex::net::OnexClient> probe =
      onex::net::OnexClient::Connect("127.0.0.1", server->port());
  if (probe.ok()) {
    onex::Result<onex::json::Value> pong = probe->Call("PING");
    result.ping_ok = pong.ok() && (*pong)["ok"].as_bool();
  }

  const char go = 1;
  (void)!write(go_pipe[1], &go, 1);
  close(go_pipe[1]);
  close(ready_pipe[0]);
  int status = 0;
  waitpid(child, &status, 0);
  return result;
}

/// ---- Claim 2: pipelined throughput -------------------------------------
/// Each client thread issues `per_client` PINGs — the protocol itself, no
/// engine work — so the measurement isolates the serving path. All clients
/// connect (and, for the reactor, negotiate ONEXB) before the clock starts:
/// the measured window is pure request traffic, not thread spawns and
/// connection handshakes.
struct StartGate {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t ready = 0;
  bool go = false;

  void Arrive(std::size_t expected) {
    std::unique_lock<std::mutex> lock(mutex);
    if (++ready == expected) cv.notify_all();
    cv.wait(lock, [&] { return go; });
  }
  void WaitReady(std::size_t expected) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return ready == expected; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mutex);
    go = true;
    cv.notify_all();
  }
};

double LegacyQps(std::uint16_t port, std::size_t clients,
                 std::size_t per_client) {
  StartGate gate;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([port, per_client, clients, &gate] {
      onex::Result<onex::net::OnexClient> client =
          onex::net::OnexClient::Connect("127.0.0.1", port);
      gate.Arrive(clients);
      if (!client.ok()) return;
      for (std::size_t i = 0; i < per_client; ++i) {
        if (!client->Call("PING").ok()) return;  // blocking round-trip
      }
    });
  }
  gate.WaitReady(clients);
  const auto t0 = std::chrono::steady_clock::now();
  gate.Release();
  for (std::thread& t : threads) t.join();
  return static_cast<double>(clients * per_client) / SecondsSince(t0);
}

double ReactorQps(std::uint16_t port, std::size_t clients,
                  std::size_t per_client) {
  StartGate gate;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([port, per_client, clients, &gate] {
      onex::Result<onex::net::OnexClient> client =
          onex::net::OnexClient::Connect("127.0.0.1", port);
      const bool upgraded = client.ok() && client->UpgradeBinary().ok();
      gate.Arrive(clients);
      if (!upgraded) return;
      std::vector<onex::net::WireRequest> burst(per_client);
      for (onex::net::WireRequest& r : burst) r.command = "PING";
      (void)client->SendMany(burst, /*window=*/64);
    });
  }
  gate.WaitReady(clients);
  const auto t0 = std::chrono::steady_clock::now();
  gate.Release();
  for (std::thread& t : threads) t.join();
  return static_cast<double>(clients * per_client) / SecondsSince(t0);
}

/// ---- Claim 3: dialect equivalence --------------------------------------
/// Replays one session over text and over binary frames (separate engines —
/// the script mutates) and demands byte-identical scrubbed bodies.
bool DialectsAgree(std::size_t* commands_checked) {
  const std::vector<std::string> script = {
      "PING",
      "GEN demo sine num=6 len=24 seed=5",
      "PREPARE demo st=0.2 maxlen=12",
      "USE demo",
      "STATS",
      "MATCH q=0:2:8",
      "KNN q=1:0:10 k=3",
      "BATCH q=0:0:8;1:2:8 k=2",
      "NOT_A_COMMAND foo",
      "MATCH q=999:0:8",
      "DATASETS",
  };
  *commands_checked = script.size();

  onex::Engine text_engine, bin_engine;
  onex::net::ReactorServer text_server(&text_engine);
  onex::net::ReactorServer bin_server(&bin_engine);
  if (!text_server.Start(0).ok() || !bin_server.Start(0).ok()) return false;
  onex::Result<onex::net::OnexClient> text_client =
      onex::net::OnexClient::Connect("127.0.0.1", text_server.port());
  onex::Result<onex::net::OnexClient> bin_client =
      onex::net::OnexClient::Connect("127.0.0.1", bin_server.port());
  if (!text_client.ok() || !bin_client.ok()) return false;
  if (!bin_client->UpgradeBinary().ok()) return false;

  bool identical = true;
  for (const std::string& line : script) {
    onex::Result<onex::json::Value> t = text_client->Call(line);
    onex::Result<onex::json::Value> b = bin_client->Call(line);
    if (!t.ok() || !b.ok()) return false;
    ScrubVolatile(&*t);
    ScrubVolatile(&*b);
    if (t->Dump() != b->Dump()) {
      std::fprintf(stderr, "dialect mismatch on '%s':\n  text   %s\n  binary %s\n",
                   line.c_str(), t->Dump().c_str(), b->Dump().c_str());
      identical = false;
    }
  }
  text_server.Stop();
  bin_server.Stop();
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  using onex::bench::Fmt;
  using onex::bench::FmtZu;

  std::string json_path;
  bool smoke = false;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--json" && a + 1 < argc) {
      json_path = argv[a + 1];
      ++a;
    } else if (std::string(argv[a]) == "--smoke") {
      smoke = true;
    }
  }

  onex::bench::Banner(
      "E12 serving path under load", "epoll reactor vs thread-per-connection",
      "10k concurrent connections held on one serving thread; >= 5x "
      "pipelined-binary throughput at 64 clients; text/binary dialect "
      "equivalence");

  const std::size_t hardware_threads =
      std::thread::hardware_concurrency() == 0
          ? 1
          : std::thread::hardware_concurrency();
  const bool single_core = hardware_threads <= 1;
  std::printf("hardware_threads: %zu\n", hardware_threads);
  std::printf("mode: %s\n\n", smoke ? "smoke" : "full");

  const std::size_t idle_target = smoke ? 1000 : 10000;
  const std::size_t clients = smoke ? 8 : 64;
  const std::size_t per_client = smoke ? 100 : 400;

  // ---- idle fleet -------------------------------------------------------
  onex::Engine engine;
  onex::net::ReactorServer reactor(&engine);
  if (!reactor.Start(0).ok()) {
    std::fprintf(stderr, "reactor start failed\n");
    return 1;
  }
  const IdleResult idle = RunIdleFleet(&reactor, idle_target);
  onex::bench::Table idle_table(
      {"target", "established", "seconds", "conns/s", "ping_under_load"});
  idle_table.AddRow({FmtZu(idle.target), FmtZu(idle.established),
                     Fmt("%.2f", idle.seconds),
                     Fmt("%.0f", static_cast<double>(idle.established) /
                                     (idle.seconds > 0 ? idle.seconds : 1)),
                     idle.ping_ok ? "ok" : "FAILED"});
  idle_table.Print();
  const bool idle_ok =
      idle.established >= idle.target && idle.ping_ok;

  // ---- pipelined throughput --------------------------------------------
  onex::Engine legacy_engine;
  onex::net::OnexServer legacy(&legacy_engine);
  if (!legacy.Start(0).ok()) {
    std::fprintf(stderr, "legacy server start failed\n");
    return 1;
  }
  const double legacy_qps = LegacyQps(legacy.port(), clients, per_client);
  legacy.Stop();
  const double reactor_qps = ReactorQps(reactor.port(), clients, per_client);
  const double speedup = legacy_qps > 0 ? reactor_qps / legacy_qps : 0.0;

  std::printf("\n-- pipelined throughput (%zu clients x %zu PINGs) --\n",
              clients, per_client);
  onex::bench::Table tput_table(
      {"path", "dialect", "pipeline", "qps", "speedup"});
  tput_table.AddRow({"thread-per-connection", "text", "1 (blocking)",
                     Fmt("%.0f", legacy_qps), "1.0x"});
  tput_table.AddRow({"epoll reactor", "binary", "64",
                     Fmt("%.0f", reactor_qps), Fmt("%.1fx", speedup)});
  tput_table.Print();

  // Latency percentiles the reactor recorded while under the burst.
  const onex::json::Value metrics = reactor.metrics().ToJson();
  const onex::json::Value& ping_stats = metrics["verbs"]["PING"];
  if (ping_stats.is_object()) {
    std::printf("reactor PING latency: p50=%.3fms p95=%.3fms p99=%.3fms\n",
                ping_stats["p50_ms"].as_number(),
                ping_stats["p95_ms"].as_number(),
                ping_stats["p99_ms"].as_number());
  }

  // ---- dialect equivalence ---------------------------------------------
  std::size_t commands_checked = 0;
  const bool identical = DialectsAgree(&commands_checked);
  std::printf("\ndialect equivalence: %zu commands, %s\n", commands_checked,
              identical ? "byte-identical" : "MISMATCH");

  reactor.Stop();

  std::printf(
      "\nshape check: established must reach the target with ping_under_load "
      "ok (connections cost fds, not threads), equivalence must say "
      "byte-identical, and the reactor row must beat the legacy row — "
      "pipelining amortizes round-trips and syscalls. The >=5x target is "
      "scored on multicore hosts only%s: one reactor thread vs 64 server "
      "threads needs real cores to be a fair fight.\n",
      single_core ? " (this host is single-core, verdict nulled)" : "");

  if (!json_path.empty()) {
    onex::json::Value root = onex::json::Value::MakeObject();
    root.Set("bench", "e12_load");
    root.Set("hardware_threads", hardware_threads);
    root.Set("thread_speedups_valid", !single_core);
    root.Set("smoke", smoke);
    onex::json::Value idle_json = onex::json::Value::MakeObject();
    idle_json.Set("target", idle.target);
    idle_json.Set("established", idle.established);
    idle_json.Set("seconds", idle.seconds);
    idle_json.Set("ping_under_load", idle.ping_ok);
    root.Set("idle_connections", std::move(idle_json));
    onex::json::Value tput = onex::json::Value::MakeObject();
    tput.Set("clients", clients);
    tput.Set("requests_per_client", per_client);
    tput.Set("legacy_text_blocking_qps", legacy_qps);
    tput.Set("reactor_binary_pipelined_qps", reactor_qps);
    tput.Set("speedup", speedup);
    // The >=5x target is a thread-scaling claim: it compares one reactor
    // thread against 64 server threads, which is only a fair fight when
    // cores separate them. On a single core the reactor time-slices against
    // every client thread, so the verdict is nulled (bench_e2 convention) —
    // the raw speedup above is still recorded for trajectory.
    if (single_core) {
      tput.Set("target_5x_met", onex::json::Value(nullptr));
    } else {
      tput.Set("target_5x_met", speedup >= 5.0);
    }
    root.Set("pipelined_throughput", std::move(tput));
    onex::json::Value eq = onex::json::Value::MakeObject();
    eq.Set("commands", commands_checked);
    eq.Set("identical", identical);
    root.Set("dialect_equivalence", std::move(eq));
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << root.Dump() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Smoke mode gates CI: connection scale, a live serving path under the
  // fleet, and dialect equivalence are hard requirements. The throughput
  // ratio is reported but not gated — CI machines are too noisy to assert
  // a multiplier.
  if (smoke && (!idle_ok || !identical)) return 1;
  return 0;
}
