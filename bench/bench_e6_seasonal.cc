/// E6 — Fig 4 (Seasonal View): seasonal-similarity mining on household power
/// usage. Planted daily periodicity must be recovered; runtime is reported
/// as the horizon grows.
#include "bench_util.h"

#include <cstddef>
#include <cstdio>
#include <vector>

#include "onex/engine/engine.h"
#include "onex/gen/electricity.h"

int main() {
  using onex::bench::Fmt;
  using onex::bench::FmtZu;

  onex::bench::Banner(
      "E6 seasonal view", "Fig 4 (patterns in the power usage dataset)",
      "repeating patterns within one series are groups restricted to that "
      "series; the household's daily habit appears as a pattern recurring at "
      "24h multiples");

  onex::bench::Table table({"days", "windows", "groups", "prepare_ms",
                            "mine_ms", "top_gap_h", "occurrences",
                            "daily_habit"});

  for (const std::size_t days : {7u, 14u, 28u, 56u}) {
    onex::Engine engine;
    onex::gen::ElectricityOptions gen;
    gen.num_households = 1;
    gen.length = 24 * days;
    gen.noise_stddev = 0.05;
    gen.seed = 7;
    if (!engine.LoadDataset("power", onex::gen::MakeElectricityLoad(gen))
             .ok()) {
      return 1;
    }

    onex::BaseBuildOptions build;
    build.st = 0.12;
    build.min_length = 24;
    build.max_length = 24;
    const double prepare_ms =
        onex::bench::TimeOnceMs([&] { (void)engine.Prepare("power", build); });
    const auto prepared = engine.Get("power");

    onex::SeasonalOptions mine;
    mine.length = 24;
    std::vector<onex::SeasonalPattern> patterns;
    const double mine_ms = onex::bench::MedianMs(
        [&] { patterns = *engine.Seasonal("power", 0, mine); });
    if (patterns.empty()) return 1;
    const onex::SeasonalPattern& top = patterns.front();

    table.AddRow({FmtZu(days), FmtZu((*prepared)->base->TotalMembers()),
                  FmtZu((*prepared)->base->TotalGroups()),
                  Fmt("%.1f", prepare_ms), Fmt("%.2f", mine_ms),
                  FmtZu(top.typical_gap), FmtZu(top.occurrences.size()),
                  top.typical_gap % 24 == 0 ? "yes" : "NO"});
  }
  table.Print();
  std::printf(
      "\nshape check: the dominant pattern's gap is a multiple of 24h at "
      "every horizon (the planted daily habit), occurrence count grows with "
      "the horizon, and mining stays interactive while preparation scales "
      "with data volume.\n");
  return 0;
}
