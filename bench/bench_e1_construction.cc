/// E1 — Fig 1 / "Data Loading into ONEX": offline preprocessing cost and the
/// compaction the ONEX base achieves (groups << subsequences), across
/// dataset cardinality and similarity threshold.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <utility>

#include "bench_util.h"
#include "onex/core/onex_base.h"
#include "onex/gen/generators.h"
#include "onex/ts/normalization.h"

namespace {

std::shared_ptr<const onex::Dataset> MakeData(std::size_t n, std::size_t len,
                                              std::uint64_t seed) {
  onex::gen::RandomWalkOptions opt;
  opt.num_series = n;
  opt.length = len;
  opt.seed = seed;
  auto norm = onex::Normalize(onex::gen::MakeRandomWalks(opt),
                              onex::NormalizationKind::kMinMaxDataset);
  return std::make_shared<const onex::Dataset>(std::move(norm).value());
}

onex::BaseBuildOptions Scope(double st) {
  onex::BaseBuildOptions opt;
  opt.st = st;
  opt.min_length = 8;
  opt.length_step = 4;
  opt.stride = 2;
  return opt;
}

}  // namespace

int main() {
  using onex::bench::Fmt;
  using onex::bench::FmtZu;

  onex::bench::Banner(
      "E1 construction", "Fig 1 + 'Data Loading into ONEX'",
      "preprocessing encodes similarity into a compact base: groups are a "
      "small fraction of the subsequence space, and build cost scales with "
      "data size and tightens with larger ST");

  std::printf("\n-- compaction vs similarity threshold (N=40, L=60) --\n");
  {
    onex::bench::Table table({"ST", "subsequences", "groups", "compaction",
                              "build_ms"});
    auto ds = MakeData(40, 60, 1);
    for (const double st : {0.05, 0.1, 0.2, 0.4}) {
      auto base = onex::OnexBase::Build(ds, Scope(st));
      if (!base.ok()) return 1;
      table.AddRow({Fmt("%.2f", st), FmtZu(base->TotalMembers()),
                    FmtZu(base->TotalGroups()),
                    Fmt("%.4f", base->stats().CompactionRatio()),
                    Fmt("%.1f", base->stats().build_seconds * 1e3)});
    }
    table.Print();
  }

  std::printf("\n-- scaling with cardinality (L=60, ST=0.2) --\n");
  {
    onex::bench::Table table(
        {"series", "subsequences", "groups", "compaction", "build_ms"});
    for (const std::size_t n : {20u, 40u, 80u, 160u}) {
      auto ds = MakeData(n, 60, 2);
      auto base = onex::OnexBase::Build(ds, Scope(0.2));
      if (!base.ok()) return 1;
      table.AddRow({FmtZu(n), FmtZu(base->TotalMembers()),
                    FmtZu(base->TotalGroups()),
                    Fmt("%.4f", base->stats().CompactionRatio()),
                    Fmt("%.1f", base->stats().build_seconds * 1e3)});
    }
    table.Print();
  }

  std::printf("\n-- scaling with series length (N=40, ST=0.2) --\n");
  {
    onex::bench::Table table(
        {"length", "subsequences", "groups", "compaction", "build_ms"});
    for (const std::size_t len : {30u, 60u, 120u}) {
      auto ds = MakeData(40, len, 3);
      auto base = onex::OnexBase::Build(ds, Scope(0.2));
      if (!base.ok()) return 1;
      table.AddRow({FmtZu(len), FmtZu(base->TotalMembers()),
                    FmtZu(base->TotalGroups()),
                    Fmt("%.4f", base->stats().CompactionRatio()),
                    Fmt("%.1f", base->stats().build_seconds * 1e3)});
    }
    table.Print();
  }

  std::printf(
      "\nshape check: compaction < 1 everywhere, improves (shrinks) as ST "
      "grows, and build time grows with N and L — the paper's offline cost "
      "profile.\n");
  return 0;
}
