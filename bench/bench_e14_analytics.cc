/// E14 — analytics on the group structure (DESIGN.md §18): the similarity
/// groups built for MATCH/KNN also serve ANOMALY / MOTIF / FORECAST, and
/// the index pays for itself — each accelerated path is timed against a
/// naive scan that ignores the groups while returning the *same* answers
/// (core_analytics_diff_test holds them bit-for-bit equal). CHANGEPOINT is
/// the exception: its fast axis is the max_run truncation of the BOCPD
/// run-length posterior, whose cost is the error bound the report carries.
///
/// With --json <path>, machine-readable results land in <path> (the repo's
/// BENCH_analytics.json trajectory file; see scripts/bench.sh).
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "onex/common/random.h"
#include "onex/core/analytics.h"
#include "onex/core/onex_base.h"
#include "onex/distance/euclidean.h"
#include "onex/gen/generators.h"
#include "onex/json/json.h"
#include "onex/ts/normalization.h"

namespace {

std::shared_ptr<const onex::Dataset> MakeData(std::size_t n,
                                              std::uint64_t seed) {
  onex::gen::SineFamilyOptions opt;
  opt.num_series = n;
  opt.length = 96;
  opt.seed = seed;
  auto norm = onex::Normalize(onex::gen::MakeSineFamilies(opt),
                              onex::NormalizationKind::kMinMaxDataset);
  return std::make_shared<const onex::Dataset>(std::move(norm).value());
}

}  // namespace

int main(int argc, char** argv) {
  using onex::bench::Fmt;
  using onex::bench::FmtZu;

  std::string json_path;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--json" && a + 1 < argc) {
      json_path = argv[a + 1];
      ++a;
    }
  }

  onex::bench::Banner(
      "E14 analytics (extension)", "new workloads on the group structure",
      "centroids, radii and group populations answer anomaly, motif/discord "
      "and forecast queries exactly, faster than scans that ignore the "
      "index; BOCPD truncation trades bounded error for linear time");

  const std::size_t hardware_threads =
      std::thread::hardware_concurrency() == 0
          ? 1
          : std::thread::hardware_concurrency();
  const bool single_core = hardware_threads <= 1;
  std::printf("hardware_threads: %zu%s\n", hardware_threads,
              single_core
                  ? "  (single core: concurrency speedups reported as n/a)"
                  : "");

  auto data = MakeData(48, 3);
  onex::BaseBuildOptions bopt;
  bopt.st = 0.15;
  bopt.min_length = 8;
  bopt.max_length = 64;
  bopt.length_step = 4;
  auto base = onex::OnexBase::Build(data, bopt);
  const onex::Dataset& ds = base->dataset();

  std::size_t total_members = 0;
  for (const onex::LengthClass& cls : base->length_classes()) {
    total_members += cls.total_members;
  }
  std::printf("base: %zu series, %zu length classes, %zu groups, %zu "
              "members\n",
              ds.size(), base->length_classes().size(), base->TotalGroups(),
              total_members);

  onex::json::Value record = onex::json::Value::MakeObject();
  record.Set("bench", "e14_analytics");
  record.Set("hardware_threads", hardware_threads);
  record.Set("members", total_members);

  std::printf("\n-- ANOMALY: EA-filtered centroid scan vs exhaustive --\n");
  {
    onex::AnomalyOptions aopt;
    aopt.top_k = 10;
    onex::AnomalyReport report;
    const double fast_ms = onex::bench::MedianMs(
        [&] { report = *onex::DetectAnomalies(*base, aopt); }, 5);

    // The oracle's shape: every member against every centroid of its
    // class, full distance every time, no abandonment.
    double naive_checksum = 0.0;
    const double naive_ms = onex::bench::MedianMs(
        [&] {
          naive_checksum = 0.0;
          for (const onex::LengthClass& cls : base->length_classes()) {
            for (const onex::SimilarityGroup& g : cls.groups) {
              for (const onex::SubseqRef& m : g.members()) {
                const auto v = m.Resolve(ds);
                double best = std::numeric_limits<double>::infinity();
                for (const onex::SimilarityGroup& other : cls.groups) {
                  best = std::min(best, onex::NormalizedEuclidean(
                                            other.centroid_span(), v));
                }
                naive_checksum += best;
              }
            }
          }
        },
        3);

    const double abandoned_frac =
        report.distance_evals + report.evals_abandoned == 0
            ? 0.0
            : static_cast<double>(report.evals_abandoned) /
                  static_cast<double>(report.distance_evals +
                                      report.evals_abandoned);
    onex::bench::Table table(
        {"path", "ms", "speedup", "abandoned", "outliers"});
    table.AddRow({"exhaustive", Fmt("%.1f", naive_ms), "1.00x", "-",
                  FmtZu(report.outliers)});
    table.AddRow({"group index", Fmt("%.1f", fast_ms),
                  Fmt("%.2fx", naive_ms / fast_ms),
                  Fmt("%.1f%%", 100.0 * abandoned_frac),
                  FmtZu(report.outliers)});
    table.Print();
    (void)naive_checksum;

    record.Set("anomaly_fast_ms", fast_ms);
    record.Set("anomaly_naive_ms", naive_ms);
    record.Set("anomaly_speedup", naive_ms / fast_ms);
    record.Set("anomaly_abandoned_frac", abandoned_frac);
    record.Set("anomaly_outliers", report.outliers);
  }

  std::printf("\n-- CHANGEPOINT: BOCPD truncation vs exact recursion --\n");
  {
    // A level-shifting stream long enough that the exact O(n^2) recursion
    // hurts: 4096 points, a regime change every 512.
    std::vector<double> stream;
    stream.reserve(4096);
    onex::Rng rng(17);
    double level = 0.0;
    for (std::size_t i = 0; i < 4096; ++i) {
      if (i % 512 == 0) level = rng.Uniform(-2.0, 2.0);
      stream.push_back(level + rng.Gaussian(0.0, 0.25));
    }

    onex::bench::Table table(
        {"max_run", "ms", "speedup", "error_bound", "changepoints"});
    double exact_ms = 0.0;
    double truncated_ms = 0.0;
    double truncated_bound = 0.0;
    for (const std::size_t max_run : {stream.size() + 2, std::size_t{256},
                                      std::size_t{64}}) {
      onex::ChangepointOptions copt;
      copt.max_run = max_run;
      onex::ChangepointReport report;
      const double ms = onex::bench::MedianMs(
          [&] { report = *onex::DetectChangepoints(stream, copt); }, 3);
      const bool exact = report.mass_dropped == 0.0;
      if (exact) exact_ms = ms;
      if (max_run == 256) {
        truncated_ms = ms;
        truncated_bound = report.error_bound;
      }
      table.AddRow({exact ? "exact" : FmtZu(max_run), Fmt("%.1f", ms),
                    Fmt("%.2fx", exact_ms / ms),
                    Fmt("%.2e", report.error_bound),
                    FmtZu(report.changepoints.size())});
    }
    table.Print();

    record.Set("changepoint_exact_ms", exact_ms);
    record.Set("changepoint_truncated_ms", truncated_ms);
    record.Set("changepoint_speedup", exact_ms / truncated_ms);
    record.Set("changepoint_error_bound", truncated_bound);
  }

  std::printf("\n-- MOTIF/DISCORD: group-bound pruning vs O(n^2) scan --\n");
  {
    constexpr std::size_t kLength = 32;
    onex::MotifOptions mopt;
    mopt.length = kLength;
    onex::MotifReport report;
    const double fast_ms = onex::bench::MedianMs(
        [&] { report = *onex::FindMotifs(*base, mopt); }, 3);

    // The quadratic oracle: every non-overlapping pair in the class, one
    // full distance each, feeding both the closest pair and per-member
    // nearest neighbors (discords).
    std::vector<onex::SubseqRef> members;
    for (const onex::LengthClass& cls : base->length_classes()) {
      if (cls.length != kLength) continue;
      for (const onex::SimilarityGroup& g : cls.groups) {
        for (const onex::SubseqRef& m : g.members()) members.push_back(m);
      }
    }
    double naive_motif = 0.0;
    const double naive_ms = onex::bench::MedianMs(
        [&] {
          naive_motif = std::numeric_limits<double>::infinity();
          std::vector<double> nn(
              members.size(), std::numeric_limits<double>::infinity());
          for (std::size_t i = 0; i < members.size(); ++i) {
            for (std::size_t j = i + 1; j < members.size(); ++j) {
              if (members[i].Overlaps(members[j])) continue;
              const double d = onex::NormalizedEuclidean(
                  members[i].Resolve(ds), members[j].Resolve(ds));
              naive_motif = std::min(naive_motif, d);
              nn[i] = std::min(nn[i], d);
              nn[j] = std::min(nn[j], d);
            }
          }
        },
        3);

    const std::size_t pair_total =
        report.pairs_evaluated + report.pairs_pruned;
    const double pruned_frac =
        pair_total == 0 ? 0.0
                        : static_cast<double>(report.pairs_pruned) /
                              static_cast<double>(pair_total);
    onex::bench::Table table({"path", "ms", "speedup", "pairs_pruned"});
    table.AddRow({"O(n^2) scan", Fmt("%.1f", naive_ms), "1.00x", "-"});
    table.AddRow({"group bound", Fmt("%.1f", fast_ms),
                  Fmt("%.2fx", naive_ms / fast_ms),
                  Fmt("%.1f%%", 100.0 * pruned_frac)});
    table.Print();
    const double fast_motif = report.classes.empty()
                                  ? std::numeric_limits<double>::infinity()
                                  : report.classes.front().motif_distance;
    if (naive_motif != fast_motif) {
      std::fprintf(stderr, "motif mismatch: naive %.17g vs fast %.17g\n",
                   naive_motif, fast_motif);
      return 1;
    }

    record.Set("motif_members", members.size());
    record.Set("motif_fast_ms", fast_ms);
    record.Set("motif_naive_ms", naive_ms);
    record.Set("motif_speedup", naive_ms / fast_ms);
    record.Set("motif_pruned_frac", pruned_frac);
  }

  std::printf("\n-- FORECAST: group-pruned k-NN vs exhaustive, all %zu "
              "series --\n",
              ds.size());
  {
    onex::ForecastOptions fopt;
    fopt.horizon = 8;
    fopt.k = 3;
    std::vector<onex::ForecastReport> reports(ds.size());
    const double fast_ms = onex::bench::MedianMs(
        [&] {
          for (std::size_t s = 0; s < ds.size(); ++s) {
            reports[s] = *onex::ForecastSeries(*base, s, fopt);
          }
        },
        3);

    // Exhaustive baseline, steered by the resolved tails: every eligible
    // member of the tail's class, full distance, keep the k best.
    const double naive_ms = onex::bench::MedianMs(
        [&] {
          for (std::size_t s = 0; s < ds.size(); ++s) {
            const onex::ForecastReport& rep = reports[s];
            const onex::SubseqRef tail{s, rep.tail_start, rep.tail_length};
            const auto tail_span = tail.Resolve(ds);
            std::vector<std::pair<double, onex::SubseqRef>> best;
            for (const onex::LengthClass& cls : base->length_classes()) {
              if (cls.length != rep.tail_length) continue;
              for (const onex::SimilarityGroup& g : cls.groups) {
                for (const onex::SubseqRef& m : g.members()) {
                  if (m.end() + fopt.horizon > ds[m.series].length() ||
                      m.Overlaps(tail)) {
                    continue;
                  }
                  best.emplace_back(
                      onex::NormalizedEuclidean(tail_span, m.Resolve(ds)),
                      m);
                }
              }
            }
            const std::size_t keep = std::min(fopt.k, best.size());
            std::partial_sort(best.begin(),
                              best.begin() + static_cast<std::ptrdiff_t>(keep),
                              best.end());
            best.resize(keep);
          }
        },
        3);

    std::size_t candidates = 0;
    std::size_t groups_pruned = 0;
    for (const onex::ForecastReport& rep : reports) {
      candidates += rep.candidates;
      groups_pruned += rep.groups_pruned;
    }
    onex::bench::Table table({"path", "ms", "speedup", "groups_pruned"});
    table.AddRow({"exhaustive", Fmt("%.1f", naive_ms), "1.00x", "-"});
    table.AddRow({"group index", Fmt("%.1f", fast_ms),
                  Fmt("%.2fx", naive_ms / fast_ms), FmtZu(groups_pruned)});
    table.Print();

    record.Set("forecast_fast_ms", fast_ms);
    record.Set("forecast_naive_ms", naive_ms);
    record.Set("forecast_speedup", naive_ms / fast_ms);
    record.Set("forecast_candidates", candidates);
  }

  std::printf("\n-- concurrency: 4 ANOMALY scans, serial vs threaded --\n");
  {
    onex::AnomalyOptions aopt;
    aopt.top_k = 10;
    const double serial_ms = onex::bench::TimeOnceMs([&] {
      for (int i = 0; i < 4; ++i) (void)*onex::DetectAnomalies(*base, aopt);
    });
    const double threaded_ms = onex::bench::TimeOnceMs([&] {
      std::vector<std::thread> workers;
      for (int i = 0; i < 4; ++i) {
        workers.emplace_back(
            [&] { (void)*onex::DetectAnomalies(*base, aopt); });
      }
      for (std::thread& w : workers) w.join();
    });
    std::printf("serial %.1f ms, threaded %.1f ms (%.2fx)\n", serial_ms,
                threaded_ms, serial_ms / threaded_ms);
    // On a single core the concurrency ratio is noise, not a speedup;
    // record null so trajectory tooling never charts it as a regression
    // (the bench_e2 convention).
    if (single_core) {
      record.Set("anomaly_concurrent_speedup_4t", onex::json::Value(nullptr));
    } else {
      record.Set("anomaly_concurrent_speedup_4t", serial_ms / threaded_ms);
    }
  }

  std::printf(
      "\nshape check: the group index beats the exhaustive scans it "
      "matches answer-for-answer; truncated BOCPD runs in linear time with "
      "a self-reported error bound; forecast pruning skips most groups via "
      "the centroid lower bound.\n");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << record.Dump() << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
