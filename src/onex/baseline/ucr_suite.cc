#include "onex/baseline/ucr_suite.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

#include "onex/distance/dtw.h"
#include "onex/distance/envelope.h"
#include "onex/distance/euclidean.h"
#include "onex/distance/kernels.h"

namespace onex {

Result<ScanMatch> UcrBestMatch(const Dataset& dataset,
                               std::span<const double> query,
                               const UcrSearchOptions& options,
                               ScanStats* stats) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (query.size() < 2) {
    return Status::InvalidArgument("query must have >= 2 points");
  }
  const ScanScope& scope = options.scope;
  const std::size_t max_len =
      scope.max_length == 0 ? dataset.MaxLength() : scope.max_length;
  if (scope.min_length < 2 || scope.length_step == 0 || scope.stride == 0) {
    return Status::InvalidArgument("invalid scan scope");
  }

  const std::size_t qn = query.size();
  // Query envelope for the equal-length Keogh bound; band must equal the
  // effective window the DTW below will use for (qn, qn).
  const int eq_window =
      options.window < 0 ? -1 : EffectiveWindow(qn, qn, options.window);
  const Envelope query_env = ComputeKeoghEnvelope(query, eq_window);

  ScanMatch best;
  best.normalized = std::numeric_limits<double>::infinity();

  for (std::size_t len = scope.min_length; len <= max_len;
       len += scope.length_step) {
    const double nf = std::sqrt(static_cast<double>(std::max(qn, len)));
    for (std::size_t s = 0; s < dataset.size(); ++s) {
      const TimeSeries& ts = dataset[s];
      if (ts.length() < len) continue;
      for (std::size_t start = 0; start + len <= ts.length();
           start += scope.stride) {
        if (stats != nullptr) ++stats->candidates;
        const std::span<const double> cand = ts.Slice(start, len);
        // Raw-distance pruning horizon for this candidate's length.
        const double cutoff =
            std::isfinite(best.normalized) ? best.normalized * nf : -1.0;
        const bool have_cutoff = cutoff >= 0.0;

        if (options.use_lb_kim && have_cutoff &&
            LbKim(query, cand) >= cutoff) {
          if (stats != nullptr) ++stats->pruned_kim;
          continue;
        }
        if (options.use_lb_keogh && have_cutoff && len == qn &&
            LbKeogh(query_env, cand, cutoff) >= cutoff) {
          if (stats != nullptr) ++stats->pruned_keogh;
          continue;
        }
        if (options.use_lb_keogh_reversed && have_cutoff && len == qn) {
          const Envelope cand_env = ComputeKeoghEnvelope(cand, eq_window);
          if (LbKeogh(cand_env, query, cutoff) >= cutoff) {
            if (stats != nullptr) ++stats->pruned_keogh_reversed;
            continue;
          }
        }

        const double raw = DtwDistanceEarlyAbandon(
            query, cand, options.use_early_abandon ? cutoff : -1.0,
            options.window);
        if (std::isinf(raw)) {
          if (stats != nullptr) ++stats->abandoned_dtw;
          continue;
        }
        if (stats != nullptr) ++stats->full_evaluations;
        const double norm = raw / nf;
        if (norm < best.normalized) {
          best.ref = {s, start, len};
          best.distance = raw;
          best.normalized = norm;
        }
      }
    }
  }
  if (!std::isfinite(best.normalized)) {
    return Status::NotFound("no subsequence of admissible length in scope");
  }
  return best;
}

}  // namespace onex
