#include "onex/baseline/brute_force.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

#include "onex/common/string_utils.h"
#include "onex/distance/euclidean.h"

namespace onex {

Result<ScanMatch> BruteForceBestMatch(const Dataset& dataset,
                                      std::span<const double> query,
                                      ScanDistance distance,
                                      const ScanScope& scope, int window,
                                      ScanStats* stats) {
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (query.size() < 2) {
    return Status::InvalidArgument("query must have >= 2 points");
  }
  const std::size_t max_len =
      scope.max_length == 0 ? dataset.MaxLength() : scope.max_length;
  if (scope.min_length < 2 || scope.length_step == 0 || scope.stride == 0) {
    return Status::InvalidArgument("invalid scan scope");
  }

  ScanMatch best;
  best.normalized = std::numeric_limits<double>::infinity();
  const std::size_t qn = query.size();

  for (std::size_t len = scope.min_length; len <= max_len;
       len += scope.length_step) {
    if (distance == ScanDistance::kEuclidean && len != qn) continue;
    const double nf = std::sqrt(static_cast<double>(std::max(qn, len)));
    for (std::size_t s = 0; s < dataset.size(); ++s) {
      const TimeSeries& ts = dataset[s];
      if (ts.length() < len) continue;
      for (std::size_t start = 0; start + len <= ts.length();
           start += scope.stride) {
        if (stats != nullptr) ++stats->candidates;
        const std::span<const double> cand = ts.Slice(start, len);
        const double raw = distance == ScanDistance::kEuclidean
                               ? Euclidean(query, cand)
                               : DtwDistance(query, cand, window);
        if (stats != nullptr) ++stats->full_evaluations;
        const double norm = raw / nf;
        if (norm < best.normalized) {
          best.ref = {s, start, len};
          best.distance = raw;
          best.normalized = norm;
        }
      }
    }
  }
  if (!std::isfinite(best.normalized)) {
    return Status::NotFound(StrFormat(
        "no subsequence of admissible length in [%zu, %zu]", scope.min_length,
        max_len));
  }
  return best;
}

}  // namespace onex
