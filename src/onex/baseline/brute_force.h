#ifndef ONEX_BASELINE_BRUTE_FORCE_H_
#define ONEX_BASELINE_BRUTE_FORCE_H_

#include <cstddef>
#include <span>

#include "onex/common/result.h"
#include "onex/distance/dtw.h"
#include "onex/ts/dataset.h"
#include "onex/ts/subsequence.h"

namespace onex {

/// Which distance an exact scan optimizes. kEuclidean is the "cheap but
/// alignment-blind" competitor of the paper's accuracy claim; kDtw is the
/// gold standard.
enum class ScanDistance { kEuclidean = 0, kDtw = 1 };

/// Subsequence space an exact scan enumerates; matches the scoping knobs of
/// BaseBuildOptions so baselines and ONEX search the same space.
struct ScanScope {
  std::size_t min_length = 4;
  std::size_t max_length = 0;  ///< 0 = longest series.
  std::size_t length_step = 1;
  std::size_t stride = 1;
};

/// Result of an exact scan, in the same normalized units the ONEX query
/// processor reports (distance / sqrt(max(len_q, len_c))).
struct ScanMatch {
  SubseqRef ref;
  double distance = 0.0;    ///< Raw distance.
  double normalized = 0.0;  ///< Length-normalized distance.
};

/// Work counters (shared by the UCR-style scanner, which fills the pruning
/// fields; brute force leaves them zero).
struct ScanStats {
  std::size_t candidates = 0;
  std::size_t pruned_kim = 0;
  std::size_t pruned_keogh = 0;
  std::size_t pruned_keogh_reversed = 0;
  std::size_t abandoned_dtw = 0;
  std::size_t full_evaluations = 0;
};

/// Exhaustive exact best-match: every subsequence in scope is evaluated with
/// the full distance, no pruning. The ground truth the tests compare ONEX
/// and the UCR-style scanner against. ED scans skip candidate lengths !=
/// query length (ED is undefined across lengths; this matches how
/// ED-based systems operate and is exactly why they lose accuracy on warped
/// data).
Result<ScanMatch> BruteForceBestMatch(const Dataset& dataset,
                                      std::span<const double> query,
                                      ScanDistance distance,
                                      const ScanScope& scope = {},
                                      int window = kNoWindow,
                                      ScanStats* stats = nullptr);

}  // namespace onex

#endif  // ONEX_BASELINE_BRUTE_FORCE_H_
