#ifndef ONEX_BASELINE_UCR_SUITE_H_
#define ONEX_BASELINE_UCR_SUITE_H_

#include <span>

#include "onex/baseline/brute_force.h"
#include "onex/common/result.h"

namespace onex {

/// Exact DTW best-match scanner in the style of the UCR Suite
/// (Rakthanmanon et al., KDD 2012 — reference [6], the paper's "fastest
/// known method"). It searches the *raw* subsequence space with a cascade of
/// ever-more-expensive admissible filters, so its answer equals brute force
/// while touching far fewer full DTW computations:
///
///   1. LB_Kim (endpoints; any lengths)            O(1)
///   2. LB_Keogh, query envelope vs candidate      O(n), same length only
///   3. LB_Keogh reversed, candidate envelope vs query (same length)
///   4. early-abandoning DTW against best-so-far   O(n*w)
///
/// Differences from the original implementation are documented rather than
/// hidden: the original z-normalizes every window online and sorts query
/// indices for LB_Keogh early abandon; ONEX compares min-max normalized
/// values directly, so this scanner does too — both systems then search the
/// identical space, which is what the speedup experiment (E2) needs.
struct UcrSearchOptions {
  ScanScope scope;
  int window = kNoWindow;
  bool use_lb_kim = true;
  bool use_lb_keogh = true;
  bool use_lb_keogh_reversed = true;
  bool use_early_abandon = true;
};

Result<ScanMatch> UcrBestMatch(const Dataset& dataset,
                               std::span<const double> query,
                               const UcrSearchOptions& options = {},
                               ScanStats* stats = nullptr);

}  // namespace onex

#endif  // ONEX_BASELINE_UCR_SUITE_H_
