#ifndef ONEX_JSON_JSON_H_
#define ONEX_JSON_JSON_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "onex/common/result.h"

namespace onex::json {

/// Minimal JSON document model used by the server protocol and the chart
/// exporters. Supports the full JSON grammar; numbers are doubles (the only
/// numeric type ONEX emits). Object keys keep insertion order out of scope —
/// std::map gives deterministic (sorted) serialization, which the tests rely
/// on.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}            // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  Value(double d) : type_(Type::kNumber), number_(d) {}    // NOLINT
  Value(int i) : type_(Type::kNumber), number_(i) {}       // NOLINT
  Value(std::size_t i)                                     // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  static Value MakeArray() { return Value(Array{}); }
  static Value MakeObject() { return Value(Object{}); }
  /// Converts a numeric span/vector in one call: Value::NumberArray(xs).
  static Value NumberArray(const std::vector<double>& xs);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one is a programming error with a
  /// defined fallback (false / 0.0 / empty) rather than UB.
  bool as_bool() const { return is_bool() ? bool_ : false; }
  double as_number() const { return is_number() ? number_ : 0.0; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  const Object& as_object() const { return object_; }
  Array& mutable_array() { return array_; }
  Object& mutable_object() { return object_; }

  /// Object field access; returns a shared null for missing keys.
  const Value& operator[](const std::string& key) const;
  /// Array element access; returns a shared null when out of range.
  const Value& operator[](std::size_t index) const;

  void Set(const std::string& key, Value v) {
    object_[key] = std::move(v);
  }
  void Append(Value v) { array_.push_back(std::move(v)); }

  /// Compact serialization (no whitespace). `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  bool operator==(const Value& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Strict parser: rejects trailing garbage, invalid escapes, bad numbers.
/// Depth-limited to keep adversarial inputs from overflowing the stack.
Result<Value> Parse(std::string_view text);

/// JSON string escaping (used directly by the streaming exporters).
std::string EscapeString(std::string_view s);

}  // namespace onex::json

#endif  // ONEX_JSON_JSON_H_
