#include "onex/json/json.h"

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"

namespace onex::json {
namespace {

const Value& SharedNull() {
  static const Value* const kNull = new Value();
  return *kNull;
}

constexpr int kMaxDepth = 64;

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    SkipWhitespace();
    Value v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::ParseError(
        StrFormat("%s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        ONEX_RETURN_IF_ERROR(ParseString(&s));
        *out = Value(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", Value(true), out);
      case 'f':
        return ParseLiteral("false", Value(false), out);
      case 'n':
        return ParseLiteral("null", Value(nullptr), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view lit, Value v, Value* out) {
    if (text_.substr(pos_, lit.size()) != lit) return Err("invalid literal");
    pos_ += lit.size();
    *out = std::move(v);
    return Status::OK();
  }

  Status ParseNumber(Value* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    Result<double> d = ParseDouble(text_.substr(start, pos_ - start));
    if (!d.ok()) return Err("invalid number");
    *out = Value(*d);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Err("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Err("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("short \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Err("invalid \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only; surrogate
            // pairs are passed through as two 3-byte sequences).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Err("invalid escape character");
        }
      } else {
        *out += c;
      }
    }
  }

  Status ParseArray(Value* out, int depth) {
    Consume('[');
    Value::Array arr;
    SkipWhitespace();
    if (Consume(']')) {
      *out = Value(std::move(arr));
      return Status::OK();
    }
    while (true) {
      Value elem;
      SkipWhitespace();
      ONEX_RETURN_IF_ERROR(ParseValue(&elem, depth + 1));
      arr.push_back(std::move(elem));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
    *out = Value(std::move(arr));
    return Status::OK();
  }

  Status ParseObject(Value* out, int depth) {
    Consume('{');
    Value::Object obj;
    SkipWhitespace();
    if (Consume('}')) {
      *out = Value(std::move(obj));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      ONEX_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':'");
      SkipWhitespace();
      Value v;
      ONEX_RETURN_IF_ERROR(ParseValue(&v, depth + 1));
      obj[std::move(key)] = std::move(v);
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
    *out = Value(std::move(obj));
    return Status::OK();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::NumberArray(const std::vector<double>& xs) {
  Array arr;
  arr.reserve(xs.size());
  for (double x : xs) arr.emplace_back(x);
  return Value(std::move(arr));
}

const Value& Value::operator[](const std::string& key) const {
  if (!is_object()) return SharedNull();
  const auto it = object_.find(key);
  return it == object_.end() ? SharedNull() : it->second;
}

const Value& Value::operator[](std::size_t index) const {
  if (!is_array() || index >= array_.size()) return SharedNull();
  return array_[index];
}

std::string EscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Value::DumpTo(std::string* out, int indent, int depth) const {
  std::string pad;
  std::string close_pad;
  if (indent > 0) {
    pad.assign(1, '\n');
    pad.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth + 1),
               ' ');
    close_pad.assign(1, '\n');
    close_pad.append(
        static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
        ' ');
  }
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      if (std::isfinite(number_)) {
        // %.17g round-trips doubles; trim to shortest via %g first.
        std::string num = StrFormat("%.17g", number_);
        const std::string shorter = StrFormat("%g", number_);
        Result<double> back = ParseDouble(shorter);
        if (back.ok() && *back == number_) num = shorter;
        *out += num;
      } else {
        *out += "null";  // JSON has no Inf/NaN; emit null like most encoders
      }
      break;
    }
    case Type::kString:
      *out += '"';
      *out += EscapeString(string_);
      *out += '"';
      break;
    case Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Value& v : array_) {
        if (!first) *out += ',';
        first = false;
        *out += pad;
        v.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) *out += close_pad;
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) *out += ',';
        first = false;
        *out += pad;
        *out += '"';
        *out += EscapeString(k);
        *out += "\":";
        if (indent > 0) *out += ' ';
        v.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) *out += close_pad;
      *out += '}';
      break;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace onex::json
