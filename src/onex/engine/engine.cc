#include "onex/engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <fstream>
#include <iterator>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "onex/core/arena_layout.h"
#include "onex/core/incremental.h"
#include "onex/distance/dtw.h"
#include "onex/engine/snapshot_io.h"
#include "onex/engine/snapshot_ops.h"
#include "onex/engine/wal.h"
#include "onex/ts/paa.h"
#include "onex/ts/ucr_io.h"

namespace onex {

Status Engine::LoadDataset(const std::string& name, Dataset dataset) {
  return registry_.Load(name, std::move(dataset));
}

Status Engine::LoadUcrFile(const std::string& name, const std::string& path) {
  ONEX_ASSIGN_OR_RETURN(Dataset ds, ReadUcrFile(path));
  return LoadDataset(name, std::move(ds));
}

Status Engine::DropDataset(const std::string& name) {
  return registry_.Drop(name);
}

std::vector<std::string> Engine::ListDatasets() const {
  return registry_.List();
}

Result<std::shared_ptr<const PreparedDataset>> Engine::Get(
    const std::string& name) const {
  return registry_.Get(name);
}

Result<std::shared_ptr<const PreparedDataset>> Engine::GetPrepared(
    const std::string& name) const {
  return registry_.GetPrepared(name);
}

Status Engine::Prepare(const std::string& name,
                       const BaseBuildOptions& options,
                       NormalizationKind normalization) {
  return registry_.Prepare(name, options, normalization);
}

PrepareTicket Engine::PrepareAsync(const std::string& name,
                                   const BaseBuildOptions& options,
                                   NormalizationKind normalization) {
  return registry_.PrepareAsync(name, options, normalization);
}

Status Engine::AppendSeries(const std::string& name, TimeSeries series) {
  if (series.length() < 2) {
    return Status::InvalidArgument("appended series needs >= 2 points");
  }
  // Conditional-install loop: if another append or prepare swaps the slot
  // while this one builds, rebuild from the newer snapshot instead of
  // clobbering it (no acknowledged write may be lost). `series` is only
  // read, never consumed, so retries reuse it. The transform itself lives
  // in snapshot_ops.h, shared with WAL replay.
  while (true) {
    ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> current,
                          Get(name));
    ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> next,
                          ApplyAppend(*current, series));

    // The record always travels with the install; whether the slot is
    // journaled is decided inside Install, under the slot lock — the only
    // place the answer cannot go stale against a concurrent PERSIST.
    WalRecord record = WalAppendRecord(series);
    ONEX_ASSIGN_OR_RETURN(
        bool installed,
        registry_.Replace(name, std::move(next), current.get(), &record));
    if (installed) return Status::OK();
    // Lost the race; go again from the newer snapshot.
  }
}

Result<Engine::ExtendSummary> Engine::ExtendSeries(const std::string& name,
                                                   std::size_t series,
                                                   std::vector<double> points) {
  std::vector<ExtendSpec> extensions(1);
  extensions[0].series = series;
  extensions[0].points = std::move(points);
  return ExtendSeries(name, std::move(extensions));
}

Result<Engine::ExtendSummary> Engine::ExtendSeries(
    const std::string& name, std::vector<ExtendSpec> extensions) {
  // Conditional-install loop, like AppendSeries: if another writer swaps
  // the slot while this one builds, rebuild from the newer snapshot instead
  // of clobbering it. `extensions` is only read, so retries reuse it; the
  // transform itself lives in snapshot_ops.h, shared with WAL replay.
  while (true) {
    ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> current,
                          Get(name));
    ONEX_ASSIGN_OR_RETURN(ExtendOutcome outcome,
                          ApplyExtend(*current, extensions));

    ExtendSummary summary;
    summary.series_extended = outcome.series_extended;
    summary.points_appended = outcome.points_appended;
    summary.new_members = outcome.new_members;
    summary.drift = std::move(outcome.drift);
    for (const LengthClassDrift& d : summary.drift) {
      summary.max_drift = std::max(summary.max_drift, d.fraction());
    }

    // Record always attached; Install journals it iff the slot is
    // journaled (see AppendSeries).
    WalRecord record = WalExtendRecord(extensions);
    ONEX_ASSIGN_OR_RETURN(
        bool installed,
        registry_.Replace(name, outcome.snapshot, current.get(), &record));
    if (!installed) continue;  // lost the race; go again from the newer state

    // The drift policy runs after the install so the regroup job sees (at
    // least) the snapshot this extend produced.
    summary.regroup = registry_.MaybeScheduleRegroup(name, summary.drift);
    summary.regroup_scheduled = summary.regroup.valid();
    return summary;
  }
}

Status Engine::SavePrepared(const std::string& name,
                            const std::string& path) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        GetPrepared(name));
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  return WritePreparedPayload(*ds, out);
}

Status Engine::LoadPrepared(const std::string& name, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  // Version switch on the magic: ONEXARENA checkpoints load exactly
  // (materialized — LOADBASE adopts foreign files, which must not stay
  // mapped after the source path changes or disappears); anything else goes
  // through the legacy ONEXPREP text reader.
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  const bool is_arena =
      in.gcount() == sizeof(magic) &&
      LooksLikeArena(std::string_view(magic, sizeof(magic)));
  in.clear();
  in.seekg(0);
  PreparedDataset loaded;
  if (is_arena) {
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
      return Status::IoError("cannot read '" + path + "'");
    }
    const auto bytes =
        std::as_bytes(std::span<const char>(content.data(), content.size()));
    ONEX_ASSIGN_OR_RETURN(ArenaView view, ParseArena(bytes));
    ONEX_ASSIGN_OR_RETURN(RealizedArena realized, RealizeArena(view, nullptr));
    loaded.name = name;
    loaded.raw = std::move(realized.raw);
    loaded.normalized = std::move(realized.normalized);
    loaded.base = std::move(realized.base);
    loaded.norm_kind = view.norm_kind;
    loaded.norm_params = view.norm_params;
    loaded.build_options = view.build_options;
  } else {
    ONEX_ASSIGN_OR_RETURN(loaded, ReadPreparedPayload(in, name));
  }
  return registry_.Adopt(
      name, std::make_shared<const PreparedDataset>(std::move(loaded)));
}

Result<std::vector<double>> Engine::ResolveQuery(const PreparedDataset& target,
                                                 const QuerySpec& spec) const {
  if (spec.is_inline()) {
    if (spec.inline_values.size() < 2) {
      return Status::InvalidArgument("inline query needs >= 2 values");
    }
    // Map analyst-provided raw units into the target's normalized space.
    std::vector<double> out;
    out.reserve(spec.inline_values.size());
    switch (target.norm_kind) {
      case NormalizationKind::kNone:
        out = spec.inline_values;
        break;
      case NormalizationKind::kMinMaxDataset: {
        const double lo = target.norm_params.min;
        const double span = target.norm_params.max - target.norm_params.min;
        for (double v : spec.inline_values) {
          out.push_back(span > 0.0 ? (v - lo) / span : 0.0);
        }
        break;
      }
      default:
        return Status::InvalidArgument(
            "inline queries require dataset-level normalization (none or "
            "minmax-dataset); per-series normalization has no global map");
    }
    return out;
  }

  // Reference into a loaded dataset: resolve against its *normalized* copy
  // when the source is the target (same units as the base), else normalize
  // the foreign values with the target's parameters.
  std::shared_ptr<const PreparedDataset> source;
  if (spec.dataset.empty() || spec.dataset == target.name) {
    const Dataset& norm = *target.normalized;
    ONEX_RETURN_IF_ERROR(norm.CheckIndex(spec.series));
    const std::size_t n = norm[spec.series].length();
    const std::size_t len = spec.length == 0
                                ? (spec.start < n ? n - spec.start : 0)
                                : spec.length;
    ONEX_RETURN_IF_ERROR(norm.CheckRange(spec.series, spec.start, len));
    const std::span<const double> vals =
        norm[spec.series].Slice(spec.start, len);
    return std::vector<double>(vals.begin(), vals.end());
  }
  ONEX_ASSIGN_OR_RETURN(source, Get(spec.dataset));
  const Dataset& raw = *source->raw;
  ONEX_RETURN_IF_ERROR(raw.CheckIndex(spec.series));
  const std::size_t n = raw[spec.series].length();
  const std::size_t len =
      spec.length == 0 ? (spec.start < n ? n - spec.start : 0) : spec.length;
  ONEX_RETURN_IF_ERROR(raw.CheckRange(spec.series, spec.start, len));
  const std::span<const double> vals = raw[spec.series].Slice(spec.start, len);
  QuerySpec inline_spec;
  inline_spec.inline_values.assign(vals.begin(), vals.end());
  return ResolveQuery(target, inline_spec);
}

Result<std::vector<MatchResult>> Engine::RunKnn(
    const PreparedDataset& ds, std::vector<double> qvals, std::size_t k,
    const QueryOptions& options) const {
  const auto t0 = std::chrono::steady_clock::now();
  QueryProcessor qp(ds.base.get(), &pool_);
  QueryStats stats;
  ONEX_ASSIGN_OR_RETURN(std::vector<BestMatch> matches,
                        qp.KnnQuery(qvals, k, options, &stats));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  queries_served_.fetch_add(1, std::memory_order_relaxed);
  pruned_kim_total_.fetch_add(stats.pruned_kim, std::memory_order_relaxed);
  pruned_keogh_total_.fetch_add(stats.pruned_keogh,
                                std::memory_order_relaxed);
  dtw_evals_total_.fetch_add(stats.dtw_evals, std::memory_order_relaxed);

  std::vector<MatchResult> out;
  out.reserve(matches.size());
  for (BestMatch& m : matches) {
    MatchResult r;
    r.matched_series_name = (*ds.normalized)[m.ref.series].name();
    const std::span<const double> mv = m.ref.Resolve(*ds.normalized);
    r.match_values.assign(mv.begin(), mv.end());
    r.query_values = qvals;
    r.stats = stats;
    r.elapsed_ms = elapsed_ms;
    r.match = std::move(m);
    out.push_back(std::move(r));
  }
  return out;
}

Result<std::vector<MatchResult>> Engine::Knn(const std::string& name,
                                             const QuerySpec& query,
                                             std::size_t k,
                                             const QueryOptions& options) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        GetPrepared(name));
  ONEX_ASSIGN_OR_RETURN(std::vector<double> qvals, ResolveQuery(*ds, query));
  return RunKnn(*ds, std::move(qvals), k, options);
}

Result<std::vector<std::vector<MatchResult>>> Engine::KnnBatch(
    const std::string& name, const std::vector<QuerySpec>& queries,
    std::size_t k, const QueryOptions& options) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        GetPrepared(name));
  std::vector<std::vector<MatchResult>> out(queries.size());
  if (queries.empty()) return out;

  // Resolve sequentially (cheap, and resolution errors surface before any
  // work starts), then fan the heavy searches across the pool. Every query
  // writes only its own slot, so results match the one-at-a-time path.
  std::vector<std::vector<double>> qvals(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ONEX_ASSIGN_OR_RETURN(qvals[i], ResolveQuery(*ds, queries[i]));
  }
  std::vector<Status> failures(queries.size(), Status::OK());
  pool_.ParallelFor(queries.size(), [&](std::size_t i) {
    Result<std::vector<MatchResult>> r =
        RunKnn(*ds, std::move(qvals[i]), k, options);
    if (r.ok()) {
      out[i] = std::move(r).value();
    } else {
      failures[i] = r.status();
    }
  });
  for (const Status& s : failures) {
    if (!s.ok()) return s;
  }
  return out;
}

Result<std::vector<MatchResult>> Engine::SimilaritySearchBatch(
    const std::string& name, const std::vector<QuerySpec>& queries,
    const QueryOptions& options) const {
  ONEX_ASSIGN_OR_RETURN(std::vector<std::vector<MatchResult>> per_query,
                        KnnBatch(name, queries, 1, options));
  std::vector<MatchResult> out;
  out.reserve(per_query.size());
  for (std::vector<MatchResult>& matches : per_query) {
    if (matches.empty()) return Status::NotFound("no match found");
    out.push_back(std::move(matches.front()));
  }
  return out;
}

Result<MatchResult> Engine::SimilaritySearch(const std::string& name,
                                             const QuerySpec& query,
                                             const QueryOptions& options) const {
  ONEX_ASSIGN_OR_RETURN(std::vector<MatchResult> top,
                        Knn(name, query, 1, options));
  if (top.empty()) return Status::NotFound("no match found");
  return std::move(top.front());
}

Engine::QueryCounters Engine::query_counters() const {
  QueryCounters c;
  c.queries = queries_served_.load(std::memory_order_relaxed);
  c.pruned_kim = pruned_kim_total_.load(std::memory_order_relaxed);
  c.pruned_keogh = pruned_keogh_total_.load(std::memory_order_relaxed);
  c.dtw_evals = dtw_evals_total_.load(std::memory_order_relaxed);
  return c;
}

Result<AnomalyReport> Engine::Anomaly(const std::string& name,
                                      const AnomalyOptions& options) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        GetPrepared(name));
  return DetectAnomalies(*ds->base, options);
}

Result<ChangepointReport> Engine::Changepoint(
    const std::string& name, std::size_t series,
    const ChangepointOptions& options) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        GetPrepared(name));
  ONEX_RETURN_IF_ERROR(ds->normalized->CheckIndex(series));
  return DetectChangepoints((*ds->normalized)[series].AsSpan(), options);
}

Result<MotifReport> Engine::Motif(const std::string& name,
                                  const MotifOptions& options) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        GetPrepared(name));
  return FindMotifs(*ds->base, options);
}

Result<Engine::ForecastResult> Engine::Forecast(
    const std::string& name, std::size_t series,
    const ForecastOptions& options) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        GetPrepared(name));
  ForecastResult result;
  ONEX_ASSIGN_OR_RETURN(result.report,
                        ForecastSeries(*ds->base, series, options));
  result.series_name = (*ds->raw)[series].name();
  result.raw_values.reserve(result.report.values.size());
  for (const double v : result.report.values) {
    result.raw_values.push_back(Denormalize(ds->norm_params, series, v));
  }
  return result;
}

Result<std::vector<SeasonalPattern>> Engine::Seasonal(
    const std::string& name, std::size_t series_idx,
    const SeasonalOptions& options) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        GetPrepared(name));
  return FindSeasonalPatterns(*ds->base, series_idx, options);
}

Result<ThresholdReport> Engine::RecommendThresholds(
    const std::string& name, const ThresholdAdvisorOptions& options) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds, Get(name));
  const Dataset& target = ds->prepared() ? *ds->normalized : *ds->raw;
  return onex::RecommendThresholds(target, options);
}

Result<std::vector<OverviewEntry>> Engine::Overview(
    const std::string& name, const OverviewOptions& options) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        GetPrepared(name));
  return BuildOverview(*ds->base, options);
}

Result<std::vector<Engine::CatalogEntry>> Engine::Catalog(
    const std::string& name, std::size_t preview_points) const {
  if (preview_points == 0) {
    return Status::InvalidArgument("preview_points must be positive");
  }
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds, Get(name));
  std::vector<CatalogEntry> out;
  out.reserve(ds->raw->size());
  for (const TimeSeries& ts : ds->raw->series()) {
    CatalogEntry entry;
    entry.series_name = ts.name();
    entry.label = ts.label();
    entry.length = ts.length();
    entry.preview = Paa(ts.AsSpan(), preview_points);
    out.push_back(std::move(entry));
  }
  return out;
}

Result<viz::MultiLineChartData> Engine::MatchMultiLineChart(
    const std::string& name, const MatchResult& result) const {
  (void)name;
  return viz::BuildMultiLineChart("query", result.query_values,
                                  result.matched_series_name,
                                  result.match_values, result.match.path);
}

Result<viz::RadialChartData> Engine::MatchRadialChart(
    const std::string& name, const MatchResult& result) const {
  (void)name;
  return viz::BuildRadialChart("query", result.query_values,
                               result.matched_series_name,
                               result.match_values);
}

Result<viz::ConnectedScatterData> Engine::MatchConnectedScatter(
    const std::string& name, const MatchResult& result) const {
  (void)name;
  if (result.match.path.empty()) {
    return Status::FailedPrecondition(
        "match has no warping path; run the query with compute_path=true");
  }
  return viz::BuildConnectedScatter("query", result.query_values,
                                    result.matched_series_name,
                                    result.match_values, result.match.path);
}

Result<viz::SeasonalViewData> Engine::SeasonalView(
    const std::string& name, std::size_t series_idx,
    const SeasonalOptions& options) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        GetPrepared(name));
  ONEX_ASSIGN_OR_RETURN(std::vector<SeasonalPattern> patterns,
                        FindSeasonalPatterns(*ds->base, series_idx, options));
  const TimeSeries& ts = (*ds->normalized)[series_idx];
  return viz::BuildSeasonalView(ts.name(), ts.values(), patterns);
}

}  // namespace onex
