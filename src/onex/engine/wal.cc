#include "onex/engine/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"
#include "onex/core/arena_layout.h"
#include "onex/engine/snapshot_io.h"
#include "onex/json/json.h"

namespace onex {
namespace {

constexpr const char* kWalMagic = "ONEXWAL";
constexpr int kWalVersion = 1;
constexpr const char* kCkptMagic = "ONEXCKPT";
constexpr int kCkptVersion = 1;

/// Far above the largest legal record (a 2M-point GEN encodes to ~50 MB);
/// a line past this is corruption, not data.
constexpr std::size_t kMaxWalLineBytes = 512ull << 20;

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

std::string Quoted(const std::string& s) {
  std::string out;
  const std::string escaped = json::EscapeString(s);
  out.reserve(escaped.size() + 2);
  out += '"';
  out += escaped;
  out += '"';
  return out;
}

/// Sequential token reader over one record body. Counts declared by the
/// record never drive allocation: consumers loop calling Next*, which fails
/// at exhaustion, so memory grows only with bytes actually present.
class TokenCursor {
 public:
  explicit TokenCursor(std::string_view text) : rest_(text) {}

  bool Done() {
    SkipSpace();
    return rest_.empty();
  }

  Result<std::string_view> Next() {
    SkipSpace();
    if (rest_.empty()) {
      return Status::ParseError("wal record ends mid-field");
    }
    std::size_t end = 0;
    while (end < rest_.size() && rest_[end] != ' ' && rest_[end] != '\t') {
      ++end;
    }
    std::string_view token = rest_.substr(0, end);
    rest_.remove_prefix(end);
    return token;
  }

  Result<std::string> NextQuoted() {
    SkipSpace();
    if (rest_.empty() || rest_.front() != '"') {
      return Status::ParseError("expected quoted string in wal record");
    }
    std::size_t end = 1;
    while (end < rest_.size()) {
      if (rest_[end] == '\\') {
        end += 2;
        continue;
      }
      if (rest_[end] == '"') break;
      ++end;
    }
    if (end >= rest_.size()) {
      return Status::ParseError("unterminated quoted string in wal record");
    }
    ONEX_ASSIGN_OR_RETURN(json::Value v,
                          json::Parse(rest_.substr(0, end + 1)));
    rest_.remove_prefix(end + 1);
    return v.as_string();
  }

  Result<long long> NextInt() {
    ONEX_ASSIGN_OR_RETURN(std::string_view token, Next());
    return ParseInt(token);
  }

  Result<double> NextDouble() {
    ONEX_ASSIGN_OR_RETURN(std::string_view token, Next());
    return ParseDouble(token);
  }

 private:
  void SkipSpace() {
    while (!rest_.empty() && (rest_.front() == ' ' || rest_.front() == '\t')) {
      rest_.remove_prefix(1);
    }
  }

  std::string_view rest_;
};

Result<CentroidPolicy> PolicyFromString(std::string_view name) {
  if (name == "fixed-leader") return CentroidPolicy::kFixedLeader;
  if (name == "running-mean") return CentroidPolicy::kRunningMean;
  if (name == "running-mean-repair") {
    return CentroidPolicy::kRunningMeanRepair;
  }
  return Status::ParseError("unknown centroid policy in wal record");
}

Result<WalRecordType> TypeFromString(std::string_view name) {
  if (name == "load") return WalRecordType::kLoad;
  if (name == "append") return WalRecordType::kAppend;
  if (name == "extend") return WalRecordType::kExtend;
  if (name == "prepare") return WalRecordType::kPrepare;
  if (name == "regroup") return WalRecordType::kRegroup;
  if (name == "rebuild") return WalRecordType::kRebuild;
  if (name == "evict") return WalRecordType::kEvict;
  if (name == "ckpt") return WalRecordType::kCheckpoint;
  return Status::ParseError("unknown wal record type '" + std::string(name) +
                            "'");
}

Result<std::uint64_t> ParseHex64(std::string_view text) {
  if (text.empty() || text.size() > 16) {
    return Status::ParseError("malformed wal checksum");
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return Status::ParseError("malformed wal checksum");
    }
  }
  return value;
}

void AppendSeriesText(std::string* out, const TimeSeries& ts) {
  *out += ' ';
  *out += Quoted(ts.name());
  *out += ' ';
  *out += Quoted(ts.label());
  *out += StrFormat(" %zu", ts.length());
  for (const double v : ts.values()) *out += StrFormat(" %.17g", v);
}

Result<TimeSeries> ParseSeriesText(TokenCursor* cur) {
  ONEX_ASSIGN_OR_RETURN(std::string name, cur->NextQuoted());
  ONEX_ASSIGN_OR_RETURN(std::string label, cur->NextQuoted());
  ONEX_ASSIGN_OR_RETURN(long long len, cur->NextInt());
  if (len < 0) return Status::ParseError("negative series length in wal");
  std::vector<double> values;
  for (long long i = 0; i < len; ++i) {
    ONEX_ASSIGN_OR_RETURN(double v, cur->NextDouble());
    values.push_back(v);
  }
  return TimeSeries(std::move(name), std::move(values), std::move(label));
}

/// Reads one '\n'-terminated line of at most kMaxWalLineBytes. Returns
/// false at clean EOF; with content, reports whether the terminator was
/// seen and whether the cap was hit.
bool ReadLineBounded(std::istream& in, std::string* line, bool* newline,
                     bool* over_cap) {
  line->clear();
  *newline = false;
  *over_cap = false;
  int c;
  while ((c = in.get()) != std::char_traits<char>::eof()) {
    if (c == '\n') {
      *newline = true;
      return true;
    }
    line->push_back(static_cast<char>(c));
    if (line->size() > kMaxWalLineBytes) {
      *over_cap = true;
      return true;
    }
  }
  return !line->empty();
}

}  // namespace

const char* WalRecordTypeToString(WalRecordType type) {
  switch (type) {
    case WalRecordType::kLoad: return "load";
    case WalRecordType::kAppend: return "append";
    case WalRecordType::kExtend: return "extend";
    case WalRecordType::kPrepare: return "prepare";
    case WalRecordType::kRegroup: return "regroup";
    case WalRecordType::kRebuild: return "rebuild";
    case WalRecordType::kEvict: return "evict";
    case WalRecordType::kCheckpoint: return "ckpt";
  }
  return "unknown";
}

WalRecord WalLoadRecord(const Dataset& dataset) {
  WalRecord r;
  r.type = WalRecordType::kLoad;
  r.dataset = dataset;
  return r;
}

WalRecord WalAppendRecord(TimeSeries series) {
  WalRecord r;
  r.type = WalRecordType::kAppend;
  r.series = std::move(series);
  return r;
}

WalRecord WalExtendRecord(std::vector<SeriesExtension> extensions) {
  WalRecord r;
  r.type = WalRecordType::kExtend;
  r.extensions = std::move(extensions);
  return r;
}

WalRecord WalPrepareRecord(const BaseBuildOptions& options,
                           NormalizationKind norm) {
  WalRecord r;
  r.type = WalRecordType::kPrepare;
  r.options = options;
  r.norm = norm;
  return r;
}

WalRecord WalRegroupRecord(std::vector<std::size_t> lengths) {
  WalRecord r;
  r.type = WalRecordType::kRegroup;
  r.lengths = std::move(lengths);
  return r;
}

WalRecord WalRebuildRecord() {
  WalRecord r;
  r.type = WalRecordType::kRebuild;
  return r;
}

WalRecord WalEvictRecord() {
  WalRecord r;
  r.type = WalRecordType::kEvict;
  return r;
}

WalRecord WalCheckpointRecord(std::uint64_t state_seq) {
  WalRecord r;
  r.type = WalRecordType::kCheckpoint;
  r.checkpoint_seq = state_seq;
  return r;
}

std::string EncodeWalHeader(const std::string& dataset_name) {
  return StrFormat("%s %d ", kWalMagic, kWalVersion) + Quoted(dataset_name) +
         "\n";
}

Result<std::string> DecodeWalHeader(std::string_view line) {
  TokenCursor cur(line);
  ONEX_ASSIGN_OR_RETURN(std::string_view magic, cur.Next());
  if (magic != kWalMagic) {
    return Status::ParseError("not an ONEX wal header");
  }
  ONEX_ASSIGN_OR_RETURN(long long version, cur.NextInt());
  if (version != kWalVersion) {
    return Status::ParseError(StrFormat("unsupported wal version %lld",
                                        version));
  }
  ONEX_ASSIGN_OR_RETURN(std::string name, cur.NextQuoted());
  if (!cur.Done()) {
    return Status::ParseError("trailing bytes after wal header");
  }
  if (name.empty()) {
    return Status::ParseError("wal header has an empty dataset name");
  }
  return name;
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string body = StrFormat("r %llu %s",
                               static_cast<unsigned long long>(record.seq),
                               WalRecordTypeToString(record.type));
  switch (record.type) {
    case WalRecordType::kLoad: {
      body += ' ';
      body += Quoted(record.dataset.name());
      body += StrFormat(" %zu", record.dataset.size());
      for (const TimeSeries& ts : record.dataset.series()) {
        AppendSeriesText(&body, ts);
      }
      break;
    }
    case WalRecordType::kAppend:
      AppendSeriesText(&body, record.series);
      break;
    case WalRecordType::kExtend: {
      body += StrFormat(" %zu", record.extensions.size());
      for (const SeriesExtension& ext : record.extensions) {
        body += StrFormat(" %zu %zu", ext.series, ext.points.size());
        for (const double v : ext.points) body += StrFormat(" %.17g", v);
      }
      break;
    }
    case WalRecordType::kPrepare:
      body += StrFormat(" %.17g %zu %zu %zu %zu %s %s", record.options.st,
                        record.options.min_length, record.options.max_length,
                        record.options.length_step, record.options.stride,
                        CentroidPolicyToString(record.options.centroid_policy),
                        NormalizationKindToString(record.norm));
      break;
    case WalRecordType::kRegroup:
      body += StrFormat(" %zu", record.lengths.size());
      for (const std::size_t len : record.lengths) {
        body += StrFormat(" %zu", len);
      }
      break;
    case WalRecordType::kRebuild:
    case WalRecordType::kEvict:
      break;
    case WalRecordType::kCheckpoint:
      body += StrFormat(
          " %llu", static_cast<unsigned long long>(record.checkpoint_seq));
      break;
  }
  body += StrFormat(" c=%016llx",
                    static_cast<unsigned long long>(Fnv1a64(body)));
  body += '\n';
  return body;
}

Result<WalRecord> DecodeWalRecord(std::string_view line) {
  // Split off and verify the trailing checksum first: it covers everything
  // before it, so any flipped byte — in values, counts or framing — fails
  // here before any field is trusted.
  const std::size_t cpos = line.rfind(" c=");
  if (cpos == std::string_view::npos) {
    return Status::ParseError("wal record has no checksum field");
  }
  const std::string_view body = line.substr(0, cpos);
  ONEX_ASSIGN_OR_RETURN(std::uint64_t expected, ParseHex64(line.substr(cpos + 3)));
  if (Fnv1a64(body) != expected) {
    return Status::ParseError("wal record checksum mismatch");
  }

  TokenCursor cur(body);
  ONEX_ASSIGN_OR_RETURN(std::string_view tag, cur.Next());
  if (tag != "r") {
    return Status::ParseError("wal record does not start with 'r'");
  }
  WalRecord record;
  ONEX_ASSIGN_OR_RETURN(long long seq, cur.NextInt());
  if (seq <= 0) return Status::ParseError("wal record sequence must be > 0");
  record.seq = static_cast<std::uint64_t>(seq);
  ONEX_ASSIGN_OR_RETURN(std::string_view type_name, cur.Next());
  ONEX_ASSIGN_OR_RETURN(record.type, TypeFromString(type_name));

  switch (record.type) {
    case WalRecordType::kLoad: {
      ONEX_ASSIGN_OR_RETURN(std::string ds_name, cur.NextQuoted());
      ONEX_ASSIGN_OR_RETURN(long long count, cur.NextInt());
      if (count < 0) return Status::ParseError("negative series count in wal");
      Dataset ds(std::move(ds_name));
      for (long long s = 0; s < count; ++s) {
        ONEX_ASSIGN_OR_RETURN(TimeSeries ts, ParseSeriesText(&cur));
        ds.Add(std::move(ts));
      }
      record.dataset = std::move(ds);
      break;
    }
    case WalRecordType::kAppend: {
      ONEX_ASSIGN_OR_RETURN(record.series, ParseSeriesText(&cur));
      break;
    }
    case WalRecordType::kExtend: {
      ONEX_ASSIGN_OR_RETURN(long long count, cur.NextInt());
      if (count < 0) {
        return Status::ParseError("negative extension count in wal");
      }
      for (long long e = 0; e < count; ++e) {
        SeriesExtension ext;
        ONEX_ASSIGN_OR_RETURN(long long series, cur.NextInt());
        ONEX_ASSIGN_OR_RETURN(long long points, cur.NextInt());
        if (series < 0 || points <= 0) {
          return Status::ParseError("malformed extension in wal");
        }
        ext.series = static_cast<std::size_t>(series);
        for (long long p = 0; p < points; ++p) {
          ONEX_ASSIGN_OR_RETURN(double v, cur.NextDouble());
          ext.points.push_back(v);
        }
        record.extensions.push_back(std::move(ext));
      }
      break;
    }
    case WalRecordType::kPrepare: {
      ONEX_ASSIGN_OR_RETURN(record.options.st, cur.NextDouble());
      ONEX_ASSIGN_OR_RETURN(long long minlen, cur.NextInt());
      ONEX_ASSIGN_OR_RETURN(long long maxlen, cur.NextInt());
      ONEX_ASSIGN_OR_RETURN(long long step, cur.NextInt());
      ONEX_ASSIGN_OR_RETURN(long long stride, cur.NextInt());
      if (minlen < 0 || maxlen < 0 || step < 1 || stride < 1) {
        return Status::ParseError("invalid scoping in wal prepare record");
      }
      record.options.min_length = static_cast<std::size_t>(minlen);
      record.options.max_length = static_cast<std::size_t>(maxlen);
      record.options.length_step = static_cast<std::size_t>(step);
      record.options.stride = static_cast<std::size_t>(stride);
      ONEX_ASSIGN_OR_RETURN(std::string_view policy, cur.Next());
      ONEX_ASSIGN_OR_RETURN(record.options.centroid_policy,
                            PolicyFromString(policy));
      ONEX_ASSIGN_OR_RETURN(std::string_view norm, cur.Next());
      ONEX_ASSIGN_OR_RETURN(record.norm,
                            NormalizationKindFromString(std::string(norm)));
      ONEX_RETURN_IF_ERROR(record.options.Validate());
      break;
    }
    case WalRecordType::kRegroup: {
      ONEX_ASSIGN_OR_RETURN(long long count, cur.NextInt());
      if (count < 0) return Status::ParseError("negative length count in wal");
      for (long long i = 0; i < count; ++i) {
        ONEX_ASSIGN_OR_RETURN(long long len, cur.NextInt());
        if (len < 0) return Status::ParseError("negative length in wal");
        record.lengths.push_back(static_cast<std::size_t>(len));
      }
      break;
    }
    case WalRecordType::kRebuild:
    case WalRecordType::kEvict:
      break;
    case WalRecordType::kCheckpoint: {
      ONEX_ASSIGN_OR_RETURN(long long state_seq, cur.NextInt());
      if (state_seq < 0) {
        return Status::ParseError("negative checkpoint state seq in wal");
      }
      record.checkpoint_seq = static_cast<std::uint64_t>(state_seq);
      break;
    }
  }
  if (!cur.Done()) {
    return Status::ParseError("trailing bytes in wal record");
  }
  return record;
}

Result<WalScan> ScanWal(std::istream& in) {
  WalScan scan;
  std::string line;
  bool newline = false;
  bool over_cap = false;

  if (!ReadLineBounded(in, &line, &newline, &over_cap)) {
    if (in.bad()) {
      return Status::IoError("read error while scanning wal header");
    }
    scan.embryonic = true;  // empty file: the header never landed
    return scan;
  }
  if (over_cap) {
    return Status::ParseError("wal header exceeds the line cap");
  }
  if (!newline) {
    if (in.bad()) {
      return Status::IoError("read error while scanning wal header");
    }
    scan.embryonic = true;  // torn at slot birth; nothing was acknowledged
    return scan;
  }
  ONEX_ASSIGN_OR_RETURN(scan.dataset_name, DecodeWalHeader(line));
  scan.valid_bytes = line.size() + 1;

  std::uint64_t last_seq = 0;
  while (ReadLineBounded(in, &line, &newline, &over_cap)) {
    if (over_cap) {
      return Status::ParseError("wal record exceeds the line cap");
    }
    if (!newline) {
      if (in.bad()) {
        // A mid-line read ERROR is not a torn write: the rest of the line
        // may be intact on disk, and calling it torn would let recovery
        // truncate acknowledged history.
        return Status::IoError("read error while scanning wal records");
      }
      // Torn tail: the line never finished, so the write it carried was
      // never acknowledged. Recover the clean prefix.
      scan.torn_tail = true;
      return scan;
    }
    Result<WalRecord> record = DecodeWalRecord(line);
    if (!record.ok()) {
      return Status::ParseError(
          StrFormat("wal record %zu: ", scan.records.size() + 1) +
          record.status().message());
    }
    if (record->seq <= last_seq) {
      return Status::ParseError(StrFormat(
          "wal sequence does not advance (%llu after %llu)",
          static_cast<unsigned long long>(record->seq),
          static_cast<unsigned long long>(last_seq)));
    }
    last_seq = record->seq;
    scan.valid_bytes += line.size() + 1;
    scan.records.push_back(*std::move(record));
  }
  if (in.bad()) {
    // A stream read ERROR is not end-of-file: acknowledged history may
    // still follow. Classifying it as a clean EOF (or worse, a torn tail
    // that recovery then truncates) would silently destroy valid records.
    return Status::IoError("read error while scanning wal records");
  }
  return scan;
}

Result<WalScan> ScanWalFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  return ScanWal(in);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      next_seq_(other.next_seq_),
      sync_(other.sync_),
      failed_(other.failed_) {
  other.file_ = nullptr;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    path_ = std::move(other.path_);
    next_seq_ = other.next_seq_;
    sync_ = other.sync_;
    failed_ = other.failed_;
    other.file_ = nullptr;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<WalWriter> WalWriter::Create(const std::string& path,
                                    const std::string& dataset_name,
                                    bool sync) {
  WalWriter writer;
  writer.path_ = path;
  writer.sync_ = sync;
  writer.file_ = std::fopen(path.c_str(), "wbx");
  if (writer.file_ == nullptr) {
    return Status::IoError(ErrnoMessage("cannot create wal '" + path + "'"));
  }
  const std::string header = EncodeWalHeader(dataset_name);
  if (std::fwrite(header.data(), 1, header.size(), writer.file_) !=
          header.size() ||
      std::fflush(writer.file_) != 0 ||
      (sync && ::fsync(::fileno(writer.file_)) != 0)) {
    return Status::IoError(ErrnoMessage("cannot write wal header to '" + path +
                                        "'"));
  }
  return writer;
}

Result<WalWriter> WalWriter::OpenExisting(const std::string& path,
                                          std::uint64_t next_seq, bool sync) {
  WalWriter writer;
  writer.path_ = path;
  writer.sync_ = sync;
  writer.next_seq_ = next_seq;
  writer.file_ = std::fopen(path.c_str(), "ab");
  if (writer.file_ == nullptr) {
    return Status::IoError(ErrnoMessage("cannot open wal '" + path + "'"));
  }
  return writer;
}

Status WalWriter::Append(WalRecord* record) {
  if (file_ == nullptr || failed_) {
    return Status::IoError("wal '" + path_ +
                           "' is in a failed state; slot is read-only");
  }
  record->seq = next_seq_;
  const std::string line = EncodeWalRecord(*record);
  if (line.size() > kMaxWalLineBytes) {
    // Reject BEFORE writing (the writer stays healthy — nothing was
    // appended): a record the scanner would refuse must never be
    // acknowledged, or it would hold the next recovery hostage.
    return Status::InvalidArgument(StrFormat(
        "wal record of %zu bytes exceeds the replayable line cap (%zu)",
        line.size(), kMaxWalLineBytes));
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0 ||
      (sync_ && ::fsync(::fileno(file_)) != 0)) {
    // Latch: the file may now hold a partial line; appending more would
    // corrupt acknowledged history rather than extend it.
    failed_ = true;
    return Status::IoError(ErrnoMessage("wal append to '" + path_ +
                                        "' failed"));
  }
  ++next_seq_;
  return Status::OK();
}

Status WalWriter::AppendAt(const WalRecord& record) {
  if (file_ == nullptr || failed_) {
    return Status::IoError("wal '" + path_ +
                           "' is in a failed state; slot is read-only");
  }
  if (record.seq != next_seq_) {
    return Status::FailedPrecondition(StrFormat(
        "replicated record seq %llu does not continue this wal (expect %llu)",
        static_cast<unsigned long long>(record.seq),
        static_cast<unsigned long long>(next_seq_)));
  }
  const std::string line = EncodeWalRecord(record);
  if (line.size() > kMaxWalLineBytes) {
    return Status::InvalidArgument(StrFormat(
        "wal record of %zu bytes exceeds the replayable line cap (%zu)",
        line.size(), kMaxWalLineBytes));
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0 ||
      (sync_ && ::fsync(::fileno(file_)) != 0)) {
    failed_ = true;
    return Status::IoError(ErrnoMessage("wal append to '" + path_ +
                                        "' failed"));
  }
  ++next_seq_;
  return Status::OK();
}

Status WalWriter::Reopen(std::uint64_t next_seq) {
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    failed_ = true;
    return Status::IoError(ErrnoMessage("cannot reopen wal '" + path_ + "'"));
  }
  next_seq_ = next_seq;
  failed_ = false;
  return Status::OK();
}

/// Snapshot fields shared by the materialized and mapped arena load paths.
/// The authoritative dataset name is the caller's (WAL header / slot), not
/// the one stored in the arena — same contract as the legacy reader.
static PreparedDataset AssembleArenaSnapshot(const ArenaView& view,
                                             RealizedArena realized,
                                             const std::string& name) {
  PreparedDataset ds;
  ds.name = name;
  ds.raw = std::move(realized.raw);
  ds.normalized = std::move(realized.normalized);
  ds.base = std::move(realized.base);
  ds.norm_kind = view.norm_kind;
  ds.norm_params = view.norm_params;
  ds.build_options = view.build_options;
  return ds;
}

Result<std::string> EncodeCheckpoint(const PreparedDataset& ds) {
  if (ds.raw == nullptr || ds.base == nullptr) {
    return Status::FailedPrecondition(
        "checkpoint requires a resident prepared snapshot");
  }
  // ONEXARENA (core/arena_layout.h): raw values verbatim (denormalization
  // is not a bit-exact inverse), normalized values, and the full columnar
  // group state — mmap-able, so this checkpoint can also SERVE (§17).
  return EncodeArena(*ds.raw, ds.norm_kind, ds.norm_params, *ds.base);
}

Status WriteCheckpointFile(const PreparedDataset& ds, const std::string& path,
                           bool sync) {
  ONEX_ASSIGN_OR_RETURN(std::string bytes, EncodeCheckpoint(ds));
  return AtomicWriteFile(path, bytes, sync);
}

Result<PreparedDataset> ReadCheckpointFile(const std::string& path,
                                           const std::string& name) {
  std::string content;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
      return Status::IoError("cannot open checkpoint '" + path + "'");
    }
    const std::streamsize size = in.tellg();
    in.seekg(0);
    content.resize(static_cast<std::size_t>(size));
    if (!in.read(content.data(), size)) {
      return Status::IoError("cannot read checkpoint '" + path + "'");
    }
  }
  if (LooksLikeArena(content)) {
    // Arena-era checkpoint: parse + deep-copy into owned storage (the
    // materialized path; MapCheckpointFile is the zero-copy sibling).
    const auto bytes =
        std::as_bytes(std::span<const char>(content.data(), content.size()));
    ONEX_ASSIGN_OR_RETURN(ArenaView view, ParseArena(bytes));
    ONEX_ASSIGN_OR_RETURN(RealizedArena realized, RealizeArena(view, nullptr));
    return AssembleArenaSnapshot(view, std::move(realized), name);
  }

  const std::size_t eol = content.find('\n');
  if (eol == std::string::npos) {
    return Status::ParseError("checkpoint '" + path + "' has no header");
  }
  {
    TokenCursor cur(std::string_view(content).substr(0, eol));
    ONEX_ASSIGN_OR_RETURN(std::string_view magic, cur.Next());
    if (magic != kCkptMagic) {
      return Status::ParseError("not an ONEX checkpoint file");
    }
    ONEX_ASSIGN_OR_RETURN(long long version, cur.NextInt());
    if (version != kCkptVersion) {
      return Status::ParseError(
          StrFormat("unsupported checkpoint version %lld", version));
    }
    ONEX_ASSIGN_OR_RETURN(long long bytes, cur.NextInt());
    ONEX_ASSIGN_OR_RETURN(std::string_view sum_text, cur.Next());
    ONEX_ASSIGN_OR_RETURN(std::uint64_t expected, ParseHex64(sum_text));
    if (!cur.Done()) {
      return Status::ParseError("trailing bytes in checkpoint header");
    }
    const std::string_view body =
        std::string_view(content).substr(eol + 1);
    if (bytes < 0 || static_cast<std::size_t>(bytes) != body.size()) {
      return Status::ParseError("checkpoint payload length mismatch");
    }
    if (Fnv1a64(body) != expected) {
      return Status::ParseError("checkpoint checksum mismatch");
    }
  }

  // One buffer end to end: the checksum above verified a view, the stream
  // takes the string by move, and seekg skips the header line — no
  // payload-sized copies (checkpoints are sized by whole datasets).
  std::istringstream payload(std::move(content));
  payload.seekg(static_cast<std::streamoff>(eol + 1));
  // Raw section: the exact original-unit values (snapshot_io's
  // denormalization is a display convenience, not a bit-exact inverse).
  std::string line;
  if (!std::getline(payload, line)) {
    return Status::ParseError("checkpoint missing raw section");
  }
  Dataset raw;
  {
    TokenCursor cur(line);
    ONEX_ASSIGN_OR_RETURN(std::string_view tag, cur.Next());
    ONEX_ASSIGN_OR_RETURN(long long count, cur.NextInt());
    if (tag != "raw" || count < 0 || !cur.Done()) {
      return Status::ParseError("malformed checkpoint raw header");
    }
    for (long long s = 0; s < count; ++s) {
      if (!std::getline(payload, line)) {
        return Status::ParseError("checkpoint raw section ends early");
      }
      TokenCursor scur(line);
      ONEX_ASSIGN_OR_RETURN(std::string_view stag, scur.Next());
      if (stag != "s") {
        return Status::ParseError("malformed checkpoint raw series line");
      }
      ONEX_ASSIGN_OR_RETURN(TimeSeries ts, ParseSeriesText(&scur));
      if (!scur.Done()) {
        return Status::ParseError("trailing bytes in checkpoint raw series");
      }
      raw.Add(std::move(ts));
    }
  }

  ONEX_ASSIGN_OR_RETURN(PreparedDataset ds, ReadPreparedPayload(payload, name));
  if (raw.size() != ds.normalized->size()) {
    return Status::ParseError(
        "checkpoint raw/normalized series count mismatch");
  }
  for (std::size_t s = 0; s < raw.size(); ++s) {
    if (raw[s].length() != (*ds.normalized)[s].length()) {
      return Status::ParseError(StrFormat(
          "checkpoint raw/normalized length mismatch in series %zu", s));
    }
  }
  raw.set_name(ds.normalized->name());
  ds.raw = std::make_shared<const Dataset>(std::move(raw));
  return ds;
}

Result<PreparedDataset> MapCheckpointFile(const std::string& path,
                                          const std::string& name) {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const ArenaMapping> mapping,
                        ArenaMapping::Map(path));
  if (!LooksLikeArena(mapping->bytes())) {
    return Status::FailedPrecondition(
        "checkpoint '" + path +
        "' is a legacy ONEXCKPT file; it cannot be served in place");
  }
  ONEX_ASSIGN_OR_RETURN(ArenaView view, ParseArena(mapping->bytes()));
  ONEX_ASSIGN_OR_RETURN(RealizedArena realized, RealizeArena(view, mapping));
  PreparedDataset ds = AssembleArenaSnapshot(view, std::move(realized), name);
  ds.arena = std::move(mapping);
  return ds;
}

Status WriteFileDurably(const std::string& path, std::string_view bytes,
                        bool sync) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(ErrnoMessage("cannot create '" + path + "'"));
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
      std::fflush(f) == 0 && (!sync || ::fsync(::fileno(f)) == 0);
  std::fclose(f);
  if (!wrote) {
    std::remove(path.c_str());
    return Status::IoError(ErrnoMessage("cannot write '" + path + "'"));
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to, bool sync) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    std::remove(from.c_str());
    return Status::IoError(ErrnoMessage("cannot rename '" + from + "'"));
  }
  if (sync) {
    const std::size_t slash = to.find_last_of('/');
    ONEX_RETURN_IF_ERROR(
        SyncDir(slash == std::string::npos ? "." : to.substr(0, slash)));
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       bool sync) {
  const std::string tmp = path + ".tmp";
  ONEX_RETURN_IF_ERROR(WriteFileDurably(tmp, bytes, sync));
  return RenameFile(tmp, path, sync);
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open dir '" + dir + "'"));
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    return Status::IoError(ErrnoMessage("cannot fsync dir '" + dir + "'"));
  }
  return Status::OK();
}

std::string SlotDirName(const std::string& dataset_name) {
  std::string out;
  out.reserve(dataset_name.size());
  for (const char c : dataset_name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (safe) {
      out += c;
    } else {
      out += StrFormat("%%%02X", static_cast<unsigned char>(c));
    }
  }
  return out;
}

}  // namespace onex
