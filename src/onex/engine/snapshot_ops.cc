#include "onex/engine/snapshot_ops.h"

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace onex {

Result<std::shared_ptr<const PreparedDataset>> BuildSnapshot(
    const std::shared_ptr<const PreparedDataset>& current,
    const BaseBuildOptions& options, NormalizationKind norm, bool renormalize,
    TaskPool* pool) {
  auto next = std::make_shared<PreparedDataset>();
  next->name = current->name;
  next->raw = current->raw;
  next->norm_kind = norm;
  if (!renormalize && current->normalized != nullptr &&
      current->norm_kind == norm &&
      current->normalized->size() <= current->raw->size()) {
    // Honor the frozen-normalization contract. The normalized copy may have
    // gone stale while the base sat evicted: whole series appended
    // (size grew) and/or existing series extended at the tail (lengths
    // grew). Catch up only the missing parts with the existing parameters —
    // exactly what a resident append/extend would have done — instead of
    // renormalizing (and silently rescaling) the whole dataset.
    next->norm_params = current->norm_params;
    bool stale = current->normalized->size() < current->raw->size();
    for (std::size_t s = 0; !stale && s < current->normalized->size(); ++s) {
      stale = (*current->normalized)[s].length() != (*current->raw)[s].length();
    }
    if (!stale) {
      next->normalized = current->normalized;
    } else {
      Dataset normalized(current->normalized->name());
      for (std::size_t s = 0; s < current->raw->size(); ++s) {
        const TimeSeries& raw_ts = (*current->raw)[s];
        if (s >= current->normalized->size()) {
          normalized.Add(NormalizeAppended(raw_ts, norm, &next->norm_params));
          continue;
        }
        const TimeSeries& have = (*current->normalized)[s];
        if (have.length() == raw_ts.length()) {
          normalized.Add(have);
          continue;
        }
        std::vector<double> values = have.values();
        values.reserve(raw_ts.length());
        for (std::size_t i = have.length(); i < raw_ts.length(); ++i) {
          values.push_back(NormalizeValue(next->norm_params, s, raw_ts[i]));
        }
        normalized.Add(
            TimeSeries(have.name(), std::move(values), have.label()));
      }
      next->normalized =
          std::make_shared<const Dataset>(std::move(normalized));
    }
  } else {
    ONEX_ASSIGN_OR_RETURN(Dataset normalized,
                          Normalize(*next->raw, norm, &next->norm_params));
    next->normalized =
        std::make_shared<const Dataset>(std::move(normalized));
  }
  ONEX_ASSIGN_OR_RETURN(OnexBase base,
                        OnexBase::Build(next->normalized, options, pool));
  next->base = std::make_shared<const OnexBase>(std::move(base));
  next->build_options = options;
  return std::shared_ptr<const PreparedDataset>(std::move(next));
}

Result<std::shared_ptr<const PreparedDataset>> ApplyAppend(
    const PreparedDataset& current, const TimeSeries& series) {
  if (series.length() < 2) {
    return Status::InvalidArgument("appended series needs >= 2 points");
  }
  auto next = std::make_shared<PreparedDataset>(current);
  // Any mutation promotes a mapped snapshot back to the resident tier: the
  // new base owns its storage (copy-on-write), the arena handle is stale.
  next->arena.reset();
  // Extended raw dataset.
  Dataset raw(current.raw->name());
  for (const TimeSeries& ts : current.raw->series()) raw.Add(ts);
  raw.Add(series);
  next->raw = std::make_shared<const Dataset>(std::move(raw));

  if (current.prepared()) {
    // Normalize the newcomer with the frozen parameters, then insert it
    // into the base without re-grouping the rest.
    TimeSeries norm_series =
        NormalizeAppended(series, current.norm_kind, &next->norm_params);
    ONEX_ASSIGN_OR_RETURN(
        OnexBase extended,
        onex::AppendSeries(*next->base, std::move(norm_series)));
    next->base = std::make_shared<const OnexBase>(std::move(extended));
    next->normalized = next->base->shared_dataset();
  } else if (current.normalized != nullptr) {
    // Base evicted: grow the frozen normalized copy in lockstep (the same
    // values BuildSnapshot's catch-up would derive). This keeps per-series
    // parameters frozen at the newcomer's own pre-extend values, so a
    // later ExtendSeries of this series — and the eventual transparent
    // rebuild — match what a resident append+extend would have produced.
    Dataset normalized(current.normalized->name());
    for (const TimeSeries& ts : current.normalized->series()) {
      normalized.Add(ts);
    }
    normalized.Add(
        NormalizeAppended(series, current.norm_kind, &next->norm_params));
    next->normalized = std::make_shared<const Dataset>(std::move(normalized));
  }
  return std::shared_ptr<const PreparedDataset>(std::move(next));
}

Result<ExtendOutcome> ApplyExtend(
    const PreparedDataset& current,
    std::span<const SeriesExtension> extensions) {
  // One pending tail per series (validation + duplicate merge shared with
  // the core layer).
  ONEX_ASSIGN_OR_RETURN(std::vector<std::vector<double>> pending,
                        MergeExtensions(current.raw->size(), extensions));

  ExtendOutcome outcome;
  for (const std::vector<double>& tail : pending) {
    if (tail.empty()) continue;
    ++outcome.series_extended;
    outcome.points_appended += tail.size();
  }
  auto next = std::make_shared<PreparedDataset>(current);
  next->arena.reset();  // Mutation = copy-on-write promotion off the arena.
  next->raw =
      std::make_shared<const Dataset>(ExtendTails(*current.raw, pending));

  // The same tails in normalized units: mapped through the dataset's
  // frozen parameters, so appended values land in exactly the units the
  // base compares in.
  std::vector<std::vector<double>> norm_pending(pending.size());
  for (std::size_t s = 0; s < pending.size(); ++s) {
    norm_pending[s].reserve(pending[s].size());
    for (const double v : pending[s]) {
      norm_pending[s].push_back(NormalizeValue(current.norm_params, s, v));
    }
  }

  if (current.prepared()) {
    // Insert only the new subsequences into the base.
    std::vector<SeriesExtension> norm_ext;
    for (std::size_t s = 0; s < norm_pending.size(); ++s) {
      if (norm_pending[s].empty()) continue;
      norm_ext.push_back(SeriesExtension{s, std::move(norm_pending[s])});
    }
    ONEX_ASSIGN_OR_RETURN(ExtendResult extended,
                          onex::ExtendSeries(*current.base, norm_ext));
    next->base = std::make_shared<const OnexBase>(std::move(extended.base));
    next->normalized = next->base->shared_dataset();
    outcome.new_members = extended.new_members;
    outcome.drift = std::move(extended.drift);
  } else if (current.normalized != nullptr) {
    // Base evicted: keep the frozen normalized copy in lockstep so the
    // transparent rebuild (DESIGN.md §11) regroups exactly the values a
    // resident extend would have inserted.
    next->normalized = std::make_shared<const Dataset>(
        ExtendTails(*current.normalized, norm_pending));
  }
  outcome.snapshot = std::move(next);
  return outcome;
}

Result<std::shared_ptr<const PreparedDataset>> ApplyRegroup(
    const PreparedDataset& current, std::span<const std::size_t> lengths) {
  if (!current.prepared()) {
    return Status::FailedPrecondition(
        "cannot regroup '" + current.name + "': base is not resident");
  }
  ONEX_ASSIGN_OR_RETURN(OnexBase rebuilt,
                        RegroupLengthClasses(*current.base, lengths));
  auto next = std::make_shared<PreparedDataset>(current);
  next->arena.reset();  // Mutation = copy-on-write promotion off the arena.
  next->base = std::make_shared<const OnexBase>(std::move(rebuilt));
  return std::shared_ptr<const PreparedDataset>(std::move(next));
}

Result<std::shared_ptr<const PreparedDataset>> CanonicalizeSnapshot(
    const PreparedDataset& current) {
  if (!current.prepared()) {
    return Status::FailedPrecondition(
        "cannot canonicalize '" + current.name + "': base is not resident");
  }
  std::vector<LengthClassDraft> drafts;
  drafts.reserve(current.base->length_classes().size());
  for (const LengthClass& cls : current.base->length_classes()) {
    LengthClassDraft draft;
    draft.length = cls.length;
    draft.groups.reserve(cls.groups.size());
    for (const SimilarityGroup& g : cls.groups) {
      GroupBuilder builder(cls.length);
      builder.SetMembers(
          std::vector<SubseqRef>(g.members().begin(), g.members().end()));
      draft.groups.push_back(std::move(builder));
    }
    drafts.push_back(std::move(draft));
  }
  ONEX_ASSIGN_OR_RETURN(
      OnexBase restored,
      OnexBase::Restore(current.base->shared_dataset(), current.base->options(),
                        std::move(drafts),
                        current.base->stats().repaired_members));
  auto next = std::make_shared<PreparedDataset>(current);
  next->arena.reset();  // The restored base owns its storage again.
  next->base = std::make_shared<const OnexBase>(std::move(restored));
  next->normalized = next->base->shared_dataset();
  return std::shared_ptr<const PreparedDataset>(std::move(next));
}

}  // namespace onex
