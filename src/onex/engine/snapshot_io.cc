#include "onex/engine/snapshot_io.h"

#include <cstddef>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"
#include "onex/core/base_io.h"

namespace onex {
namespace {

constexpr const char* kPrepMagic = "ONEXPREP";
constexpr int kPrepVersion = 1;

}  // namespace

Status WritePreparedPayload(const PreparedDataset& ds, std::ostream& out) {
  if (!ds.prepared()) {
    return Status::FailedPrecondition("snapshot '" + ds.name +
                                      "' has no prepared base to serialize");
  }
  out << kPrepMagic << ' ' << kPrepVersion << ' '
      << NormalizationKindToString(ds.norm_kind) << ' '
      << StrFormat("%.17g %.17g", ds.norm_params.min, ds.norm_params.max)
      << ' ' << ds.norm_params.per_series.size();
  for (const auto& [offset, scale] : ds.norm_params.per_series) {
    out << ' ' << StrFormat("%.17g %.17g", offset, scale);
  }
  out << '\n';
  return SaveBase(*ds.base, out);
}

Result<PreparedDataset> ReadPreparedPayload(std::istream& in,
                                            const std::string& name) {
  std::string header;
  if (!std::getline(in, header)) {
    return Status::ParseError("empty prepared-dataset payload");
  }
  const std::vector<std::string> fields = SplitString(header);
  if (fields.size() < 5 || fields[0] != kPrepMagic) {
    return Status::ParseError("not an ONEX prepared-dataset payload");
  }
  ONEX_ASSIGN_OR_RETURN(long long version, ParseInt(fields[1]));
  if (version != kPrepVersion) {
    return Status::ParseError(
        StrFormat("unsupported prepared-dataset version %lld", version));
  }
  PreparedDataset next;
  next.name = name;
  ONEX_ASSIGN_OR_RETURN(next.norm_kind, NormalizationKindFromString(fields[2]));
  next.norm_params.kind = next.norm_kind;
  ONEX_ASSIGN_OR_RETURN(next.norm_params.min, ParseDouble(fields[3]));
  ONEX_ASSIGN_OR_RETURN(next.norm_params.max, ParseDouble(fields[4]));
  if (fields.size() < 6) {
    return Status::ParseError("prepared header missing per-series count");
  }
  ONEX_ASSIGN_OR_RETURN(long long per_series, ParseInt(fields[5]));
  if (per_series < 0 ||
      fields.size() != 6 + 2 * static_cast<std::size_t>(per_series)) {
    return Status::ParseError("prepared header per-series mismatch");
  }
  for (long long i = 0; i < per_series; ++i) {
    ONEX_ASSIGN_OR_RETURN(
        double offset, ParseDouble(fields[6 + 2 * static_cast<std::size_t>(i)]));
    ONEX_ASSIGN_OR_RETURN(
        double scale, ParseDouble(fields[7 + 2 * static_cast<std::size_t>(i)]));
    next.norm_params.per_series.emplace_back(offset, scale);
  }

  ONEX_ASSIGN_OR_RETURN(OnexBase base, LoadBase(in));
  next.base = std::make_shared<const OnexBase>(std::move(base));
  next.normalized = next.base->shared_dataset();
  next.build_options = next.base->options();

  // Recover original units through the stored normalization parameters.
  // Checkpoint files carry the exact raw values alongside and replace this
  // reconstruction (wal.cc); the analyst-facing LOADBASE path keeps it.
  Dataset raw(next.normalized->name());
  for (std::size_t s = 0; s < next.normalized->size(); ++s) {
    const TimeSeries& ts = (*next.normalized)[s];
    std::vector<double> values;
    values.reserve(ts.length());
    for (double v : ts.values()) {
      values.push_back(Denormalize(next.norm_params, s, v));
    }
    raw.Add(TimeSeries(ts.name(), std::move(values), ts.label()));
  }
  next.raw = std::make_shared<const Dataset>(std::move(raw));
  return next;
}

}  // namespace onex
