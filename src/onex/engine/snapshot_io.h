#ifndef ONEX_ENGINE_SNAPSHOT_IO_H_
#define ONEX_ENGINE_SNAPSHOT_IO_H_

#include <iosfwd>
#include <string>

#include "onex/common/result.h"
#include "onex/engine/dataset_registry.h"

namespace onex {

/// Serialization of a prepared slot — the "ONEXPREP 1" format: one header
/// line carrying the normalization kind and parameters, then the core
/// ONEXBASE payload (base_io.h). Shared by the SAVEBASE/LOADBASE session
/// verbs (Engine::SavePrepared / Engine::LoadPrepared) and by the durability
/// layer's checkpoints (DESIGN.md §13), so a checkpoint is readable with the
/// same tooling as an analyst-saved base.
///
/// The snapshot must be prepared (`base != nullptr`); FailedPrecondition
/// otherwise.
Status WritePreparedPayload(const PreparedDataset& ds, std::ostream& out);

/// Parses an ONEXPREP payload into a prepared snapshot named `name`. The
/// base arrives canonical (OnexBase::Restore: centroids and envelopes
/// recomputed from members); `raw` is reconstructed by mapping the
/// normalized values back through the stored parameters — callers holding
/// the exact original raw values (the checkpoint reader) overwrite it.
Result<PreparedDataset> ReadPreparedPayload(std::istream& in,
                                            const std::string& name);

}  // namespace onex

#endif  // ONEX_ENGINE_SNAPSHOT_IO_H_
