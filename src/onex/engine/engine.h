#ifndef ONEX_ENGINE_ENGINE_H_
#define ONEX_ENGINE_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "onex/common/result.h"
#include "onex/common/task_pool.h"
#include "onex/core/analytics.h"
#include "onex/core/incremental.h"
#include "onex/core/onex_base.h"
#include "onex/core/overview.h"
#include "onex/core/query_processor.h"
#include "onex/core/seasonal.h"
#include "onex/core/threshold_advisor.h"
#include "onex/engine/dataset_registry.h"
#include "onex/engine/query_spec.h"
#include "onex/ts/normalization.h"
#include "onex/viz/chart_data.h"

namespace onex {

/// A similarity-search answer enriched with display context.
struct MatchResult {
  BestMatch match;
  std::string matched_series_name;
  /// Normalized values of query and match (the units the base compares in).
  std::vector<double> query_values;
  std::vector<double> match_values;
  QueryStats stats;
  double elapsed_ms = 0.0;
};

/// The ONEX server-side session (Fig 1's middle tier): a thin façade over
/// the multi-dataset DatasetRegistry (DESIGN.md §11) plus every exploratory
/// operation the visual front-end invokes. Thread-safe: slots are
/// individually locked and all query state is immutable shared data,
/// matching the demo's client-server deployment where many browser sessions
/// hit one engine serving a whole dashboard of datasets.
class Engine {
 public:
  Engine() : registry_(&pool_) {}

  /// `registry_options` configures the prepared-base LRU cache (byte
  /// budget; see DatasetRegistryOptions).
  explicit Engine(const DatasetRegistryOptions& registry_options)
      : registry_(&pool_, registry_options) {}

  /// The dataset registry behind this engine: slot inspection
  /// (Describe), LRU budget control and async preparation tickets.
  DatasetRegistry& registry() { return registry_; }
  const DatasetRegistry& registry() const { return registry_; }

  /// Makes the engine durable (DESIGN.md §13): recovers every slot found
  /// under `options.dir` (checkpoint + WAL tail, replayed through the same
  /// writers the live paths use, so the recovered state is bit-identical to
  /// the pre-crash memory image), journals every later acknowledged
  /// mutation write-ahead, and checkpoints in the background per
  /// `options.checkpoint_every`. Call once, before serving traffic;
  /// datasets loaded earlier in this process are bootstrapped into the
  /// data dir. This is what `onexd --data-dir=` and the PERSIST verb call.
  Status EnableDurability(const DurabilityOptions& options) {
    return registry_.Recover(options);
  }

  /// Registers a dataset ("Data Loading into ONEX": one click). Fails with
  /// AlreadyExists on name collision.
  Status LoadDataset(const std::string& name, Dataset dataset);

  /// Loads a UCR-format file from disk under `name`.
  Status LoadUcrFile(const std::string& name, const std::string& path);

  Status DropDataset(const std::string& name);
  std::vector<std::string> ListDatasets() const;

  /// Immutable snapshot of a registered dataset.
  Result<std::shared_ptr<const PreparedDataset>> Get(
      const std::string& name) const;

  /// Normalizes and groups: "triggers the preprocessing of this data at the
  /// server side and its loading into the respective ONEX Base". Re-prepare
  /// with different options replaces the base atomically.
  Status Prepare(const std::string& name, const BaseBuildOptions& options,
                 NormalizationKind normalization =
                     NormalizationKind::kMinMaxDataset);

  /// Prepare scheduled on the engine's task pool; the returned ticket
  /// reports completion and status. Queries against the old base (and every
  /// other dataset) keep running while the job builds.
  PrepareTicket PrepareAsync(const std::string& name,
                             const BaseBuildOptions& options,
                             NormalizationKind normalization =
                                 NormalizationKind::kMinMaxDataset);

  /// Appends one series (original units) to a loaded dataset. If the dataset
  /// is prepared, the series is normalized with the dataset's frozen
  /// normalization parameters and inserted into the base incrementally
  /// (core/incremental.h) — no full re-preprocessing. Snapshot semantics:
  /// concurrent readers keep the pre-append state.
  Status AppendSeries(const std::string& name, TimeSeries series);

  /// One pending tail for ExtendSeries: `points` (original units) to append
  /// to series `series` of the target dataset. Same shape as the core
  /// layer's extension record — the engine's job is only to map the points
  /// into normalized units before handing them down.
  using ExtendSpec = SeriesExtension;

  /// What one extend did to the dataset, plus the maintenance signals the
  /// streaming dashboard watches (DESIGN.md §12).
  struct ExtendSummary {
    std::size_t series_extended = 0;  ///< Distinct series that grew.
    std::size_t points_appended = 0;
    /// Subsequences the new points created and the base absorbed (0 when
    /// the dataset is unprepared or its base sits evicted — the raw/
    /// normalized tails still grow, and the transparent rebuild groups
    /// them on the next query).
    std::size_t new_members = 0;
    /// Post-extend drift of the length classes this extend touched, and the
    /// largest fraction among them.
    std::vector<LengthClassDrift> drift;
    double max_drift = 0.0;
    /// Set when the drift policy scheduled a background regroup; `regroup`
    /// is that job's ticket.
    bool regroup_scheduled = false;
    PrepareTicket regroup;
  };

  /// Streaming point-appends: extends existing series at the tail (the
  /// TimePool "which and when" scenario — live feeds ticking while the
  /// analyst explores). New points are normalized with the dataset's frozen
  /// parameters; only the subsequences they create are generated and
  /// inserted under the build-time leader rule (core/incremental.h), so the
  /// offline grouping work is never repeated. When the per-class drift
  /// crosses the registry's threshold, a background regroup of the drifted
  /// classes is scheduled on the engine's task pool. Snapshot semantics
  /// match AppendSeries: conditional install, retry on a lost race,
  /// concurrent readers keep the pre-extend state.
  Result<ExtendSummary> ExtendSeries(const std::string& name,
                                     std::size_t series,
                                     std::vector<double> points);

  /// Batched multi-extend: all tails land in one snapshot build and one
  /// conditional install — the shape a collector draining a poll cycle of
  /// many feeds wants. Duplicate series entries concatenate in order.
  Result<ExtendSummary> ExtendSeries(const std::string& name,
                                     std::vector<ExtendSpec> extensions);

  /// Persists a prepared dataset (normalized values, groups, build options
  /// and normalization parameters) so later sessions skip preprocessing.
  Status SavePrepared(const std::string& name, const std::string& path) const;

  /// Loads a dataset persisted by SavePrepared and registers it as `name`
  /// (AlreadyExists on collision). The dataset arrives prepared; the raw
  /// values are recovered through the stored normalization parameters.
  Status LoadPrepared(const std::string& name, const std::string& path);

  /// Best match for the query across the prepared base (Similarity View).
  Result<MatchResult> SimilaritySearch(const std::string& name,
                                       const QuerySpec& query,
                                       const QueryOptions& options = {}) const;

  /// k best matches, ascending by normalized DTW.
  Result<std::vector<MatchResult>> Knn(const std::string& name,
                                       const QuerySpec& query, std::size_t k,
                                       const QueryOptions& options = {}) const;

  /// Executes many independent similarity searches in one call, fanned
  /// across the engine's task pool — one round-trip serves a dashboard's
  /// worth of linked-view queries (DESIGN.md §6). Results arrive in query
  /// order and are identical to issuing the same SimilaritySearch calls one
  /// at a time; on any per-query failure the whole batch reports the
  /// lowest-indexed error. Empty input yields an empty result.
  Result<std::vector<MatchResult>> SimilaritySearchBatch(
      const std::string& name, const std::vector<QuerySpec>& queries,
      const QueryOptions& options = {}) const;

  /// Batch form of Knn: results[i] holds the k best matches for queries[i].
  /// Same ordering, determinism and error semantics as
  /// SimilaritySearchBatch.
  Result<std::vector<std::vector<MatchResult>>> KnnBatch(
      const std::string& name, const std::vector<QuerySpec>& queries,
      std::size_t k, const QueryOptions& options = {}) const;

  /// Analytics verbs on the group structure (core/analytics.h, DESIGN.md
  /// §18). All four run against the prepared base snapshot — an evicted
  /// base is transparently re-prepared, exactly like a query.

  /// Nearest-centroid anomaly scores + DBSCAN-style outlier flags.
  Result<AnomalyReport> Anomaly(const std::string& name,
                                const AnomalyOptions& options = {}) const;

  /// BOCPD over one series' normalized values (streamed EXTEND tails
  /// included — the recursion sees whatever the series holds now).
  Result<ChangepointReport> Changepoint(
      const std::string& name, std::size_t series,
      const ChangepointOptions& options = {}) const;

  /// Densest groups, exact motif pair and discords per length class.
  Result<MotifReport> Motif(const std::string& name,
                            const MotifOptions& options = {}) const;

  /// A forecast in both unit systems: the analytics layer predicts in
  /// normalized units; the engine maps the points back through the
  /// dataset's frozen normalization so clients chart domain units.
  struct ForecastResult {
    ForecastReport report;
    std::vector<double> raw_values;  ///< report.values, denormalized.
    std::string series_name;
  };

  /// Nearest-group-continuation or seasonal-naive baseline forecast.
  Result<ForecastResult> Forecast(const std::string& name, std::size_t series,
                                  const ForecastOptions& options = {}) const;

  /// Repeating patterns within one series (Seasonal View).
  Result<std::vector<SeasonalPattern>> Seasonal(
      const std::string& name, std::size_t series_idx,
      const SeasonalOptions& options = {}) const;

  /// Data-driven ST suggestions, computed on the normalized values when the
  /// dataset is prepared (so they are directly usable as build thresholds)
  /// and on raw values otherwise (so the analyst sees domain units).
  Result<ThresholdReport> RecommendThresholds(
      const std::string& name,
      const ThresholdAdvisorOptions& options = {}) const;

  /// Overview Pane data: top groups by cardinality.
  Result<std::vector<OverviewEntry>> Overview(
      const std::string& name, const OverviewOptions& options = {}) const;

  /// One Query-Selection-Pane entry: "each visualized by its name and a
  /// small line graph" (Fig 2, bottom left). The preview is a PAA sketch of
  /// the raw series, cheap enough to ship for every series in the catalog.
  struct CatalogEntry {
    std::string series_name;
    std::string label;
    std::size_t length = 0;
    std::vector<double> preview;  ///< PAA of the raw values.
  };

  /// Catalog of all series in a loaded dataset (prepared or not), in
  /// dataset order. `preview_points` bounds the thumbnail resolution.
  Result<std::vector<CatalogEntry>> Catalog(
      const std::string& name, std::size_t preview_points = 24) const;

  /// Chart builders for a previously obtained match (Figs 2-3).
  Result<viz::MultiLineChartData> MatchMultiLineChart(
      const std::string& name, const MatchResult& result) const;
  Result<viz::RadialChartData> MatchRadialChart(
      const std::string& name, const MatchResult& result) const;
  Result<viz::ConnectedScatterData> MatchConnectedScatter(
      const std::string& name, const MatchResult& result) const;
  Result<viz::SeasonalViewData> SeasonalView(
      const std::string& name, std::size_t series_idx,
      const SeasonalOptions& options = {}) const;

  /// Resolves a QuerySpec to normalized values against `target`'s
  /// normalization (public for tests and benches).
  Result<std::vector<double>> ResolveQuery(const PreparedDataset& target,
                                           const QuerySpec& spec) const;

  /// Cumulative LB_Kim → LB_Keogh → DTW cascade work over every similarity
  /// query this engine has served (MATCH, KNN and each BATCH entry all run
  /// through the same path). The per-query QueryStats attribution invariants
  /// carry over: pruned_kim + pruned_keogh counts every lower-bound prune,
  /// dtw_evals every dynamic program that actually ran. Surfaced by the
  /// STATS verb so a dashboard can watch pruning effectiveness live.
  struct QueryCounters {
    std::uint64_t queries = 0;  ///< Similarity searches executed.
    std::uint64_t pruned_kim = 0;
    std::uint64_t pruned_keogh = 0;
    std::uint64_t dtw_evals = 0;
  };

  /// A consistent-enough snapshot of the counters (each field is read
  /// atomically; fields may straddle a concurrent query).
  QueryCounters query_counters() const;

 private:
  Result<std::shared_ptr<const PreparedDataset>> GetPrepared(
      const std::string& name) const;

  /// One resolved query against one prepared snapshot; shared by the single
  /// and batch entry points so both produce identical results.
  Result<std::vector<MatchResult>> RunKnn(const PreparedDataset& ds,
                                          std::vector<double> qvals,
                                          std::size_t k,
                                          const QueryOptions& options) const;

  /// Batch fan-out, parallel queries and async preparation jobs run here.
  /// Lazy: threads spawn on first parallel call, so engines that never ask
  /// for parallelism cost nothing extra. Declared before registry_, whose
  /// destructor drains in-flight preparation jobs off this pool.
  mutable TaskPool pool_;
  /// Mutable because read paths touch LRU stamps and may transparently
  /// re-prepare an evicted base (DESIGN.md §11).
  mutable DatasetRegistry registry_;

  /// Lifetime cascade counters; relaxed atomics because queries (including
  /// batch fan-out lanes) accumulate concurrently and only monotone totals
  /// are observed.
  mutable std::atomic<std::uint64_t> queries_served_{0};
  mutable std::atomic<std::uint64_t> pruned_kim_total_{0};
  mutable std::atomic<std::uint64_t> pruned_keogh_total_{0};
  mutable std::atomic<std::uint64_t> dtw_evals_total_{0};
};

}  // namespace onex

#endif  // ONEX_ENGINE_ENGINE_H_
