#ifndef ONEX_ENGINE_SNAPSHOT_OPS_H_
#define ONEX_ENGINE_SNAPSHOT_OPS_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "onex/common/result.h"
#include "onex/common/task_pool.h"
#include "onex/core/incremental.h"
#include "onex/engine/dataset_registry.h"
#include "onex/ts/normalization.h"

namespace onex {

/// The snapshot writers — every state transition a slot can take, as pure
/// functions from one immutable PreparedDataset to the next. The live write
/// paths (Engine::AppendSeries / Engine::ExtendSeries conditional-install
/// loops, DatasetRegistry::Prepare, the transparent rebuild, the drift
/// regroup) and WAL replay (DESIGN.md §13) share these, so recovery
/// provably converges with the live path: the same inputs flow through the
/// same code, byte for byte.

/// The one preparation pipeline, shared by Prepare, the transparent rebuild
/// after eviction, and WAL replay. With `renormalize` (explicit Prepare) the
/// normalization always re-runs from raw, re-baselining dataset-level
/// extrema exactly as a fresh Prepare always has — the analyst's one knob
/// for folding appended out-of-range values into the scale. Without it
/// (the transparent rebuild) the snapshot's frozen normalization is
/// preserved: the existing copy is reused, and newcomers appended while
/// the slot sat evicted are normalized with the frozen parameters, so
/// rebuilt answers match what a resident base would have returned. Runs
/// with no lock held.
Result<std::shared_ptr<const PreparedDataset>> BuildSnapshot(
    const std::shared_ptr<const PreparedDataset>& current,
    const BaseBuildOptions& options, NormalizationKind norm, bool renormalize,
    TaskPool* pool);

/// One whole-series append (raw units): the grown raw dataset plus — when
/// the snapshot is prepared — the incremental base insert under the frozen
/// normalization, or — when the base sits evicted — the normalized copy
/// grown in lockstep. InvalidArgument on a series shorter than 2 points.
Result<std::shared_ptr<const PreparedDataset>> ApplyAppend(
    const PreparedDataset& current, const TimeSeries& series);

/// Outcome of ApplyExtend: the next snapshot plus the maintenance signals
/// the drift policy consumes.
struct ExtendOutcome {
  std::shared_ptr<const PreparedDataset> snapshot;
  std::size_t series_extended = 0;
  std::size_t points_appended = 0;
  std::size_t new_members = 0;
  std::vector<LengthClassDrift> drift;
};

/// Streaming tail-extend (raw units): tails are normalized with the frozen
/// parameters and only the subsequences they create join the base
/// (core/incremental.h). Duplicate series entries concatenate in order.
Result<ExtendOutcome> ApplyExtend(
    const PreparedDataset& current,
    std::span<const SeriesExtension> extensions);

/// Drift repair: rebuilds just the named length classes of a prepared
/// snapshot (fresh leader clustering; core/incremental.h).
/// FailedPrecondition when the snapshot is not prepared.
Result<std::shared_ptr<const PreparedDataset>> ApplyRegroup(
    const PreparedDataset& current, std::span<const std::size_t> lengths);

/// The canonical image of a prepared snapshot: the state a save/load round
/// trip through the ONEXPREP format produces — same dataset, options and
/// group membership, centroids and envelopes recomputed from members
/// (OnexBase::Restore). Under kFixedLeader this is bitwise the input; under
/// the running-mean policies incremental centroid updates and the restored
/// member mean can differ in final ulps, which is exactly why a checkpoint
/// must install this image into the live slot when it truncates the log
/// (DESIGN.md §13): after adoption, live state and checkpoint file agree
/// bit for bit. FailedPrecondition when the snapshot is not prepared.
Result<std::shared_ptr<const PreparedDataset>> CanonicalizeSnapshot(
    const PreparedDataset& current);

}  // namespace onex

#endif  // ONEX_ENGINE_SNAPSHOT_OPS_H_
