#ifndef ONEX_ENGINE_DATASET_REGISTRY_H_
#define ONEX_ENGINE_DATASET_REGISTRY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/result.h"
#include "onex/common/task_pool.h"
#include "onex/core/incremental.h"
#include "onex/core/onex_base.h"
#include "onex/ts/normalization.h"

namespace onex {

struct WalRecord;    // engine/wal.h
struct SlotJournal;  // dataset_registry.cc
class ArenaMapping;  // core/arena_layout.h

/// A dataset registered with the engine: raw values, their normalized copy,
/// and (after Prepare) the ONEX base. Immutable once built, so concurrent
/// readers share it without locking.
struct PreparedDataset {
  std::string name;
  std::shared_ptr<const Dataset> raw;
  std::shared_ptr<const Dataset> normalized;
  NormalizationParams norm_params;
  NormalizationKind norm_kind = NormalizationKind::kMinMaxDataset;
  /// Null until Prepare() has run (or after the LRU cache evicted the base).
  std::shared_ptr<const OnexBase> base;
  BaseBuildOptions build_options;
  /// Non-null when `base` serves out of an mmap'd ONEXARENA checkpoint (the
  /// mapped tier, DESIGN.md §17). The base itself also pins the mapping, so
  /// this handle is tier bookkeeping, not a lifetime requirement. Every
  /// mutation writer (snapshot_ops) clears it: a mutated snapshot owns its
  /// storage again — copy-on-write promotion back to the resident tier.
  std::shared_ptr<const ArenaMapping> arena;

  bool prepared() const { return base != nullptr; }
  bool mapped() const { return arena != nullptr; }
};

/// Completion ticket for an asynchronous job scheduled on the shared
/// TaskPool (preparation, regroup, checkpoint). Copyable; a default-
/// constructed ticket is empty and reports done with an Internal status.
class PrepareTicket {
 public:
  PrepareTicket() = default;

  bool valid() const { return result_ != nullptr; }
  bool done() const { return handle_.done(); }

  /// Blocks until the job retires and returns its outcome.
  Status Wait() const;

 private:
  friend class DatasetRegistry;
  TaskHandle handle_;
  std::shared_ptr<Status> result_;
};

struct DatasetRegistryOptions {
  /// Byte budget for resident prepared bases, measured as the sum of
  /// OnexBase::MemoryUsage() (GroupStore footprints). 0 = unlimited. When a
  /// newly prepared base pushes the total over budget, the least recently
  /// used other bases are evicted; a single base larger than the whole
  /// budget stays resident while it is the most recent.
  std::size_t prepared_budget_bytes = 0;
  /// Drift fraction (LengthClassDrift::fraction, per length class) above
  /// which an extend schedules a background regroup of the drifted classes
  /// (DESIGN.md §12). 0 disables automatic regrouping; DRIFT/RegroupAsync
  /// still allow manual repair.
  double drift_threshold = 0.0;
  /// Serve clean over-budget slots from their mmap'd arena checkpoint
  /// instead of stripping the base (DESIGN.md §17): the first query after
  /// eviction is a page-in, not a rebuild. Off reverts to strip + rebuild.
  /// Only effective once durability is on — the arena IS the checkpoint.
  bool mapped_tier = true;
};

/// Configuration of the durability layer (DESIGN.md §13): where slot
/// journals live and when background checkpoints fire.
struct DurabilityOptions {
  /// Root data directory; one subdirectory per slot. Created if missing.
  std::string dir;
  /// Journaled mutations since the last checkpoint that trigger a
  /// background checkpoint of a prepared slot. 0 = manual CHECKPOINT only.
  std::uint64_t checkpoint_every = 0;
  /// fsync WAL appends and checkpoint files before acknowledging. Disable
  /// only where the test harness wants speed over power-loss safety — the
  /// data still reaches the file (flushed), so a process crash loses
  /// nothing either way.
  bool fsync = true;
};

/// Durability counters for one slot, surfaced by PERSIST/STATS.
struct SlotDurability {
  bool durable = false;
  std::uint64_t last_seq = 0;  ///< Sequence of the newest journaled record.
  std::uint64_t records_since_checkpoint = 0;
  std::uint64_t last_checkpoint_seq = 0;  ///< State seq of the newest ckpt.
  std::uint64_t checkpoints_completed = 0;
};

/// Outcome of a synchronous checkpoint.
struct CheckpointInfo {
  /// The log position the checkpoint captured: every record <= state_seq is
  /// folded into the snapshot file, the WAL restarts after it.
  std::uint64_t state_seq = 0;
  std::size_t bytes = 0;  ///< Checkpoint file size.
};

/// One row of DatasetRegistry::Describe().
struct DatasetSlotInfo {
  std::string name;
  std::size_t series = 0;
  bool prepared = false;
  /// The base was dropped by the LRU policy; the next query re-prepares it
  /// transparently from the remembered build recipe.
  bool evicted = false;
  std::size_t prepared_bytes = 0;
  /// A background drift regroup for this slot is in flight.
  bool regrouping = false;
  /// Largest per-class drift fraction observed by the most recent extend or
  /// regroup of this slot (0 until streaming writes happen).
  double last_max_drift = 0.0;
  /// Durability view (DESIGN.md §13); all zero when durability is off.
  bool durable = false;
  std::uint64_t wal_seq = 0;
  std::uint64_t wal_dirty = 0;  ///< Records since the last checkpoint.
  std::uint64_t checkpoints = 0;
  /// Serving tier (DESIGN.md §17): "resident" (owned base in RAM),
  /// "mapped" (serving from an mmap'd arena checkpoint), "evicted" (recipe
  /// only, rebuild on next use) or "raw" (never prepared).
  std::string tier;
  std::size_t mapped_bytes = 0;  ///< Arena bytes backing a mapped base.
  bool pinned = false;           ///< TIER pin: exempt from downgrade/evict.
};

/// Maintenance view of one slot: the streaming-ingest counters the DRIFT
/// verb and dataset stats surface (DESIGN.md §12).
struct MaintenanceStatus {
  double drift_threshold = 0.0;  ///< Registry-wide trigger (0 = disabled).
  double last_max_drift = 0.0;
  bool regroup_in_flight = false;
  std::uint64_t regroups_completed = 0;
};

/// The engine's sharded dataset store (DESIGN.md §11): named slots, each
/// owning an immutable PreparedDataset snapshot, with
///
///   - per-slot shared/exclusive locking, so queries on dataset A proceed
///     while dataset B is being prepared, replaced or evicted;
///   - an LRU cache over prepared bases bounded by a configurable byte
///     budget (cost = GroupStore footprint via OnexBase::MemoryUsage());
///     evicted bases re-prepare transparently on the next query;
///   - preparation jobs schedulable on the shared TaskPool (PrepareAsync),
///     so a server session can stage the next dashboard's dataset while the
///     current one keeps answering;
///   - streaming maintenance (DESIGN.md §12): per-slot drift accounting fed
///     by Engine::ExtendSeries and a drift-triggered background regroup
///     (RegroupAsync / MaybeScheduleRegroup) that rebuilds just the drifted
///     length classes and installs conditionally like every other writer;
///   - optional durability (DESIGN.md §13): once Recover() has run, every
///     acknowledged mutation is journaled write-ahead into a per-slot
///     versioned WAL, checkpoints fold the log into ONEXPREP snapshots, and
///     the next Recover() reconstructs every slot bit-identically to the
///     pre-crash in-memory state.
///
/// Lock order: a slot lock may be taken while no registry lock is held, and
/// the registry map lock may be taken while holding one slot lock — never
/// the reverse, and never two slot locks at once.
class DatasetRegistry {
 public:
  /// `pool` runs async preparation jobs (nullptr = TaskPool::Shared()). The
  /// pool must outlive the registry.
  explicit DatasetRegistry(TaskPool* pool = nullptr,
                           const DatasetRegistryOptions& options = {});

  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Destruction waits for in-flight async jobs so their slots cannot
  /// outlive the registry's accounting.
  ~DatasetRegistry();

  /// Creates a slot holding `dataset` (unprepared). AlreadyExists on name
  /// collision; InvalidArgument on empty name or dataset.
  Status Load(const std::string& name, Dataset dataset);

  /// Creates a slot from an externally assembled snapshot (the engine's
  /// LoadPrepared path). AlreadyExists on name collision.
  Status Adopt(const std::string& name,
               std::shared_ptr<const PreparedDataset> snapshot);

  /// Atomically replaces `name`'s snapshot (the engine's append/extend
  /// path). Readers holding the old snapshot keep it; accounting and the
  /// LRU policy see the new one. With `expected` non-null the swap is
  /// conditional on the slot still holding `expected`; returns whether the
  /// swap happened (always true when unconditional), so callers can
  /// rebuild-and-retry instead of clobbering a concurrent writer. With
  /// `record` non-null and the slot journaled, the record is journaled
  /// write-ahead — under the same slot lock, before the swap is visible —
  /// so WAL order always equals install order; a journal failure fails the
  /// whole call and nothing is installed. A null `record` on a journaled
  /// slot reports a lost race (false): the caller observed durability off
  /// before PERSIST armed it, and must retry with a record — an
  /// acknowledged write is never left out of the log.
  Result<bool> Replace(const std::string& name,
                       std::shared_ptr<const PreparedDataset> snapshot,
                       const PreparedDataset* expected = nullptr,
                       WalRecord* record = nullptr);

  Status Drop(const std::string& name);
  std::vector<std::string> List() const;
  std::vector<DatasetSlotInfo> Describe() const;

  /// Immutable snapshot of a slot, prepared or not.
  Result<std::shared_ptr<const PreparedDataset>> Get(
      const std::string& name) const;

  /// Prepared snapshot for query execution. Touches the slot's LRU stamp;
  /// if the base was evicted, rebuilds it from the remembered recipe before
  /// returning (concurrent callers rebuild once). FailedPrecondition when
  /// the slot was never prepared.
  Result<std::shared_ptr<const PreparedDataset>> GetPrepared(
      const std::string& name);

  /// Normalizes and groups `name`'s raw data, swapping the new snapshot in
  /// atomically. The expensive build runs outside every lock, so concurrent
  /// queries — including queries on this dataset, against the old snapshot —
  /// are never blocked.
  Status Prepare(const std::string& name, const BaseBuildOptions& options,
                 NormalizationKind normalization);

  /// Prepare scheduled as a job on the task pool; returns immediately.
  PrepareTicket PrepareAsync(const std::string& name,
                             const BaseBuildOptions& options,
                             NormalizationKind normalization);

  /// Current byte budget for resident prepared bases (0 = unlimited).
  /// Shrinking the budget evicts immediately.
  void SetPreparedBudget(std::size_t bytes);
  std::size_t prepared_budget() const;

  /// Bytes of currently resident prepared bases.
  std::size_t prepared_bytes() const;

  /// Drift fraction that triggers automatic regrouping (0 disables;
  /// negative values clamp to 0). Applies to extends that install after the
  /// call.
  void SetDriftThreshold(double fraction);
  double drift_threshold() const;

  /// Maintenance counters for one slot.
  Result<MaintenanceStatus> Maintenance(const std::string& name) const;

  /// Schedules a background regroup of `lengths` (fresh leader clustering
  /// of those classes; core/incremental.h) on the task pool. The job reads
  /// the newest snapshot, rebuilds outside every lock and installs
  /// conditionally — on a lost race against a concurrent writer it retries
  /// from the newer snapshot, exactly like Prepare. At most one regroup per
  /// slot is in flight: a second call returns a completed ticket carrying
  /// FailedPrecondition. A slot whose base is evicted reports OK without
  /// work (the transparent rebuild regroups everything anyway).
  PrepareTicket RegroupAsync(const std::string& name,
                             std::vector<std::size_t> lengths);

  /// The drift policy: records `drift` (the report of an extend that just
  /// installed into `name`) and, when any class's fraction exceeds the
  /// threshold and no regroup is already in flight, schedules RegroupAsync
  /// over the offending classes. Returns the scheduled job's ticket, or an
  /// empty (invalid) ticket when nothing was scheduled.
  PrepareTicket MaybeScheduleRegroup(const std::string& name,
                                     const std::vector<LengthClassDrift>& drift);

  // --- Tiered storage (DESIGN.md §17) -------------------------------------

  /// Current serving tier of `name`: "resident", "mapped", "evicted" or
  /// "raw" (see DatasetSlotInfo::tier).
  Result<std::string> Tier(const std::string& name) const;

  /// Pins or unpins a slot. A pinned slot is exempt from LRU eviction and
  /// from the mapped-tier downgrade — it stays resident once prepared.
  Status SetPinned(const std::string& name, bool pinned);

  /// Downgrades `name` to its mmap'd arena checkpoint now (the TIER verb's
  /// manual demote). Requires durability on, a checkpoint covering every
  /// journaled record (wal_dirty == 0 — otherwise the arena on disk is
  /// stale), a resident base, and no pin. The swap needs no WAL record:
  /// with zero records since the checkpoint the live snapshot IS the
  /// checkpoint's canonical image, so replay converges either way.
  Status Demote(const std::string& name);

  /// Bytes of arena-mapped bases currently serving cold slots; accounted
  /// separately from prepared_bytes() (mapped pages are reclaimable cache,
  /// not owned heap).
  std::size_t mapped_bytes() const;

  // --- Durability (DESIGN.md §13) -----------------------------------------

  /// Opens `options.dir`, replays every slot directory found there
  /// (checkpoint file + WAL tail, through the same snapshot writers the
  /// live paths use), bootstraps journals for slots loaded before this
  /// call, and arms write-ahead journaling for everything after. Call once,
  /// before serving traffic; FailedPrecondition on a second call. A torn
  /// WAL tail (crash mid-append) is truncated and recovered past — that
  /// write was never acknowledged; any other corruption (mid-log checksum
  /// failure, duplicated tail, damaged checkpoint) is a structured error
  /// naming the slot, never a silently wrong base.
  Status Recover(const DurabilityOptions& options);

  bool durable() const { return durable_.load(); }
  std::string data_dir() const;

  /// Folds `name`'s journal into a fresh checkpoint file now: serializes
  /// the current prepared snapshot (ONEXPREP payload plus exact raw
  /// values), installs the snapshot's canonical image into the live slot
  /// under the same critical section that restarts the WAL, and deletes
  /// the superseded log. The adoption is what makes recovery bit-exact:
  /// after a checkpoint, the live base and the checkpoint file agree down
  /// to the last centroid ulp (snapshot_ops.h, CanonicalizeSnapshot).
  /// FailedPrecondition when durability is off or the slot's base is not
  /// resident (checkpointing never forces an evicted base back in).
  Result<CheckpointInfo> Checkpoint(const std::string& name);

  /// Checkpoint scheduled on the task pool; at most one in flight per slot
  /// (a second call returns a completed FailedPrecondition ticket).
  PrepareTicket CheckpointAsync(const std::string& name);

  /// Durability counters for one slot.
  Result<SlotDurability> Durability(const std::string& name) const;

  // --- Replication (DESIGN.md §16) ----------------------------------------

  /// Observer of every record this registry journals on its own behalf (the
  /// primary role). Fired under the owning slot's exclusive lock immediately
  /// after the write-ahead append succeeds, so sink order is exactly WAL
  /// order per dataset; the callback must therefore be cheap (enqueue, not
  /// ship). `encoded` is the full WAL line including the trailing newline —
  /// the very bytes on disk, ready to stream verbatim. Records applied via
  /// ApplyReplicated do NOT reach the sink: replicas relay nothing.
  using WalSink = std::function<void(const std::string& dataset,
                                     const WalRecord& record,
                                     const std::string& encoded)>;

  /// Installs (or clears, with nullptr) the sink. Set before traffic starts;
  /// swapping sinks mid-stream is not synchronized against in-flight
  /// installs.
  void SetWalSink(WalSink sink);

  /// Applies one record shipped from a primary's WAL, preserving its
  /// sequence number: journals it via WalWriter::AppendAt under the slot
  /// lock, then installs the snapshot produced by the same per-record
  /// apply switch recovery uses — so a replica that has acked seq S is
  /// bit-identical to a primary recovered at seq S. Requirements: the
  /// registry is durable, and records for one dataset arrive in seq order
  /// (the replication link is a single ordered stream). A record at or
  /// below the slot's floor is skipped as a duplicate delivery (OK); a gap
  /// is FailedPrecondition — the caller must resubscribe from its floor.
  /// kLoad creates the slot; the dataset must not already exist locally
  /// unless the record is a duplicate.
  Status ApplyReplicated(const std::string& name, const WalRecord& record);

 private:
  struct Slot {
    /// Shared by queries reading the snapshot pointer, exclusive for swaps
    /// and evictions. Held only for pointer reads/writes — and, with
    /// durability on, the write-ahead journal append bound to a swap —
    /// never across a build or a query.
    mutable std::shared_mutex mutex;
    /// Serializes transparent re-preparation so one rebuilder runs while
    /// late arrivals wait for its result.
    std::mutex reprepare_mutex;
    std::shared_ptr<const PreparedDataset> snapshot;
    /// Set once the slot has been prepared: the recipe GetPrepared replays
    /// after an eviction.
    bool has_recipe = false;
    BaseBuildOptions recipe_options;
    NormalizationKind recipe_norm = NormalizationKind::kMinMaxDataset;
    /// LRU stamp (registry clock value at last prepared use).
    std::atomic<std::uint64_t> last_used{0};
    /// Accounted base bytes while resident; mutated under map_mutex_.
    std::atomic<std::size_t> base_bytes{0};
    /// One background drift regroup per slot at a time (DESIGN.md §12).
    std::atomic<bool> regroup_inflight{false};
    std::atomic<double> last_max_drift{0.0};
    std::atomic<std::uint64_t> regroups_completed{0};
    /// Write-ahead journal; null until durability is enabled.
    std::shared_ptr<SlotJournal> journal;
    /// TIER pin: exempt from LRU eviction and mapped-tier downgrade.
    std::atomic<bool> pinned{false};
    /// Arena bytes backing this slot while mapped; mutated under map_mutex_
    /// (same discipline as base_bytes).
    std::atomic<std::size_t> mapped_bytes{0};
  };

  Result<std::shared_ptr<Slot>> FindSlot(const std::string& name) const;
  void TouchLocked(Slot* slot) const;

  /// Swaps `snapshot` into `slot` (exclusive lock), journaling `record`
  /// write-ahead when durability is on, updates the byte accounting —
  /// skipping it if the slot was dropped from the map while an async job
  /// built the snapshot — and evicts LRU victims over budget. With
  /// `expected` non-null the swap is conditional: it only happens if the
  /// slot still holds `expected` (returns false otherwise), which is how
  /// the transparent rebuild avoids clobbering a Replace or Prepare that
  /// landed while it was building. A journal failure is an error: nothing
  /// was installed and the slot's WAL is latched read-only. With
  /// `replicated` the record keeps its primary-assigned seq (AppendAt), the
  /// WAL sink stays silent (replicas relay nothing) and no background
  /// checkpoint is scheduled (a rotation would truncate the history a
  /// promoted replica re-ships).
  Result<bool> Install(const std::shared_ptr<Slot>& slot,
                       const std::string& name,
                       std::shared_ptr<const PreparedDataset> snapshot,
                       const PreparedDataset* expected = nullptr,
                       WalRecord* record = nullptr, bool replicated = false);

  /// Evicts least-recently-used prepared bases until the total fits the
  /// budget. `keep` (may be null) is never evicted — it is the slot whose
  /// base was just installed for immediate use.
  void EvictOverBudget(const Slot* keep);

  /// Attempts the mapped-tier downgrade (DESIGN.md §17): maps the slot's
  /// newest arena checkpoint and assembles a snapshot whose base borrows the
  /// mapping. Caller holds the slot's exclusive lock (NOT map_mutex_ — the
  /// map+parse does file I/O) and performs the swap and all byte accounting
  /// itself. Returns null when the slot is ineligible (mapped tier off,
  /// pinned, no journal floor, dirty WAL, no checkpoint, already mapped) or
  /// the map/parse failed — callers fall back to the legacy strip.
  std::shared_ptr<const PreparedDataset> TryDowngradeLocked(
      const std::string& name, Slot* slot);

  /// Enqueues the regroup job for a slot whose regroup_inflight flag the
  /// caller just claimed; the job releases the flag when it retires.
  PrepareTicket ScheduleRegroup(const std::string& name,
                                std::shared_ptr<Slot> slot,
                                std::vector<std::size_t> lengths);

  /// Runs a scheduled regroup to completion: conditional-install retry loop
  /// plus the slot's maintenance accounting.
  Status RunRegroup(const std::string& name, const std::shared_ptr<Slot>& slot,
                    const std::vector<std::size_t>& lengths);

  /// Creates `name`'s journal directory and WAL. With `load_record` the
  /// slot's raw dataset is journaled as the first record (the Load path);
  /// prepared slots checkpoint instead (the Adopt/bootstrap path).
  Status CreateSlotJournal(const std::string& name,
                           const std::shared_ptr<Slot>& slot,
                           bool load_record);

  /// The checkpoint procedure (see Checkpoint); runs the conditional
  /// capture-adopt-rotate loop.
  Status RunCheckpoint(const std::string& name,
                       const std::shared_ptr<Slot>& slot,
                       CheckpointInfo* info);

  /// Schedules a background checkpoint after an install pushed a slot past
  /// the checkpoint_every threshold.
  void MaybeScheduleCheckpoint(const std::string& name,
                               const std::shared_ptr<Slot>& slot);

  /// Registers an async job handle for the destructor's drain, retiring
  /// finished handles so long-lived registries don't accumulate.
  void TrackJob(TaskHandle handle);

  /// Replays one slot directory into a ready-to-register slot (not yet in
  /// the map): Recover registers all replayed slots only after every
  /// directory replayed cleanly, so a failed recovery leaves the registry
  /// exactly as it was and can simply be retried.
  Result<std::pair<std::string, std::shared_ptr<Slot>>> RecoverSlotDir(
      const std::string& dir_path);

  TaskPool* pool_;
  mutable std::mutex map_mutex_;  ///< Guards slots_, budget_, total_bytes_.
  std::map<std::string, std::shared_ptr<Slot>> slots_;
  std::size_t budget_bytes_ = 0;
  std::size_t total_bytes_ = 0;
  /// Arena bytes across all mapped slots; guarded by map_mutex_ like
  /// total_bytes_, surfaced by mapped_bytes().
  std::size_t total_mapped_bytes_ = 0;
  const bool mapped_tier_enabled_;
  std::atomic<double> drift_threshold_{0.0};
  mutable std::atomic<std::uint64_t> clock_{0};

  /// The sink currently observing journal appends (may be null). Read under
  /// sink_mutex_ into a shared_ptr copy so firing it never blocks SetWalSink.
  std::shared_ptr<const WalSink> CurrentSink() const;

  std::atomic<bool> durable_{false};
  DurabilityOptions durability_;  ///< Written once by Recover.
  std::mutex recover_mutex_;      ///< Serializes concurrent Recover calls.

  mutable std::mutex sink_mutex_;  ///< Guards wal_sink_.
  std::shared_ptr<const WalSink> wal_sink_;

  std::mutex jobs_mutex_;  ///< Guards jobs_.
  std::vector<TaskHandle> jobs_;
};

}  // namespace onex

#endif  // ONEX_ENGINE_DATASET_REGISTRY_H_
