#include "onex/engine/dataset_registry.h"

#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"
#include "onex/core/arena_layout.h"
#include "onex/engine/snapshot_ops.h"
#include "onex/engine/wal.h"

namespace onex {

/// Per-slot durability state. The WalWriter is guarded by the slot's
/// exclusive mutex (appends are bound to installs); the counters are
/// atomics so Describe/STATS read them without locking.
struct SlotJournal {
  std::string dir;       ///< Slot directory under the registry data dir.
  std::string wal_path;  ///< dir + "/wal".
  std::optional<WalWriter> writer;
  /// A replay floor (load record or checkpoint) is durable: only then may
  /// mutation records be appended — a record with nothing before it would
  /// make the log unreplayable. False only transiently, while a prepared
  /// slot's bootstrap checkpoint is being written (Recover phase 2 /
  /// prepared Adopt); installs in that window skip journaling and the
  /// checkpoint's conditional capture folds them in.
  std::atomic<bool> has_floor{false};
  std::atomic<std::uint64_t> last_seq{0};
  std::atomic<std::uint64_t> records_since_ckpt{0};
  std::atomic<std::uint64_t> last_ckpt_seq{0};
  std::atomic<std::uint64_t> checkpoints_completed{0};
  /// One background checkpoint per slot at a time.
  std::atomic<bool> ckpt_inflight{false};
};

namespace {

std::string CheckpointPath(const std::string& dir, std::uint64_t state_seq) {
  return dir + "/ckpt-" + std::to_string(state_seq);
}

/// Deletes checkpoint files strictly OLDER than `keep_seq` (best-effort).
/// Only-older is what makes the deferred cleanup safe against concurrent
/// checkpoints: state seqs are monotone, so a later checkpoint's file is
/// always numbered past every earlier caller's keep_seq and can never be
/// collected by a stale cleanup. A dangling NEWER file (crash between
/// checkpoint rename and log rotation) is unreferenced garbage that the
/// next checkpoint at that seq atomically overwrites.
void CleanupCheckpoints(const std::string& dir, std::uint64_t keep_seq) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string fname = entry.path().filename().string();
    if (!fname.starts_with("ckpt-")) continue;
    const Result<long long> seq =
        ParseInt(std::string_view(fname).substr(5));
    if (!seq.ok() || *seq < 0) continue;  // not ours; leave it
    if (static_cast<std::uint64_t>(*seq) < keep_seq) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

/// State reconstructed from one slot's checkpoint + WAL tail.
struct ReplayedSlot {
  std::string name;
  std::shared_ptr<const PreparedDataset> snapshot;
  bool ever_prepared = false;
  std::uint64_t last_seq = 0;
  std::uint64_t records_since_ckpt = 0;
  std::uint64_t last_ckpt_seq = 0;
};

/// One WAL record applied to one snapshot — the per-record state transition
/// shared by recovery replay (ReplayWal below) and the replication apply
/// path (ApplyReplicated), both routed through the same snapshot writers the
/// live engine uses (snapshot_ops.h). Same inputs, same code, same order:
/// a replica at seq S, a recovery at seq S and the pre-crash primary at
/// seq S are the same bytes. `snap` is null only before the first record;
/// kLoad is the only type legal there. kCheckpoint never applies here —
/// rotation owns it, and both callers reject it in a record stream.
Result<std::shared_ptr<const PreparedDataset>> ApplyWalRecordToSnapshot(
    const std::string& name, std::shared_ptr<const PreparedDataset> snap,
    const WalRecord& rec, bool* ever_prepared, TaskPool* pool) {
  if (snap == nullptr && rec.type != WalRecordType::kLoad) {
    return Status::ParseError(StrFormat(
        "wal record %llu (%s) arrives before any load or checkpoint",
        static_cast<unsigned long long>(rec.seq),
        WalRecordTypeToString(rec.type)));
  }
  switch (rec.type) {
    case WalRecordType::kLoad: {
      if (snap != nullptr) {
        return Status::ParseError("duplicate load record in wal");
      }
      auto fresh = std::make_shared<PreparedDataset>();
      fresh->name = name;
      fresh->raw = std::make_shared<const Dataset>(rec.dataset);
      snap = std::move(fresh);
      break;
    }
    case WalRecordType::kAppend: {
      ONEX_ASSIGN_OR_RETURN(snap, ApplyAppend(*snap, rec.series));
      break;
    }
    case WalRecordType::kExtend: {
      ONEX_ASSIGN_OR_RETURN(ExtendOutcome outcome,
                            ApplyExtend(*snap, rec.extensions));
      snap = std::move(outcome.snapshot);
      break;
    }
    case WalRecordType::kPrepare: {
      ONEX_ASSIGN_OR_RETURN(snap, BuildSnapshot(snap, rec.options, rec.norm,
                                                /*renormalize=*/true, pool));
      *ever_prepared = true;
      break;
    }
    case WalRecordType::kRebuild: {
      if (!*ever_prepared) {
        return Status::ParseError("rebuild record before any prepare");
      }
      ONEX_ASSIGN_OR_RETURN(
          snap, BuildSnapshot(snap, snap->build_options, snap->norm_kind,
                              /*renormalize=*/false, pool));
      break;
    }
    case WalRecordType::kEvict: {
      if (snap->prepared()) {
        auto stripped = std::make_shared<PreparedDataset>(*snap);
        stripped->base = nullptr;
        stripped->arena.reset();
        snap = std::move(stripped);
      }
      break;
    }
    case WalRecordType::kRegroup: {
      ONEX_ASSIGN_OR_RETURN(
          std::shared_ptr<const PreparedDataset> next,
          ApplyRegroup(*snap, rec.lengths));
      snap = std::move(next);
      break;
    }
    case WalRecordType::kCheckpoint:
      return Status::ParseError(
          "checkpoint record in the replay tail (log was never rotated)");
  }
  return snap;
}

/// Replays a scanned WAL through the same snapshot writers the live engine
/// uses (snapshot_ops.h), which is what makes the recovered slot bit-equal
/// to the pre-crash in-memory state: same inputs, same code, same order.
Result<ReplayedSlot> ReplayWal(const std::string& dir, const WalScan& scan,
                               TaskPool* pool, bool mapped_tier) {
  ReplayedSlot out;
  out.name = scan.dataset_name;

  // A checkpoint marker is only ever written by the log rotation, which
  // rewrites the WAL to header + marker — so a legal log carries at most
  // one, and only as its FIRST record (the replay floor). The loop below
  // rejects any other placement as structured corruption.
  std::size_t start = 0;
  std::shared_ptr<const PreparedDataset> snap;
  if (!scan.records.empty() &&
      scan.records.front().type == WalRecordType::kCheckpoint) {
    start = 1;
    out.last_ckpt_seq = scan.records.front().checkpoint_seq;
    out.last_seq = scan.records.front().seq;
    const std::string ckpt_path = CheckpointPath(dir, out.last_ckpt_seq);
    if (mapped_tier && scan.records.size() == 1) {
      // The log is just the rotation marker: the checkpoint IS the state,
      // so serve it from the mapping — cold start pays a page-in per
      // touched page instead of materializing every dataset up front. A
      // legacy (non-arena) or unmappable checkpoint falls back to the
      // materialized read below; corruption surfaces there as usual.
      if (Result<PreparedDataset> mapped = MapCheckpointFile(ckpt_path,
                                                             out.name);
          mapped.ok()) {
        snap = std::make_shared<const PreparedDataset>(*std::move(mapped));
        out.ever_prepared = true;
      }
    }
    if (snap == nullptr) {
      ONEX_ASSIGN_OR_RETURN(PreparedDataset from_ckpt,
                            ReadCheckpointFile(ckpt_path, out.name));
      snap = std::make_shared<const PreparedDataset>(std::move(from_ckpt));
      out.ever_prepared = true;
    }
  }

  for (std::size_t i = start; i < scan.records.size(); ++i) {
    const WalRecord& rec = scan.records[i];
    ONEX_ASSIGN_OR_RETURN(
        snap, ApplyWalRecordToSnapshot(out.name, std::move(snap), rec,
                                       &out.ever_prepared, pool));
    out.last_seq = rec.seq;
    ++out.records_since_ckpt;
  }
  if (snap == nullptr) {
    return Status::ParseError("wal holds no state (no load, no checkpoint)");
  }
  out.snapshot = std::move(snap);
  return out;
}

}  // namespace

Status PrepareTicket::Wait() const {
  if (result_ == nullptr) {
    return Status::Internal("empty prepare ticket");
  }
  handle_.Wait();
  return *result_;
}

DatasetRegistry::DatasetRegistry(TaskPool* pool,
                                 const DatasetRegistryOptions& options)
    : pool_(pool != nullptr ? pool : &TaskPool::Shared()),
      budget_bytes_(options.prepared_budget_bytes),
      mapped_tier_enabled_(options.mapped_tier),
      drift_threshold_(options.drift_threshold < 0.0
                           ? 0.0
                           : options.drift_threshold) {}

DatasetRegistry::~DatasetRegistry() {
  std::vector<TaskHandle> jobs;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs.swap(jobs_);
  }
  for (const TaskHandle& job : jobs) job.Wait();
}

Result<std::shared_ptr<DatasetRegistry::Slot>> DatasetRegistry::FindSlot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  const auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Status::NotFound("dataset '" + name + "' is not loaded");
  }
  return it->second;
}

void DatasetRegistry::TouchLocked(Slot* slot) const {
  slot->last_used.store(clock_.fetch_add(1) + 1);
}

void DatasetRegistry::TrackJob(TaskHandle handle) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  std::erase_if(jobs_, [](const TaskHandle& h) { return h.done(); });
  jobs_.push_back(std::move(handle));
}

Status DatasetRegistry::Load(const std::string& name, Dataset dataset) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset '" + name + "' has no series");
  }
  auto snapshot = std::make_shared<PreparedDataset>();
  snapshot->name = name;
  dataset.set_name(name);
  snapshot->raw = std::make_shared<const Dataset>(std::move(dataset));
  return Adopt(name, std::move(snapshot));
}

Status DatasetRegistry::Adopt(const std::string& name,
                              std::shared_ptr<const PreparedDataset> snapshot) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  if (snapshot == nullptr || snapshot->raw == nullptr) {
    return Status::InvalidArgument("cannot adopt an empty snapshot");
  }
  auto slot = std::make_shared<Slot>();
  slot->snapshot = std::move(snapshot);
  if (slot->snapshot->prepared()) {
    slot->has_recipe = true;
    slot->recipe_options = slot->snapshot->build_options;
    slot->recipe_norm = slot->snapshot->norm_kind;
    if (slot->snapshot->mapped()) {
      slot->mapped_bytes.store(slot->snapshot->arena->size());
    } else {
      slot->base_bytes.store(slot->snapshot->base->MemoryUsage());
    }
  }
  TouchLocked(slot.get());
  // Serialized against Recover: a slot is either fully born before the
  // recovery snapshots the map (and is bootstrapped), or born after it
  // (and sees durable_ decided) — never in between, where it could dodge
  // journaling forever.
  std::lock_guard<std::mutex> recover_lock(recover_mutex_);
  if (durable_.load()) {
    // Slot birth is a durable event, and the whole birth happens BEFORE
    // the slot becomes findable: an unprepared slot journals its raw
    // dataset as the first record; a prepared adopt (LOADBASE, whose
    // state came from an ONEXPREP file and so is already canonical)
    // writes its bootstrap checkpoint — the replay floor — while still
    // unpublished. A concurrent Append/Extend therefore can never install
    // into a journal that has no floor, and a failure here leaves nothing
    // visible and no acknowledged write behind. The cheap map pre-check
    // keeps the common collision an AlreadyExists; a racing double-adopt
    // is serialized by the journal directory creation itself.
    {
      std::lock_guard<std::mutex> lock(map_mutex_);
      if (slots_.contains(name)) {
        return Status::AlreadyExists("dataset '" + name +
                                     "' is already loaded");
      }
    }
    const bool prepared = slot->snapshot->prepared();
    Status s = CreateSlotJournal(name, slot, /*load_record=*/!prepared);
    if (s.ok() && prepared) s = RunCheckpoint(name, slot, nullptr);
    if (!s.ok()) {
      std::string journal_dir;
      {
        std::shared_lock<std::shared_mutex> lock(slot->mutex);
        if (slot->journal != nullptr) journal_dir = slot->journal->dir;
      }
      if (!journal_dir.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(journal_dir, ec);
      }
      return s;
    }
  }
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    const auto [it, inserted] = slots_.emplace(name, slot);
    (void)it;
    if (!inserted) {
      if (slot->journal != nullptr) {
        std::error_code ec;
        std::filesystem::remove_all(slot->journal->dir, ec);
      }
      return Status::AlreadyExists("dataset '" + name + "' is already loaded");
    }
    total_bytes_ += slot->base_bytes.load();
    total_mapped_bytes_ += slot->mapped_bytes.load();
  }
  EvictOverBudget(slot.get());
  return Status::OK();
}

Result<bool> DatasetRegistry::Replace(
    const std::string& name, std::shared_ptr<const PreparedDataset> snapshot,
    const PreparedDataset* expected, WalRecord* record) {
  if (snapshot == nullptr || snapshot->raw == nullptr) {
    return Status::InvalidArgument("cannot install an empty snapshot");
  }
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  return Install(slot, name, std::move(snapshot), expected, record);
}

Status DatasetRegistry::Drop(const std::string& name) {
  // Serialized against Recover like Adopt: a slot must not die between
  // the bootstrap's map snapshot and its journal creation.
  std::lock_guard<std::mutex> recover_lock(recover_mutex_);
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  std::string journal_dir;
  {
    std::shared_lock<std::shared_mutex> lock(slot->mutex);
    if (slot->journal != nullptr) journal_dir = slot->journal->dir;
  }
  std::string tombstone;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    const auto it = slots_.find(name);
    if (it == slots_.end() || it->second != slot) {
      return Status::NotFound("dataset '" + name +
                              "' was concurrently dropped");
    }
    if (!journal_dir.empty()) {
      // Retire the journal under the map lock, with the identity check:
      // renaming (not deleting) makes the step cheap and atomic, and a
      // stale Drop can never destroy a freshly re-adopted slot's journal —
      // by the time a new slot with this name can exist, this entry is
      // gone. Tombstones are swept on the next Recover; a crash in between
      // loses only the un-acknowledged drop.
      tombstone = journal_dir + ".dropped-" +
                  std::to_string(clock_.fetch_add(1) + 1);
      if (std::rename(journal_dir.c_str(), tombstone.c_str()) != 0) {
        return Status::IoError("cannot retire journal of '" + name + "'");
      }
    }
    total_bytes_ -= it->second->base_bytes.load();
    it->second->base_bytes.store(0);
    total_mapped_bytes_ -= it->second->mapped_bytes.load();
    it->second->mapped_bytes.store(0);
    slots_.erase(it);
  }
  if (!tombstone.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(tombstone, ec);  // best-effort; swept later
  }
  return Status::OK();
}

std::vector<std::string> DatasetRegistry::List() const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) names.push_back(name);
  return names;
}

std::vector<DatasetSlotInfo> DatasetRegistry::Describe() const {
  std::vector<std::pair<std::string, std::shared_ptr<Slot>>> entries;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    entries.assign(slots_.begin(), slots_.end());
  }
  std::vector<DatasetSlotInfo> out;
  out.reserve(entries.size());
  for (const auto& [name, slot] : entries) {
    DatasetSlotInfo info;
    info.name = name;
    std::shared_lock<std::shared_mutex> lock(slot->mutex);
    if (slot->snapshot != nullptr && slot->snapshot->raw != nullptr) {
      info.series = slot->snapshot->raw->size();
    }
    info.prepared = slot->snapshot != nullptr && slot->snapshot->prepared();
    info.evicted = slot->has_recipe && !info.prepared;
    info.prepared_bytes = slot->base_bytes.load();
    if (info.prepared) {
      info.tier = slot->snapshot->mapped() ? "mapped" : "resident";
    } else {
      info.tier = slot->has_recipe ? "evicted" : "raw";
    }
    info.mapped_bytes = slot->mapped_bytes.load();
    info.pinned = slot->pinned.load();
    info.regrouping = slot->regroup_inflight.load();
    info.last_max_drift = slot->last_max_drift.load();
    if (slot->journal != nullptr) {
      info.durable = true;
      info.wal_seq = slot->journal->last_seq.load();
      info.wal_dirty = slot->journal->records_since_ckpt.load();
      info.checkpoints = slot->journal->checkpoints_completed.load();
    }
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::shared_ptr<const PreparedDataset>> DatasetRegistry::Get(
    const std::string& name) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  std::shared_lock<std::shared_mutex> lock(slot->mutex);
  return slot->snapshot;
}

Result<std::shared_ptr<const PreparedDataset>> DatasetRegistry::GetPrepared(
    const std::string& name) {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  {
    std::shared_lock<std::shared_mutex> lock(slot->mutex);
    if (slot->snapshot->prepared()) {
      TouchLocked(slot.get());
      return slot->snapshot;
    }
    if (!slot->has_recipe) {
      return Status::FailedPrecondition(
          "dataset '" + name + "' has not been prepared; call Prepare first");
    }
  }

  // The base was evicted: replay the remembered recipe. One rebuilder runs;
  // concurrent callers queue on the slot's reprepare mutex and pick up its
  // result. Queries on every other slot proceed untouched.
  std::lock_guard<std::mutex> rebuild(slot->reprepare_mutex);
  while (true) {
    std::shared_ptr<const PreparedDataset> current;
    BaseBuildOptions options;
    NormalizationKind norm;
    {
      std::shared_lock<std::shared_mutex> lock(slot->mutex);
      if (slot->snapshot->prepared()) {  // a racing writer beat us to it
        TouchLocked(slot.get());
        return slot->snapshot;
      }
      current = slot->snapshot;
      options = slot->recipe_options;
      norm = slot->recipe_norm;
    }

    ONEX_ASSIGN_OR_RETURN(
        std::shared_ptr<const PreparedDataset> next,
        BuildSnapshot(current, options, norm, /*renormalize=*/false, pool_));
    // Conditional install: a Replace (append) or explicit Prepare that
    // landed while we built must not be clobbered by our rebuild of the
    // older snapshot — on a lost race, re-read the slot and go again. The
    // rebuild is journaled: a transparent re-preparation regroups from
    // scratch, which under running-mean policies is a real state change the
    // log must replay at the same point (DESIGN.md §13).
    WalRecord record = WalRebuildRecord();
    ONEX_ASSIGN_OR_RETURN(bool installed,
                          Install(slot, name, next, current.get(), &record));
    if (installed) return next;
  }
}

Status DatasetRegistry::Prepare(const std::string& name,
                                const BaseBuildOptions& options,
                                NormalizationKind normalization) {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  while (true) {
    std::shared_ptr<const PreparedDataset> current;
    {
      std::shared_lock<std::shared_mutex> lock(slot->mutex);
      current = slot->snapshot;
    }

    // The expensive part — normalization and grouping — runs with no lock
    // held, so every query (including queries on this dataset, served from
    // the old snapshot) proceeds while the new base builds. The install is
    // conditional: an AppendSeries that landed while we built carries data
    // this build has not seen, so on a lost race we rebuild from the newer
    // snapshot instead of clobbering it.
    ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> next,
                          BuildSnapshot(current, options, normalization,
                                        /*renormalize=*/true, pool_));
    WalRecord record = WalPrepareRecord(options, normalization);
    ONEX_ASSIGN_OR_RETURN(
        bool installed,
        Install(slot, name, std::move(next), current.get(), &record));
    if (installed) return Status::OK();
  }
}

PrepareTicket DatasetRegistry::PrepareAsync(const std::string& name,
                                            const BaseBuildOptions& options,
                                            NormalizationKind normalization) {
  PrepareTicket ticket;
  ticket.result_ =
      std::make_shared<Status>(Status::Internal("prepare job never ran"));
  auto result = ticket.result_;
  ticket.handle_ = pool_->SubmitWithHandle(
      [this, name, options, normalization, result] {
        *result = Prepare(name, options, normalization);
      });
  TrackJob(ticket.handle_);
  return ticket;
}

Result<bool> DatasetRegistry::Install(
    const std::shared_ptr<Slot>& slot, const std::string& name,
    std::shared_ptr<const PreparedDataset> snapshot,
    const PreparedDataset* expected, WalRecord* record, bool replicated) {
  // A mapped snapshot costs page cache, not budgeted heap: base_bytes stays
  // 0 (also excluding it from the LRU victim set) and its arena size goes
  // into the separate mapped-bytes gauge. Writers produce owned snapshots
  // (snapshot_ops clears the arena handle), so an install over a mapped
  // snapshot is the copy-on-write promotion back to resident.
  const bool is_mapped = snapshot->mapped();
  const std::size_t new_bytes = (snapshot->prepared() && !is_mapped)
                                    ? snapshot->base->MemoryUsage()
                                    : 0;
  const std::size_t new_mapped = is_mapped ? snapshot->arena->size() : 0;
  {
    std::unique_lock<std::shared_mutex> lock(slot->mutex);
    if (expected != nullptr && slot->snapshot.get() != expected) {
      return false;  // lost the race; the caller re-evaluates
    }
    if (slot->journal != nullptr && slot->journal->has_floor.load()) {
      // The attached journal — not the registry-wide flag — is the
      // authority, decided under the same lock that makes the swap
      // visible. A caller that brought no record raced PERSIST enabling
      // durability between its (unlocked) durable() read and this install:
      // report a lost race so its conditional-install loop re-reads the
      // flag and journals on the retry — never acknowledge an unjournaled
      // write on a journaled slot.
      if (record == nullptr) return false;
      // Write-ahead: the record becomes durable before the swap is
      // visible, under the same lock, so WAL order always equals install
      // order. A journal failure aborts the install — the caller sees the
      // error and nothing was acknowledged.
      if (replicated) {
        ONEX_RETURN_IF_ERROR(slot->journal->writer->AppendAt(*record));
      } else {
        ONEX_RETURN_IF_ERROR(slot->journal->writer->Append(record));
      }
      slot->journal->last_seq.store(record->seq);
      slot->journal->records_since_ckpt.fetch_add(1);
      // Replication observes the append under the same lock, so per-dataset
      // sink order is exactly WAL order (DESIGN.md §16). Replicated
      // installs stay silent: replicas relay nothing.
      if (!replicated) {
        if (auto sink = CurrentSink()) {
          (*sink)(name, *record, EncodeWalRecord(*record));
        }
      }
    }
    slot->snapshot = std::move(snapshot);
    if (slot->snapshot->prepared()) {
      slot->has_recipe = true;
      slot->recipe_options = slot->snapshot->build_options;
      slot->recipe_norm = slot->snapshot->norm_kind;
    }
    TouchLocked(slot.get());
    std::lock_guard<std::mutex> map_lock(map_mutex_);
    const auto it = slots_.find(name);
    if (it != slots_.end() && it->second == slot) {
      total_bytes_ += new_bytes;
      total_bytes_ -= slot->base_bytes.load();
      slot->base_bytes.store(new_bytes);
      total_mapped_bytes_ += new_mapped;
      total_mapped_bytes_ -= slot->mapped_bytes.load();
      slot->mapped_bytes.store(new_mapped);
    }
    // else: the slot was dropped while the snapshot built; leave the
    // orphan unaccounted — it dies with the last reference.
  }
  EvictOverBudget(slot.get());
  if (record != nullptr && !replicated) MaybeScheduleCheckpoint(name, slot);
  return true;
}

void DatasetRegistry::EvictOverBudget(const Slot* keep) {
  while (true) {
    std::string victim_name;
    std::shared_ptr<Slot> victim;
    std::uint64_t victim_stamp = 0;
    {
      std::lock_guard<std::mutex> lock(map_mutex_);
      if (budget_bytes_ == 0 || total_bytes_ <= budget_bytes_) return;
      std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
      for (const auto& [name, slot] : slots_) {
        if (slot.get() == keep || slot->base_bytes.load() == 0 ||
            slot->pinned.load()) {
          continue;
        }
        const std::uint64_t used = slot->last_used.load();
        if (used < oldest) {
          oldest = used;
          victim_name = name;
          victim = slot;
        }
      }
      if (victim == nullptr) return;  // only `keep` is resident
      victim_stamp = oldest;
    }
    {
      std::unique_lock<std::shared_mutex> lock(victim->mutex);
      if (victim->last_used.load() != victim_stamp) {
        // Touched or reinstalled between selection and locking: it is no
        // longer the LRU slot, so re-run the selection rather than evict a
        // base someone just paid for.
        continue;
      }
      if (victim->snapshot != nullptr && victim->snapshot->prepared()) {
        // Mapped tier first (DESIGN.md §17): a clean journaled slot whose
        // checkpoint covers every record can swap its owned base for a
        // borrowed one over the checkpoint's mapping — the next query is a
        // page-in, not a rebuild, and no WAL record is needed (the live
        // snapshot IS the checkpoint's image, so replay converges either
        // way). Ineligible or failed: fall through to the legacy strip.
        if (std::shared_ptr<const PreparedDataset> mapped =
                TryDowngradeLocked(victim_name, victim.get())) {
          const std::size_t arena_bytes = mapped->arena->size();
          const std::shared_ptr<const ArenaMapping> mapping = mapped->arena;
          victim->snapshot = std::move(mapped);
          {
            std::lock_guard<std::mutex> map_lock(map_mutex_);
            const auto it = slots_.find(victim_name);
            if (it != slots_.end() && it->second == victim) {
              total_bytes_ -= victim->base_bytes.load();
              total_mapped_bytes_ += arena_bytes;
              total_mapped_bytes_ -= victim->mapped_bytes.load();
              victim->mapped_bytes.store(arena_bytes);
            }
            victim->base_bytes.store(0);
          }
          // Parsing faulted the whole file in (checksums); release the
          // pages — the point of the downgrade is freeing memory, and the
          // next query faults back only what it touches.
          mapping->AdviseDontNeed();
          continue;
        }
        if (victim->journal != nullptr && victim->journal->has_floor.load()) {
          // Evictions are journaled: the transparent rebuild they provoke
          // regroups from scratch, so replay must strip the base at the
          // same point to converge with the live path. If the journal
          // cannot take the record, keep the base resident (over budget
          // beats a log that diverges from memory).
          WalRecord record = WalEvictRecord();
          if (!victim->journal->writer->Append(&record).ok()) return;
          victim->journal->last_seq.store(record.seq);
          victim->journal->records_since_ckpt.fetch_add(1);
          if (auto sink = CurrentSink()) {
            (*sink)(victim_name, record, EncodeWalRecord(record));
          }
        }
        auto stripped = std::make_shared<PreparedDataset>(*victim->snapshot);
        stripped->base = nullptr;
        stripped->arena.reset();
        victim->snapshot = std::move(stripped);
      }
      std::lock_guard<std::mutex> map_lock(map_mutex_);
      const auto it = slots_.find(victim_name);
      if (it != slots_.end() && it->second == victim) {
        total_bytes_ -= victim->base_bytes.load();
        total_mapped_bytes_ -= victim->mapped_bytes.load();
      }
      victim->base_bytes.store(0);
      victim->mapped_bytes.store(0);
    }
  }
}

std::shared_ptr<const PreparedDataset> DatasetRegistry::TryDowngradeLocked(
    const std::string& name, Slot* slot) {
  if (!mapped_tier_enabled_ || slot->pinned.load()) return nullptr;
  if (slot->snapshot == nullptr || !slot->snapshot->prepared() ||
      slot->snapshot->mapped()) {
    return nullptr;
  }
  const std::shared_ptr<SlotJournal>& journal = slot->journal;
  if (journal == nullptr || !journal->has_floor.load()) return nullptr;
  // The arena on disk is current only when the checkpoint covers every
  // journaled record; after RunCheckpoint the slot holds the canonical
  // image the file decodes to, so the swap changes no answer bits.
  if (journal->records_since_ckpt.load() != 0 ||
      journal->last_ckpt_seq.load() == 0) {
    return nullptr;
  }
  Result<PreparedDataset> mapped = MapCheckpointFile(
      CheckpointPath(journal->dir, journal->last_ckpt_seq.load()), name);
  if (!mapped.ok()) return nullptr;  // legacy/missing/corrupt: caller strips
  return std::make_shared<const PreparedDataset>(*std::move(mapped));
}

Result<std::string> DatasetRegistry::Tier(const std::string& name) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  std::shared_lock<std::shared_mutex> lock(slot->mutex);
  if (slot->snapshot != nullptr && slot->snapshot->prepared()) {
    return std::string(slot->snapshot->mapped() ? "mapped" : "resident");
  }
  return std::string(slot->has_recipe ? "evicted" : "raw");
}

Status DatasetRegistry::SetPinned(const std::string& name, bool pinned) {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  slot->pinned.store(pinned);
  return Status::OK();
}

Status DatasetRegistry::Demote(const std::string& name) {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  std::unique_lock<std::shared_mutex> lock(slot->mutex);
  if (slot->snapshot == nullptr || !slot->snapshot->prepared()) {
    return Status::FailedPrecondition(
        "dataset '" + name + "' has no resident base to demote");
  }
  if (slot->snapshot->mapped()) return Status::OK();  // already cold
  if (slot->pinned.load()) {
    return Status::FailedPrecondition(
        "dataset '" + name + "' is pinned; unpin it first");
  }
  std::shared_ptr<const PreparedDataset> mapped =
      TryDowngradeLocked(name, slot.get());
  if (mapped == nullptr) {
    return Status::FailedPrecondition(
        "dataset '" + name +
        "' cannot be demoted: it needs durability on and a checkpoint "
        "covering every journaled record (run CHECKPOINT first)");
  }
  const std::size_t arena_bytes = mapped->arena->size();
  const std::shared_ptr<const ArenaMapping> mapping = mapped->arena;
  slot->snapshot = std::move(mapped);
  {
    std::lock_guard<std::mutex> map_lock(map_mutex_);
    const auto it = slots_.find(name);
    if (it != slots_.end() && it->second == slot) {
      total_bytes_ -= slot->base_bytes.load();
      total_mapped_bytes_ += arena_bytes;
      total_mapped_bytes_ -= slot->mapped_bytes.load();
      slot->mapped_bytes.store(arena_bytes);
    }
    slot->base_bytes.store(0);
  }
  mapping->AdviseDontNeed();
  return Status::OK();
}

std::size_t DatasetRegistry::mapped_bytes() const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  return total_mapped_bytes_;
}

void DatasetRegistry::SetPreparedBudget(std::size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    budget_bytes_ = bytes;
  }
  EvictOverBudget(nullptr);
}

std::size_t DatasetRegistry::prepared_budget() const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  return budget_bytes_;
}

std::size_t DatasetRegistry::prepared_bytes() const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  return total_bytes_;
}

void DatasetRegistry::SetDriftThreshold(double fraction) {
  drift_threshold_.store(fraction < 0.0 ? 0.0 : fraction);
}

double DatasetRegistry::drift_threshold() const {
  return drift_threshold_.load();
}

Result<MaintenanceStatus> DatasetRegistry::Maintenance(
    const std::string& name) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  MaintenanceStatus status;
  status.drift_threshold = drift_threshold_.load();
  status.last_max_drift = slot->last_max_drift.load();
  status.regroup_in_flight = slot->regroup_inflight.load();
  status.regroups_completed = slot->regroups_completed.load();
  return status;
}

PrepareTicket DatasetRegistry::RegroupAsync(const std::string& name,
                                            std::vector<std::size_t> lengths) {
  PrepareTicket ticket;
  Result<std::shared_ptr<Slot>> slot = FindSlot(name);
  if (!slot.ok()) {
    ticket.result_ = std::make_shared<Status>(slot.status());
    return ticket;  // completed: empty handle reports done
  }
  if ((*slot)->regroup_inflight.exchange(true)) {
    ticket.result_ = std::make_shared<Status>(Status::FailedPrecondition(
        "a regroup of dataset '" + name + "' is already in flight"));
    return ticket;
  }
  return ScheduleRegroup(name, *std::move(slot), std::move(lengths));
}

PrepareTicket DatasetRegistry::MaybeScheduleRegroup(
    const std::string& name, const std::vector<LengthClassDrift>& drift) {
  // An extend that grouped nothing (no report) carries no signal — leave
  // the slot's gauge at its last real observation instead of zeroing it.
  if (drift.empty()) return PrepareTicket{};
  Result<std::shared_ptr<Slot>> slot = FindSlot(name);
  if (!slot.ok()) return PrepareTicket{};  // dropped since the extend
  double max_fraction = 0.0;
  std::vector<std::size_t> affected;
  const double threshold = drift_threshold_.load();
  for (const LengthClassDrift& d : drift) {
    max_fraction = std::max(max_fraction, d.fraction());
    if (threshold > 0.0 && d.fraction() > threshold) {
      affected.push_back(d.length);
    }
  }
  (*slot)->last_max_drift.store(max_fraction);
  if (affected.empty()) return PrepareTicket{};
  if ((*slot)->regroup_inflight.exchange(true)) {
    return PrepareTicket{};  // the in-flight job will see the newest snapshot
  }
  return ScheduleRegroup(name, *std::move(slot), std::move(affected));
}

PrepareTicket DatasetRegistry::ScheduleRegroup(
    const std::string& name, std::shared_ptr<Slot> slot,
    std::vector<std::size_t> lengths) {
  PrepareTicket ticket;
  ticket.result_ =
      std::make_shared<Status>(Status::Internal("regroup job never ran"));
  auto result = ticket.result_;
  ticket.handle_ = pool_->SubmitWithHandle(
      [this, name, slot = std::move(slot), lengths = std::move(lengths),
       result] {
        *result = RunRegroup(name, slot, lengths);
        if (result->ok()) slot->regroups_completed.fetch_add(1);
        slot->regroup_inflight.store(false);
      });
  TrackJob(ticket.handle_);
  return ticket;
}

Status DatasetRegistry::RunRegroup(const std::string& name,
                                   const std::shared_ptr<Slot>& slot,
                                   const std::vector<std::size_t>& lengths) {
  while (true) {
    std::shared_ptr<const PreparedDataset> current;
    {
      std::shared_lock<std::shared_mutex> lock(slot->mutex);
      current = slot->snapshot;
    }
    if (current == nullptr || !current->prepared()) {
      // Evicted (or dropped to raw) since scheduling: the transparent
      // rebuild re-clusters every class from scratch, which subsumes this
      // repair.
      return Status::OK();
    }

    // The expensive re-clustering runs with no lock held; concurrent
    // queries keep answering from `current`. The install is conditional: an
    // extend/append/prepare that landed while we rebuilt carries data this
    // regroup has not seen, so on a lost race we re-read and go again.
    ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> next,
                          ApplyRegroup(*current, lengths));
    WalRecord record = WalRegroupRecord(lengths);
    ONEX_ASSIGN_OR_RETURN(bool installed,
                          Install(slot, name, next, current.get(), &record));
    if (installed) {
      // Refresh the drift the dashboard sees: the regrouped classes are the
      // ones whose number just changed.
      double max_fraction = 0.0;
      for (const LengthClassDrift& d : ComputeDrift(*next->base)) {
        max_fraction = std::max(max_fraction, d.fraction());
      }
      slot->last_max_drift.store(max_fraction);
      return Status::OK();
    }
  }
}

// --- Durability ------------------------------------------------------------

std::string DatasetRegistry::data_dir() const {
  return durable_.load() ? durability_.dir : std::string();
}

Status DatasetRegistry::CreateSlotJournal(const std::string& name,
                                          const std::shared_ptr<Slot>& slot,
                                          bool load_record) {
  auto journal = std::make_shared<SlotJournal>();
  journal->dir = durability_.dir + "/" + SlotDirName(name);
  journal->wal_path = journal->dir + "/wal";
  std::error_code ec;
  if (!std::filesystem::create_directory(journal->dir, ec) || ec) {
    // NOT removed on failure: an existing directory belongs to an existing
    // slot (or a racing creator), never to us.
    return Status::IoError("cannot create journal dir '" + journal->dir +
                           "': " + (ec ? ec.message() : "already exists"));
  }
  // From here on the directory is ours; a partial failure must not leave a
  // husk behind (it would wedge the name for every later LOAD).
  Status status = [&]() -> Status {
    ONEX_ASSIGN_OR_RETURN(
        WalWriter writer,
        WalWriter::Create(journal->wal_path, name, durability_.fsync));
    journal->writer.emplace(std::move(writer));
    if (durability_.fsync) {
      ONEX_RETURN_IF_ERROR(SyncDir(journal->dir));
    }
    // Snapshot capture, load-record append and journal attach are one
    // exclusive critical section: an install cannot land between the
    // snapshot this record freezes and the moment later installs start
    // journaling, so no acknowledged write can fall into the gap (the
    // PERSIST-mid-session bootstrap races live writers).
    std::unique_lock<std::shared_mutex> lock(slot->mutex);
    if (load_record) {
      WalRecord record = WalLoadRecord(*slot->snapshot->raw);
      ONEX_RETURN_IF_ERROR(journal->writer->Append(&record));
      journal->last_seq.store(record.seq);
      journal->records_since_ckpt.store(1);
      journal->has_floor.store(true);
      if (auto sink = CurrentSink()) {
        (*sink)(name, record, EncodeWalRecord(record));
      }
    }
    // Without a load record the floor arrives with the caller's bootstrap
    // checkpoint; until then installs skip journaling.
    slot->journal = std::move(journal);
    return Status::OK();
  }();
  if (!status.ok()) {
    if (journal != nullptr) {
      journal->writer.reset();  // close the wal handle before removing
      std::filesystem::remove_all(journal->dir, ec);
    }
    return status;
  }
  return Status::OK();
}

Status DatasetRegistry::RunCheckpoint(const std::string& name,
                                      const std::shared_ptr<Slot>& slot,
                                      CheckpointInfo* info) {
  // Gate on the slot's journal, not the registry flag: the bootstrap
  // checkpoints of Recover's phase 2 run before the flag arms.
  std::shared_ptr<SlotJournal> journal;
  {
    std::shared_lock<std::shared_mutex> lock(slot->mutex);
    journal = slot->journal;
  }
  if (journal == nullptr) {
    return Status::FailedPrecondition(
        "dataset '" + name + "' has no journal (enable durability first)");
  }
  static std::atomic<std::uint64_t> tmp_counter{0};
  while (true) {
    std::shared_ptr<const PreparedDataset> current;
    {
      std::shared_lock<std::shared_mutex> lock(slot->mutex);
      current = slot->snapshot;
    }
    if (current == nullptr || !current->prepared()) {
      return Status::FailedPrecondition(
          "dataset '" + name +
          "' has no resident base to checkpoint (prepare it first; an "
          "evicted base is never forced back in by a checkpoint)");
    }
    // The canonical image — what loading the checkpoint file will
    // reconstruct — computed and serialized outside every lock, so readers
    // never stall behind the big file write. Installing it below is the
    // durability contract: after a checkpoint, live memory and the file
    // agree bit for bit, so replay from the file converges with the live
    // path (DESIGN.md §13).
    ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> canonical,
                          CanonicalizeSnapshot(*current));
    ONEX_ASSIGN_OR_RETURN(std::string bytes, EncodeCheckpoint(*canonical));
    const std::string tmp_path =
        journal->dir + "/ckpt.partial-" +
        std::to_string(tmp_counter.fetch_add(1));
    ONEX_RETURN_IF_ERROR(
        WriteFileDurably(tmp_path, bytes, durability_.fsync));
    bytes.clear();
    bytes.shrink_to_fit();

    std::unique_lock<std::shared_mutex> lock(slot->mutex);
    if (slot->snapshot != current) {  // a writer landed; recapture
      lock.unlock();
      std::remove(tmp_path.c_str());
      continue;
    }
    const std::uint64_t state_seq = journal->last_seq.load();
    const std::string ckpt_path = CheckpointPath(journal->dir, state_seq);
    // Only cheap, atomic file ops under the slot lock: the capture rename,
    // the tiny log restart and the adoption must be one atomic step with
    // respect to writers. Failure handling is phase-aware: before the log
    // rotation renames, aborting is safe (the old WAL never references the
    // new file); once the rotation rename has happened, the checkpoint is
    // the log's replay floor and must never be deleted — an ambiguous
    // outcome (rename done, directory fsync failed) latches the journal
    // fail-stop instead.
    ONEX_RETURN_IF_ERROR(
        RenameFile(tmp_path, ckpt_path, durability_.fsync));
    WalRecord marker = WalCheckpointRecord(state_seq);
    marker.seq = state_seq + 1;
    const std::string fresh_wal =
        EncodeWalHeader(name) + EncodeWalRecord(marker);
    const std::string wal_tmp = journal->wal_path + ".tmp";
    if (Status s = WriteFileDurably(wal_tmp, fresh_wal, durability_.fsync);
        !s.ok()) {
      std::remove(ckpt_path.c_str());  // unreferenced; old WAL intact
      return s;
    }
    if (std::rename(wal_tmp.c_str(), journal->wal_path.c_str()) != 0) {
      std::remove(wal_tmp.c_str());
      std::remove(ckpt_path.c_str());  // unreferenced; old WAL intact
      return Status::IoError("cannot rotate wal of '" + name + "'");
    }
    if (durability_.fsync) {
      if (Status s = SyncDir(journal->dir); !s.ok()) {
        // The rotation may or may not survive a power loss from here;
        // either on-disk shape alone is consistent, but continuing to
        // acknowledge writes against an unknown one is not.
        journal->writer->MarkFailed();
        return s;
      }
    }
    ONEX_RETURN_IF_ERROR(journal->writer->Reopen(state_seq + 2));
    journal->last_seq.store(state_seq + 1);
    journal->records_since_ckpt.store(0);
    journal->last_ckpt_seq.store(state_seq);
    journal->checkpoints_completed.fetch_add(1);
    journal->has_floor.store(true);  // the checkpoint IS the replay floor
    // Adopt the canonical image: from here on, live answers and a recovery
    // from this checkpoint are indistinguishable.
    slot->snapshot = canonical;
    TouchLocked(slot.get());
    const std::size_t new_bytes = canonical->base->MemoryUsage();
    {
      std::lock_guard<std::mutex> map_lock(map_mutex_);
      const auto it = slots_.find(name);
      if (it != slots_.end() && it->second == slot) {
        total_bytes_ += new_bytes;
        total_bytes_ -= slot->base_bytes.load();
        slot->base_bytes.store(new_bytes);
        // The canonical image owns its storage: a previously mapped slot
        // is promoted back to resident by the adoption.
        total_mapped_bytes_ -= slot->mapped_bytes.load();
        slot->mapped_bytes.store(0);
      }
    }
    if (info != nullptr) {
      info->state_seq = state_seq;
      std::error_code ec;
      const auto size = std::filesystem::file_size(ckpt_path, ec);
      info->bytes = ec ? 0 : static_cast<std::size_t>(size);
    }
    const std::string dir = journal->dir;
    lock.unlock();
    CleanupCheckpoints(dir, state_seq);
    EvictOverBudget(slot.get());
    return Status::OK();
  }
}

Result<CheckpointInfo> DatasetRegistry::Checkpoint(const std::string& name) {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  CheckpointInfo info;
  ONEX_RETURN_IF_ERROR(RunCheckpoint(name, slot, &info));
  return info;
}

PrepareTicket DatasetRegistry::CheckpointAsync(const std::string& name) {
  PrepareTicket ticket;
  Result<std::shared_ptr<Slot>> slot = FindSlot(name);
  if (!slot.ok()) {
    ticket.result_ = std::make_shared<Status>(slot.status());
    return ticket;
  }
  std::shared_ptr<SlotJournal> journal;
  {
    std::shared_lock<std::shared_mutex> lock((*slot)->mutex);
    journal = (*slot)->journal;
  }
  if (journal == nullptr) {
    ticket.result_ = std::make_shared<Status>(Status::FailedPrecondition(
        "dataset '" + name + "' has no journal"));
    return ticket;
  }
  if (journal->ckpt_inflight.exchange(true)) {
    ticket.result_ = std::make_shared<Status>(Status::FailedPrecondition(
        "a checkpoint of dataset '" + name + "' is already in flight"));
    return ticket;
  }
  ticket.result_ =
      std::make_shared<Status>(Status::Internal("checkpoint job never ran"));
  auto result = ticket.result_;
  ticket.handle_ = pool_->SubmitWithHandle(
      [this, name, slot = *std::move(slot), journal, result] {
        *result = RunCheckpoint(name, slot, nullptr);
        journal->ckpt_inflight.store(false);
      });
  TrackJob(ticket.handle_);
  return ticket;
}

void DatasetRegistry::MaybeScheduleCheckpoint(
    const std::string& name, const std::shared_ptr<Slot>& slot) {
  if (!durable_.load() || durability_.checkpoint_every == 0) return;
  std::shared_ptr<SlotJournal> journal;
  {
    std::shared_lock<std::shared_mutex> lock(slot->mutex);
    journal = slot->journal;
    // Checkpoints capture resident bases only; an evicted slot stays dirty
    // until its next transparent rebuild.
    if (slot->snapshot == nullptr || !slot->snapshot->prepared()) return;
  }
  if (journal == nullptr ||
      journal->records_since_ckpt.load() < durability_.checkpoint_every) {
    return;
  }
  if (journal->ckpt_inflight.exchange(true)) return;
  TaskHandle handle = pool_->SubmitWithHandle([this, name, slot, journal] {
    (void)RunCheckpoint(name, slot, nullptr);
    journal->ckpt_inflight.store(false);
  });
  TrackJob(std::move(handle));
}

Result<std::pair<std::string, std::shared_ptr<DatasetRegistry::Slot>>>
DatasetRegistry::RecoverSlotDir(const std::string& dir_path) {
  // Sweep checkpoint scratch a crash may have stranded: partials were
  // never referenced by any log. Safe here (and only here) because no
  // checkpoint can be in flight during recovery.
  {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir_path, ec)) {
      if (entry.path().filename().string().starts_with("ckpt.partial-")) {
        std::filesystem::remove(entry.path(), ec);
      }
    }
  }
  const std::string wal_path = dir_path + "/wal";
  Result<WalScan> scanned = ScanWalFile(wal_path);
  if (!scanned.ok()) {
    return Status(scanned.status().code(),
                  "recovering '" + dir_path + "': " +
                      scanned.status().message());
  }
  WalScan scan = *std::move(scanned);
  if (scan.embryonic || scan.records.empty()) {
    // Torn at birth (or header-only): no write was ever acknowledged, so
    // no slot exists. Remove the husk — leaving it would wedge the name
    // forever (a later LOAD of the same dataset could never create its
    // journal directory).
    std::error_code ec;
    std::filesystem::remove_all(dir_path, ec);
    return std::pair<std::string, std::shared_ptr<Slot>>{};  // nothing here
  }
  if (scan.torn_tail) {
    // The final append never completed, so it was never acknowledged;
    // truncate to the clean prefix so the reopened writer extends valid
    // history.
    if (::truncate(wal_path.c_str(),
                   static_cast<off_t>(scan.valid_bytes)) != 0) {
      return Status::IoError("cannot truncate torn wal '" + wal_path + "'");
    }
  }

  Result<ReplayedSlot> replayed =
      ReplayWal(dir_path, scan, pool_, mapped_tier_enabled_);
  if (!replayed.ok()) {
    return Status(replayed.status().code(),
                  "recovering slot '" + scan.dataset_name + "' from '" +
                      dir_path + "': " + replayed.status().message());
  }
  ReplayedSlot rs = *std::move(replayed);

  auto slot = std::make_shared<Slot>();
  slot->snapshot = rs.snapshot;
  if (rs.ever_prepared) {
    slot->has_recipe = true;
    slot->recipe_options = rs.snapshot->build_options;
    slot->recipe_norm = rs.snapshot->norm_kind;
  }
  if (rs.snapshot->prepared()) {
    if (rs.snapshot->mapped()) {
      // Mapped bases cost page cache, not owned heap: they are accounted
      // in mapped_bytes and excluded from the eviction budget (base_bytes
      // stays 0, which also keeps them out of the LRU victim set).
      slot->mapped_bytes.store(rs.snapshot->arena->size());
    } else {
      slot->base_bytes.store(rs.snapshot->base->MemoryUsage());
    }
  }
  auto journal = std::make_shared<SlotJournal>();
  journal->dir = dir_path;
  journal->wal_path = wal_path;
  ONEX_ASSIGN_OR_RETURN(
      WalWriter writer,
      WalWriter::OpenExisting(wal_path, rs.last_seq + 1, durability_.fsync));
  journal->writer.emplace(std::move(writer));
  journal->has_floor.store(true);  // a replayed log has one by construction
  journal->last_seq.store(rs.last_seq);
  journal->records_since_ckpt.store(rs.records_since_ckpt);
  journal->last_ckpt_seq.store(rs.last_ckpt_seq);
  slot->journal = std::move(journal);
  TouchLocked(slot.get());
  // Checkpoint files older than the one the log references are orphans
  // from superseded rotations; drop them.
  CleanupCheckpoints(dir_path, rs.last_ckpt_seq);
  return std::pair<std::string, std::shared_ptr<Slot>>{rs.name,
                                                       std::move(slot)};
}

Status DatasetRegistry::Recover(const DurabilityOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("durability needs a data directory");
  }
  // One enabler at a time: two concurrent PERSIST frames must not race the
  // durability_ write or double-replay the same directories.
  std::lock_guard<std::mutex> recover_lock(recover_mutex_);
  if (durable_.load()) {
    return Status::FailedPrecondition(
        "durability is already enabled (dir '" + durability_.dir + "')");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("cannot create data dir '" + options.dir +
                           "': " + ec.message());
  }
  durability_ = options;

  // Phase 1: replay every slot directory found on disk into local slots.
  // Nothing is registered and journaling stays off until every directory
  // replayed cleanly, so a failed recovery leaves the registry exactly as
  // it was — fix the disk and simply retry.
  std::vector<std::string> dirs;
  for (const auto& entry :
       std::filesystem::directory_iterator(options.dir, ec)) {
    if (entry.is_directory()) dirs.push_back(entry.path().string());
  }
  if (ec) {
    return Status::IoError("cannot list data dir '" + options.dir +
                           "': " + ec.message());
  }
  std::sort(dirs.begin(), dirs.end());
  // Directories already owned by live slots' journals are not crash state
  // to replay — they are this process's own bootstraps from an earlier
  // (partially failed) enable attempt; phase 2 skips those slots, so the
  // retry converges instead of colliding with itself. Safe to read
  // journal pointers without slot locks: every attach happened-before the
  // slot became reachable here (Adopt attaches pre-insert; bootstraps run
  // under recover_mutex_, which we hold).
  std::set<std::string> owned_dirs;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    for (const auto& [slot_name, slot] : slots_) {
      if (slot->journal != nullptr) owned_dirs.insert(slot->journal->dir);
    }
  }
  std::vector<std::pair<std::string, std::shared_ptr<Slot>>> recovered;
  for (const std::string& dir : dirs) {
    if (std::filesystem::path(dir).filename().string().find(".dropped-") !=
        std::string::npos) {
      // A Drop retired this journal (rename is the commit point); the
      // crash happened before the sweep. Finish the job.
      std::filesystem::remove_all(dir, ec);
      continue;
    }
    if (owned_dirs.contains(dir)) continue;
    if (!std::filesystem::exists(dir + "/wal")) continue;
    ONEX_ASSIGN_OR_RETURN(auto entry, RecoverSlotDir(dir));
    if (entry.second != nullptr) recovered.push_back(std::move(entry));
  }
  {
    // All-or-nothing collision check before anything becomes visible.
    std::lock_guard<std::mutex> lock(map_mutex_);
    for (const auto& [name, slot] : recovered) {
      if (slots_.contains(name)) {
        return Status::AlreadyExists("recovered dataset '" + name +
                                     "' collides with a loaded slot");
      }
    }
  }

  // Phase 2: bootstrap slots loaded before durability was enabled (the
  // PERSIST-mid-session path) — while durable_ is still FALSE, so a
  // failure here leaves the registry retryable (durability never half-on:
  // Install journals by journal presence, not by the flag, so the slots
  // bootstrapped before the failure journal their writes consistently
  // either way). Adopt and Drop serialize on recover_mutex_, so no slot
  // can be born or die around this loop's snapshot of the map.
  std::vector<std::pair<std::string, std::shared_ptr<Slot>>> entries;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    entries.assign(slots_.begin(), slots_.end());
  }
  for (const auto& [name, slot] : entries) {
    bool prepared;
    bool evicted;
    {
      std::shared_lock<std::shared_mutex> lock(slot->mutex);
      if (slot->journal != nullptr) continue;  // an earlier failed attempt
      prepared = slot->snapshot != nullptr && slot->snapshot->prepared();
      evicted = slot->has_recipe && !prepared;
    }
    if (evicted) {
      // An evicted slot's incremental history is not reproducible from raw
      // alone; rebuild it so the bootstrap checkpoint can capture it.
      ONEX_RETURN_IF_ERROR(GetPrepared(name).status());
      prepared = true;
    }
    ONEX_RETURN_IF_ERROR(CreateSlotJournal(name, slot, !prepared));
    if (prepared) {
      if (Status s = RunCheckpoint(name, slot, nullptr); !s.ok()) {
        // Undo this slot's half-bootstrap so a retry starts clean. Nothing
        // is lost: without a replay floor the journal accepted no records,
        // so detaching it and removing the directory forgets nothing that
        // was ever promised durable.
        std::string journal_dir;
        {
          std::unique_lock<std::shared_mutex> lock(slot->mutex);
          if (slot->journal != nullptr) {
            journal_dir = slot->journal->dir;
            slot->journal->writer.reset();
            slot->journal = nullptr;
          }
        }
        if (!journal_dir.empty()) {
          std::filesystem::remove_all(journal_dir, ec);
        }
        return s;
      }
    }
  }

  // Phase 3: everything fallible succeeded — publish the recovered slots
  // and arm the flag that makes new Adopts journal.
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    for (auto& [name, slot] : recovered) {
      const auto [it, inserted] = slots_.emplace(name, slot);
      (void)it;
      if (!inserted) {
        // Unreachable while Adopt holds recover_mutex_, kept as a guard:
        // leave the directory untouched on disk and surface the conflict.
        return Status::AlreadyExists("recovered dataset '" + name +
                                     "' collides with a loaded slot");
      }
      total_bytes_ += slot->base_bytes.load();
      total_mapped_bytes_ += slot->mapped_bytes.load();
    }
  }
  durable_.store(true);
  EvictOverBudget(nullptr);
  return Status::OK();
}

Result<SlotDurability> DatasetRegistry::Durability(
    const std::string& name) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  SlotDurability out;
  std::shared_lock<std::shared_mutex> lock(slot->mutex);
  if (slot->journal == nullptr) return out;
  out.durable = true;
  out.last_seq = slot->journal->last_seq.load();
  out.records_since_checkpoint = slot->journal->records_since_ckpt.load();
  out.last_checkpoint_seq = slot->journal->last_ckpt_seq.load();
  out.checkpoints_completed = slot->journal->checkpoints_completed.load();
  return out;
}

// --- Replication -----------------------------------------------------------

void DatasetRegistry::SetWalSink(WalSink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  wal_sink_ =
      sink ? std::make_shared<const WalSink>(std::move(sink)) : nullptr;
}

std::shared_ptr<const DatasetRegistry::WalSink> DatasetRegistry::CurrentSink()
    const {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  return wal_sink_;
}

Status DatasetRegistry::ApplyReplicated(const std::string& name,
                                        const WalRecord& record) {
  if (!durable_.load()) {
    return Status::FailedPrecondition(
        "replication requires a durable registry (enable durability first)");
  }
  if (record.type == WalRecordType::kCheckpoint) {
    return Status::InvalidArgument(
        "checkpoint markers never ship: replicas keep the full log");
  }
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    const auto it = slots_.find(name);
    if (it != slots_.end()) slot = it->second;
  }

  if (slot == nullptr) {
    // Slot birth. Only a load record can create state from nothing — any
    // other type means the stream skipped the beginning of the log and the
    // link must resubscribe from seq 0.
    if (record.type != WalRecordType::kLoad) {
      return Status::FailedPrecondition(StrFormat(
          "replicated %s record %llu for unknown dataset '%s' (resubscribe "
          "from the log start)",
          WalRecordTypeToString(record.type),
          static_cast<unsigned long long>(record.seq), name.c_str()));
    }
    if (record.dataset.empty()) {
      return Status::InvalidArgument(
          "replicated load record carries no series");
    }
    bool ever_prepared = false;
    ONEX_ASSIGN_OR_RETURN(
        std::shared_ptr<const PreparedDataset> snap,
        ApplyWalRecordToSnapshot(name, nullptr, record, &ever_prepared,
                                 pool_));
    auto fresh = std::make_shared<Slot>();
    fresh->snapshot = std::move(snap);
    TouchLocked(fresh.get());
    // Mirrors Adopt: the whole birth — journal dir, WAL, the load record at
    // the primary's seq — happens before the slot becomes findable, under
    // the same serialization against Recover.
    std::lock_guard<std::mutex> recover_lock(recover_mutex_);
    {
      std::lock_guard<std::mutex> lock(map_mutex_);
      if (slots_.contains(name)) {
        // Lost a race against another creator (e.g. a duplicate delivery
        // already applied); the caller's floor check on retry sorts it out.
        return Status::AlreadyExists("dataset '" + name +
                                     "' is already loaded");
      }
    }
    ONEX_RETURN_IF_ERROR(
        CreateSlotJournal(name, fresh, /*load_record=*/false));
    Status journaled = [&]() -> Status {
      std::unique_lock<std::shared_mutex> lock(fresh->mutex);
      ONEX_RETURN_IF_ERROR(fresh->journal->writer->AppendAt(record));
      fresh->journal->last_seq.store(record.seq);
      fresh->journal->records_since_ckpt.store(1);
      fresh->journal->has_floor.store(true);
      return Status::OK();
    }();
    if (!journaled.ok()) {
      std::string journal_dir;
      {
        std::shared_lock<std::shared_mutex> lock(fresh->mutex);
        if (fresh->journal != nullptr) journal_dir = fresh->journal->dir;
      }
      if (!journal_dir.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(journal_dir, ec);
      }
      return journaled;
    }
    std::lock_guard<std::mutex> lock(map_mutex_);
    slots_.emplace(name, std::move(fresh));
    return Status::OK();
  }

  // Existing slot: idempotent, gap-checked apply. The link delivers one
  // dataset's records in seq order from a single thread, so the floor read
  // here cannot go stale against another replicated writer; a local writer
  // (this node is also a primary for the dataset — a misconfiguration)
  // is caught by the conditional install below.
  std::shared_ptr<SlotJournal> journal;
  std::shared_ptr<const PreparedDataset> current;
  bool ever_prepared = false;
  {
    std::shared_lock<std::shared_mutex> lock(slot->mutex);
    journal = slot->journal;
    current = slot->snapshot;
    ever_prepared = slot->has_recipe;
  }
  if (journal == nullptr || !journal->has_floor.load()) {
    return Status::FailedPrecondition(
        "dataset '" + name + "' has no journal floor to replicate onto");
  }
  const std::uint64_t floor = journal->last_seq.load();
  if (record.seq <= floor) return Status::OK();  // duplicate delivery
  if (record.seq != floor + 1) {
    return Status::FailedPrecondition(StrFormat(
        "replicated record seq %llu leaves a gap after %llu for dataset "
        "'%s' (resubscribe)",
        static_cast<unsigned long long>(record.seq),
        static_cast<unsigned long long>(floor), name.c_str()));
  }
  ONEX_ASSIGN_OR_RETURN(
      std::shared_ptr<const PreparedDataset> next,
      ApplyWalRecordToSnapshot(name, current, record, &ever_prepared, pool_));
  WalRecord copy = record;
  ONEX_ASSIGN_OR_RETURN(
      const bool installed,
      Install(slot, name, std::move(next), current.get(), &copy,
              /*replicated=*/true));
  if (!installed) {
    return Status::FailedPrecondition(
        "dataset '" + name +
        "' changed under a replicated apply (local writes and replication "
        "must not share a slot)");
  }
  return Status::OK();
}

}  // namespace onex
