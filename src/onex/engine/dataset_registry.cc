#include "onex/engine/dataset_registry.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace onex {
namespace {

/// The one preparation pipeline, shared by Prepare and the transparent
/// rebuild after eviction. With `renormalize` (explicit Prepare) the
/// normalization always re-runs from raw, re-baselining dataset-level
/// extrema exactly as a fresh Prepare always has — the analyst's one knob
/// for folding appended out-of-range values into the scale. Without it
/// (the transparent rebuild) the snapshot's frozen normalization is
/// preserved: the existing copy is reused, and newcomers appended while
/// the slot sat evicted are normalized with the frozen parameters, so
/// rebuilt answers match what a resident base would have returned. Runs
/// with no lock held.
Result<std::shared_ptr<const PreparedDataset>> BuildSnapshot(
    const std::shared_ptr<const PreparedDataset>& current,
    const BaseBuildOptions& options, NormalizationKind norm, bool renormalize,
    TaskPool* pool) {
  auto next = std::make_shared<PreparedDataset>();
  next->name = current->name;
  next->raw = current->raw;
  next->norm_kind = norm;
  if (!renormalize && current->normalized != nullptr &&
      current->norm_kind == norm &&
      current->normalized->size() <= current->raw->size()) {
    // Honor the frozen-normalization contract. The normalized copy may have
    // gone stale while the base sat evicted: whole series appended
    // (size grew) and/or existing series extended at the tail (lengths
    // grew). Catch up only the missing parts with the existing parameters —
    // exactly what a resident append/extend would have done — instead of
    // renormalizing (and silently rescaling) the whole dataset.
    next->norm_params = current->norm_params;
    bool stale = current->normalized->size() < current->raw->size();
    for (std::size_t s = 0; !stale && s < current->normalized->size(); ++s) {
      stale = (*current->normalized)[s].length() != (*current->raw)[s].length();
    }
    if (!stale) {
      next->normalized = current->normalized;
    } else {
      Dataset normalized(current->normalized->name());
      for (std::size_t s = 0; s < current->raw->size(); ++s) {
        const TimeSeries& raw_ts = (*current->raw)[s];
        if (s >= current->normalized->size()) {
          normalized.Add(NormalizeAppended(raw_ts, norm, &next->norm_params));
          continue;
        }
        const TimeSeries& have = (*current->normalized)[s];
        if (have.length() == raw_ts.length()) {
          normalized.Add(have);
          continue;
        }
        std::vector<double> values = have.values();
        values.reserve(raw_ts.length());
        for (std::size_t i = have.length(); i < raw_ts.length(); ++i) {
          values.push_back(NormalizeValue(next->norm_params, s, raw_ts[i]));
        }
        normalized.Add(
            TimeSeries(have.name(), std::move(values), have.label()));
      }
      next->normalized =
          std::make_shared<const Dataset>(std::move(normalized));
    }
  } else {
    ONEX_ASSIGN_OR_RETURN(Dataset normalized,
                          Normalize(*next->raw, norm, &next->norm_params));
    next->normalized =
        std::make_shared<const Dataset>(std::move(normalized));
  }
  ONEX_ASSIGN_OR_RETURN(OnexBase base,
                        OnexBase::Build(next->normalized, options, pool));
  next->base = std::make_shared<const OnexBase>(std::move(base));
  next->build_options = options;
  return std::shared_ptr<const PreparedDataset>(std::move(next));
}

}  // namespace

Status PrepareTicket::Wait() const {
  if (result_ == nullptr) {
    return Status::Internal("empty prepare ticket");
  }
  handle_.Wait();
  return *result_;
}

DatasetRegistry::DatasetRegistry(TaskPool* pool,
                                 const DatasetRegistryOptions& options)
    : pool_(pool != nullptr ? pool : &TaskPool::Shared()),
      budget_bytes_(options.prepared_budget_bytes),
      drift_threshold_(options.drift_threshold < 0.0
                           ? 0.0
                           : options.drift_threshold) {}

DatasetRegistry::~DatasetRegistry() {
  std::vector<TaskHandle> jobs;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs.swap(jobs_);
  }
  for (const TaskHandle& job : jobs) job.Wait();
}

Result<std::shared_ptr<DatasetRegistry::Slot>> DatasetRegistry::FindSlot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  const auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Status::NotFound("dataset '" + name + "' is not loaded");
  }
  return it->second;
}

void DatasetRegistry::TouchLocked(Slot* slot) const {
  slot->last_used.store(clock_.fetch_add(1) + 1);
}

Status DatasetRegistry::Load(const std::string& name, Dataset dataset) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  if (dataset.empty()) {
    return Status::InvalidArgument("dataset '" + name + "' has no series");
  }
  auto snapshot = std::make_shared<PreparedDataset>();
  snapshot->name = name;
  dataset.set_name(name);
  snapshot->raw = std::make_shared<const Dataset>(std::move(dataset));
  return Adopt(name, std::move(snapshot));
}

Status DatasetRegistry::Adopt(const std::string& name,
                              std::shared_ptr<const PreparedDataset> snapshot) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  if (snapshot == nullptr || snapshot->raw == nullptr) {
    return Status::InvalidArgument("cannot adopt an empty snapshot");
  }
  auto slot = std::make_shared<Slot>();
  slot->snapshot = std::move(snapshot);
  if (slot->snapshot->prepared()) {
    slot->has_recipe = true;
    slot->recipe_options = slot->snapshot->build_options;
    slot->recipe_norm = slot->snapshot->norm_kind;
    slot->base_bytes.store(slot->snapshot->base->MemoryUsage());
  }
  TouchLocked(slot.get());
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    const auto [it, inserted] = slots_.emplace(name, slot);
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("dataset '" + name + "' is already loaded");
    }
    total_bytes_ += slot->base_bytes.load();
  }
  EvictOverBudget(slot.get());
  return Status::OK();
}

Result<bool> DatasetRegistry::Replace(
    const std::string& name, std::shared_ptr<const PreparedDataset> snapshot,
    const PreparedDataset* expected) {
  if (snapshot == nullptr || snapshot->raw == nullptr) {
    return Status::InvalidArgument("cannot install an empty snapshot");
  }
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  return Install(slot, name, std::move(snapshot), expected);
}

Status DatasetRegistry::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(map_mutex_);
  const auto it = slots_.find(name);
  if (it == slots_.end()) {
    return Status::NotFound("dataset '" + name + "' is not loaded");
  }
  total_bytes_ -= it->second->base_bytes.load();
  it->second->base_bytes.store(0);
  slots_.erase(it);
  return Status::OK();
}

std::vector<std::string> DatasetRegistry::List() const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) names.push_back(name);
  return names;
}

std::vector<DatasetSlotInfo> DatasetRegistry::Describe() const {
  std::vector<std::pair<std::string, std::shared_ptr<Slot>>> entries;
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    entries.assign(slots_.begin(), slots_.end());
  }
  std::vector<DatasetSlotInfo> out;
  out.reserve(entries.size());
  for (const auto& [name, slot] : entries) {
    DatasetSlotInfo info;
    info.name = name;
    std::shared_lock<std::shared_mutex> lock(slot->mutex);
    if (slot->snapshot != nullptr && slot->snapshot->raw != nullptr) {
      info.series = slot->snapshot->raw->size();
    }
    info.prepared = slot->snapshot != nullptr && slot->snapshot->prepared();
    info.evicted = slot->has_recipe && !info.prepared;
    info.prepared_bytes = slot->base_bytes.load();
    info.regrouping = slot->regroup_inflight.load();
    info.last_max_drift = slot->last_max_drift.load();
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::shared_ptr<const PreparedDataset>> DatasetRegistry::Get(
    const std::string& name) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  std::shared_lock<std::shared_mutex> lock(slot->mutex);
  return slot->snapshot;
}

Result<std::shared_ptr<const PreparedDataset>> DatasetRegistry::GetPrepared(
    const std::string& name) {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  {
    std::shared_lock<std::shared_mutex> lock(slot->mutex);
    if (slot->snapshot->prepared()) {
      TouchLocked(slot.get());
      return slot->snapshot;
    }
    if (!slot->has_recipe) {
      return Status::FailedPrecondition(
          "dataset '" + name + "' has not been prepared; call Prepare first");
    }
  }

  // The base was evicted: replay the remembered recipe. One rebuilder runs;
  // concurrent callers queue on the slot's reprepare mutex and pick up its
  // result. Queries on every other slot proceed untouched.
  std::lock_guard<std::mutex> rebuild(slot->reprepare_mutex);
  while (true) {
    std::shared_ptr<const PreparedDataset> current;
    BaseBuildOptions options;
    NormalizationKind norm;
    {
      std::shared_lock<std::shared_mutex> lock(slot->mutex);
      if (slot->snapshot->prepared()) {  // a racing writer beat us to it
        TouchLocked(slot.get());
        return slot->snapshot;
      }
      current = slot->snapshot;
      options = slot->recipe_options;
      norm = slot->recipe_norm;
    }

    ONEX_ASSIGN_OR_RETURN(
        std::shared_ptr<const PreparedDataset> next,
        BuildSnapshot(current, options, norm, /*renormalize=*/false, pool_));
    // Conditional install: a Replace (append) or explicit Prepare that
    // landed while we built must not be clobbered by our rebuild of the
    // older snapshot — on a lost race, re-read the slot and go again.
    if (Install(slot, name, next, current.get())) return next;
  }
}

Status DatasetRegistry::Prepare(const std::string& name,
                                const BaseBuildOptions& options,
                                NormalizationKind normalization) {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  while (true) {
    std::shared_ptr<const PreparedDataset> current;
    {
      std::shared_lock<std::shared_mutex> lock(slot->mutex);
      current = slot->snapshot;
    }

    // The expensive part — normalization and grouping — runs with no lock
    // held, so every query (including queries on this dataset, served from
    // the old snapshot) proceeds while the new base builds. The install is
    // conditional: an AppendSeries that landed while we built carries data
    // this build has not seen, so on a lost race we rebuild from the newer
    // snapshot instead of clobbering it.
    ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> next,
                          BuildSnapshot(current, options, normalization,
                                        /*renormalize=*/true, pool_));
    if (Install(slot, name, std::move(next), current.get())) {
      return Status::OK();
    }
  }
}

PrepareTicket DatasetRegistry::PrepareAsync(const std::string& name,
                                            const BaseBuildOptions& options,
                                            NormalizationKind normalization) {
  PrepareTicket ticket;
  ticket.result_ =
      std::make_shared<Status>(Status::Internal("prepare job never ran"));
  auto result = ticket.result_;
  ticket.handle_ = pool_->SubmitWithHandle(
      [this, name, options, normalization, result] {
        *result = Prepare(name, options, normalization);
      });
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    // Retire finished handles so long-lived registries don't accumulate.
    std::erase_if(jobs_, [](const TaskHandle& h) { return h.done(); });
    jobs_.push_back(ticket.handle_);
  }
  return ticket;
}

bool DatasetRegistry::Install(const std::shared_ptr<Slot>& slot,
                              const std::string& name,
                              std::shared_ptr<const PreparedDataset> snapshot,
                              const PreparedDataset* expected) {
  const std::size_t new_bytes =
      snapshot->prepared() ? snapshot->base->MemoryUsage() : 0;
  {
    std::unique_lock<std::shared_mutex> lock(slot->mutex);
    if (expected != nullptr && slot->snapshot.get() != expected) {
      return false;  // lost the race; the caller re-evaluates
    }
    slot->snapshot = std::move(snapshot);
    if (slot->snapshot->prepared()) {
      slot->has_recipe = true;
      slot->recipe_options = slot->snapshot->build_options;
      slot->recipe_norm = slot->snapshot->norm_kind;
    }
    TouchLocked(slot.get());
    std::lock_guard<std::mutex> map_lock(map_mutex_);
    const auto it = slots_.find(name);
    if (it != slots_.end() && it->second == slot) {
      total_bytes_ += new_bytes;
      total_bytes_ -= slot->base_bytes.load();
      slot->base_bytes.store(new_bytes);
    }
    // else: the slot was dropped while the snapshot built; leave the
    // orphan unaccounted — it dies with the last reference.
  }
  EvictOverBudget(slot.get());
  return true;
}

void DatasetRegistry::EvictOverBudget(const Slot* keep) {
  while (true) {
    std::string victim_name;
    std::shared_ptr<Slot> victim;
    std::uint64_t victim_stamp = 0;
    {
      std::lock_guard<std::mutex> lock(map_mutex_);
      if (budget_bytes_ == 0 || total_bytes_ <= budget_bytes_) return;
      std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
      for (const auto& [name, slot] : slots_) {
        if (slot.get() == keep || slot->base_bytes.load() == 0) continue;
        const std::uint64_t used = slot->last_used.load();
        if (used < oldest) {
          oldest = used;
          victim_name = name;
          victim = slot;
        }
      }
      if (victim == nullptr) return;  // only `keep` is resident
      victim_stamp = oldest;
    }
    {
      std::unique_lock<std::shared_mutex> lock(victim->mutex);
      if (victim->last_used.load() != victim_stamp) {
        // Touched or reinstalled between selection and locking: it is no
        // longer the LRU slot, so re-run the selection rather than evict a
        // base someone just paid for.
        continue;
      }
      if (victim->snapshot != nullptr && victim->snapshot->prepared()) {
        auto stripped = std::make_shared<PreparedDataset>(*victim->snapshot);
        stripped->base = nullptr;
        victim->snapshot = std::move(stripped);
      }
      std::lock_guard<std::mutex> map_lock(map_mutex_);
      const auto it = slots_.find(victim_name);
      if (it != slots_.end() && it->second == victim) {
        total_bytes_ -= victim->base_bytes.load();
      }
      victim->base_bytes.store(0);
    }
  }
}

void DatasetRegistry::SetPreparedBudget(std::size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(map_mutex_);
    budget_bytes_ = bytes;
  }
  EvictOverBudget(nullptr);
}

std::size_t DatasetRegistry::prepared_budget() const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  return budget_bytes_;
}

std::size_t DatasetRegistry::prepared_bytes() const {
  std::lock_guard<std::mutex> lock(map_mutex_);
  return total_bytes_;
}

void DatasetRegistry::SetDriftThreshold(double fraction) {
  drift_threshold_.store(fraction < 0.0 ? 0.0 : fraction);
}

double DatasetRegistry::drift_threshold() const {
  return drift_threshold_.load();
}

Result<MaintenanceStatus> DatasetRegistry::Maintenance(
    const std::string& name) const {
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<Slot> slot, FindSlot(name));
  MaintenanceStatus status;
  status.drift_threshold = drift_threshold_.load();
  status.last_max_drift = slot->last_max_drift.load();
  status.regroup_in_flight = slot->regroup_inflight.load();
  status.regroups_completed = slot->regroups_completed.load();
  return status;
}

PrepareTicket DatasetRegistry::RegroupAsync(const std::string& name,
                                            std::vector<std::size_t> lengths) {
  PrepareTicket ticket;
  Result<std::shared_ptr<Slot>> slot = FindSlot(name);
  if (!slot.ok()) {
    ticket.result_ = std::make_shared<Status>(slot.status());
    return ticket;  // completed: empty handle reports done
  }
  if ((*slot)->regroup_inflight.exchange(true)) {
    ticket.result_ = std::make_shared<Status>(Status::FailedPrecondition(
        "a regroup of dataset '" + name + "' is already in flight"));
    return ticket;
  }
  return ScheduleRegroup(name, *std::move(slot), std::move(lengths));
}

PrepareTicket DatasetRegistry::MaybeScheduleRegroup(
    const std::string& name, const std::vector<LengthClassDrift>& drift) {
  // An extend that grouped nothing (no report) carries no signal — leave
  // the slot's gauge at its last real observation instead of zeroing it.
  if (drift.empty()) return PrepareTicket{};
  Result<std::shared_ptr<Slot>> slot = FindSlot(name);
  if (!slot.ok()) return PrepareTicket{};  // dropped since the extend
  double max_fraction = 0.0;
  std::vector<std::size_t> affected;
  const double threshold = drift_threshold_.load();
  for (const LengthClassDrift& d : drift) {
    max_fraction = std::max(max_fraction, d.fraction());
    if (threshold > 0.0 && d.fraction() > threshold) {
      affected.push_back(d.length);
    }
  }
  (*slot)->last_max_drift.store(max_fraction);
  if (affected.empty()) return PrepareTicket{};
  if ((*slot)->regroup_inflight.exchange(true)) {
    return PrepareTicket{};  // the in-flight job will see the newest snapshot
  }
  return ScheduleRegroup(name, *std::move(slot), std::move(affected));
}

PrepareTicket DatasetRegistry::ScheduleRegroup(
    const std::string& name, std::shared_ptr<Slot> slot,
    std::vector<std::size_t> lengths) {
  PrepareTicket ticket;
  ticket.result_ =
      std::make_shared<Status>(Status::Internal("regroup job never ran"));
  auto result = ticket.result_;
  ticket.handle_ = pool_->SubmitWithHandle(
      [this, name, slot = std::move(slot), lengths = std::move(lengths),
       result] {
        *result = RunRegroup(name, slot, lengths);
        if (result->ok()) slot->regroups_completed.fetch_add(1);
        slot->regroup_inflight.store(false);
      });
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    std::erase_if(jobs_, [](const TaskHandle& h) { return h.done(); });
    jobs_.push_back(ticket.handle_);
  }
  return ticket;
}

Status DatasetRegistry::RunRegroup(const std::string& name,
                                   const std::shared_ptr<Slot>& slot,
                                   const std::vector<std::size_t>& lengths) {
  while (true) {
    std::shared_ptr<const PreparedDataset> current;
    {
      std::shared_lock<std::shared_mutex> lock(slot->mutex);
      current = slot->snapshot;
    }
    if (current == nullptr || !current->prepared()) {
      // Evicted (or dropped to raw) since scheduling: the transparent
      // rebuild re-clusters every class from scratch, which subsumes this
      // repair.
      return Status::OK();
    }

    // The expensive re-clustering runs with no lock held; concurrent
    // queries keep answering from `current`. The install is conditional: an
    // extend/append/prepare that landed while we rebuilt carries data this
    // regroup has not seen, so on a lost race we re-read and go again.
    ONEX_ASSIGN_OR_RETURN(OnexBase rebuilt,
                          RegroupLengthClasses(*current->base, lengths));
    auto next = std::make_shared<PreparedDataset>(*current);
    next->base = std::make_shared<const OnexBase>(std::move(rebuilt));
    if (Install(slot, name, next, current.get())) {
      // Refresh the drift the dashboard sees: the regrouped classes are the
      // ones whose number just changed.
      double max_fraction = 0.0;
      for (const LengthClassDrift& d : ComputeDrift(*next->base)) {
        max_fraction = std::max(max_fraction, d.fraction());
      }
      slot->last_max_drift.store(max_fraction);
      return Status::OK();
    }
  }
}

}  // namespace onex
