#ifndef ONEX_ENGINE_WAL_H_
#define ONEX_ENGINE_WAL_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "onex/common/hash.h"
#include "onex/common/result.h"
#include "onex/core/incremental.h"
#include "onex/core/onex_base.h"
#include "onex/engine/dataset_registry.h"
#include "onex/ts/dataset.h"
#include "onex/ts/normalization.h"

namespace onex {

/// The per-slot write-ahead log (DESIGN.md §13). Versioned, line-oriented
/// text ("ONEXWAL 1", matching the ONEXBASE/ONEXPREP idiom): one header
/// line naming the dataset, then one line per journaled mutation. Every
/// record carries a strictly increasing sequence number and a trailing
/// FNV-1a 64 checksum over its own bytes, so a torn tail (crash mid-append)
/// and a flipped bit (media corruption) are both detected — the first is
/// recovered past, the second is a structured error, never a silently
/// wrong base.
///
///   ONEXWAL 1 "<dataset name>"
///   r <seq> load "<ds>" <n> {"<name>" "<label>" <len> <v...>}*   c=<fnv64>
///   r <seq> append "<name>" "<label>" <len> <v...>               c=<fnv64>
///   r <seq> extend <k> {<series> <npoints> <p...>}*              c=<fnv64>
///   r <seq> prepare <st> <minlen> <maxlen> <step> <stride> <policy> <norm>
///   r <seq> regroup <k> <len...>                                 c=<fnv64>
///   r <seq> rebuild                                              c=<fnv64>
///   r <seq> evict                                                c=<fnv64>
///   r <seq> ckpt <state_seq>                                     c=<fnv64>
///
/// Values travel in original (raw) units with full %.17g round-trip
/// precision; replay renormalizes them through the same shared writers the
/// live path used (snapshot_ops.h), which is what makes recovery converge
/// with the live engine bit for bit.

enum class WalRecordType {
  kLoad = 0,      ///< Slot creation: the full raw dataset (LOAD/GEN).
  kAppend = 1,    ///< One whole series appended (raw units).
  kExtend = 2,    ///< Streaming tail points for existing series (raw units).
  kPrepare = 3,   ///< Explicit (re-)PREPARE: build options + normalization.
  kRegroup = 4,   ///< Drift repair of the named length classes.
  kRebuild = 5,   ///< Transparent re-preparation of an evicted base.
  kEvict = 6,     ///< LRU eviction stripped the base (DESIGN.md §11).
  kCheckpoint = 7, ///< State up to seq `checkpoint_seq` lives in ckpt-<seq>.
};

const char* WalRecordTypeToString(WalRecordType type);

/// One journaled mutation. Only the fields of the record's type are
/// meaningful; the factories below build well-formed records.
struct WalRecord {
  std::uint64_t seq = 0;  ///< Assigned by WalWriter::Append.
  WalRecordType type = WalRecordType::kRebuild;
  Dataset dataset;                          // kLoad
  TimeSeries series;                        // kAppend
  std::vector<SeriesExtension> extensions;  // kExtend (raw units)
  BaseBuildOptions options;                 // kPrepare
  NormalizationKind norm = NormalizationKind::kMinMaxDataset;  // kPrepare
  std::vector<std::size_t> lengths;         // kRegroup
  std::uint64_t checkpoint_seq = 0;         // kCheckpoint
};

WalRecord WalLoadRecord(const Dataset& dataset);
WalRecord WalAppendRecord(TimeSeries series);
WalRecord WalExtendRecord(std::vector<SeriesExtension> extensions);
WalRecord WalPrepareRecord(const BaseBuildOptions& options,
                           NormalizationKind norm);
WalRecord WalRegroupRecord(std::vector<std::size_t> lengths);
WalRecord WalRebuildRecord();
WalRecord WalEvictRecord();
WalRecord WalCheckpointRecord(std::uint64_t state_seq);

/// Header/record codec. EncodeWalRecord returns the full line including the
/// trailing newline; DecodeWalRecord takes the line without it. Decoding
/// validates the checksum, the type, every count against the bytes actually
/// present (a declared count never drives an allocation — only parsed
/// content does, so a hostile record cannot command unbounded memory), and
/// the option/normalization domains.
std::string EncodeWalHeader(const std::string& dataset_name);
Result<std::string> DecodeWalHeader(std::string_view line);
std::string EncodeWalRecord(const WalRecord& record);
Result<WalRecord> DecodeWalRecord(std::string_view line);

/// Outcome of scanning one WAL stream.
struct WalScan {
  std::string dataset_name;
  std::vector<WalRecord> records;  ///< The valid prefix, seq ascending.
  /// Byte length of the valid prefix (header + intact records); a recovery
  /// that found a torn tail truncates the file here before reopening it
  /// for append.
  std::size_t valid_bytes = 0;
  /// The final line was incomplete (no terminating newline) — the classic
  /// torn write of a crash mid-append. The record was never acknowledged,
  /// so recovery proceeds from the clean prefix.
  bool torn_tail = false;
  /// True when the header itself never finished writing (a crash at slot
  /// birth): no slot existed as far as any client knows; recovery skips
  /// the directory.
  bool embryonic = false;
};

/// Scans a WAL: the valid record prefix plus torn-tail classification.
/// Corruption that is NOT a torn tail — a checksum-failing or malformed
/// line with durable lines after it, a sequence number that does not
/// increase (e.g. a duplicated tail), an oversized line — is a structured
/// ParseError: acknowledged history is damaged and silent repair would
/// drop writes.
Result<WalScan> ScanWal(std::istream& in);
Result<WalScan> ScanWalFile(const std::string& path);

/// Append handle over one slot's WAL file. Appends are write-ahead: the
/// caller journals under its slot lock before publishing the new snapshot,
/// and acknowledges only after Append returned OK (data flushed, and
/// fsync'd unless the registry's durability options disable it). Any
/// failure latches: later appends fail fast rather than interleave with a
/// half-written line.
class WalWriter {
 public:
  /// Creates a fresh WAL (fails if the file exists) and writes the header.
  static Result<WalWriter> Create(const std::string& path,
                                  const std::string& dataset_name,
                                  bool sync);

  /// Opens an existing WAL for append; `next_seq` continues the scan's
  /// last sequence number + 1.
  static Result<WalWriter> OpenExisting(const std::string& path,
                                        std::uint64_t next_seq, bool sync);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Assigns the next sequence number to `record`, encodes and appends it.
  /// A record that would encode past the scanner's line cap is rejected
  /// with InvalidArgument BEFORE anything is written (the writer stays
  /// healthy): what Append accepts, ScanWal must be able to replay —
  /// otherwise an acknowledged write would hold the next recovery hostage.
  Status Append(WalRecord* record);

  /// Appends a record that already carries its sequence number — the
  /// replication path, where seqs are a property of the primary's log and a
  /// replica must reproduce them verbatim so both WALs are byte-identical.
  /// FailedPrecondition unless record.seq == next_seq(): a gap means the
  /// stream skipped acknowledged history and the replica must resubscribe,
  /// never paper over it.
  Status AppendAt(const WalRecord& record);

  /// Re-opens the handle after a rotation replaced the file on disk (the
  /// checkpoint path), continuing at `next_seq`.
  Status Reopen(std::uint64_t next_seq);

  /// Latches the writer failed: every later Append errors out. The
  /// checkpoint path uses this when the on-disk state became ambiguous
  /// (e.g. a directory fsync failed after a rename) — fail-stop beats
  /// acknowledging writes whose durable home is unknown.
  void MarkFailed() { failed_ = true; }

  std::uint64_t next_seq() const { return next_seq_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter() = default;

  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t next_seq_ = 1;
  bool sync_ = true;
  bool failed_ = false;
};

/// Checkpoint files. New checkpoints are written in the ONEXARENA format
/// (core/arena_layout.h): one relocatable, section-checksummed blob holding
/// the exact raw values, the normalized values and the full columnar group
/// state — so a checkpoint can be mmap'd and served in place (the mapped
/// tier, DESIGN.md §17), not just replayed. ReadCheckpointFile sniffs the
/// magic and still reads the legacy text format ("ONEXCKPT 1": raw series
/// plus the ONEXPREP payload, length- and FNV-guarded), so checkpoints
/// written before the arena era recover unchanged.
Status WriteCheckpointFile(const PreparedDataset& ds, const std::string& path,
                           bool sync);
Result<PreparedDataset> ReadCheckpointFile(const std::string& path,
                                           const std::string& name);

/// Maps an arena checkpoint read-only and assembles a snapshot whose base
/// borrows the mapping (PreparedDataset::arena set, storage pinned via the
/// base's keepalive). FailedPrecondition when the file is not an arena —
/// legacy checkpoints cannot be served in place; callers fall back to
/// ReadCheckpointFile.
Result<PreparedDataset> MapCheckpointFile(const std::string& path,
                                          const std::string& name);

/// The checkpoint file's bytes (header + guarded payload) without the file
/// write — the registry serializes outside its slot lock and then only
/// renames inside the critical section.
Result<std::string> EncodeCheckpoint(const PreparedDataset& ds);

/// Filesystem helpers shared by the durability layer: write-then-rename
/// with optional fsync of file and parent directory, plus the two halves
/// separately for callers that must split the expensive write from the
/// atomic publish.
Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       bool sync);
Status WriteFileDurably(const std::string& path, std::string_view bytes,
                        bool sync);
Status RenameFile(const std::string& from, const std::string& to, bool sync);
Status SyncDir(const std::string& dir);

/// Directory name for a slot: dataset names are client-controlled, so every
/// byte outside [A-Za-z0-9_-] is %XX-encoded (no separators, no dots — a
/// name can never traverse out of the data dir). The authoritative name
/// lives in the WAL header, not the directory entry.
std::string SlotDirName(const std::string& dataset_name);

}  // namespace onex

#endif  // ONEX_ENGINE_WAL_H_
