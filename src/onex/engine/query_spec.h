#ifndef ONEX_ENGINE_QUERY_SPEC_H_
#define ONEX_ENGINE_QUERY_SPEC_H_

#include <cstddef>
#include <string>
#include <vector>

namespace onex {

/// How a client names a query sequence (the demo's Query Selection +
/// Preview panes: pick a series, brush a sub-range). Either a reference
/// into a loaded dataset, or inline values typed/uploaded by the analyst.
struct QuerySpec {
  /// Dataset holding the query series; empty = the dataset being searched.
  std::string dataset;
  std::size_t series = 0;
  /// Brushed range [start, start+length); length 0 = rest of the series.
  std::size_t start = 0;
  std::size_t length = 0;
  /// When non-empty, used verbatim (original units) instead of the
  /// reference; normalized with the target dataset's parameters.
  std::vector<double> inline_values;

  bool is_inline() const { return !inline_values.empty(); }
};

}  // namespace onex

#endif  // ONEX_ENGINE_QUERY_SPEC_H_
