#include "onex/ts/paa.h"

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "onex/distance/euclidean.h"

namespace onex {

std::vector<double> Paa(std::span<const double> x, std::size_t segments) {
  const std::size_t n = x.size();
  if (segments == 0 || n == 0) return {};
  if (segments >= n) return {x.begin(), x.end()};
  std::vector<double> out(segments, 0.0);
  for (std::size_t k = 0; k < segments; ++k) {
    const std::size_t begin = k * n / segments;
    std::size_t end = (k + 1) * n / segments;
    if (end <= begin) end = begin + 1;
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += x[i];
    out[k] = acc / static_cast<double>(end - begin);
  }
  return out;
}

double PaaLowerBound(std::span<const double> paa_x,
                     std::span<const double> paa_y, std::size_t original_n) {
  if (paa_x.size() != paa_y.size() || paa_x.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  const double scale = std::sqrt(static_cast<double>(original_n) /
                                 static_cast<double>(paa_x.size()));
  return scale * Euclidean(paa_x, paa_y);
}

}  // namespace onex
