#include "onex/ts/dataset.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <utility>

#include "onex/common/string_utils.h"

namespace onex {

Result<std::size_t> Dataset::FindByName(const std::string& name) const {
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name() == name) return i;
  }
  return Status::NotFound("no series named '" + name + "' in dataset '" +
                          name_ + "'");
}

Status Dataset::CheckIndex(std::size_t series_idx) const {
  if (series_idx >= series_.size()) {
    return Status::OutOfRange(StrFormat(
        "series index %zu out of range (dataset '%s' has %zu series)",
        series_idx, name_.c_str(), series_.size()));
  }
  return Status::OK();
}

Status Dataset::CheckRange(std::size_t series_idx, std::size_t start,
                           std::size_t len) const {
  ONEX_RETURN_IF_ERROR(CheckIndex(series_idx));
  const std::size_t n = series_[series_idx].length();
  if (len == 0) {
    return Status::InvalidArgument("subsequence length must be positive");
  }
  if (start > n || len > n - start) {
    return Status::OutOfRange(StrFormat(
        "range [%zu, %zu) out of bounds for series %zu of length %zu", start,
        start + len, series_idx, n));
  }
  return Status::OK();
}

Result<std::span<const double>> Dataset::GetSlice(std::size_t series_idx,
                                                  std::size_t start,
                                                  std::size_t len) const {
  ONEX_RETURN_IF_ERROR(CheckRange(series_idx, start, len));
  return series_[series_idx].Slice(start, len);
}

std::size_t Dataset::MinLength() const {
  std::size_t out = std::numeric_limits<std::size_t>::max();
  for (const TimeSeries& ts : series_) out = std::min(out, ts.length());
  return series_.empty() ? 0 : out;
}

std::size_t Dataset::MaxLength() const {
  std::size_t out = 0;
  for (const TimeSeries& ts : series_) out = std::max(out, ts.length());
  return out;
}

std::size_t Dataset::TotalPoints() const {
  std::size_t out = 0;
  for (const TimeSeries& ts : series_) out += ts.length();
  return out;
}

std::pair<double, double> Dataset::ValueRange() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const TimeSeries& ts : series_) {
    for (double v : ts.values()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      any = true;
    }
  }
  if (!any) return {0.0, 0.0};
  return {lo, hi};
}

std::size_t Dataset::CountSubsequences(std::size_t min_len,
                                       std::size_t max_len,
                                       std::size_t length_step,
                                       std::size_t stride) const {
  if (min_len == 0 || length_step == 0 || stride == 0 || max_len < min_len) {
    return 0;
  }
  std::size_t count = 0;
  for (const TimeSeries& ts : series_) {
    const std::size_t n = ts.length();
    for (std::size_t len = min_len; len <= std::min(max_len, n);
         len += length_step) {
      const std::size_t positions = n - len + 1;
      count += (positions + stride - 1) / stride;
    }
  }
  return count;
}

}  // namespace onex
