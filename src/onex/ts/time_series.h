#ifndef ONEX_TS_TIME_SERIES_H_
#define ONEX_TS_TIME_SERIES_H_

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace onex {

/// A single univariate time series: an ordered vector of real observations
/// plus a display name and an optional class label (UCR datasets carry one).
///
/// Values are owned; all ONEX structures that reference *subsequences* of a
/// series do so with (index, start, length) references into the owning
/// Dataset, never with copies (see subsequence.h).
class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(std::string name, std::vector<double> values,
             std::string label = "")
      : name_(std::move(name)),
        label_(std::move(label)),
        values_(std::move(values)) {}

  const std::string& name() const { return name_; }
  const std::string& label() const { return label_; }
  void set_name(std::string name) { name_ = std::move(name); }
  void set_label(std::string label) { label_ = std::move(label); }

  std::size_t length() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](std::size_t i) const { return values_[i]; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// View of [start, start+len). The caller must keep this TimeSeries alive
  /// and unmodified while using the span.
  std::span<const double> Slice(std::size_t start, std::size_t len) const {
    return std::span<const double>(values_).subspan(start, len);
  }

  std::span<const double> AsSpan() const {
    return std::span<const double>(values_);
  }

 private:
  std::string name_;
  std::string label_;
  std::vector<double> values_;
};

}  // namespace onex

#endif  // ONEX_TS_TIME_SERIES_H_
