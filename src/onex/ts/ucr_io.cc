#include "onex/ts/ucr_io.h"

#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"

namespace onex {

Result<Dataset> ReadUcrStream(std::istream& in, const std::string& dataset_name,
                              const UcrReadOptions& options) {
  Dataset ds(dataset_name);
  std::string line;
  std::size_t row = 0;
  while (std::getline(in, line)) {
    const std::string_view trimmed = TrimString(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;  // comments/blank
    const std::vector<std::string> fields = SplitString(trimmed, " \t,");
    std::string label;
    std::size_t first_value = 0;
    if (options.first_column_is_label) {
      if (fields.size() < 2) {
        return Status::ParseError(StrFormat(
            "row %zu of '%s' has %zu fields; need a label plus data",
            row, dataset_name.c_str(), fields.size()));
      }
      label = fields[0];
      first_value = 1;
    }
    std::vector<double> values;
    values.reserve(fields.size() - first_value);
    for (std::size_t i = first_value; i < fields.size(); ++i) {
      Result<double> v = ParseDouble(fields[i]);
      if (!v.ok()) {
        return Status::ParseError(
            StrFormat("row %zu field %zu of '%s': ", row, i,
                      dataset_name.c_str()) +
            v.status().message());
      }
      values.push_back(*v);
    }
    if (values.size() < options.min_length) {
      return Status::ParseError(StrFormat(
          "row %zu of '%s' has %zu values; minimum is %zu", row,
          dataset_name.c_str(), values.size(), options.min_length));
    }
    ds.Add(TimeSeries(StrFormat("%s_%zu", dataset_name.c_str(), row),
                      std::move(values), label));
    ++row;
    if (options.max_series != 0 && ds.size() >= options.max_series) break;
  }
  if (ds.empty()) {
    return Status::ParseError("no series found in '" + dataset_name + "'");
  }
  return ds;
}

Result<Dataset> ReadUcrFile(const std::string& path,
                            const UcrReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  // Name the dataset after the file's basename, sans extension.
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return ReadUcrStream(in, name, options);
}

Status WriteUcrStream(const Dataset& ds, std::ostream& out) {
  for (const TimeSeries& ts : ds.series()) {
    out << (ts.label().empty() ? "0" : ts.label());
    for (double v : ts.values()) {
      out << ' ' << StrFormat("%.17g", v);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failure");
  return Status::OK();
}

Status WriteUcrFile(const Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  return WriteUcrStream(ds, out);
}

}  // namespace onex
