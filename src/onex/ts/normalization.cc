#include "onex/ts/normalization.h"

#include <cmath>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/math_utils.h"
#include "onex/common/string_utils.h"

namespace onex {

const char* NormalizationKindToString(NormalizationKind kind) {
  switch (kind) {
    case NormalizationKind::kNone:
      return "none";
    case NormalizationKind::kMinMaxDataset:
      return "minmax-dataset";
    case NormalizationKind::kMinMaxSeries:
      return "minmax-series";
    case NormalizationKind::kZScoreSeries:
      return "zscore-series";
  }
  return "unknown";
}

Result<NormalizationKind> NormalizationKindFromString(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "none") return NormalizationKind::kNone;
  if (lower == "minmax-dataset" || lower == "minmax") {
    return NormalizationKind::kMinMaxDataset;
  }
  if (lower == "minmax-series") return NormalizationKind::kMinMaxSeries;
  if (lower == "zscore-series" || lower == "zscore") {
    return NormalizationKind::kZScoreSeries;
  }
  return Status::InvalidArgument("unknown normalization kind: '" + name + "'");
}

Result<Dataset> Normalize(const Dataset& ds, NormalizationKind kind,
                          NormalizationParams* params) {
  NormalizationParams local;
  local.kind = kind;
  Dataset out(ds.name());

  switch (kind) {
    case NormalizationKind::kNone: {
      out = ds;
      break;
    }
    case NormalizationKind::kMinMaxDataset: {
      const auto [lo, hi] = ds.ValueRange();
      local.min = lo;
      local.max = hi;
      const double span = hi - lo;
      for (const TimeSeries& ts : ds.series()) {
        std::vector<double> vals;
        vals.reserve(ts.length());
        for (double v : ts.values()) {
          vals.push_back(span > 0.0 ? (v - lo) / span : 0.0);
        }
        out.Add(TimeSeries(ts.name(), std::move(vals), ts.label()));
      }
      break;
    }
    case NormalizationKind::kMinMaxSeries: {
      for (const TimeSeries& ts : ds.series()) {
        const double lo = Min(ts.AsSpan());
        const double hi = Max(ts.AsSpan());
        const double span = hi - lo;
        std::vector<double> vals;
        vals.reserve(ts.length());
        for (double v : ts.values()) {
          vals.push_back(span > 0.0 ? (v - lo) / span : 0.0);
        }
        local.per_series.emplace_back(lo, span > 0.0 ? span : 1.0);
        out.Add(TimeSeries(ts.name(), std::move(vals), ts.label()));
      }
      break;
    }
    case NormalizationKind::kZScoreSeries: {
      for (const TimeSeries& ts : ds.series()) {
        const double mu = Mean(ts.AsSpan());
        const double sigma = StdDev(ts.AsSpan());
        std::vector<double> vals;
        vals.reserve(ts.length());
        for (double v : ts.values()) {
          vals.push_back(sigma > 0.0 ? (v - mu) / sigma : 0.0);
        }
        local.per_series.emplace_back(mu, sigma > 0.0 ? sigma : 1.0);
        out.Add(TimeSeries(ts.name(), std::move(vals), ts.label()));
      }
      break;
    }
  }

  if (params != nullptr) *params = std::move(local);
  return out;
}

TimeSeries NormalizeAppended(const TimeSeries& series, NormalizationKind kind,
                             NormalizationParams* params) {
  std::vector<double> out;
  out.reserve(series.length());
  switch (kind) {
    case NormalizationKind::kNone:
      out = series.values();
      break;
    case NormalizationKind::kMinMaxDataset: {
      const double lo = params->min;
      const double span = params->max - params->min;
      for (double v : series.values()) {
        out.push_back(span > 0.0 ? (v - lo) / span : 0.0);
      }
      break;
    }
    case NormalizationKind::kMinMaxSeries: {
      const double lo = Min(series.AsSpan());
      const double span = Max(series.AsSpan()) - lo;
      for (double v : series.values()) {
        out.push_back(span > 0.0 ? (v - lo) / span : 0.0);
      }
      params->per_series.emplace_back(lo, span > 0.0 ? span : 1.0);
      break;
    }
    case NormalizationKind::kZScoreSeries: {
      const double mu = Mean(series.AsSpan());
      const double sigma = StdDev(series.AsSpan());
      for (double v : series.values()) {
        out.push_back(sigma > 0.0 ? (v - mu) / sigma : 0.0);
      }
      params->per_series.emplace_back(mu, sigma > 0.0 ? sigma : 1.0);
      break;
    }
  }
  return TimeSeries(series.name(), std::move(out), series.label());
}

double NormalizeValue(const NormalizationParams& params,
                      std::size_t series_idx, double value) {
  switch (params.kind) {
    case NormalizationKind::kNone:
      return value;
    case NormalizationKind::kMinMaxDataset: {
      const double span = params.max - params.min;
      return span > 0.0 ? (value - params.min) / span : 0.0;
    }
    case NormalizationKind::kMinMaxSeries:
    case NormalizationKind::kZScoreSeries: {
      if (series_idx >= params.per_series.size()) return value;
      const auto [offset, scale] = params.per_series[series_idx];
      return scale != 0.0 ? (value - offset) / scale : 0.0;
    }
  }
  return value;
}

double Denormalize(const NormalizationParams& params, std::size_t series_idx,
                   double value) {
  switch (params.kind) {
    case NormalizationKind::kNone:
      return value;
    case NormalizationKind::kMinMaxDataset: {
      const double span = params.max - params.min;
      return span > 0.0 ? value * span + params.min : params.min;
    }
    case NormalizationKind::kMinMaxSeries:
    case NormalizationKind::kZScoreSeries: {
      if (series_idx >= params.per_series.size()) return value;
      const auto [offset, scale] = params.per_series[series_idx];
      return value * scale + offset;
    }
  }
  return value;
}

}  // namespace onex
