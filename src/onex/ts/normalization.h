#ifndef ONEX_TS_NORMALIZATION_H_
#define ONEX_TS_NORMALIZATION_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/result.h"
#include "onex/ts/dataset.h"

namespace onex {

/// Normalization applied before grouping. ONEX normalizes the whole dataset
/// into [0,1] with the global extrema (the paper's thresholds — e.g. ST=0.1 —
/// presume a common value scale); per-series variants are provided for
/// workloads where amplitude should not matter.
enum class NormalizationKind {
  kNone = 0,
  kMinMaxDataset = 1,  ///< (v - min_D) / (max_D - min_D), dataset-global.
  kMinMaxSeries = 2,   ///< Per-series min-max to [0,1].
  kZScoreSeries = 3,   ///< Per-series (v - mean) / stddev.
};

const char* NormalizationKindToString(NormalizationKind kind);
Result<NormalizationKind> NormalizationKindFromString(const std::string& name);

/// Parameters captured during normalization so values can be mapped back for
/// display (the web front-end shows original units).
struct NormalizationParams {
  NormalizationKind kind = NormalizationKind::kNone;
  /// For kMinMaxDataset: the global extrema. Per-series kinds keep one entry
  /// per series in `per_series` as (offset, scale): original = v*scale+offset.
  double min = 0.0;
  double max = 0.0;
  std::vector<std::pair<double, double>> per_series;
};

/// Returns a normalized copy of `ds`.
///
/// Degenerate inputs are handled conservatively: a constant series (or a
/// constant dataset for the dataset-global kind) maps to all zeros rather
/// than dividing by zero.
Result<Dataset> Normalize(const Dataset& ds, NormalizationKind kind,
                          NormalizationParams* params = nullptr);

/// Maps a normalized value back to original units for series `series_idx`.
double Denormalize(const NormalizationParams& params, std::size_t series_idx,
                   double value);

/// Inverse of Denormalize: maps one raw value of series `series_idx` into
/// the frozen normalized space. The streaming tail path (Engine::
/// ExtendSeries, and the registry's catch-up of a normalized copy that went
/// stale while the base sat evicted) uses this so points appended to an
/// existing series land in exactly the units the base compares in.
/// Degenerate frozen scales (constant dataset) map to 0, mirroring
/// Normalize.
double NormalizeValue(const NormalizationParams& params,
                      std::size_t series_idx, double value);

/// Normalizes one newcomer series against an existing dataset's *frozen*
/// parameters — the incremental-append counterpart of Normalize. Dataset-
/// level kinds reuse the stored extrema untouched (appending never rescales
/// the rest of the dataset); per-series kinds compute the newcomer's own
/// offset/scale and append it to `params->per_series`. Used by the
/// engine's AppendSeries and by the registry's transparent rebuild of a
/// base that was appended to while evicted, so both paths produce the same
/// values.
TimeSeries NormalizeAppended(const TimeSeries& series, NormalizationKind kind,
                             NormalizationParams* params);

}  // namespace onex

#endif  // ONEX_TS_NORMALIZATION_H_
