#ifndef ONEX_TS_UCR_IO_H_
#define ONEX_TS_UCR_IO_H_

#include <cstddef>
#include <iosfwd>
#include <string>

#include "onex/common/result.h"
#include "onex/ts/dataset.h"

namespace onex {

/// Reader/writer for the UCR time-series archive text format the paper's
/// datasets ship in: one series per line, the first field being the class
/// label, the remaining fields the observations, separated by commas or
/// whitespace. Rows may be ragged (ONEX explicitly supports variable-length
/// collections).
struct UcrReadOptions {
  /// When false, the first field is treated as data, not a label (MATTERS
  /// exports carry no class column).
  bool first_column_is_label = true;
  /// Series shorter than this are rejected with ParseError. DTW needs >= 2
  /// points for any meaningful alignment; 1 is accepted by default and only
  /// empty rows fail.
  std::size_t min_length = 1;
  /// Cap on series read (0 = no cap); handy for smoke tests over big files.
  std::size_t max_series = 0;
};

/// Parses UCR text from a stream; series are named "<dataset>_<row>".
Result<Dataset> ReadUcrStream(std::istream& in, const std::string& dataset_name,
                              const UcrReadOptions& options = {});

/// Loads a UCR file from disk.
Result<Dataset> ReadUcrFile(const std::string& path,
                            const UcrReadOptions& options = {});

/// Writes `ds` in UCR format (label first when non-empty, else "0").
Status WriteUcrStream(const Dataset& ds, std::ostream& out);
Status WriteUcrFile(const Dataset& ds, const std::string& path);

}  // namespace onex

#endif  // ONEX_TS_UCR_IO_H_
