#ifndef ONEX_TS_PAA_H_
#define ONEX_TS_PAA_H_

#include <cstddef>
#include <span>
#include <vector>

namespace onex {

/// Piecewise Aggregate Approximation (Keogh et al.): a series of length n
/// reduced to m segment means. Used by the front-end for cheap preview
/// rendering (the demo's "small line graph" thumbnails) and usable as a
/// coarse pre-filter: PAA distance lower-bounds Euclidean distance.
///
/// Segments follow the standard fractional partition: segment k covers
/// [k*n/m, (k+1)*n/m), so lengths differ by at most one point. m >= n
/// returns the series unchanged; m == 0 returns empty.
std::vector<double> Paa(std::span<const double> x, std::size_t segments);

/// The classic PAA lower bound on Euclidean distance for equal-length x, y
/// reduced to the same segment count m (exact when n % m == 0):
///   sqrt(n/m) * ED(paa_x, paa_y) <= ED(x, y).
/// Returns that left-hand side; +infinity on size mismatch.
double PaaLowerBound(std::span<const double> paa_x,
                     std::span<const double> paa_y, std::size_t original_n);

}  // namespace onex

#endif  // ONEX_TS_PAA_H_
