#include "onex/ts/csv_io.h"

#include <cstddef>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"

namespace onex {

Result<Dataset> ReadCsvPanelStream(std::istream& in,
                                   const std::string& dataset_name,
                                   const CsvPanelReadOptions& options) {
  Dataset ds(dataset_name);
  std::string line;
  bool header_pending = options.has_header;
  std::size_t row = 0;
  while (std::getline(in, line)) {
    ++row;
    const std::string_view trimmed = TrimString(line);
    if (trimmed.empty()) continue;
    if (header_pending) {
      header_pending = false;
      continue;
    }
    const std::vector<std::string> cells = SplitKeepEmpty(trimmed, ',');
    if (cells.size() < 2) {
      return Status::ParseError(StrFormat(
          "row %zu of '%s': need an entity name plus at least one value",
          row, dataset_name.c_str()));
    }
    const std::string name(TrimString(cells[0]));
    if (name.empty()) {
      return Status::ParseError(
          StrFormat("row %zu of '%s': empty entity name", row,
                    dataset_name.c_str()));
    }
    std::vector<double> values;
    values.reserve(cells.size() - 1);
    for (std::size_t c = 1; c < cells.size(); ++c) {
      const std::string_view cell = TrimString(cells[c]);
      if (cell.empty()) {
        if (!options.allow_missing) {
          return Status::ParseError(
              StrFormat("row %zu column %zu of '%s': empty cell "
                        "(set allow_missing to impute)",
                        row, c, dataset_name.c_str()));
        }
        values.push_back(options.missing_value);
        continue;
      }
      Result<double> v = ParseDouble(cell);
      if (!v.ok()) {
        return Status::ParseError(
            StrFormat("row %zu column %zu of '%s': ", row, c,
                      dataset_name.c_str()) +
            v.status().message());
      }
      values.push_back(*v);
    }
    ds.Add(TimeSeries(name, std::move(values)));
  }
  if (ds.empty()) {
    return Status::ParseError("no data rows in '" + dataset_name + "'");
  }
  return ds;
}

Result<Dataset> ReadCsvPanelFile(const std::string& path,
                                 const CsvPanelReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return ReadCsvPanelStream(in, name, options);
}

Status WriteCsvPanelStream(const Dataset& ds, std::ostream& out,
                           bool write_header) {
  if (write_header) {
    out << "name";
    for (std::size_t i = 0; i < ds.MaxLength(); ++i) out << ',' << i;
    out << '\n';
  }
  for (const TimeSeries& ts : ds.series()) {
    if (ts.name().find(',') != std::string::npos) {
      return Status::InvalidArgument("series name '" + ts.name() +
                                     "' contains a comma");
    }
    out << ts.name();
    for (double v : ts.values()) out << ',' << StrFormat("%.17g", v);
    out << '\n';
  }
  if (!out) return Status::IoError("CSV write failure");
  return Status::OK();
}

Status WriteCsvPanelFile(const Dataset& ds, const std::string& path,
                         bool write_header) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  return WriteCsvPanelStream(ds, out, write_header);
}

}  // namespace onex
