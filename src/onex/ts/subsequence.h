#ifndef ONEX_TS_SUBSEQUENCE_H_
#define ONEX_TS_SUBSEQUENCE_H_

#include <compare>
#include <cstddef>
#include <span>
#include <string>

#include "onex/common/string_utils.h"
#include "onex/ts/dataset.h"

namespace onex {

/// Lightweight reference to a contiguous subsequence of one series in a
/// Dataset: the currency of the ONEX base. Groups store millions of these
/// instead of materialized copies.
struct SubseqRef {
  std::size_t series = 0;  ///< Index of the owning series in the Dataset.
  std::size_t start = 0;   ///< First position (inclusive).
  std::size_t length = 0;  ///< Number of points.

  std::size_t end() const { return start + length; }

  /// Resolves the reference against its dataset. The caller guarantees the
  /// ref was created for `ds` (debug-checked by Dataset::GetSlice callers).
  std::span<const double> Resolve(const Dataset& ds) const {
    return ds[series].Slice(start, length);
  }

  /// True when both refs address the same series and their index intervals
  /// intersect; seasonal mining uses this to discard trivial self-overlaps.
  bool Overlaps(const SubseqRef& other) const {
    return series == other.series && start < other.end() &&
           other.start < end();
  }

  std::string ToString() const {
    return StrFormat("s%zu[%zu..%zu)", series, start, start + length);
  }

  friend auto operator<=>(const SubseqRef&, const SubseqRef&) = default;
};

}  // namespace onex

#endif  // ONEX_TS_SUBSEQUENCE_H_
