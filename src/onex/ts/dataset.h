#ifndef ONEX_TS_DATASET_H_
#define ONEX_TS_DATASET_H_

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/result.h"
#include "onex/ts/time_series.h"

namespace onex {

/// An ordered collection of (possibly variable-length) time series; the unit
/// ONEX loads, normalizes, groups and queries. Series are addressed by index;
/// names are secondary and need not be unique.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::string name) : name_(std::move(name)) {}
  Dataset(std::string name, std::vector<TimeSeries> series)
      : name_(std::move(name)), series_(std::move(series)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t size() const { return series_.size(); }
  bool empty() const { return series_.empty(); }

  const TimeSeries& operator[](std::size_t i) const { return series_[i]; }
  const std::vector<TimeSeries>& series() const { return series_; }

  void Add(TimeSeries ts) { series_.push_back(std::move(ts)); }

  /// Bounds-checked access.
  Result<std::size_t> FindByName(const std::string& name) const;
  Status CheckIndex(std::size_t series_idx) const;
  Status CheckRange(std::size_t series_idx, std::size_t start,
                    std::size_t len) const;

  /// Span over series `series_idx`, positions [start, start+len).
  /// The dataset must outlive the span.
  Result<std::span<const double>> GetSlice(std::size_t series_idx,
                                           std::size_t start,
                                           std::size_t len) const;

  std::size_t MinLength() const;
  std::size_t MaxLength() const;
  std::size_t TotalPoints() const;

  /// Global extrema over every point of every series (0,0 when empty);
  /// dataset-wide min-max normalization uses these.
  std::pair<double, double> ValueRange() const;

  /// Count of subsequences with length in [min_len, max_len] and start
  /// offsets stepped by `stride`. This is the size of the space the ONEX
  /// base summarizes (the paper's "huge number of such subsequences").
  std::size_t CountSubsequences(std::size_t min_len, std::size_t max_len,
                                std::size_t length_step = 1,
                                std::size_t stride = 1) const;

 private:
  std::string name_;
  std::vector<TimeSeries> series_;
};

}  // namespace onex

#endif  // ONEX_TS_DATASET_H_
