#ifndef ONEX_TS_CSV_IO_H_
#define ONEX_TS_CSV_IO_H_

#include <iosfwd>
#include <string>

#include "onex/common/result.h"
#include "onex/ts/dataset.h"

namespace onex {

/// Reader/writer for the wide CSV layout economic panels like MATTERS ship
/// in: a header row of period labels, then one row per entity
/// ("Massachusetts,2.3,2.5,..."). Complements the UCR reader (ucr_io.h)
/// whose first column is a class label rather than an entity name.
struct CsvPanelReadOptions {
  /// First row holds column labels (years), skipped for values.
  bool has_header = true;
  /// Empty cells become this value when allow_missing is set; otherwise a
  /// row with an empty cell is a ParseError. NaN is not allowed (distances
  /// would silently break), so gaps must be imputed by the caller's choice
  /// of constant.
  bool allow_missing = false;
  double missing_value = 0.0;
};

Result<Dataset> ReadCsvPanelStream(std::istream& in,
                                   const std::string& dataset_name,
                                   const CsvPanelReadOptions& options = {});

Result<Dataset> ReadCsvPanelFile(const std::string& path,
                                 const CsvPanelReadOptions& options = {});

/// Writes name,v1,v2,... rows with an optional "name,0,1,2,..." header.
Status WriteCsvPanelStream(const Dataset& ds, std::ostream& out,
                           bool write_header = true);
Status WriteCsvPanelFile(const Dataset& ds, const std::string& path,
                         bool write_header = true);

}  // namespace onex

#endif  // ONEX_TS_CSV_IO_H_
