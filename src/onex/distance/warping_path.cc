#include "onex/distance/warping_path.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>

namespace onex {

bool IsValidWarpingPath(const WarpingPath& path, std::size_t n,
                        std::size_t m) {
  if (path.empty() || n == 0 || m == 0) return false;
  if (path.front() != std::make_pair<std::size_t, std::size_t>(0, 0)) {
    return false;
  }
  if (path.back().first != n - 1 || path.back().second != m - 1) return false;
  for (std::size_t k = 1; k < path.size(); ++k) {
    const std::size_t di = path[k].first - path[k - 1].first;
    const std::size_t dj = path[k].second - path[k - 1].second;
    // Underflow of unsigned subtraction yields huge values, caught here.
    if (di > 1 || dj > 1 || (di == 0 && dj == 0)) return false;
  }
  return true;
}

double WarpingPathCost(std::span<const double> a, std::span<const double> b,
                       const WarpingPath& path) {
  double acc = 0.0;
  for (const auto& [i, j] : path) {
    const double d = a[i] - b[j];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::size_t MaxSecondIndexMultiplicity(const WarpingPath& path) {
  std::size_t best = 0;
  std::size_t run = 0;
  std::size_t prev_j = static_cast<std::size_t>(-1);
  for (const auto& [i, j] : path) {
    (void)i;
    if (j == prev_j) {
      ++run;
    } else {
      run = 1;
      prev_j = j;
    }
    best = std::max(best, run);
  }
  return best;
}

}  // namespace onex
