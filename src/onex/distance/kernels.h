#ifndef ONEX_DISTANCE_KERNELS_H_
#define ONEX_DISTANCE_KERNELS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "onex/distance/envelope.h"

namespace onex {

/// The unified distance-kernel layer (DESIGN.md §14). Every distance
/// primitive the system computes — ED, Keogh envelope construction, the
/// LB_Kim / LB_Keogh lower bounds and banded early-abandoning DTW — lives
/// behind one dispatch table so that:
///
///  * the ONEX query cascade, the UCR-style baseline, grouping and the
///    benches all run the SAME arithmetic (one implementation, one test
///    suite, no divergent private copies), and
///  * the inner loops can be swapped between a plain scalar build and a
///    vectorized build (portable `#pragma omp simd`, plus an AVX2+FMA
///    specialization selected by runtime CPU detection on x86-64) without
///    touching any call site.
///
/// Calling convention: raw pointers + lengths, squared-domain accumulators,
/// and a caller-owned workspace for the DTW row buffers. The span-based
/// convenience wrappers below (LbKim, LbKeogh, ...) route through the
/// active table and are what non-hot-path code should use.

/// Reusable scratch for the banded DTW dynamic program (two rolling rows
/// plus a vector-lane staging buffer). One workspace per thread: the kernel
/// entry points that take a workspace never allocate once the buffers have
/// grown to the largest row seen, which removes the two heap allocations
/// the previous implementation paid per DTW call. Contents carry no state
/// between calls — results are identical with a fresh workspace.
class DtwWorkspace {
 public:
  /// Rows sized for a candidate of length m (plus the band-edge sentinel).
  void EnsureRows(std::size_t m) {
    if (prev_.size() < m) {
      prev_.resize(m);
      curr_.resize(m);
      lane_.resize(2 * m);
    }
  }
  double* prev() { return prev_.data(); }
  double* curr() { return curr_.data(); }
  double* lane() { return lane_.data(); }
  void SwapRows() { prev_.swap(curr_); }

 private:
  std::vector<double> prev_;
  std::vector<double> curr_;
  std::vector<double> lane_;
};

/// The per-thread default workspace; the convenience wrappers use it so
/// every thread reuses its own buffers with zero coordination.
DtwWorkspace& ThreadLocalDtwWorkspace();

/// One interchangeable set of distance kernels. All functions are pure;
/// `cutoff_sq` parameters are in squared distance units with +infinity
/// meaning "never abandon". Abandoning kernels return +infinity exactly
/// when the true result provably exceeds the cutoff, so callers comparing
/// against the cutoff get the same decision with or without abandoning.
struct DistanceKernel {
  const char* name;

  /// sum (a_i - b_i)^2 over n points.
  double (*squared_euclidean)(const double* a, const double* b,
                              std::size_t n);

  /// Early-abandoning form: +infinity as soon as the running sum exceeds
  /// cutoff_sq, else the exact squared distance.
  double (*squared_euclidean_ea)(const double* a, const double* b,
                                 std::size_t n, double cutoff_sq);

  /// Squared LB_Keogh penalty of `cand` against the envelope [lo, up]:
  /// sum of (cand_i - up_i)^2 where cand_i > up_i plus (lo_i - cand_i)^2
  /// where cand_i < lo_i. +infinity once the partial sum exceeds cutoff_sq.
  /// Serves both directions of the bound — pass a query envelope and a
  /// candidate, or a candidate/centroid envelope and the query.
  double (*lb_keogh_sq)(const double* lo, const double* up,
                        const double* cand, std::size_t n, double cutoff_sq);

  /// Squared group-envelope bound: tightest LB_Keogh penalty any series
  /// inside [glo, gup] could incur against the query envelope [qlo, qup].
  double (*lb_keogh_group_sq)(const double* qlo, const double* qup,
                              const double* glo, const double* gup,
                              std::size_t n);

  /// Keogh envelope of x with band half-width `window` into lo/up (each n
  /// doubles). window < 0 or >= n degenerates to the global min/max.
  void (*keogh_envelope)(const double* x, std::size_t n, int window,
                         double* lo, double* up);

  /// Banded early-abandoning DTW over squared point costs. `window` must
  /// already be effective (>= |n - m|, or negative for unconstrained; see
  /// EffectiveWindow in dtw.h). Returns the squared DTW distance, or
  /// +infinity once every cell of a DP row exceeds cutoff_sq. n, m >= 1.
  /// The scalar and portable tables are bit-identical (the per-cell
  /// min/add sequence is order-fixed; only the cost staging vectorizes).
  /// The AVX2 table additionally rewrites wide rows as prefix-scan
  /// recurrences, which reassociates the in-row sums: its values can
  /// differ from the other tables in final ulps, though each table is
  /// individually deterministic.
  double (*dtw_ea_sq)(const double* a, std::size_t n, const double* b,
                      std::size_t m, double cutoff_sq, int window,
                      DtwWorkspace* ws);
};

/// Which kernel table the process uses. kAuto picks the widest variant the
/// CPU supports (AVX2+FMA where available, the portable vectorized build
/// otherwise); kScalar / kSimd force a table, which is how the kernel
/// sweep bench and the crosscheck tests compare variants. The environment
/// variable ONEX_KERNELS=scalar|simd overrides the initial mode.
enum class KernelMode { kAuto = 0, kScalar = 1, kSimd = 2 };

/// Process-wide mode switch; safe to call at any time (atomic pointer
/// swap), though mixing modes mid-query is only something tests do.
void SetKernelMode(KernelMode mode);
KernelMode GetKernelMode();

/// The plain-C++ reference table and the best vectorized table for this
/// CPU. SimdKernel() falls back to the portable vectorized table when no
/// wider ISA is available at runtime.
const DistanceKernel& ScalarKernel();
const DistanceKernel& SimdKernel();

/// The table the mode currently selects; every wrapper routes through it.
const DistanceKernel& ActiveKernel();

/// True when SimdKernel() is a genuinely wider ISA than the baseline build
/// (e.g. AVX2 dispatched on x86-64).
bool SimdDispatchAvailable();

// ---------------------------------------------------------------------------
// Lower-bound convenience API (the paper's "early pruning of unpromising
// candidates", §3.3). Every bound is admissible: LB(x, y) <=
// DtwDistance(x, y) under the stated window — the test suite checks this
// exhaustively. These are the span-typed entry points the query processor,
// the UCR baseline and the tests share; they all route through
// ActiveKernel().
// ---------------------------------------------------------------------------

/// LB_Kim (endpoint form): sqrt((a_first-b_first)^2 + (a_last-b_last)^2).
/// Valid for any window and any pair of lengths, because every warping path
/// aligns the two first points and the two last points. Returns 0 on empty
/// input (vacuously admissible).
double LbKim(std::span<const double> a, std::span<const double> b);

/// LB_Keogh: given the Keogh envelope of the query computed with band
/// half-width w (see ComputeKeoghEnvelope), lower-bounds DtwDistance(query,
/// candidate, w) for equal-length inputs. Returns 0 when lengths differ
/// (trivially admissible; ONEX only applies it within one length class).
/// `cutoff` enables early abandoning: once the partial sum exceeds cutoff^2
/// the function returns +infinity. Negative cutoff never abandons.
double LbKeogh(const Envelope& envelope, std::span<const double> candidate,
               double cutoff = -1.0);

/// Same bound with a columnar envelope (an EnvelopeView into a GroupStore
/// matrix) — the reversed-Keogh form the query cascade runs against the
/// precomputed centroid envelopes.
double LbKeogh(const EnvelopeView& envelope, std::span<const double> candidate,
               double cutoff = -1.0);

/// Group-envelope bound: lower-bounds DtwDistance(query, member, w) for
/// EVERY member of a similarity group, given the group's pointwise min/max
/// envelope. Equal lengths required (else 0). One evaluation prunes a whole
/// group (DESIGN.md §7.3).
double LbKeoghGroup(const Envelope& query_envelope,
                    const Envelope& group_envelope);

/// Same bound over a columnar group envelope; the hot-path form the query
/// processor uses so group pruning never materializes Envelope objects.
double LbKeoghGroup(const Envelope& query_envelope,
                    const EnvelopeView& group_envelope);

/// True when an envelope precomputed with band half-width `stored_window`
/// may lower-bound DTW at `query_window` (both already effective; negative
/// means unconstrained): the stored band must contain the query band, so a
/// wider (or unconstrained) stored envelope stays admissible for any
/// narrower query window.
inline bool EnvelopeWindowCovers(int stored_window, int query_window) {
  if (stored_window < 0) return true;
  return query_window >= 0 && query_window <= stored_window;
}

}  // namespace onex

#endif  // ONEX_DISTANCE_KERNELS_H_
