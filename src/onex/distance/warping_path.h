#ifndef ONEX_DISTANCE_WARPING_PATH_H_
#define ONEX_DISTANCE_WARPING_PATH_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace onex {

/// A DTW alignment: ordered (i, j) index pairs matching position i of the
/// first sequence to position j of the second. The demo's "matched points"
/// dotted lines (Fig 2) and the connected scatter plot (Fig 3b) are direct
/// renderings of this structure.
using WarpingPath = std::vector<std::pair<std::size_t, std::size_t>>;

/// True when `path` is a legal warping path for sequences of length n and m:
/// starts at (0,0), ends at (n-1,m-1), and advances by (1,0), (0,1) or (1,1)
/// at every step (monotone and continuous).
bool IsValidWarpingPath(const WarpingPath& path, std::size_t n, std::size_t m);

/// Cost of an explicit alignment: sqrt of the summed squared differences
/// along the path. For the optimal path this equals the DTW distance.
double WarpingPathCost(std::span<const double> a, std::span<const double> b,
                       const WarpingPath& path);

/// Largest number of consecutive path steps that pin one index of the second
/// sequence (the multiplicity M in the ED->DTW bridging bound; DESIGN.md §5).
std::size_t MaxSecondIndexMultiplicity(const WarpingPath& path);

}  // namespace onex

#endif  // ONEX_DISTANCE_WARPING_PATH_H_
