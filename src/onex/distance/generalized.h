#ifndef ONEX_DISTANCE_GENERALIZED_H_
#define ONEX_DISTANCE_GENERALIZED_H_

#include <span>
#include <string>

#include "onex/common/result.h"

namespace onex {

/// Pluggable point-wise costs for the warped and straight distances — the
/// generalization direction the ONEX authors pursued after the demo (their
/// follow-up system accepts arbitrary point distances). The default
/// squared-L2 kernels in dtw.h/euclidean.h stay untouched (hot path); this
/// module provides the generalized pair.
enum class PointCost {
  /// (a-b)^2 accumulated, sqrt at the end: the default DTW/ED pair with
  /// DTW <= ED on equal lengths.
  kSquared = 0,
  /// |a-b| accumulated, no final transform: Manhattan-flavored DTW whose
  /// straight-line analog is the L1 distance.
  kAbsolute = 1,
};

const char* PointCostToString(PointCost cost);
Result<PointCost> PointCostFromString(const std::string& name);

/// Straight-line (no warping) distance under `cost`: sqrt(sum (a_i-b_i)^2)
/// or sum |a_i-b_i|. +infinity on length mismatch or empty input.
double GeneralizedStraightDistance(std::span<const double> a,
                                   std::span<const double> b, PointCost cost);

/// DTW under `cost` with the same Sakoe-Chiba band semantics as
/// DtwDistance. For every cost the warped distance never exceeds the
/// straight distance on equal lengths (the identity alignment is a warping
/// path) — the property ONEX-style grouping needs of any distance pair.
double GeneralizedDtwDistance(std::span<const double> a,
                              std::span<const double> b, PointCost cost,
                              int window = -1);

}  // namespace onex

#endif  // ONEX_DISTANCE_GENERALIZED_H_
