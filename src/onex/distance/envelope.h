#ifndef ONEX_DISTANCE_ENVELOPE_H_
#define ONEX_DISTANCE_ENVELOPE_H_

#include <cstddef>
#include <span>
#include <vector>

namespace onex {

/// A pointwise band [lower[i], upper[i]] around one or more sequences.
/// Two uses in ONEX, both from the paper's §3.3 "indexing of time series
/// using bounding envelopes":
///  * Keogh query envelope: upper/lower over a sliding window of the query,
///    feeding LB_Keogh.
///  * Group envelope: pointwise min/max over every member of a similarity
///    group, letting the query processor lower-bound the DTW to *all*
///    members with one comparison.
struct Envelope {
  std::vector<double> lower;
  std::vector<double> upper;

  std::size_t size() const { return lower.size(); }
  bool empty() const { return lower.empty(); }
};

/// Non-owning view of an envelope whose bands live in columnar storage
/// (core/group_store.h keeps all group envelopes of a length class in two
/// contiguous matrices). Mirrors Envelope's read API so pruning code and
/// tests work with either representation.
struct EnvelopeView {
  std::span<const double> lower;
  std::span<const double> upper;

  std::size_t size() const { return lower.size(); }
  bool empty() const { return lower.empty(); }
};

/// Keogh envelope of `x` with band half-width `window`:
/// upper[i] = max(x[i-w..i+w]), lower[i] = min(x[i-w..i+w]).
/// A negative window means unconstrained DTW; the envelope degenerates to the
/// global min/max repeated n times (still a valid, if weak, bound).
/// O(n) via monotonic deques.
Envelope ComputeKeoghEnvelope(std::span<const double> x, int window);

/// Pointwise min/max accumulator for group envelopes. `acc` must be empty or
/// sized like `x`; the first call initializes it to x's values.
void AccumulateEnvelope(Envelope* acc, std::span<const double> x);

}  // namespace onex

#endif  // ONEX_DISTANCE_ENVELOPE_H_
