#ifndef ONEX_DISTANCE_EUCLIDEAN_H_
#define ONEX_DISTANCE_EUCLIDEAN_H_

#include <span>

namespace onex {

/// Euclidean (L2) distance kernels. All functions require a.size() ==
/// b.size(); mismatched or empty inputs return +infinity so that callers
/// comparing against thresholds treat them as "not similar" rather than
/// crashing — the ONEX base only ever compares equal lengths, and the public
/// API layers validate before reaching these kernels.

/// Sum of squared differences (no sqrt); the building block the others share.
double SquaredEuclidean(std::span<const double> a, std::span<const double> b);

/// sqrt(sum (a_i - b_i)^2).
double Euclidean(std::span<const double> a, std::span<const double> b);

/// Length-normalized ED: Euclidean / sqrt(n). Comparable across lengths, so
/// one similarity threshold ST covers the whole multi-length ONEX base
/// (DESIGN.md §7.1).
double NormalizedEuclidean(std::span<const double> a,
                           std::span<const double> b);

/// Early-abandoning squared ED: returns +infinity as soon as the running sum
/// exceeds `cutoff_squared`, otherwise the exact squared distance. Used by
/// grouping (radius test against ST/2) and the UCR-style baseline.
double SquaredEuclideanEarlyAbandon(std::span<const double> a,
                                    std::span<const double> b,
                                    double cutoff_squared);

}  // namespace onex

#endif  // ONEX_DISTANCE_EUCLIDEAN_H_
