#include "onex/distance/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

namespace onex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ONEX_KERNEL_X86 1
#else
#define ONEX_KERNEL_X86 0
#endif

#if defined(__GNUC__) || defined(__clang__)
#define ONEX_KERNEL_INLINE inline __attribute__((always_inline))
#else
#define ONEX_KERNEL_INLINE inline
#endif

/// Column range [lo, hi] admissible for row i under the (already effective)
/// band half-width `w`: |i - j| <= w. With w >= |n - m| the band is
/// row-to-row connected and contains both corners.
ONEX_KERNEL_INLINE void BandRange(std::size_t i, std::size_t m, int w,
                                  std::size_t* lo, std::size_t* hi) {
  if (w < 0) {
    *lo = 0;
    *hi = m - 1;
    return;
  }
  const long long lo_ll = static_cast<long long>(i) - w;
  const long long hi_ll = static_cast<long long>(i) + w;
  *lo = lo_ll < 0 ? 0 : static_cast<std::size_t>(lo_ll);
  *hi = hi_ll >= static_cast<long long>(m) ? m - 1
                                           : static_cast<std::size_t>(hi_ll);
}

// ---------------------------------------------------------------------------
// Shared loop bodies. The vectorized bodies carry `#pragma omp simd`
// annotations and are force-inlined into both the portable-SIMD entry
// points (baseline ISA) and, on x86-64, the AVX2+FMA multiversioned entry
// points, so one source expression compiles to every dispatch tier.
// Reduction association differs from the scalar bodies, so ED/LB values
// may differ from the scalar table in final ulps; the DTW body keeps a
// fixed per-cell operation order, so DTW is bit-identical across tiers.
// ---------------------------------------------------------------------------

ONEX_KERNEL_INLINE double SqEdScalarBody(const double* a, const double* b,
                                         std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

ONEX_KERNEL_INLINE double SqEdVecBody(const double* a, const double* b,
                                      std::size_t n) {
  double acc = 0.0;
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

ONEX_KERNEL_INLINE double SqEdEaScalarBody(const double* a, const double* b,
                                           std::size_t n, double cutoff_sq) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
    if (acc > cutoff_sq) return kInf;
  }
  return acc;
}

/// Blocked early abandon: vector-accumulate a block, test between blocks.
/// Because the partial sums are monotone non-decreasing, the abandon/finish
/// decision is identical to the per-point test — only detection latency
/// (and reduction association) differs.
ONEX_KERNEL_INLINE double SqEdEaVecBody(const double* a, const double* b,
                                        std::size_t n, double cutoff_sq) {
  constexpr std::size_t kBlock = 64;
  double acc = 0.0;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t end = std::min(n, i + kBlock);
    double blk = 0.0;
#pragma omp simd reduction(+ : blk)
    for (std::size_t j = i; j < end; ++j) {
      const double d = a[j] - b[j];
      blk += d * d;
    }
    acc += blk;
    if (acc > cutoff_sq) return kInf;
    i = end;
  }
  return acc;
}

/// Branchless Keogh penalty for one point: at most one of the two clamped
/// terms is nonzero, so the sum equals the branchy formulation exactly.
ONEX_KERNEL_INLINE double KeoghPointSq(double lo, double up, double c) {
  const double over = std::max(c - up, 0.0);
  const double under = std::max(lo - c, 0.0);
  return over * over + under * under;
}

ONEX_KERNEL_INLINE double LbKeoghSqScalarBody(const double* lo,
                                              const double* up,
                                              const double* cand,
                                              std::size_t n,
                                              double cutoff_sq) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += KeoghPointSq(lo[i], up[i], cand[i]);
    if (acc > cutoff_sq) return kInf;
  }
  return acc;
}

ONEX_KERNEL_INLINE double LbKeoghSqVecBody(const double* lo, const double* up,
                                           const double* cand, std::size_t n,
                                           double cutoff_sq) {
  constexpr std::size_t kBlock = 64;
  double acc = 0.0;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t end = std::min(n, i + kBlock);
    double blk = 0.0;
#pragma omp simd reduction(+ : blk)
    for (std::size_t j = i; j < end; ++j) {
      blk += KeoghPointSq(lo[j], up[j], cand[j]);
    }
    acc += blk;
    if (acc > cutoff_sq) return kInf;
    i = end;
  }
  return acc;
}

ONEX_KERNEL_INLINE double LbKeoghGroupSqScalarBody(const double* qlo,
                                                   const double* qup,
                                                   const double* glo,
                                                   const double* gup,
                                                   std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Tightest penalty any member could incur: members live inside
    // [glo, gup] pointwise. At most one clamped term is nonzero.
    const double over = std::max(glo[i] - qup[i], 0.0);
    const double under = std::max(qlo[i] - gup[i], 0.0);
    acc += over * over + under * under;
  }
  return acc;
}

ONEX_KERNEL_INLINE double LbKeoghGroupSqVecBody(const double* qlo,
                                                const double* qup,
                                                const double* glo,
                                                const double* gup,
                                                std::size_t n) {
  double acc = 0.0;
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < n; ++i) {
    const double over = std::max(glo[i] - qup[i], 0.0);
    const double under = std::max(qlo[i] - gup[i], 0.0);
    acc += over * over + under * under;
  }
  return acc;
}

/// Sliding-window min/max via monotonic index rings (O(n)); shared by every
/// tier — the loop is branch-dominated, so vectorizing buys nothing.
void EnvelopeSlidingBody(const double* x, std::size_t n, std::size_t w,
                         double* lo, double* up) {
  // Ring buffers of candidate indices: max ring values non-increasing, min
  // ring non-decreasing. Window for position i is [i-w, i+w].
  std::vector<std::size_t> max_ring(n), min_ring(n);
  std::size_t max_head = 0, max_tail = 0;  // [head, tail)
  std::size_t min_head = 0, min_tail = 0;
  std::size_t right = 0;  // next index to push
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t hi = std::min(i + w, n - 1);
    for (; right <= hi; ++right) {
      while (max_tail > max_head && x[max_ring[max_tail - 1]] <= x[right]) {
        --max_tail;
      }
      max_ring[max_tail++] = right;
      while (min_tail > min_head && x[min_ring[min_tail - 1]] >= x[right]) {
        --min_tail;
      }
      min_ring[min_tail++] = right;
    }
    const std::size_t win_lo = i >= w ? i - w : 0;
    while (max_ring[max_head] < win_lo) ++max_head;
    while (min_ring[min_head] < win_lo) ++min_head;
    up[i] = x[max_ring[max_head]];
    lo[i] = x[min_ring[min_head]];
  }
}

ONEX_KERNEL_INLINE void EnvelopeScalarBody(const double* x, std::size_t n,
                                           int window, double* lo,
                                           double* up) {
  if (window < 0 || static_cast<std::size_t>(window) >= n) {
    double mn = x[0], mx = x[0];
    for (std::size_t i = 1; i < n; ++i) {
      mn = std::min(mn, x[i]);
      mx = std::max(mx, x[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      lo[i] = mn;
      up[i] = mx;
    }
    return;
  }
  EnvelopeSlidingBody(x, n, static_cast<std::size_t>(window), lo, up);
}

ONEX_KERNEL_INLINE void EnvelopeVecBody(const double* x, std::size_t n,
                                        int window, double* lo, double* up) {
  if (window < 0 || static_cast<std::size_t>(window) >= n) {
    double mn = x[0], mx = x[0];
#pragma omp simd reduction(min : mn) reduction(max : mx)
    for (std::size_t i = 1; i < n; ++i) {
      mn = std::min(mn, x[i]);
      mx = std::max(mx, x[i]);
    }
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) {
      lo[i] = mn;
      up[i] = mx;
    }
    return;
  }
  EnvelopeSlidingBody(x, n, static_cast<std::size_t>(window), lo, up);
}

// ---------------------------------------------------------------------------
// Banded early-abandoning DTW. Two-row rolling DP over squared costs with
// reusable workspace rows. Only the band cells of each row are written;
// the one cell left and right of the band is set to +inf so the next row's
// reads (which reach one past the previous band) never see stale data —
// the invariant that makes workspace reuse outcome-neutral.
// ---------------------------------------------------------------------------

ONEX_KERNEL_INLINE double DtwScalarBody(const double* a, std::size_t n,
                                        const double* b, std::size_t m,
                                        double cutoff_sq, int w,
                                        DtwWorkspace* ws) {
  ws->EnsureRows(m);
  double* prev = ws->prev();
  double* curr = ws->curr();
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lo, hi;
    BandRange(i, m, w, &lo, &hi);
    if (lo > 0) curr[lo - 1] = kInf;
    double row_min = kInf;
    for (std::size_t j = lo; j <= hi; ++j) {
      const double d = a[i] - b[j];
      const double cost = d * d;
      double best;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, prev[j]);            // insertion
        if (j > 0) best = std::min(best, curr[j - 1]);        // deletion
        if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);  // match
      }
      curr[j] = best + cost;
      row_min = std::min(row_min, curr[j]);
    }
    if (hi + 1 < m) curr[hi + 1] = kInf;
    if (row_min > cutoff_sq) return kInf;  // every extension only grows
    std::swap(prev, curr);
  }
  return prev[m - 1];
}

/// Vector-staged variant: the per-cell cost and the prev-row min (the two
/// inputs with no loop-carried dependency) are computed with SIMD into the
/// lane buffer; the sequential combine with curr[j-1] keeps the exact
/// per-cell min/add order of the scalar body, so results are bit-identical.
ONEX_KERNEL_INLINE double DtwVecBody(const double* a, std::size_t n,
                                     const double* b, std::size_t m,
                                     double cutoff_sq, int w,
                                     DtwWorkspace* ws) {
  ws->EnsureRows(m);
  double* prev = ws->prev();
  double* curr = ws->curr();
  double* cost = ws->lane();
  double* pmin = ws->lane() + m;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lo, hi;
    BandRange(i, m, w, &lo, &hi);
    if (lo > 0) curr[lo - 1] = kInf;
    double row_min = kInf;
    if (i == 0) {
      // First row: only the deletion predecessor exists; stay scalar.
      curr[0] = (a[0] - b[0]) * (a[0] - b[0]);
      row_min = curr[0];
      for (std::size_t j = 1; j <= hi; ++j) {
        const double d = a[0] - b[j];
        curr[j] = curr[j - 1] + d * d;
        row_min = std::min(row_min, curr[j]);
      }
    } else {
      const double ai = a[i];
      std::size_t j0 = lo;
      if (lo == 0) {
        const double d = ai - b[0];
        cost[0] = d * d;
        pmin[0] = prev[0];
        j0 = 1;
      }
#pragma omp simd
      for (std::size_t j = j0; j <= hi; ++j) {
        const double d = ai - b[j];
        cost[j] = d * d;
        pmin[j] = std::min(prev[j], prev[j - 1]);
      }
      for (std::size_t j = lo; j <= hi; ++j) {
        double best = pmin[j];
        if (j > 0) best = std::min(best, curr[j - 1]);
        curr[j] = best + cost[j];
        row_min = std::min(row_min, curr[j]);
      }
    }
    if (hi + 1 < m) curr[hi + 1] = kInf;
    if (row_min > cutoff_sq) return kInf;
    std::swap(prev, curr);
  }
  return prev[m - 1];
}

// ---------------------------------------------------------------------------
// Dispatch tiers. The scalar tier is the plain-C++ reference; the simd
// tier compiles the annotated bodies at the baseline ISA; the avx2 tier
// (x86-64 only) recompiles the same bodies under target("avx2,fma") and is
// selected at runtime when the CPU supports it.
// ---------------------------------------------------------------------------

double SqEdScalar(const double* a, const double* b, std::size_t n) {
  return SqEdScalarBody(a, b, n);
}
double SqEdEaScalar(const double* a, const double* b, std::size_t n,
                    double cutoff_sq) {
  return SqEdEaScalarBody(a, b, n, cutoff_sq);
}
double LbKeoghSqScalar(const double* lo, const double* up, const double* cand,
                       std::size_t n, double cutoff_sq) {
  return LbKeoghSqScalarBody(lo, up, cand, n, cutoff_sq);
}
double LbKeoghGroupSqScalar(const double* qlo, const double* qup,
                            const double* glo, const double* gup,
                            std::size_t n) {
  return LbKeoghGroupSqScalarBody(qlo, qup, glo, gup, n);
}
void EnvelopeScalar(const double* x, std::size_t n, int window, double* lo,
                    double* up) {
  EnvelopeScalarBody(x, n, window, lo, up);
}
double DtwScalar(const double* a, std::size_t n, const double* b,
                 std::size_t m, double cutoff_sq, int w, DtwWorkspace* ws) {
  return DtwScalarBody(a, n, b, m, cutoff_sq, w, ws);
}

double SqEdSimd(const double* a, const double* b, std::size_t n) {
  return SqEdVecBody(a, b, n);
}
double SqEdEaSimd(const double* a, const double* b, std::size_t n,
                  double cutoff_sq) {
  return SqEdEaVecBody(a, b, n, cutoff_sq);
}
double LbKeoghSqSimd(const double* lo, const double* up, const double* cand,
                     std::size_t n, double cutoff_sq) {
  return LbKeoghSqVecBody(lo, up, cand, n, cutoff_sq);
}
double LbKeoghGroupSqSimd(const double* qlo, const double* qup,
                          const double* glo, const double* gup,
                          std::size_t n) {
  return LbKeoghGroupSqVecBody(qlo, qup, glo, gup, n);
}
void EnvelopeSimd(const double* x, std::size_t n, int window, double* lo,
                  double* up) {
  EnvelopeVecBody(x, n, window, lo, up);
}
double DtwSimd(const double* a, std::size_t n, const double* b, std::size_t m,
               double cutoff_sq, int w, DtwWorkspace* ws) {
  return DtwVecBody(a, n, b, m, cutoff_sq, w, ws);
}

#if ONEX_KERNEL_X86
#define ONEX_AVX2 __attribute__((target("avx2,fma")))

/// In-register inclusive prefix sum of 4 doubles (log-step shifts).
ONEX_AVX2 ONEX_KERNEL_INLINE __m256d ScanAdd4(__m256d x) {
  __m256d t = _mm256_permute4x64_pd(x, _MM_SHUFFLE(2, 1, 0, 3));
  t = _mm256_blend_pd(t, _mm256_setzero_pd(), 0x1);  // [0, x0, x1, x2]
  x = _mm256_add_pd(x, t);
  t = _mm256_permute2f128_pd(x, x, 0x08);  // [0, 0, y0, y1]
  return _mm256_add_pd(x, t);
}

/// In-register inclusive prefix min of 4 doubles (identity = +inf).
ONEX_AVX2 ONEX_KERNEL_INLINE __m256d ScanMin4(__m256d x, __m256d vinf) {
  __m256d t = _mm256_permute4x64_pd(x, _MM_SHUFFLE(2, 1, 0, 3));
  t = _mm256_blend_pd(t, vinf, 0x1);  // [inf, x0, x1, x2]
  x = _mm256_min_pd(x, t);
  t = _mm256_permute2f128_pd(x, vinf, 0x02);  // [inf, inf, y0, y1]
  return _mm256_min_pd(x, t);
}

/// Banded early-abandoning DTW with prefix-scan rows. The row recurrence
/// curr[j] = min(pmin[j], curr[j-1]) + cost[j] (pmin[j] = min of the two
/// prev-row predecessors) telescopes to
///
///   curr[j] = s[j] + min_{k in [lo, j]} (pmin[k] - s[k-1])
///
/// with s the in-row inclusive prefix sum of cost (s[lo-1] = 0): both the
/// prefix sum and the prefix min vectorize with log-step shuffles plus a
/// once-per-vector carry, replacing the ~8-cycle loop-carried min+add chain
/// with a ~1-cycle-per-cell carry chain. The reassociated sums round
/// differently from the scalar recurrence, so this body's results may
/// differ from the scalar/portable tables in final ulps (every value is
/// still an exact-recurrence evaluation up to rounding; the integer-valued
/// fixtures in the tests stay exact).
ONEX_AVX2 double DtwScanBodyAvx2(const double* a, std::size_t n,
                                 const double* b, std::size_t m,
                                 double cutoff_sq, int w, DtwWorkspace* ws) {
  ws->EnsureRows(m);
  double* prev = ws->prev();
  double* curr = ws->curr();
  const __m256d vinf = _mm256_set1_pd(kInf);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lo, hi;
    BandRange(i, m, w, &lo, &hi);
    if (lo > 0) curr[lo - 1] = kInf;
    double row_min = kInf;
    if (i == 0) {
      curr[0] = (a[0] - b[0]) * (a[0] - b[0]);
      row_min = curr[0];
      for (std::size_t j = 1; j <= hi; ++j) {
        const double d = a[0] - b[j];
        curr[j] = curr[j - 1] + d * d;
        row_min = std::min(row_min, curr[j]);
      }
    } else {
      const double ai = a[i];
      const __m256d vai = _mm256_set1_pd(ai);
      double carry_sum = 0.0;  // s[j-1]: exclusive in-row cost prefix sum
      double carry_min = kInf;  // min of v[k] = pmin[k] - s[k-1] so far
      std::size_t j = lo;
      if (lo == 0) {
        // prev[-1] doesn't exist; peel the first cell.
        const double d = ai - b[0];
        carry_sum = d * d;
        carry_min = prev[0];
        curr[0] = carry_sum + carry_min;
        row_min = curr[0];
        j = 1;
      }
      __m256d vcarry_sum = _mm256_set1_pd(carry_sum);
      __m256d vcarry_min = _mm256_set1_pd(carry_min);
      __m256d vrow_min = vinf;
      for (; j + 4 <= hi + 1; j += 4) {
        const __m256d bb = _mm256_loadu_pd(b + j);
        const __m256d d = _mm256_sub_pd(vai, bb);
        const __m256d cost = _mm256_mul_pd(d, d);
        const __m256d s = _mm256_add_pd(ScanAdd4(cost), vcarry_sum);
        // Exclusive sums: shift s right one lane, carry into lane 0.
        __m256d e = _mm256_permute4x64_pd(s, _MM_SHUFFLE(2, 1, 0, 3));
        e = _mm256_blend_pd(e, vcarry_sum, 0x1);
        const __m256d pmin = _mm256_min_pd(_mm256_loadu_pd(prev + j),
                                           _mm256_loadu_pd(prev + j - 1));
        const __m256d v = _mm256_sub_pd(pmin, e);
        const __m256d rmin = _mm256_min_pd(ScanMin4(v, vinf), vcarry_min);
        // s + rmin cancels (rmin holds -s[k-1] terms); rounding can push a
        // true-zero cell a few ulps negative, which a later sqrt would turn
        // into NaN. DP cells are sums of squared costs, so clamping at zero
        // only ever reduces the rounding error.
        const __m256d out =
            _mm256_max_pd(_mm256_add_pd(s, rmin), _mm256_setzero_pd());
        _mm256_storeu_pd(curr + j, out);
        vrow_min = _mm256_min_pd(vrow_min, out);
        vcarry_sum = _mm256_permute4x64_pd(s, _MM_SHUFFLE(3, 3, 3, 3));
        vcarry_min = _mm256_permute4x64_pd(rmin, _MM_SHUFFLE(3, 3, 3, 3));
      }
      carry_sum = _mm256_cvtsd_f64(vcarry_sum);
      carry_min = _mm256_cvtsd_f64(vcarry_min);
      {  // horizontal min of the vector row minimum
        const __m128d hi128 = _mm256_extractf128_pd(vrow_min, 1);
        __m128d m128 = _mm_min_pd(_mm256_castpd256_pd128(vrow_min), hi128);
        m128 = _mm_min_sd(m128, _mm_unpackhi_pd(m128, m128));
        row_min = std::min(row_min, _mm_cvtsd_f64(m128));
      }
      for (; j <= hi; ++j) {  // band tail, same algebra in scalar form
        const double d = ai - b[j];
        const double e = carry_sum;
        carry_sum = e + d * d;
        const double pm = std::min(prev[j], prev[j - 1]);
        carry_min = std::min(carry_min, pm - e);
        curr[j] = std::max(carry_sum + carry_min, 0.0);
        row_min = std::min(row_min, curr[j]);
      }
    }
    if (hi + 1 < m) curr[hi + 1] = kInf;
    if (row_min > cutoff_sq) return kInf;
    std::swap(prev, curr);
  }
  return prev[m - 1];
}
ONEX_AVX2 double SqEdAvx2(const double* a, const double* b, std::size_t n) {
  return SqEdVecBody(a, b, n);
}
ONEX_AVX2 double SqEdEaAvx2(const double* a, const double* b, std::size_t n,
                            double cutoff_sq) {
  return SqEdEaVecBody(a, b, n, cutoff_sq);
}
ONEX_AVX2 double LbKeoghSqAvx2(const double* lo, const double* up,
                               const double* cand, std::size_t n,
                               double cutoff_sq) {
  return LbKeoghSqVecBody(lo, up, cand, n, cutoff_sq);
}
ONEX_AVX2 double LbKeoghGroupSqAvx2(const double* qlo, const double* qup,
                                    const double* glo, const double* gup,
                                    std::size_t n) {
  return LbKeoghGroupSqVecBody(qlo, qup, glo, gup, n);
}
ONEX_AVX2 void EnvelopeAvx2(const double* x, std::size_t n, int window,
                            double* lo, double* up) {
  EnvelopeVecBody(x, n, window, lo, up);
}
ONEX_AVX2 double DtwAvx2(const double* a, std::size_t n, const double* b,
                         std::size_t m, double cutoff_sq, int w,
                         DtwWorkspace* ws) {
  // Short rows don't amortize the scan shuffles; the staged body wins
  // there. The choice depends only on m, so results stay deterministic
  // for any given input pair.
  if (m >= 16) return DtwScanBodyAvx2(a, n, b, m, cutoff_sq, w, ws);
  return DtwVecBody(a, n, b, m, cutoff_sq, w, ws);
}
#undef ONEX_AVX2
#endif  // ONEX_KERNEL_X86

constexpr DistanceKernel kScalarTable = {
    "scalar",         &SqEdScalar,     &SqEdEaScalar, &LbKeoghSqScalar,
    &LbKeoghGroupSqScalar, &EnvelopeScalar, &DtwScalar};

constexpr DistanceKernel kSimdTable = {
    "simd",         &SqEdSimd,     &SqEdEaSimd, &LbKeoghSqSimd,
    &LbKeoghGroupSqSimd, &EnvelopeSimd, &DtwSimd};

#if ONEX_KERNEL_X86
constexpr DistanceKernel kAvx2Table = {
    "avx2",         &SqEdAvx2,     &SqEdEaAvx2, &LbKeoghSqAvx2,
    &LbKeoghGroupSqAvx2, &EnvelopeAvx2, &DtwAvx2};
#endif

bool CpuHasAvx2() {
#if ONEX_KERNEL_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const DistanceKernel& BestSimdTable() {
#if ONEX_KERNEL_X86
  if (CpuHasAvx2()) return kAvx2Table;
#endif
  return kSimdTable;
}

const DistanceKernel* ResolveTable(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar:
      return &kScalarTable;
    case KernelMode::kSimd:
      return &BestSimdTable();
    case KernelMode::kAuto:
    default:
      break;
  }
  if (const char* env = std::getenv("ONEX_KERNELS"); env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return &kScalarTable;
    if (std::strcmp(env, "simd") == 0) return &BestSimdTable();
  }
  return &BestSimdTable();
}

std::atomic<int> g_mode{static_cast<int>(KernelMode::kAuto)};
std::atomic<const DistanceKernel*> g_active{nullptr};

}  // namespace

DtwWorkspace& ThreadLocalDtwWorkspace() {
  thread_local DtwWorkspace ws;
  return ws;
}

void SetKernelMode(KernelMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
  g_active.store(ResolveTable(mode), std::memory_order_release);
}

KernelMode GetKernelMode() {
  return static_cast<KernelMode>(g_mode.load(std::memory_order_relaxed));
}

const DistanceKernel& ScalarKernel() { return kScalarTable; }

const DistanceKernel& SimdKernel() { return BestSimdTable(); }

const DistanceKernel& ActiveKernel() {
  const DistanceKernel* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    // First use: resolve from the mode (and environment). Racing threads
    // compute the same pointer, so the double store is benign.
    k = ResolveTable(GetKernelMode());
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

bool SimdDispatchAvailable() { return CpuHasAvx2(); }

// ---------------------------------------------------------------------------
// Span-typed lower-bound API.
// ---------------------------------------------------------------------------

double LbKim(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) return 0.0;
  const double df = a.front() - b.front();
  const double dl = a.back() - b.back();
  return std::sqrt(df * df + dl * dl);
}

namespace {

double LbKeoghImpl(std::span<const double> lo, std::span<const double> up,
                   std::span<const double> cand, double cutoff) {
  const std::size_t n = cand.size();
  if (lo.size() != n || n == 0) return 0.0;
  const double cutoff_sq = cutoff < 0.0 ? kInf : cutoff * cutoff;
  const double acc = ActiveKernel().lb_keogh_sq(lo.data(), up.data(),
                                                cand.data(), n, cutoff_sq);
  return std::isinf(acc) ? kInf : std::sqrt(acc);
}

double LbKeoghGroupImpl(const Envelope& query_envelope,
                        std::span<const double> group_lower,
                        std::span<const double> group_upper) {
  const std::size_t n = group_lower.size();
  if (query_envelope.size() != n || n == 0) return 0.0;
  return std::sqrt(ActiveKernel().lb_keogh_group_sq(
      query_envelope.lower.data(), query_envelope.upper.data(),
      group_lower.data(), group_upper.data(), n));
}

}  // namespace

double LbKeogh(const Envelope& envelope, std::span<const double> candidate,
               double cutoff) {
  return LbKeoghImpl(envelope.lower, envelope.upper, candidate, cutoff);
}

double LbKeogh(const EnvelopeView& envelope, std::span<const double> candidate,
               double cutoff) {
  return LbKeoghImpl(envelope.lower, envelope.upper, candidate, cutoff);
}

double LbKeoghGroup(const Envelope& query_envelope,
                    const Envelope& group_envelope) {
  return LbKeoghGroupImpl(query_envelope, group_envelope.lower,
                          group_envelope.upper);
}

double LbKeoghGroup(const Envelope& query_envelope,
                    const EnvelopeView& group_envelope) {
  return LbKeoghGroupImpl(query_envelope, group_envelope.lower,
                          group_envelope.upper);
}

}  // namespace onex
