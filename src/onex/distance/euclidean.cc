#include "onex/distance/euclidean.h"

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

#include "onex/distance/kernels.h"

namespace onex {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double SquaredEuclidean(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) return kInf;
  return ActiveKernel().squared_euclidean(a.data(), b.data(), a.size());
}

double Euclidean(std::span<const double> a, std::span<const double> b) {
  const double sq = SquaredEuclidean(a, b);
  return std::isinf(sq) ? kInf : std::sqrt(sq);
}

double NormalizedEuclidean(std::span<const double> a,
                           std::span<const double> b) {
  const double d = Euclidean(a, b);
  return std::isinf(d) ? kInf : d / std::sqrt(static_cast<double>(a.size()));
}

double SquaredEuclideanEarlyAbandon(std::span<const double> a,
                                    std::span<const double> b,
                                    double cutoff_squared) {
  if (a.size() != b.size() || a.empty()) return kInf;
  return ActiveKernel().squared_euclidean_ea(a.data(), b.data(), a.size(),
                                             cutoff_squared);
}

}  // namespace onex
