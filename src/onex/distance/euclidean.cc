#include "onex/distance/euclidean.h"

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

namespace onex {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double SquaredEuclidean(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) return kInf;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double Euclidean(std::span<const double> a, std::span<const double> b) {
  const double sq = SquaredEuclidean(a, b);
  return std::isinf(sq) ? kInf : std::sqrt(sq);
}

double NormalizedEuclidean(std::span<const double> a,
                           std::span<const double> b) {
  const double d = Euclidean(a, b);
  return std::isinf(d) ? kInf : d / std::sqrt(static_cast<double>(a.size()));
}

double SquaredEuclideanEarlyAbandon(std::span<const double> a,
                                    std::span<const double> b,
                                    double cutoff_squared) {
  if (a.size() != b.size() || a.empty()) return kInf;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
    if (acc > cutoff_squared) return kInf;
  }
  return acc;
}

}  // namespace onex
