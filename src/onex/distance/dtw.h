#ifndef ONEX_DISTANCE_DTW_H_
#define ONEX_DISTANCE_DTW_H_

#include <cstddef>
#include <span>

#include "onex/distance/warping_path.h"

namespace onex {

/// Sentinel for an unconstrained warping window.
inline constexpr int kNoWindow = -1;

/// Dynamic Time Warping with squared point costs: the distance is
/// sqrt(min over warping paths of sum (a_i - b_j)^2). With this convention
/// DTW(a,b) <= ED(a,b) for equal lengths (the identity path is a warping
/// path), the inequality the ONEX base construction relies on.
///
/// `window` is a Sakoe-Chiba band half-width: cell (i, j) is admissible iff
/// |i - j| <= w. For sequences of different lengths the band is widened to
/// w = max(window, |n - m|), the minimum that keeps corner (n-1, m-1)
/// reachable, so every window value yields a finite distance. kNoWindow
/// disables the constraint. Empty inputs yield +infinity.
double DtwDistance(std::span<const double> a, std::span<const double> b,
                   int window = kNoWindow);

/// Length-normalized DTW: DtwDistance / sqrt(max(n, m)); comparable with
/// NormalizedEuclidean under a shared threshold.
double NormalizedDtwDistance(std::span<const double> a,
                             std::span<const double> b,
                             int window = kNoWindow);

/// DTW with early abandoning: returns +infinity as soon as every cell of a
/// DP row exceeds cutoff^2 (the true distance is then provably > cutoff);
/// otherwise the exact DTW distance. `cutoff` is in distance units (not
/// squared). Negative cutoff never abandons.
double DtwDistanceEarlyAbandon(std::span<const double> a,
                               std::span<const double> b, double cutoff,
                               int window = kNoWindow);

/// DTW distance plus one optimal alignment.
struct DtwAlignment {
  double distance = 0.0;
  WarpingPath path;
};

/// Computes the distance and backtracks one optimal warping path (ties break
/// toward the diagonal, keeping paths short). O(n*m) memory.
DtwAlignment DtwWithPath(std::span<const double> a, std::span<const double> b,
                         int window = kNoWindow);

/// Effective band half-width actually used for lengths (n, m): the requested
/// window widened to the minimum feasible value. Exposed so envelope-based
/// lower bounds stay consistent with the DP they prune for.
int EffectiveWindow(std::size_t n, std::size_t m, int window);

}  // namespace onex

#endif  // ONEX_DISTANCE_DTW_H_
