#include "onex/distance/lower_bounds.h"

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

namespace onex {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double LbKim(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) return 0.0;
  const double df = a.front() - b.front();
  const double dl = a.back() - b.back();
  return std::sqrt(df * df + dl * dl);
}

double LbKeogh(const Envelope& query_envelope,
               std::span<const double> candidate, double cutoff) {
  const std::size_t n = candidate.size();
  if (query_envelope.size() != n || n == 0) return 0.0;
  const double cutoff_sq = cutoff < 0.0 ? kInf : cutoff * cutoff;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double c = candidate[i];
    if (c > query_envelope.upper[i]) {
      const double d = c - query_envelope.upper[i];
      acc += d * d;
    } else if (c < query_envelope.lower[i]) {
      const double d = query_envelope.lower[i] - c;
      acc += d * d;
    }
    if (acc > cutoff_sq) return kInf;
  }
  return std::sqrt(acc);
}

namespace {

double LbKeoghGroupImpl(const Envelope& query_envelope,
                        std::span<const double> group_lower,
                        std::span<const double> group_upper) {
  const std::size_t n = group_lower.size();
  if (query_envelope.size() != n || n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Tightest penalty any member could incur: members live inside
    // [group.lower, group.upper] pointwise.
    if (group_lower[i] > query_envelope.upper[i]) {
      const double d = group_lower[i] - query_envelope.upper[i];
      acc += d * d;
    } else if (group_upper[i] < query_envelope.lower[i]) {
      const double d = query_envelope.lower[i] - group_upper[i];
      acc += d * d;
    }
  }
  return std::sqrt(acc);
}

}  // namespace

double LbKeoghGroup(const Envelope& query_envelope,
                    const Envelope& group_envelope) {
  return LbKeoghGroupImpl(query_envelope, group_envelope.lower,
                          group_envelope.upper);
}

double LbKeoghGroup(const Envelope& query_envelope,
                    const EnvelopeView& group_envelope) {
  return LbKeoghGroupImpl(query_envelope, group_envelope.lower,
                          group_envelope.upper);
}

}  // namespace onex
