#include "onex/distance/envelope.h"

#include <algorithm>
#include <cstddef>
#include <span>

#include "onex/distance/kernels.h"

namespace onex {

Envelope ComputeKeoghEnvelope(std::span<const double> x, int window) {
  Envelope env;
  const std::size_t n = x.size();
  if (n == 0) return env;
  env.lower.resize(n);
  env.upper.resize(n);
  ActiveKernel().keogh_envelope(x.data(), n, window, env.lower.data(),
                                env.upper.data());
  return env;
}

void AccumulateEnvelope(Envelope* acc, std::span<const double> x) {
  if (acc->empty()) {
    acc->lower.assign(x.begin(), x.end());
    acc->upper.assign(x.begin(), x.end());
    return;
  }
  const std::size_t n = std::min(acc->size(), x.size());
  for (std::size_t i = 0; i < n; ++i) {
    acc->lower[i] = std::min(acc->lower[i], x[i]);
    acc->upper[i] = std::max(acc->upper[i], x[i]);
  }
}

}  // namespace onex
