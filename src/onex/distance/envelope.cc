#include "onex/distance/envelope.h"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <span>

namespace onex {

Envelope ComputeKeoghEnvelope(std::span<const double> x, int window) {
  Envelope env;
  const std::size_t n = x.size();
  if (n == 0) return env;
  env.lower.resize(n);
  env.upper.resize(n);

  if (window < 0 || static_cast<std::size_t>(window) >= n) {
    const auto [lo_it, hi_it] = std::minmax_element(x.begin(), x.end());
    std::fill(env.lower.begin(), env.lower.end(), *lo_it);
    std::fill(env.upper.begin(), env.upper.end(), *hi_it);
    return env;
  }

  const std::size_t w = static_cast<std::size_t>(window);
  // Monotonic deques of indices: max_dq values are non-increasing, min_dq
  // non-decreasing. Window for position i is [i-w, i+w].
  std::deque<std::size_t> max_dq, min_dq;
  std::size_t right = 0;  // next index to push
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t hi = std::min(i + w, n - 1);
    for (; right <= hi; ++right) {
      while (!max_dq.empty() && x[max_dq.back()] <= x[right]) {
        max_dq.pop_back();
      }
      max_dq.push_back(right);
      while (!min_dq.empty() && x[min_dq.back()] >= x[right]) {
        min_dq.pop_back();
      }
      min_dq.push_back(right);
    }
    const std::size_t lo = i >= w ? i - w : 0;
    while (max_dq.front() < lo) max_dq.pop_front();
    while (min_dq.front() < lo) min_dq.pop_front();
    env.upper[i] = x[max_dq.front()];
    env.lower[i] = x[min_dq.front()];
  }
  return env;
}

void AccumulateEnvelope(Envelope* acc, std::span<const double> x) {
  if (acc->empty()) {
    acc->lower.assign(x.begin(), x.end());
    acc->upper.assign(x.begin(), x.end());
    return;
  }
  const std::size_t n = std::min(acc->size(), x.size());
  for (std::size_t i = 0; i < n; ++i) {
    acc->lower[i] = std::min(acc->lower[i], x[i]);
    acc->upper[i] = std::max(acc->upper[i], x[i]);
  }
}

}  // namespace onex
