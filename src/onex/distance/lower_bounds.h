#ifndef ONEX_DISTANCE_LOWER_BOUNDS_H_
#define ONEX_DISTANCE_LOWER_BOUNDS_H_

#include <span>

#include "onex/distance/envelope.h"

namespace onex {

/// Cheap lower bounds on the DTW distance, used for the paper's "early
/// pruning of unpromising candidates" (§3.3). Every function here is
/// admissible: LB(x, y) <= DtwDistance(x, y) under the stated window, a
/// property the test suite checks exhaustively.

/// LB_Kim (endpoint form): sqrt((a_first-b_first)^2 + (a_last-b_last)^2).
/// Valid for any window and any pair of lengths, because every warping path
/// aligns the two first points and the two last points. Returns 0 on empty
/// input (vacuously admissible).
double LbKim(std::span<const double> a, std::span<const double> b);

/// LB_Keogh: given the Keogh envelope of the query computed with band
/// half-width w (see ComputeKeoghEnvelope), lower-bounds DtwDistance(query,
/// candidate, w) for equal-length inputs. Returns 0 when lengths differ
/// (trivially admissible; ONEX only applies it within one length class).
/// `cutoff` enables early abandoning: once the partial sum exceeds cutoff^2
/// the function returns +infinity. Negative cutoff never abandons.
double LbKeogh(const Envelope& query_envelope, std::span<const double> candidate,
               double cutoff = -1.0);

/// Group-envelope bound: lower-bounds DtwDistance(query, member, w) for
/// EVERY member of a similarity group, given the group's pointwise min/max
/// envelope. Equal lengths required (else 0). One evaluation prunes a whole
/// group (DESIGN.md §7.3).
double LbKeoghGroup(const Envelope& query_envelope,
                    const Envelope& group_envelope);

/// Same bound over a columnar group envelope (an EnvelopeView into the
/// GroupStore's min/max matrices); the hot-path form the query processor
/// uses so group pruning never materializes per-group Envelope objects.
double LbKeoghGroup(const Envelope& query_envelope,
                    const EnvelopeView& group_envelope);

}  // namespace onex

#endif  // ONEX_DISTANCE_LOWER_BOUNDS_H_
