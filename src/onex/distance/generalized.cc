#include "onex/distance/generalized.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"
#include "onex/distance/dtw.h"

namespace onex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double StepCost(double a, double b, PointCost cost) {
  const double d = a - b;
  return cost == PointCost::kSquared ? d * d : std::abs(d);
}

inline double Finish(double acc, PointCost cost) {
  return cost == PointCost::kSquared ? std::sqrt(acc) : acc;
}

}  // namespace

const char* PointCostToString(PointCost cost) {
  switch (cost) {
    case PointCost::kSquared:
      return "squared";
    case PointCost::kAbsolute:
      return "absolute";
  }
  return "unknown";
}

Result<PointCost> PointCostFromString(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "squared" || lower == "l2") return PointCost::kSquared;
  if (lower == "absolute" || lower == "l1") return PointCost::kAbsolute;
  return Status::InvalidArgument("unknown point cost: '" + name + "'");
}

double GeneralizedStraightDistance(std::span<const double> a,
                                   std::span<const double> b, PointCost cost) {
  if (a.size() != b.size() || a.empty()) return kInf;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += StepCost(a[i], b[i], cost);
  }
  return Finish(acc, cost);
}

double GeneralizedDtwDistance(std::span<const double> a,
                              std::span<const double> b, PointCost cost,
                              int window) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return kInf;
  const int w = EffectiveWindow(n, m, window);

  std::vector<double> prev(m, kInf);
  std::vector<double> curr(m, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lo = 0, hi = m - 1;
    if (w >= 0) {
      const long long lo_ll = static_cast<long long>(i) - w;
      const long long hi_ll = static_cast<long long>(i) + w;
      lo = lo_ll < 0 ? 0 : static_cast<std::size_t>(lo_ll);
      hi = hi_ll >= static_cast<long long>(m) ? m - 1
                                              : static_cast<std::size_t>(hi_ll);
    }
    std::fill(curr.begin(), curr.end(), kInf);
    for (std::size_t j = lo; j <= hi; ++j) {
      const double step = StepCost(a[i], b[j], cost);
      double best;
      if (i == 0 && j == 0) {
        best = 0.0;
      } else {
        best = kInf;
        if (i > 0) best = std::min(best, prev[j]);
        if (j > 0) best = std::min(best, curr[j - 1]);
        if (i > 0 && j > 0) best = std::min(best, prev[j - 1]);
      }
      curr[j] = best + step;
    }
    std::swap(prev, curr);
  }
  return std::isinf(prev[m - 1]) ? kInf : Finish(prev[m - 1], cost);
}

}  // namespace onex
