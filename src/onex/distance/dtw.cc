#include "onex/distance/dtw.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "onex/distance/kernels.h"

namespace onex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Column range [lo, hi] admissible for row i under the (already effective)
/// band half-width `w`: |i - j| <= w. With w >= |n - m| the band is
/// row-to-row connected and contains both corners.
inline void BandRange(std::size_t i, std::size_t m, int w, std::size_t* lo,
                      std::size_t* hi) {
  if (w < 0) {
    *lo = 0;
    *hi = m - 1;
    return;
  }
  const long long lo_ll = static_cast<long long>(i) - w;
  const long long hi_ll = static_cast<long long>(i) + w;
  *lo = lo_ll < 0 ? 0 : static_cast<std::size_t>(lo_ll);
  *hi = hi_ll >= static_cast<long long>(m)
            ? m - 1
            : static_cast<std::size_t>(hi_ll);
}

}  // namespace

int EffectiveWindow(std::size_t n, std::size_t m, int window) {
  if (window < 0) return kNoWindow;
  const long long skew = static_cast<long long>(n > m ? n - m : m - n);
  return std::max<long long>(window, skew);
}

double DtwDistance(std::span<const double> a, std::span<const double> b,
                   int window) {
  return DtwDistanceEarlyAbandon(a, b, -1.0, window);
}

double NormalizedDtwDistance(std::span<const double> a,
                             std::span<const double> b, int window) {
  const double d = DtwDistance(a, b, window);
  if (std::isinf(d)) return kInf;
  return d / std::sqrt(static_cast<double>(std::max(a.size(), b.size())));
}

double DtwDistanceEarlyAbandon(std::span<const double> a,
                               std::span<const double> b, double cutoff,
                               int window) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return kInf;
  const int w = EffectiveWindow(n, m, window);
  const double cutoff_sq = cutoff < 0.0 ? kInf : cutoff * cutoff;
  const double final_sq = ActiveKernel().dtw_ea_sq(
      a.data(), n, b.data(), m, cutoff_sq, w, &ThreadLocalDtwWorkspace());
  return std::isinf(final_sq) ? kInf : std::sqrt(final_sq);
}

DtwAlignment DtwWithPath(std::span<const double> a, std::span<const double> b,
                         int window) {
  DtwAlignment out;
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) {
    out.distance = kInf;
    return out;
  }
  const int w = EffectiveWindow(n, m, window);

  std::vector<double> dp(n * m, kInf);
  auto at = [&](std::size_t i, std::size_t j) -> double& {
    return dp[i * m + j];
  };

  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lo, hi;
    BandRange(i, m, w, &lo, &hi);
    for (std::size_t j = lo; j <= hi; ++j) {
      const double d = a[i] - b[j];
      const double cost = d * d;
      if (i == 0 && j == 0) {
        at(i, j) = cost;
        continue;
      }
      double best = kInf;
      if (i > 0) best = std::min(best, at(i - 1, j));
      if (j > 0) best = std::min(best, at(i, j - 1));
      if (i > 0 && j > 0) best = std::min(best, at(i - 1, j - 1));
      at(i, j) = best + cost;
    }
  }

  out.distance = std::sqrt(at(n - 1, m - 1));

  // Backtrack, preferring the diagonal on ties so paths stay short.
  WarpingPath rev;
  std::size_t i = n - 1, j = m - 1;
  rev.emplace_back(i, j);
  while (i > 0 || j > 0) {
    double diag = kInf, up = kInf, left = kInf;
    if (i > 0 && j > 0) diag = at(i - 1, j - 1);
    if (i > 0) up = at(i - 1, j);
    if (j > 0) left = at(i, j - 1);
    if (diag <= up && diag <= left) {
      --i;
      --j;
    } else if (up <= left) {
      --i;
    } else {
      --j;
    }
    rev.emplace_back(i, j);
  }
  out.path.assign(rev.rbegin(), rev.rend());
  return out;
}

}  // namespace onex
