#include "onex/net/cluster_merge.h"

#include <algorithm>
#include <set>

#include "onex/common/string_utils.h"

namespace onex::net {

namespace {

double NumberKey(const json::Value& match, const std::string& field) {
  return match[field].as_number();
}

}  // namespace

bool ShardMatchBefore(const ShardMatch& a, const ShardMatch& b) {
  const double da = NumberKey(a.match, "normalized_dtw");
  const double db = NumberKey(b.match, "normalized_dtw");
  if (da != db) return da < db;
  if (a.dataset != b.dataset) return a.dataset < b.dataset;
  const double sa = NumberKey(a.match, "series");
  const double sb = NumberKey(b.match, "series");
  if (sa != sb) return sa < sb;
  const double oa = NumberKey(a.match, "start");
  const double ob = NumberKey(b.match, "start");
  if (oa != ob) return oa < ob;
  return NumberKey(a.match, "length") < NumberKey(b.match, "length");
}

void MergeTopK(std::vector<ShardMatch>* candidates, std::size_t k) {
  std::stable_sort(candidates->begin(), candidates->end(), ShardMatchBefore);
  if (candidates->size() > k) candidates->resize(k);
}

void AccumulateStats(json::Value* total, const json::Value& stats) {
  if (!stats.is_object()) return;
  for (const auto& [key, value] : stats.as_object()) {
    if (!value.is_number()) continue;
    (*total).Set(key, (*total)[key].as_number() + value.as_number());
  }
}

Result<std::vector<std::string>> ParseDatasetsOption(const std::string& value) {
  std::vector<std::string> names;
  std::set<std::string> seen;
  for (const std::string& part : SplitKeepEmpty(value, ',')) {
    const std::string name(TrimString(part));
    if (name.empty()) {
      return Status::InvalidArgument(
          "datasets= entries must be non-empty names");
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("datasets= lists '" + name + "' twice");
    }
    names.push_back(name);
  }
  if (names.empty()) {
    return Status::InvalidArgument("datasets= names at least one dataset");
  }
  return names;
}

}  // namespace onex::net
