#ifndef ONEX_NET_CLUSTER_MERGE_H_
#define ONEX_NET_CLUSTER_MERGE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "onex/common/result.h"
#include "onex/json/json.h"

namespace onex::net {

/// Deterministic top-k merge shared by the coordinator's scatter-gather path
/// and the single-node `datasets=` fan-out (DESIGN.md §16). Both paths build
/// the same candidates from per-dataset match lists and run the same ordering,
/// which is what makes a cluster answer bitwise equal to the single-node
/// oracle: the merge must not depend on which shard answered first, how
/// datasets were assigned to nodes, or thread scheduling.

/// One candidate match from one dataset. `match` is the per-match response
/// object (MatchToJson shape) with a "dataset" field added; `values` is the
/// side-band normalized subsequence for binary clients, carried alongside so
/// the merged value stream lines up with the merged match order.
struct ShardMatch {
  std::string dataset;
  json::Value match;
  std::vector<double> values;
};

/// Strict weak order over candidates: ascending normalized_dtw, ties broken
/// by (dataset, series, start, length). Distance ties are real — symmetric
/// generators and repeated series produce exactly-equal doubles — and without
/// the structural tie-break the merged order would depend on shard
/// assignment. The keys are read from the match JSON itself so the
/// coordinator (which only has JSON) and the local path (which built the
/// JSON) order by literally the same bytes.
bool ShardMatchBefore(const ShardMatch& a, const ShardMatch& b);

/// Stable-sorts `candidates` with ShardMatchBefore and truncates to `k`.
/// Stability keeps engine-produced within-dataset order for fully equal keys.
void MergeTopK(std::vector<ShardMatch>* candidates, std::size_t k);

/// Field-wise sum of cascade stats objects (StatsToJson shape): every numeric
/// field of `stats` is added into `*total`, missing fields start at zero.
/// Callers accumulate in user-given dataset order so both paths sum in the
/// same sequence (double addition is order-sensitive; these are counters, but
/// the discipline keeps the contract exact).
void AccumulateStats(json::Value* total, const json::Value& stats);

/// Parses a `datasets=a,b,c` option value: comma-separated, order-preserving.
/// Empty entries and duplicates are InvalidArgument — a duplicate would
/// double-count stats and return the same subsequences twice.
Result<std::vector<std::string>> ParseDatasetsOption(const std::string& value);

}  // namespace onex::net

#endif  // ONEX_NET_CLUSTER_MERGE_H_
