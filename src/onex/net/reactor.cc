#include "onex/net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <utility>

#include "onex/common/string_utils.h"
#include "onex/common/task_pool.h"
#include "onex/net/frame.h"

namespace onex::net {
namespace {

constexpr int kEpollTickMs = 100;  ///< Slow-reader sweep cadence.

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

ReactorServer::ReactorServer(Engine* engine, ReactorOptions options)
    : engine_(engine), options_(options) {}

ReactorServer::~ReactorServer() { Stop(); }

ReactorServer::VerbKind ReactorServer::ClassifyVerb(const std::string& verb) {
  // PING rides inline too: a stateless no-op answered on the reactor
  // thread, so a pipelined burst never pays the executor handoff per ping.
  //
  // The replication verbs are inline for liveness, not latency: the
  // executor pool can be saturated by commands that are themselves blocked
  // waiting for replication acks (a forwarded mutator parks its pool
  // thread in a network call whose reply depends on this node applying a
  // shipped batch — on a one-core pool that is a guaranteed deadlock until
  // the ack timeout falsely kills the link). The reactor thread is the one
  // thread that is always live, so applying on it keeps WAL shipping
  // independent of executor availability. Inline requests still wait for
  // the connection's in-flight requests, and the hub uses a dedicated
  // connection, so shipped batches apply strictly in order.
  if (verb == "BIN" || verb == "METRICS" || verb == "QUIT" ||
      verb == "PING" || verb == "REPLHELLO" || verb == "REPLAPPLY" ||
      verb == "REPLSTATUS") {
    return VerbKind::kInline;
  }
  // Everything that writes the engine or the session runs as a barrier.
  if (verb == "GEN" || verb == "LOAD" || verb == "DROP" || verb == "PREPARE" ||
      verb == "APPEND" || verb == "EXTEND" || verb == "SAVEBASE" ||
      verb == "LOADBASE" || verb == "PERSIST" || verb == "CHECKPOINT" ||
      verb == "BUDGET" || verb == "USE" || verb == "TIER") {
    return VerbKind::kMutator;
  }
  // Queries, reports, and unknown verbs (whose error responses are
  // order-independent) may run concurrently on binary connections.
  return VerbKind::kReadOnly;
}

Status ReactorServer::Start(std::uint16_t port) {
  if (running_.load()) {
    return Status::FailedPrecondition("reactor already running");
  }
  ONEX_ASSIGN_OR_RETURN(listener_,
                        ServerSocket::Listen(port, options_.listen_backlog));
  ONEX_RETURN_IF_ERROR(SetNonBlocking(listener_.fd()));

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return Status::IoError("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::IoError("eventfd failed");
  }

  // Listener and wake fd are level-triggered: a missed accept burst or wake
  // just re-reports on the next epoll_wait. Connections are edge-triggered.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    return Status::IoError("epoll_ctl(listener) failed");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::IoError("epoll_ctl(wake) failed");
  }

  stopping_.store(false);
  running_.store(true);
  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void ReactorServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  WakeLoop();
  if (loop_thread_.joinable()) loop_thread_.join();

  // The loop closed every connection on exit (setting each `disconnected`
  // flag, which expires the cancellation tokens of in-flight queries), but
  // executor tasks may still be running. Wait them out: they reference the
  // engine, and our caller is free to destroy it the moment Stop returns.
  {
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    inflight_cv_.wait(lock, [this] { return inflight_global_ == 0; });
  }

  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = -1;
  wake_fd_ = -1;
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(dirty_mutex_);
    dirty_.clear();
  }
}

void ReactorServer::WakeLoop() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;  // Full counter still wakes the loop; nothing to handle.
}

void ReactorServer::NotifyDirty(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(dirty_mutex_);
    dirty_.push_back(conn);
  }
  WakeLoop();
}

void ReactorServer::Loop() {
  std::vector<epoll_event> events(512);
  auto last_sweep = std::chrono::steady_clock::now();
  while (!stopping_.load()) {
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), kEpollTickMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listener_.fd()) {
        AcceptReady();
        continue;
      }
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // Closed earlier in this batch.
      std::shared_ptr<Conn> conn = it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConn(conn);
        continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        OnReadable(conn);
      }
      if ((events[i].events & EPOLLOUT) != 0 && conns_.count(fd) != 0) {
        ServiceConn(conn);
      }
    }

    // Completions queued by executor threads since the last pass.
    std::vector<std::weak_ptr<Conn>> dirty;
    {
      std::lock_guard<std::mutex> lock(dirty_mutex_);
      dirty.swap(dirty_);
    }
    for (auto& weak : dirty) {
      if (std::shared_ptr<Conn> conn = weak.lock()) ServiceConn(conn);
    }

    const auto now = std::chrono::steady_clock::now();
    if (now - last_sweep >= std::chrono::milliseconds(kEpollTickMs)) {
      last_sweep = now;
      SweepSlowReaders();
    }
  }

  // Shutdown: disconnect everyone. In-flight queries observe `disconnected`
  // and cancel at their next stage boundary; Stop() waits for them.
  std::vector<std::shared_ptr<Conn>> live;
  live.reserve(conns_.size());
  for (auto& entry : conns_) live.push_back(entry.second);
  for (auto& conn : live) CloseConn(conn);
}

void ReactorServer::AcceptReady() {
  while (true) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient accept failure.
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    SetTcpNoDelay(fd);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->last_write_progress = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_[fd] = std::move(conn);
    metrics_.ConnectionOpened();
  }
}

void ReactorServer::OnReadable(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0 || conn->read_paused) return;

  // Edge-triggered: drain the socket completely or the edge never re-fires.
  bool peer_eof = false;
  bool read_error = false;
  char chunk[65536];
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn->inbuf.append(chunk, static_cast<std::size_t>(n));
      metrics_.AddBytesIn(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n == 0) {
      peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    read_error = true;
    break;
  }

  bool close_now = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (!ParseInputLocked(conn)) {
      close_now = true;  // Framing violation: no resync is possible.
    } else {
      PumpLocked(conn);
      if (!FlushOutboxLocked(conn)) {
        close_now = true;
      } else {
        (void)UpdateReadPauseLocked(conn);
      }
    }
  }

  // EOF counts as a disconnect even with requests still queued: the text
  // server's sessions end at EOF, responses to a gone peer are waste, and a
  // half-closing pipeliner would deadlock itself against backpressure
  // anyway. Clients must keep the socket open until all responses arrive.
  if (close_now || peer_eof || read_error) CloseConn(conn);
}

bool ReactorServer::ParseInputLocked(const std::shared_ptr<Conn>& conn) {
  const auto now = std::chrono::steady_clock::now();
  std::size_t consumed = 0;
  bool violated = false;
  while (!conn->close_after_flush &&
         conn->queue.size() + conn->inflight < options_.max_pipeline) {
    PendingRequest req;
    req.arrival = now;
    if (conn->binary_in) {
      const std::string_view rest =
          std::string_view(conn->inbuf).substr(consumed);
      FrameDecodeResult r = DecodeFrame(rest, FrameLimits{});
      if (r.state == FrameDecodeState::kNeedMore) break;
      if (r.state == FrameDecodeState::kError ||
          r.frame.type != FrameType::kRequest) {
        violated = true;
        break;
      }
      consumed += r.consumed;
      req.binary = true;
      req.request_id = r.frame.request_id;
      // The frame text is the command line; anything after the first '\n'
      // is an opaque blob (REPLAPPLY's shipped WAL lines) that must never
      // meet the tokenizer. Text connections are line-delimited and so can
      // never produce a blob.
      const std::size_t nl = r.frame.text.find('\n');
      Result<Command> parsed = ParseCommandLine(
          nl == std::string::npos ? r.frame.text
                                  : r.frame.text.substr(0, nl));
      if (parsed.ok()) {
        req.cmd = std::move(parsed).value();
        if (nl != std::string::npos) {
          req.cmd.blob = r.frame.text.substr(nl + 1);
        }
        req.cmd.payload = std::move(r.frame.values);
        req.verb_index = ServerMetrics::VerbIndex(req.cmd.verb);
        req.kind = ClassifyVerb(req.cmd.verb);
      } else {
        req.parse_error = parsed.status();
        req.verb_index = ServerMetrics::VerbIndex("OTHER");
        req.kind = VerbKind::kInline;
      }
    } else {
      const std::size_t pos = conn->inbuf.find('\n', conn->text_scan);
      if (pos == std::string::npos) {
        conn->text_scan = conn->inbuf.size();
        // Same per-line cap as LineReader: a peer streaming newline-free
        // bytes is bounded by this constant, not by its patience.
        if (conn->inbuf.size() - consumed > LineReader::kDefaultMaxLineBytes) {
          violated = true;
        }
        break;
      }
      std::string line = conn->inbuf.substr(consumed, pos - consumed);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      consumed = pos + 1;
      conn->text_scan = consumed;
      if (TrimString(line).empty()) continue;  // Text sessions skip blanks.
      req.binary = false;
      Result<Command> parsed = ParseCommandLine(line);
      if (parsed.ok()) {
        req.cmd = std::move(parsed).value();
        req.verb_index = ServerMetrics::VerbIndex(req.cmd.verb);
        req.kind = ClassifyVerb(req.cmd.verb);
        // The BIN upgrade takes effect at the parse boundary: every byte
        // after this line decodes as ONEXB frames. The acknowledgement
        // (written when the request reaches the queue front) is still a
        // text line — the last one on the connection.
        if (req.cmd.verb == "BIN") conn->binary_in = true;
      } else {
        req.parse_error = parsed.status();
        req.verb_index = ServerMetrics::VerbIndex("OTHER");
        req.kind = VerbKind::kInline;
      }
    }
    conn->queue.push_back(std::move(req));
    metrics_.QueueEnter();
  }
  if (consumed > 0) {
    conn->inbuf.erase(0, consumed);
    conn->text_scan = conn->text_scan > consumed ? conn->text_scan - consumed : 0;
  }
  return !violated;
}

void ReactorServer::PumpLocked(const std::shared_ptr<Conn>& conn) {
  while (!conn->closed && !conn->close_after_flush && !conn->queue.empty()) {
    // Backpressure gates dispatch too: past the high watermark this
    // connection stops generating responses, not just reading requests.
    if (conn->outbox_bytes > options_.outbox_high_bytes) break;
    PendingRequest& front = conn->queue.front();
    const bool concurrent =
        front.binary && front.kind == VerbKind::kReadOnly;
    if (concurrent) {
      if (conn->barrier_inflight) break;
    } else {
      if (conn->inflight != 0) break;  // Barriers (and all text) run alone.
    }
    PendingRequest req = std::move(front);
    conn->queue.pop_front();
    if (req.kind == VerbKind::kInline) {
      ExecuteInlineLocked(conn, std::move(req));
    } else {
      DispatchLocked(conn, std::move(req));
    }
  }
}

void ReactorServer::ExecuteInlineLocked(const std::shared_ptr<Conn>& conn,
                                        PendingRequest req) {
  json::Value resp;
  if (!req.parse_error.ok()) {
    resp = ErrorResponse(req.parse_error);
  } else if (req.cmd.verb == "BIN") {
    resp = json::Value::MakeObject();
    resp.Set("ok", true);
    resp.Set("proto", "ONEXB");
    resp.Set("version", static_cast<int>(kFrameVersion));
    metrics_.BinaryUpgrade();
  } else if (req.cmd.verb == "METRICS") {
    resp = metrics_.ToJson();
  } else if (req.cmd.verb == "PING" || req.cmd.verb == "REPLHELLO" ||
             req.cmd.verb == "REPLAPPLY" || req.cmd.verb == "REPLSTATUS") {
    // Through the real executor so the bodies stay byte-identical with the
    // dispatched path. PING touches neither the engine nor the session;
    // the replication verbs run here so WAL application never waits on
    // executor-pool availability (see ClassifyVerb) — a shipped kPrepare
    // does stall the loop for its rebuild, the documented cost of keeping
    // the ack path deadlock-free.
    ExecContext ctx;
    ctx.arrival = req.arrival;
    ctx.disconnected = &conn->disconnected;
    ctx.cluster = cluster_;
    resp = ExecuteCommand(engine_, &conn->session, req.cmd, ctx);
  } else {  // QUIT — same body ExecuteCommand produces for it.
    resp = json::Value::MakeObject();
    resp.Set("ok", true);
    resp.Set("bye", true);
    conn->close_after_flush = true;
    // Pipelined requests behind a QUIT are discarded, like bytes the text
    // server never reads after shutting the session down.
    for (std::size_t i = 0; i < conn->queue.size(); ++i) metrics_.QueueLeave();
    conn->queue.clear();
  }
  AppendResponseLocked(conn.get(), req, resp, {});
  const bool deadline_expired = !resp["ok"].as_bool() &&
                                resp["code"].as_string() == "DeadlineExceeded";
  metrics_.RecordRequest(req.verb_index, ElapsedMs(req.arrival),
                         deadline_expired);
  metrics_.QueueLeave();
}

void ReactorServer::DispatchLocked(const std::shared_ptr<Conn>& conn,
                                   PendingRequest req) {
  conn->inflight += 1;
  const bool barrier = req.kind == VerbKind::kMutator || !req.binary;
  if (barrier) conn->barrier_inflight = true;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_global_ += 1;
  }
  // Barriers run alone, so snapshotting the session here and writing it
  // back at completion is race-free; concurrent read-only requests treat
  // their snapshot as immutable.
  Session session = conn->session;
  TaskPool::Shared().Submit(
      [this, conn, req = std::move(req), session]() mutable {
        std::vector<double> values;
        ExecContext ctx;
        ctx.arrival = req.arrival;
        ctx.disconnected = &conn->disconnected;
        ctx.out_values = req.binary ? &values : nullptr;
        ctx.cluster = cluster_;
        json::Value resp = ExecuteCommand(engine_, &session, req.cmd, ctx);
        CompleteRequest(conn, req, std::move(resp), std::move(values),
                        std::move(session));
      });
}

void ReactorServer::CompleteRequest(const std::shared_ptr<Conn>& conn,
                                    const PendingRequest& req,
                                    json::Value response,
                                    std::vector<double> values,
                                    Session session_after) {
  const bool ok = response["ok"].as_bool();
  const bool deadline_expired =
      !ok && response["code"].as_string() == "DeadlineExceeded";
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->inflight -= 1;
    const bool barrier = req.kind == VerbKind::kMutator || !req.binary;
    if (barrier) {
      conn->barrier_inflight = false;
      conn->session = std::move(session_after);
    }
    metrics_.RecordRequest(req.verb_index, ElapsedMs(req.arrival),
                           deadline_expired);
    metrics_.QueueLeave();
    if (!conn->closed) {
      AppendResponseLocked(conn.get(), req, response, std::move(values));
      if (conn->outbox_bytes > options_.outbox_hard_bytes) conn->kill = true;
      PumpLocked(conn);
      notify = true;
    }
  }
  if (notify) NotifyDirty(conn);
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    if (--inflight_global_ == 0) inflight_cv_.notify_all();
  }
}

void ReactorServer::AppendResponseLocked(Conn* conn,
                                         const PendingRequest& req,
                                         const json::Value& response,
                                         std::vector<double> values) {
  std::string bytes;
  if (req.binary) {
    Frame frame;
    frame.type = FrameType::kResponse;
    frame.flags = response["ok"].as_bool() ? 0 : kFrameFlagError;
    frame.request_id = req.request_id;
    frame.text = response.Dump();  // Identical to the text line, sans '\n'.
    frame.values = std::move(values);
    bytes = EncodeFrame(frame);
  } else {
    bytes = FormatResponse(response);
  }
  conn->outbox_bytes += bytes.size();
  conn->outbox.push_back(std::move(bytes));
}

bool ReactorServer::FlushOutboxLocked(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return true;
  while (!conn->outbox.empty()) {
    const std::string& front = conn->outbox.front();
    const ssize_t n =
        ::send(conn->fd, front.data() + conn->outbox_front_off,
               front.size() - conn->outbox_front_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbox_front_off += static_cast<std::size_t>(n);
      conn->outbox_bytes -= static_cast<std::size_t>(n);
      metrics_.AddBytesOut(static_cast<std::uint64_t>(n));
      conn->last_write_progress = std::chrono::steady_clock::now();
      if (conn->outbox_front_off == front.size()) {
        conn->outbox.pop_front();
        conn->outbox_front_off = 0;
      }
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // EPOLLOUT resumes.
    return false;  // Peer reset/closed mid-write.
  }
  if (conn->outbox.empty() && conn->close_after_flush) return false;
  if (conn->outbox_bytes > options_.outbox_high_bytes) {
    if (!conn->over_high) {
      conn->over_high = true;
      conn->over_high_since = std::chrono::steady_clock::now();
    }
  } else {
    conn->over_high = false;
  }
  return true;
}

bool ReactorServer::UpdateReadPauseLocked(const std::shared_ptr<Conn>& conn) {
  const bool want_pause =
      conn->close_after_flush ||
      conn->queue.size() + conn->inflight >= options_.max_pipeline ||
      conn->outbox_bytes > options_.outbox_high_bytes;
  if (want_pause) {
    conn->read_paused = true;
    return false;
  }
  return conn->read_paused;  // Caller clears the flag and re-reads.
}

void ReactorServer::ServiceConn(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return;
  bool close_now = false;
  bool resume = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->kill) {
      close_now = true;
    } else if (!FlushOutboxLocked(conn)) {
      close_now = true;
    } else {
      PumpLocked(conn);  // A drained outbox may unblock dispatch.
      if (!FlushOutboxLocked(conn)) {
        close_now = true;
      } else {
        resume = UpdateReadPauseLocked(conn);
      }
    }
  }
  if (close_now) {
    CloseConn(conn);
    return;
  }
  if (resume) {
    // Edge-triggered read: bytes that arrived while paused announced
    // themselves once, back when we ignored them. Read directly.
    conn->read_paused = false;
    OnReadable(conn);
  }
}

void ReactorServer::SweepSlowReaders() {
  const auto now = std::chrono::steady_clock::now();
  const auto grace = std::chrono::milliseconds(options_.slow_reader_grace_ms);
  std::vector<std::shared_ptr<Conn>> victims;
  for (auto& entry : conns_) {
    const std::shared_ptr<Conn>& conn = entry.second;
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->over_high && now - conn->over_high_since > grace &&
        now - conn->last_write_progress > grace) {
      victims.push_back(conn);
    }
  }
  for (auto& conn : victims) {
    metrics_.SlowReaderDisconnect();
    CloseConn(conn);
  }
}

void ReactorServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;
    conn->closed = true;
    for (std::size_t i = 0; i < conn->queue.size(); ++i) metrics_.QueueLeave();
    conn->queue.clear();
    conn->outbox.clear();
    conn->outbox_bytes = 0;
    conn->outbox_front_off = 0;
  }
  // Expire the cancellation tokens of this connection's in-flight queries.
  conn->disconnected.store(true);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  conn->fd = -1;
  metrics_.ConnectionClosed();
}

}  // namespace onex::net
