#include "onex/net/server.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "onex/common/logging.h"
#include "onex/net/protocol.h"

namespace onex::net {

Status OnexServer::Start(std::uint16_t port) {
  if (running_.load()) {
    return Status::FailedPrecondition("server already running");
  }
  ONEX_ASSIGN_OR_RETURN(listener_, ServerSocket::Listen(port));
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  ONEX_LOG(kInfo) << "onexd listening on 127.0.0.1:" << listener_.port();
  return Status::OK();
}

void OnexServer::Stop() {
  if (!running_.exchange(false)) return;
  // Shutdown (not Close) unblocks accept() while keeping the fd number
  // reserved, so a concurrent open() cannot recycle it under the accept
  // loop; the descriptor is released only after the acceptor is joined.
  listener_.Shutdown();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::weak_ptr<Socket>& weak : live_sockets_) {
      if (const std::shared_ptr<Socket> sock = weak.lock()) {
        sock->Shutdown();  // unblocks recv()
      }
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    workers.swap(workers_);
    live_sockets_.clear();
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

void OnexServer::AcceptLoop() {
  while (running_.load()) {
    Result<Socket> conn = listener_.Accept();
    if (!conn.ok()) {
      // Listener closed during Stop(): normal shutdown path.
      if (running_.load()) {
        ONEX_LOG(kWarning) << "accept failed: " << conn.status().ToString();
      }
      return;
    }
    auto socket = std::make_shared<Socket>(std::move(conn).value());
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_.load()) return;
    live_sockets_.push_back(socket);
    workers_.emplace_back(
        [this, socket = std::move(socket)] { ServeConnection(socket); });
  }
}

void OnexServer::ServeConnection(std::shared_ptr<Socket> socket) {
  LineReader reader(socket.get());
  Session session;  // per-connection USE state
  while (running_.load()) {
    Result<std::string> line = reader.ReadLine();
    if (!line.ok()) return;  // client hung up (or server stopping)
    if (TrimString(*line).empty()) continue;

    Result<Command> cmd = ParseCommandLine(*line);
    json::Value response = cmd.ok() ? ExecuteCommand(engine_, &session, *cmd)
                                    : ErrorResponse(cmd.status());
    if (!socket->SendAll(FormatResponse(response)).ok()) return;
    if (cmd.ok() && cmd->verb == "QUIT") {
      socket->Shutdown();
      return;
    }
  }
}

}  // namespace onex::net
