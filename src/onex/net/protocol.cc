#include "onex/net/protocol.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/cancellation.h"
#include "onex/common/string_utils.h"
#include "onex/distance/kernels.h"
#include "onex/engine/wal.h"
#include "onex/gen/economic_panel.h"
#include "onex/gen/electricity.h"
#include "onex/gen/generators.h"
#include "onex/net/cluster.h"
#include "onex/net/cluster_merge.h"
#include "onex/net/replication.h"

namespace onex::net {
namespace {

/// Typed option lookups with defaults.
Result<long long> OptInt(const Command& cmd, const std::string& key,
                         long long fallback) {
  const auto it = cmd.options.find(key);
  if (it == cmd.options.end()) return fallback;
  return ParseInt(it->second);
}

/// Wire numerics must be finite: strtod happily admits "nan"/"inf"
/// spellings, and a NaN that slips into a threshold or a data point
/// poisons every later distance comparison *silently* (NaN compares false
/// against everything, so cascades neither prune nor match). Reject at
/// parse time, uniformly, for every numeric option and value path.
Result<double> FiniteWireDouble(const std::string& token) {
  ONEX_ASSIGN_OR_RETURN(double v, ParseDouble(token));
  if (!std::isfinite(v)) {
    return Status::InvalidArgument("numeric values must be finite, got '" +
                                   token + "'");
  }
  return v;
}

Result<double> OptDouble(const Command& cmd, const std::string& key,
                         double fallback) {
  const auto it = cmd.options.find(key);
  if (it == cmd.options.end()) return fallback;
  return FiniteWireDouble(it->second);
}

/// Binary-frame payloads carry raw float64 bits, so NaN/Inf ride past the
/// ASCII parser entirely; both dialects enforce the same contract.
Status CheckPayloadFinite(const std::vector<double>& payload) {
  for (const double v : payload) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "binary value payload contains a non-finite number");
    }
  }
  return Status::OK();
}

std::string OptString(const Command& cmd, const std::string& key,
                      const std::string& fallback) {
  const auto it = cmd.options.find(key);
  return it == cmd.options.end() ? fallback : it->second;
}

Status NeedArgs(const Command& cmd, std::size_t n) {
  if (cmd.args.size() < n) {
    return Status::InvalidArgument(StrFormat(
        "%s needs %zu positional argument(s), got %zu", cmd.verb.c_str(), n,
        cmd.args.size()));
  }
  return Status::OK();
}

/// Allocation caps (see the header's protocol table): a single text frame
/// must not be able to command an unbounded allocation.
constexpr long long kMaxGenPoints = 2'000'000;
constexpr long long kMaxCatalogPoints = 100'000;
constexpr long long kMaxKnnK = 100'000;
constexpr long long kMaxThresholdPairs = 1'000'000;
constexpr std::size_t kMaxBatchSpecs = 1024;
/// A streaming tail append is a poll cycle's worth of points, not a bulk
/// load; bulk ingest goes through LOAD/GEN.
constexpr std::size_t kMaxExtendPoints = 100'000;
/// Background-checkpoint threshold: one frame must not be able to arm a
/// policy that never fires (overflow) or fires pathologically.
constexpr long long kMaxCheckpointEvery = 1'000'000'000;
/// Analytics result sizing (ANOMALY top/minpts, MOTIF top/discords): far
/// above any useful report, low enough that a hostile frame cannot command
/// an unbounded allocation.
constexpr long long kMaxAnalyticsTop = 100'000;
/// CHANGEPOINT run-length cap ceiling: the recursion keeps maxrun
/// hypotheses alive, so the option bounds live memory.
constexpr long long kMaxChangepointRun = 100'000;
/// FORECAST horizon: the response carries horizon points twice (raw +
/// normalized units).
constexpr long long kMaxForecastHorizon = 100'000;

/// Resolves the dataset a command targets: positional name, then
/// `dataset=<name>`, then the session's USE default.
Result<std::string> DatasetArg(const Command& cmd, const Session& session) {
  if (!cmd.args.empty()) return cmd.args[0];
  const auto it = cmd.options.find("dataset");
  if (it != cmd.options.end()) return it->second;
  if (!session.dataset.empty()) return session.dataset;
  return Status::InvalidArgument(
      cmd.verb +
      " needs a dataset: positional name, dataset=<name>, or USE <name>");
}

/// Name argument for verbs that must not fall back to the session default
/// (DROP, USE): positional or name=/dataset= only.
Result<std::string> ExplicitNameArg(const Command& cmd) {
  if (!cmd.args.empty()) return cmd.args[0];
  for (const char* key : {"name", "dataset"}) {
    const auto it = cmd.options.find(key);
    if (it != cmd.options.end()) return it->second;
  }
  return Status::InvalidArgument(cmd.verb +
                                 " needs a dataset name (positional or "
                                 "name=<name>)");
}

json::Value Ok() {
  json::Value v = json::Value::MakeObject();
  v.Set("ok", true);
  return v;
}

/// Parses "series:start:len" into a QuerySpec.
Result<QuerySpec> ParseQueryRef(const std::string& text) {
  const std::vector<std::string> parts = SplitKeepEmpty(text, ':');
  if (parts.size() != 3) {
    return Status::ParseError("query must be <series>:<start>:<len>, got '" +
                              text + "'");
  }
  QuerySpec spec;
  ONEX_ASSIGN_OR_RETURN(long long series, ParseInt(parts[0]));
  ONEX_ASSIGN_OR_RETURN(long long start, ParseInt(parts[1]));
  ONEX_ASSIGN_OR_RETURN(long long len, ParseInt(parts[2]));
  if (series < 0 || start < 0 || len < 0) {
    return Status::InvalidArgument("query fields must be non-negative");
  }
  spec.series = static_cast<std::size_t>(series);
  spec.start = static_cast<std::size_t>(start);
  spec.length = static_cast<std::size_t>(len);
  return spec;
}

/// Per-query cascade attribution (QueryStats), shipped as a "stats" object
/// on MATCH/KNN responses and per entry on BATCH so clients can chart where
/// the LB_Kim → LB_Keogh → DTW cascade spent and saved work.
json::Value StatsToJson(const QueryStats& s) {
  json::Value v = json::Value::MakeObject();
  v.Set("groups_total", s.groups_total);
  v.Set("groups_pruned_lb", s.groups_pruned_lb);
  v.Set("members_pruned_lb", s.members_pruned_lb);
  v.Set("rep_dtw_evaluations", s.rep_dtw_evaluations);
  v.Set("member_dtw_evaluations", s.member_dtw_evaluations);
  v.Set("pruned_kim", s.pruned_kim);
  v.Set("pruned_keogh", s.pruned_keogh);
  v.Set("dtw_evals", s.dtw_evals);
  return v;
}

json::Value MatchToJson(const MatchResult& r) {
  json::Value m = json::Value::MakeObject();
  m.Set("series", r.match.ref.series);
  m.Set("series_name", r.matched_series_name);
  m.Set("start", r.match.ref.start);
  m.Set("length", r.match.ref.length);
  m.Set("dtw", r.match.dtw);
  m.Set("normalized_dtw", r.match.normalized_dtw);
  m.Set("rep_dtw", r.match.normalized_rep_dtw);
  m.Set("group", r.match.group_index);
  m.Set("elapsed_ms", r.elapsed_ms);
  json::Value links = json::Value::MakeArray();
  for (const auto& [i, j] : r.match.path) {
    json::Value pair = json::Value::MakeArray();
    pair.Append(json::Value(i));
    pair.Append(json::Value(j));
    links.Append(std::move(pair));
  }
  m.Set("path", std::move(links));
  return m;
}

Result<json::Value> DoGen(Engine* engine, const Command& cmd) {
  ONEX_RETURN_IF_ERROR(NeedArgs(cmd, 2));
  const std::string& name = cmd.args[0];
  const std::string kind = ToLower(cmd.args[1]);
  ONEX_ASSIGN_OR_RETURN(long long num, OptInt(cmd, "num", 50));
  ONEX_ASSIGN_OR_RETURN(long long len, OptInt(cmd, "len", 100));
  ONEX_ASSIGN_OR_RETURN(long long seed, OptInt(cmd, "seed", 42));
  if (num <= 0 || len < 2) {
    return Status::InvalidArgument("num must be > 0 and len >= 2");
  }
  if (num > kMaxGenPoints || len > kMaxGenPoints ||
      num * len > kMaxGenPoints) {
    return Status::InvalidArgument(StrFormat(
        "GEN would synthesize %lld x %lld points; the cap is %lld", num, len,
        kMaxGenPoints));
  }

  Dataset ds;
  if (kind == "walk") {
    gen::RandomWalkOptions opt;
    opt.num_series = static_cast<std::size_t>(num);
    opt.length = static_cast<std::size_t>(len);
    opt.seed = static_cast<std::uint64_t>(seed);
    ds = gen::MakeRandomWalks(opt);
  } else if (kind == "sine") {
    gen::SineFamilyOptions opt;
    opt.num_series = static_cast<std::size_t>(num);
    opt.length = static_cast<std::size_t>(len);
    opt.seed = static_cast<std::uint64_t>(seed);
    ds = gen::MakeSineFamilies(opt);
  } else if (kind == "shapes") {
    gen::WarpedShapeOptions opt;
    opt.num_series = static_cast<std::size_t>(num);
    opt.length = static_cast<std::size_t>(len);
    opt.seed = static_cast<std::uint64_t>(seed);
    ds = gen::MakeWarpedShapes(opt);
  } else if (kind == "electricity") {
    gen::ElectricityOptions opt;
    opt.num_households = static_cast<std::size_t>(num);
    opt.length = static_cast<std::size_t>(len);
    opt.seed = static_cast<std::uint64_t>(seed);
    ds = gen::MakeElectricityLoad(opt);
  } else if (kind == "economic") {
    gen::EconomicPanelOptions opt;
    opt.years = static_cast<std::size_t>(len);
    opt.seed = static_cast<std::uint64_t>(seed);
    ds = gen::MakeEconomicPanel(opt);
  } else {
    return Status::InvalidArgument("unknown generator kind: '" + kind + "'");
  }
  ONEX_RETURN_IF_ERROR(engine->LoadDataset(name, std::move(ds)));
  json::Value v = Ok();
  v.Set("dataset", name);
  return v;
}

Result<json::Value> DoPrepare(Engine* engine, const Session& session,
                              const Command& cmd) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  BaseBuildOptions opt;
  ONEX_ASSIGN_OR_RETURN(opt.st, OptDouble(cmd, "st", opt.st));
  ONEX_ASSIGN_OR_RETURN(long long minlen, OptInt(cmd, "minlen", 4));
  ONEX_ASSIGN_OR_RETURN(long long maxlen, OptInt(cmd, "maxlen", 0));
  ONEX_ASSIGN_OR_RETURN(long long lenstep, OptInt(cmd, "lenstep", 1));
  ONEX_ASSIGN_OR_RETURN(long long stride, OptInt(cmd, "stride", 1));
  ONEX_ASSIGN_OR_RETURN(long long threads, OptInt(cmd, "threads", 1));
  if (minlen < 2 || maxlen < 0 || lenstep < 1 || stride < 1 || threads < 0) {
    return Status::InvalidArgument("invalid scoping options");
  }
  opt.min_length = static_cast<std::size_t>(minlen);
  opt.max_length = static_cast<std::size_t>(maxlen);
  opt.length_step = static_cast<std::size_t>(lenstep);
  opt.stride = static_cast<std::size_t>(stride);
  opt.threads = static_cast<std::size_t>(threads);

  const std::string policy = OptString(cmd, "policy", "running-mean");
  if (policy == "fixed-leader") {
    opt.centroid_policy = CentroidPolicy::kFixedLeader;
  } else if (policy == "running-mean") {
    opt.centroid_policy = CentroidPolicy::kRunningMean;
  } else if (policy == "running-mean-repair") {
    opt.centroid_policy = CentroidPolicy::kRunningMeanRepair;
  } else {
    return Status::InvalidArgument("unknown centroid policy: '" + policy + "'");
  }

  ONEX_ASSIGN_OR_RETURN(
      NormalizationKind norm,
      NormalizationKindFromString(OptString(cmd, "norm", "minmax-dataset")));
  ONEX_RETURN_IF_ERROR(engine->Prepare(name, opt, norm));

  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        engine->Get(name));
  json::Value v = Ok();
  v.Set("dataset", name);
  if (ds->prepared()) {
    v.Set("groups", ds->base->stats().num_groups);
    v.Set("subsequences", ds->base->stats().num_subsequences);
    v.Set("length_classes", ds->base->stats().num_length_classes);
    v.Set("compaction", ds->base->stats().CompactionRatio());
    v.Set("build_seconds", ds->base->stats().build_seconds);
  } else {
    // The prepare itself succeeded, but a concurrent session's install
    // already pushed this base out of the LRU budget before we could
    // report on it; it will transparently re-prepare on the next query.
    v.Set("evicted", true);
  }
  return v;
}

Result<json::Value> DoStats(Engine* engine, const Session& session,
                            const Command& cmd) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        engine->Get(name));
  json::Value v = Ok();
  v.Set("dataset", ds->name);
  v.Set("series", ds->raw->size());
  v.Set("total_points", ds->raw->TotalPoints());
  v.Set("min_length", ds->raw->MinLength());
  v.Set("max_length", ds->raw->MaxLength());
  v.Set("prepared", ds->prepared());
  if (ds->prepared()) {
    v.Set("groups", ds->base->stats().num_groups);
    v.Set("subsequences", ds->base->stats().num_subsequences);
    v.Set("st", ds->build_options.st);
    v.Set("normalization", NormalizationKindToString(ds->norm_kind));
  }
  if (const Result<std::string> tier = engine->registry().Tier(name);
      tier.ok()) {
    v.Set("tier", *tier);
  }
  v.Set("mapped_bytes", engine->registry().mapped_bytes());
  if (const Result<MaintenanceStatus> m = engine->registry().Maintenance(name);
      m.ok()) {
    v.Set("last_max_drift", m->last_max_drift);
    v.Set("regrouping", m->regroup_in_flight);
  }
  if (const Result<SlotDurability> d = engine->registry().Durability(name);
      d.ok() && d->durable) {
    v.Set("durable", true);
    v.Set("wal_seq", d->last_seq);
    v.Set("wal_dirty", d->records_since_checkpoint);
    v.Set("checkpoints", d->checkpoints_completed);
  }
  // Engine-wide cascade counters (cumulative over every query this process
  // served, all datasets) and the distance-kernel table answering them.
  const Engine::QueryCounters qc = engine->query_counters();
  v.Set("queries", qc.queries);
  v.Set("pruned_kim", qc.pruned_kim);
  v.Set("pruned_keogh", qc.pruned_keogh);
  v.Set("dtw_evals", qc.dtw_evals);
  v.Set("kernel", std::string(ActiveKernel().name));
  return v;
}

Result<json::Value> DoPersist(Engine* engine, const Command& cmd) {
  const auto dit = cmd.options.find("dir");
  if (dit != cmd.options.end()) {
    DurabilityOptions opt;
    opt.dir = dit->second;
    ONEX_ASSIGN_OR_RETURN(long long every, OptInt(cmd, "every", 0));
    if (every < 0 || every > kMaxCheckpointEvery) {
      return Status::InvalidArgument(StrFormat(
          "every must be in [0, %lld]", kMaxCheckpointEvery));
    }
    opt.checkpoint_every = static_cast<std::uint64_t>(every);
    ONEX_ASSIGN_OR_RETURN(long long fsync, OptInt(cmd, "fsync", 1));
    opt.fsync = fsync != 0;
    ONEX_RETURN_IF_ERROR(engine->EnableDurability(opt));
  }
  json::Value v = Ok();
  v.Set("durable", engine->registry().durable());
  v.Set("dir", engine->registry().data_dir());
  return v;
}

Result<json::Value> DoCheckpoint(Engine* engine, const Session& session,
                                 const Command& cmd) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  ONEX_ASSIGN_OR_RETURN(CheckpointInfo info,
                        engine->registry().Checkpoint(name));
  json::Value v = Ok();
  v.Set("dataset", name);
  v.Set("state_seq", info.state_seq);
  v.Set("bytes", info.bytes);
  return v;
}

/// Shared query-option parsing for MATCH/KNN/BATCH.
Result<QueryOptions> ParseQueryOptions(const Command& cmd) {
  QueryOptions qopt;
  ONEX_ASSIGN_OR_RETURN(long long window, OptInt(cmd, "window", -1));
  ONEX_ASSIGN_OR_RETURN(long long topg, OptInt(cmd, "topgroups", 1));
  ONEX_ASSIGN_OR_RETURN(long long exhaustive, OptInt(cmd, "exhaustive", 0));
  ONEX_ASSIGN_OR_RETURN(long long threads, OptInt(cmd, "threads", 1));
  if (threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  qopt.window = static_cast<int>(window);
  qopt.explore_top_groups = topg < 1 ? 1 : static_cast<std::size_t>(topg);
  qopt.exhaustive = exhaustive != 0;
  qopt.threads = static_cast<std::size_t>(threads);
  return qopt;
}

/// Builds the query's cancellation token from deadline_ms= and the serving
/// layer's disconnect flag. The token lives on the Do* stack, so it must be
/// constructed there and only *pointed to* from QueryOptions.
Result<Cancellation> ParseCancellation(const Command& cmd,
                                       const ExecContext& ctx) {
  ONEX_ASSIGN_OR_RETURN(long long deadline_ms, OptInt(cmd, "deadline_ms", 0));
  if (deadline_ms < 0) {
    return Status::InvalidArgument("deadline_ms must be >= 0");
  }
  if (deadline_ms == 0) return Cancellation(ctx.disconnected);
  return Cancellation(ctx.arrival + std::chrono::milliseconds(deadline_ms),
                      ctx.disconnected);
}

/// Side-band export for binary responses: the matched subsequence's
/// normalized values, appended in match order. Never touches the JSON, so
/// text and binary bodies stay byte-identical.
void ExportMatchValues(const MatchResult& r, const ExecContext& ctx) {
  if (ctx.out_values == nullptr) return;
  ctx.out_values->insert(ctx.out_values->end(), r.match_values.begin(),
                         r.match_values.end());
}

/// MATCH/KNN with datasets=<a,b,c>: the query runs against every named
/// dataset (q= resolves within each independently) and the per-dataset
/// results merge through cluster_merge.h. This is the single-node twin of
/// the coordinator's scatter-gather: same candidates, same comparator, same
/// truncation — so a cluster and a single node answer byte-identically.
Result<json::Value> DoMatchMulti(Engine* engine, const Command& cmd, bool knn,
                                 const ExecContext& ctx) {
  ONEX_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        ParseDatasetsOption(cmd.options.at("datasets")));
  const auto qit = cmd.options.find("q");
  if (qit == cmd.options.end()) {
    return Status::InvalidArgument("missing q=<series>:<start>:<len>");
  }
  ONEX_ASSIGN_OR_RETURN(QuerySpec spec, ParseQueryRef(qit->second));
  ONEX_ASSIGN_OR_RETURN(QueryOptions qopt, ParseQueryOptions(cmd));
  ONEX_ASSIGN_OR_RETURN(Cancellation cancel, ParseCancellation(cmd, ctx));
  qopt.cancel = &cancel;
  long long k = 1;
  if (knn) {
    ONEX_ASSIGN_OR_RETURN(k, OptInt(cmd, "k", 3));
    if (k < 1 || k > kMaxKnnK) {
      return Status::InvalidArgument(
          StrFormat("k must be in [1, %lld]", kMaxKnnK));
    }
  }

  std::vector<ShardMatch> cands;
  json::Value stats = json::Value::MakeObject();
  bool any_stats = false;
  for (const std::string& name : names) {
    ONEX_ASSIGN_OR_RETURN(
        std::vector<MatchResult> results,
        engine->Knn(name, spec, static_cast<std::size_t>(k), qopt));
    for (const MatchResult& r : results) {
      ShardMatch c;
      c.dataset = name;
      c.match = MatchToJson(r);
      c.match.Set("dataset", name);
      c.values = r.match_values;
      cands.push_back(std::move(c));
    }
    if (!results.empty()) {
      AccumulateStats(&stats, StatsToJson(results.front().stats));
      any_stats = true;
    }
  }
  MergeTopK(&cands, static_cast<std::size_t>(k));

  json::Value v = Ok();
  if (knn) {
    json::Value arr = json::Value::MakeArray();
    for (const ShardMatch& c : cands) {
      arr.Append(c.match);
      if (ctx.out_values != nullptr) {
        ctx.out_values->insert(ctx.out_values->end(), c.values.begin(),
                               c.values.end());
      }
    }
    v.Set("matches", std::move(arr));
    if (any_stats) v.Set("stats", std::move(stats));
  } else {
    if (cands.empty()) {
      return Status::NotFound("no match in any of the named datasets");
    }
    v.Set("match", cands.front().match);
    v.Set("stats", std::move(stats));
    if (ctx.out_values != nullptr) {
      ctx.out_values->insert(ctx.out_values->end(),
                             cands.front().values.begin(),
                             cands.front().values.end());
    }
  }
  return v;
}

Result<json::Value> DoMatch(Engine* engine, const Session& session,
                            const Command& cmd, bool knn,
                            const ExecContext& ctx) {
  if (cmd.options.count("datasets") != 0) {
    return DoMatchMulti(engine, cmd, knn, ctx);
  }
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  const auto qit = cmd.options.find("q");
  if (qit == cmd.options.end()) {
    return Status::InvalidArgument("missing q=<series>:<start>:<len>");
  }
  ONEX_ASSIGN_OR_RETURN(QuerySpec spec, ParseQueryRef(qit->second));
  ONEX_ASSIGN_OR_RETURN(QueryOptions qopt, ParseQueryOptions(cmd));
  ONEX_ASSIGN_OR_RETURN(Cancellation cancel, ParseCancellation(cmd, ctx));
  qopt.cancel = &cancel;

  json::Value v = Ok();
  if (knn) {
    ONEX_ASSIGN_OR_RETURN(long long k, OptInt(cmd, "k", 3));
    if (k < 1 || k > kMaxKnnK) {
      return Status::InvalidArgument(
          StrFormat("k must be in [1, %lld]", kMaxKnnK));
    }
    ONEX_ASSIGN_OR_RETURN(
        std::vector<MatchResult> results,
        engine->Knn(name, spec, static_cast<std::size_t>(k), qopt));
    json::Value arr = json::Value::MakeArray();
    for (const MatchResult& r : results) {
      arr.Append(MatchToJson(r));
      ExportMatchValues(r, ctx);
    }
    v.Set("matches", std::move(arr));
    // One KnnQuery produced all k matches, so the stats are shared.
    if (!results.empty()) v.Set("stats", StatsToJson(results.front().stats));
  } else {
    ONEX_ASSIGN_OR_RETURN(MatchResult r,
                          engine->SimilaritySearch(name, spec, qopt));
    v.Set("match", MatchToJson(r));
    v.Set("stats", StatsToJson(r.stats));
    ExportMatchValues(r, ctx);
  }
  return v;
}

/// BATCH with datasets=: every query in the batch fans across all named
/// datasets; each query's per-dataset k-lists merge independently with the
/// shared deterministic comparator (see DoMatchMulti).
Result<json::Value> DoBatchMulti(Engine* engine, const Command& cmd,
                                 const ExecContext& ctx) {
  ONEX_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        ParseDatasetsOption(cmd.options.at("datasets")));
  const auto qit = cmd.options.find("q");
  if (qit == cmd.options.end()) {
    return Status::InvalidArgument(
        "missing q=<series>:<start>:<len>[;<series>:<start>:<len>...]");
  }
  std::vector<QuerySpec> specs;
  for (const std::string& ref : SplitKeepEmpty(qit->second, ';')) {
    if (specs.size() >= kMaxBatchSpecs) {
      return Status::InvalidArgument(StrFormat(
          "BATCH accepts at most %zu queries per frame", kMaxBatchSpecs));
    }
    ONEX_ASSIGN_OR_RETURN(QuerySpec spec, ParseQueryRef(ref));
    specs.push_back(std::move(spec));
  }
  ONEX_ASSIGN_OR_RETURN(QueryOptions qopt, ParseQueryOptions(cmd));
  ONEX_ASSIGN_OR_RETURN(Cancellation cancel, ParseCancellation(cmd, ctx));
  qopt.cancel = &cancel;
  ONEX_ASSIGN_OR_RETURN(long long k, OptInt(cmd, "k", 1));
  if (k < 1 || k > kMaxKnnK) {
    return Status::InvalidArgument(
        StrFormat("k must be in [1, %lld]", kMaxKnnK));
  }
  if (static_cast<long long>(specs.size() * names.size()) * k > kMaxKnnK) {
    return Status::InvalidArgument(StrFormat(
        "BATCH result volume (queries x datasets x k) is capped at %lld",
        kMaxKnnK));
  }

  // One KnnBatch per dataset, then a per-query merge across datasets.
  std::vector<std::vector<std::vector<MatchResult>>> per_dataset;
  per_dataset.reserve(names.size());
  for (const std::string& name : names) {
    ONEX_ASSIGN_OR_RETURN(
        std::vector<std::vector<MatchResult>> results,
        engine->KnnBatch(name, specs, static_cast<std::size_t>(k), qopt));
    per_dataset.push_back(std::move(results));
  }

  json::Value v = Ok();
  json::Value results = json::Value::MakeArray();
  for (std::size_t qi = 0; qi < specs.size(); ++qi) {
    std::vector<ShardMatch> cands;
    json::Value stats = json::Value::MakeObject();
    bool any_stats = false;
    for (std::size_t di = 0; di < names.size(); ++di) {
      const std::vector<MatchResult>& matches = per_dataset[di][qi];
      for (const MatchResult& r : matches) {
        ShardMatch c;
        c.dataset = names[di];
        c.match = MatchToJson(r);
        c.match.Set("dataset", names[di]);
        c.values = r.match_values;
        cands.push_back(std::move(c));
      }
      if (!matches.empty()) {
        AccumulateStats(&stats, StatsToJson(matches.front().stats));
        any_stats = true;
      }
    }
    MergeTopK(&cands, static_cast<std::size_t>(k));
    json::Value entry = json::Value::MakeObject();
    json::Value arr = json::Value::MakeArray();
    for (const ShardMatch& c : cands) {
      arr.Append(c.match);
      if (ctx.out_values != nullptr) {
        ctx.out_values->insert(ctx.out_values->end(), c.values.begin(),
                               c.values.end());
      }
    }
    entry.Set("matches", std::move(arr));
    if (any_stats) entry.Set("stats", std::move(stats));
    results.Append(std::move(entry));
  }
  v.Set("results", std::move(results));
  return v;
}

Result<json::Value> DoBatch(Engine* engine, const Session& session,
                            const Command& cmd, const ExecContext& ctx) {
  if (cmd.options.count("datasets") != 0) {
    return DoBatchMulti(engine, cmd, ctx);
  }
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  const auto qit = cmd.options.find("q");
  if (qit == cmd.options.end()) {
    return Status::InvalidArgument(
        "missing q=<series>:<start>:<len>[;<series>:<start>:<len>...]");
  }
  std::vector<QuerySpec> specs;
  for (const std::string& ref : SplitKeepEmpty(qit->second, ';')) {
    if (specs.size() >= kMaxBatchSpecs) {
      return Status::InvalidArgument(StrFormat(
          "BATCH accepts at most %zu queries per frame", kMaxBatchSpecs));
    }
    ONEX_ASSIGN_OR_RETURN(QuerySpec spec, ParseQueryRef(ref));
    specs.push_back(std::move(spec));
  }
  ONEX_ASSIGN_OR_RETURN(QueryOptions qopt, ParseQueryOptions(cmd));
  ONEX_ASSIGN_OR_RETURN(Cancellation cancel, ParseCancellation(cmd, ctx));
  qopt.cancel = &cancel;
  ONEX_ASSIGN_OR_RETURN(long long k, OptInt(cmd, "k", 1));
  if (k < 1 || k > kMaxKnnK) {
    return Status::InvalidArgument(
        StrFormat("k must be in [1, %lld]", kMaxKnnK));
  }
  // The response carries specs x k matches; bound the product so one frame
  // cannot command an unbounded result materialization.
  if (static_cast<long long>(specs.size()) * k > kMaxKnnK) {
    return Status::InvalidArgument(StrFormat(
        "BATCH result volume (queries x k) is capped at %lld", kMaxKnnK));
  }

  ONEX_ASSIGN_OR_RETURN(
      std::vector<std::vector<MatchResult>> per_query,
      engine->KnnBatch(name, specs, static_cast<std::size_t>(k), qopt));
  json::Value v = Ok();
  json::Value results = json::Value::MakeArray();
  for (const std::vector<MatchResult>& matches : per_query) {
    json::Value entry = json::Value::MakeObject();
    json::Value arr = json::Value::MakeArray();
    for (const MatchResult& r : matches) {
      arr.Append(MatchToJson(r));
      ExportMatchValues(r, ctx);
    }
    entry.Set("matches", std::move(arr));
    if (!matches.empty()) {
      entry.Set("stats", StatsToJson(matches.front().stats));
    }
    results.Append(std::move(entry));
  }
  v.Set("results", std::move(results));
  return v;
}

Result<json::Value> DoSeasonal(Engine* engine, const Session& session,
                               const Command& cmd) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  ONEX_ASSIGN_OR_RETURN(long long series, OptInt(cmd, "series", 0));
  ONEX_ASSIGN_OR_RETURN(long long length, OptInt(cmd, "length", 0));
  ONEX_ASSIGN_OR_RETURN(long long minocc, OptInt(cmd, "minocc", 2));
  ONEX_ASSIGN_OR_RETURN(long long top, OptInt(cmd, "top", 5));
  if (series < 0 || length < 0 || minocc < 2 || top < 0) {
    return Status::InvalidArgument("invalid seasonal options");
  }
  SeasonalOptions opt;
  opt.length = static_cast<std::size_t>(length);
  opt.min_occurrences = static_cast<std::size_t>(minocc);
  opt.top_k = static_cast<std::size_t>(top);
  ONEX_ASSIGN_OR_RETURN(
      std::vector<SeasonalPattern> patterns,
      engine->Seasonal(name, static_cast<std::size_t>(series), opt));
  json::Value v = Ok();
  json::Value arr = json::Value::MakeArray();
  for (const SeasonalPattern& p : patterns) {
    json::Value row = json::Value::MakeObject();
    row.Set("length", p.length);
    row.Set("occurrences", p.occurrences.size());
    row.Set("typical_gap", p.typical_gap);
    row.Set("cohesion", p.cohesion);
    json::Value occ = json::Value::MakeArray();
    for (const SubseqRef& r : p.occurrences) occ.Append(json::Value(r.start));
    row.Set("starts", std::move(occ));
    arr.Append(std::move(row));
  }
  v.Set("patterns", std::move(arr));
  return v;
}

Result<json::Value> DoOverview(Engine* engine, const Session& session,
                               const Command& cmd) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  ONEX_ASSIGN_OR_RETURN(long long length, OptInt(cmd, "length", 0));
  ONEX_ASSIGN_OR_RETURN(long long top, OptInt(cmd, "top", 12));
  if (length < 0 || top < 0) {
    return Status::InvalidArgument("invalid overview options");
  }
  OverviewOptions opt;
  opt.length = static_cast<std::size_t>(length);
  opt.top_n = static_cast<std::size_t>(top);
  ONEX_ASSIGN_OR_RETURN(std::vector<OverviewEntry> entries,
                        engine->Overview(name, opt));
  json::Value v = Ok();
  v.Set("overview", viz::BuildOverviewPane(entries).ToJson());
  return v;
}

Result<json::Value> DoThreshold(Engine* engine, const Session& session,
                                const Command& cmd) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  ThresholdAdvisorOptions opt;
  ONEX_ASSIGN_OR_RETURN(long long pairs, OptInt(cmd, "pairs", 2000));
  ONEX_ASSIGN_OR_RETURN(long long minlen, OptInt(cmd, "minlen", 4));
  ONEX_ASSIGN_OR_RETURN(long long maxlen, OptInt(cmd, "maxlen", 0));
  if (pairs < 1 || pairs > kMaxThresholdPairs || minlen < 2 || maxlen < 0) {
    return Status::InvalidArgument("invalid threshold options");
  }
  opt.sample_pairs = static_cast<std::size_t>(pairs);
  opt.min_length = static_cast<std::size_t>(minlen);
  opt.max_length = static_cast<std::size_t>(maxlen);
  ONEX_ASSIGN_OR_RETURN(ThresholdReport report,
                        engine->RecommendThresholds(name, opt));
  json::Value v = Ok();
  json::Value arr = json::Value::MakeArray();
  for (const ThresholdRecommendation& r : report.recommendations) {
    json::Value row = json::Value::MakeObject();
    row.Set("st", r.st);
    row.Set("percentile", r.percentile);
    arr.Append(std::move(row));
  }
  v.Set("recommendations", std::move(arr));
  v.Set("median_distance", report.median_distance);
  v.Set("pairs_sampled", report.pairs_sampled);
  return v;
}

Result<json::Value> DoAppend(Engine* engine, const Session& session,
                             const Command& cmd) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  std::vector<double> values;
  const auto vit = cmd.options.find("v");
  if (vit != cmd.options.end()) {
    for (const std::string& token : SplitKeepEmpty(vit->second, ',')) {
      ONEX_ASSIGN_OR_RETURN(double v, FiniteWireDouble(token));
      values.push_back(v);
    }
  } else if (!cmd.payload.empty()) {
    // Binary frame: the values rode as raw float64s (already capped by the
    // frame decoder), no ASCII parse at all — but the finite-number
    // contract is the same in both dialects.
    ONEX_RETURN_IF_ERROR(CheckPayloadFinite(cmd.payload));
    values = cmd.payload;
  } else {
    return Status::InvalidArgument(
        "missing v=<comma-separated values> (or a binary value payload)");
  }
  const std::string sname = OptString(cmd, "series", "appended");
  ONEX_RETURN_IF_ERROR(
      engine->AppendSeries(name, TimeSeries(sname, std::move(values))));
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        engine->Get(name));
  json::Value v = Ok();
  v.Set("dataset", name);
  v.Set("series", ds->raw->size());
  if (ds->prepared()) v.Set("groups", ds->base->stats().num_groups);
  return v;
}

json::Value DriftToJson(const LengthClassDrift& d) {
  json::Value row = json::Value::MakeObject();
  row.Set("length", d.length);
  row.Set("members", d.members);
  row.Set("outliers", d.outliers);
  row.Set("fraction", d.fraction());
  return row;
}

/// series=<idx|name> resolution against the dataset's current snapshot,
/// shared by EXTEND, CHANGEPOINT and FORECAST.
Result<std::size_t> ResolveSeriesOption(Engine* engine,
                                        const std::string& name,
                                        const Command& cmd) {
  const auto sit = cmd.options.find("series");
  if (sit == cmd.options.end()) {
    return Status::InvalidArgument("missing series=<index or name>");
  }
  const Result<long long> idx = ParseInt(sit->second);
  if (idx.ok()) {
    if (*idx < 0) {
      return Status::InvalidArgument("series index must be >= 0");
    }
    return static_cast<std::size_t>(*idx);
  }
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        engine->Get(name));
  return ds->raw->FindByName(sit->second);
}

json::Value RefToJson(const SubseqRef& ref) {
  json::Value v = json::Value::MakeObject();
  v.Set("series", ref.series);
  v.Set("start", ref.start);
  v.Set("length", ref.length);
  return v;
}

Result<json::Value> DoAnomaly(Engine* engine, const Session& session,
                              const Command& cmd, const ExecContext& ctx) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  ONEX_ASSIGN_OR_RETURN(long long length, OptInt(cmd, "length", 0));
  ONEX_ASSIGN_OR_RETURN(long long top, OptInt(cmd, "top", 10));
  ONEX_ASSIGN_OR_RETURN(long long minpts, OptInt(cmd, "minpts", 2));
  ONEX_ASSIGN_OR_RETURN(double eps, OptDouble(cmd, "eps", 0.0));
  if (length < 0 || top < 1 || top > kMaxAnalyticsTop || minpts < 1 ||
      minpts > kMaxAnalyticsTop || eps < 0.0) {
    return Status::InvalidArgument(StrFormat(
        "ANOMALY needs length>=0, top/minpts in [1, %lld] and eps>=0",
        kMaxAnalyticsTop));
  }
  ONEX_ASSIGN_OR_RETURN(Cancellation cancel, ParseCancellation(cmd, ctx));
  AnomalyOptions opt;
  opt.length = static_cast<std::size_t>(length);
  opt.top_k = static_cast<std::size_t>(top);
  opt.min_pts = static_cast<std::size_t>(minpts);
  opt.eps = eps;
  opt.cancel = &cancel;
  ONEX_ASSIGN_OR_RETURN(AnomalyReport report, engine->Anomaly(name, opt));

  json::Value v = Ok();
  v.Set("dataset", name);
  v.Set("members_scanned", report.members_scanned);
  v.Set("outliers", report.outliers);
  v.Set("distance_evals", report.distance_evals);
  v.Set("evals_abandoned", report.evals_abandoned);
  json::Value arr = json::Value::MakeArray();
  for (const AnomalyFinding& f : report.findings) {
    json::Value row = RefToJson(f.ref);
    row.Set("score", f.score);
    row.Set("outlier", f.outlier);
    arr.Append(std::move(row));
  }
  v.Set("findings", std::move(arr));
  json::Value drift = json::Value::MakeArray();
  for (const LengthClassDrift& d : report.drift) {
    drift.Append(DriftToJson(d));
  }
  v.Set("drift", std::move(drift));
  return v;
}

Result<json::Value> DoChangepoint(Engine* engine, const Session& session,
                                  const Command& cmd,
                                  const ExecContext& ctx) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  ONEX_ASSIGN_OR_RETURN(std::size_t series,
                        ResolveSeriesOption(engine, name, cmd));
  ONEX_ASSIGN_OR_RETURN(double hazard, OptDouble(cmd, "hazard", 0.01));
  ONEX_ASSIGN_OR_RETURN(double threshold, OptDouble(cmd, "threshold", 0.5));
  ONEX_ASSIGN_OR_RETURN(long long maxrun, OptInt(cmd, "maxrun", 256));
  ONEX_ASSIGN_OR_RETURN(long long last, OptInt(cmd, "last", 0));
  ONEX_ASSIGN_OR_RETURN(long long probs, OptInt(cmd, "probs", 0));
  if (maxrun < 2 || maxrun > kMaxChangepointRun || last < 0) {
    return Status::InvalidArgument(StrFormat(
        "CHANGEPOINT needs maxrun in [2, %lld] and last>=0",
        kMaxChangepointRun));
  }
  ONEX_ASSIGN_OR_RETURN(Cancellation cancel, ParseCancellation(cmd, ctx));
  ChangepointOptions opt;
  opt.hazard = hazard;
  opt.threshold = threshold;
  opt.max_run = static_cast<std::size_t>(maxrun);
  opt.last = static_cast<std::size_t>(last);
  opt.cancel = &cancel;
  ONEX_ASSIGN_OR_RETURN(ChangepointReport report,
                        engine->Changepoint(name, series, opt));

  json::Value v = Ok();
  v.Set("dataset", name);
  v.Set("series", series);
  v.Set("evaluated", report.evaluated);
  v.Set("map_run_length", report.map_run_length);
  v.Set("mass_dropped", report.mass_dropped);
  v.Set("error_bound", report.error_bound);
  json::Value arr = json::Value::MakeArray();
  for (const ChangepointHit& hit : report.changepoints) {
    json::Value row = json::Value::MakeObject();
    row.Set("index", hit.index);
    row.Set("probability", hit.probability);
    arr.Append(std::move(row));
  }
  v.Set("changepoints", std::move(arr));
  if (probs != 0) {
    v.Set("probabilities",
          json::Value::NumberArray(report.change_probability));
  }
  return v;
}

Result<json::Value> DoMotif(Engine* engine, const Session& session,
                            const Command& cmd, const ExecContext& ctx) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  ONEX_ASSIGN_OR_RETURN(long long length, OptInt(cmd, "length", 0));
  ONEX_ASSIGN_OR_RETURN(long long top, OptInt(cmd, "top", 5));
  ONEX_ASSIGN_OR_RETURN(long long discords, OptInt(cmd, "discords", 3));
  if (length < 0 || top < 0 || top > kMaxAnalyticsTop || discords < 0 ||
      discords > kMaxAnalyticsTop) {
    return Status::InvalidArgument(StrFormat(
        "MOTIF needs length>=0 and top/discords in [0, %lld]",
        kMaxAnalyticsTop));
  }
  ONEX_ASSIGN_OR_RETURN(Cancellation cancel, ParseCancellation(cmd, ctx));
  MotifOptions opt;
  opt.length = static_cast<std::size_t>(length);
  opt.top_k = static_cast<std::size_t>(top);
  opt.discords = static_cast<std::size_t>(discords);
  opt.cancel = &cancel;
  ONEX_ASSIGN_OR_RETURN(MotifReport report, engine->Motif(name, opt));

  json::Value v = Ok();
  v.Set("dataset", name);
  v.Set("members_scanned", report.members_scanned);
  v.Set("pairs_evaluated", report.pairs_evaluated);
  v.Set("pairs_pruned", report.pairs_pruned);
  json::Value classes = json::Value::MakeArray();
  for (const MotifClassReport& cls : report.classes) {
    json::Value row = json::Value::MakeObject();
    row.Set("length", cls.length);
    json::Value densest = json::Value::MakeArray();
    for (const MotifGroup& g : cls.densest) {
      json::Value gr = json::Value::MakeObject();
      gr.Set("group", g.group);
      gr.Set("count", g.count);
      gr.Set("radius", g.radius);
      densest.Append(std::move(gr));
    }
    row.Set("densest", std::move(densest));
    if (cls.has_motif) {
      json::Value pair = json::Value::MakeObject();
      pair.Set("a", RefToJson(cls.motif_a));
      pair.Set("b", RefToJson(cls.motif_b));
      pair.Set("distance", cls.motif_distance);
      row.Set("motif", std::move(pair));
    }
    json::Value lonely = json::Value::MakeArray();
    for (const Discord& d : cls.discords) {
      json::Value dr = RefToJson(d.ref);
      dr.Set("distance", d.distance);
      lonely.Append(std::move(dr));
    }
    row.Set("discords", std::move(lonely));
    classes.Append(std::move(row));
  }
  v.Set("classes", std::move(classes));
  return v;
}

Result<json::Value> DoForecast(Engine* engine, const Session& session,
                               const Command& cmd, const ExecContext& ctx) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  ONEX_ASSIGN_OR_RETURN(std::size_t series,
                        ResolveSeriesOption(engine, name, cmd));
  ONEX_ASSIGN_OR_RETURN(long long horizon, OptInt(cmd, "horizon", 8));
  ONEX_ASSIGN_OR_RETURN(long long length, OptInt(cmd, "length", 0));
  ONEX_ASSIGN_OR_RETURN(long long k, OptInt(cmd, "k", 3));
  ONEX_ASSIGN_OR_RETURN(long long period, OptInt(cmd, "period", 0));
  const std::string method = ToLower(OptString(cmd, "method", "group"));
  if (horizon < 1 || horizon > kMaxForecastHorizon || length < 0 ||
      k < 1 || k > kMaxKnnK || period < 0) {
    return Status::InvalidArgument(StrFormat(
        "FORECAST needs horizon in [1, %lld], k in [1, %lld], "
        "length>=0 and period>=0",
        kMaxForecastHorizon, kMaxKnnK));
  }
  ONEX_ASSIGN_OR_RETURN(Cancellation cancel, ParseCancellation(cmd, ctx));
  ForecastOptions opt;
  opt.horizon = static_cast<std::size_t>(horizon);
  opt.length = static_cast<std::size_t>(length);
  opt.k = static_cast<std::size_t>(k);
  opt.period = static_cast<std::size_t>(period);
  opt.cancel = &cancel;
  if (method == "group") {
    opt.method = ForecastMethod::kGroupNn;
  } else if (method == "seasonal") {
    opt.method = ForecastMethod::kSeasonalNaive;
  } else {
    return Status::InvalidArgument("method must be group or seasonal");
  }
  ONEX_ASSIGN_OR_RETURN(Engine::ForecastResult result,
                        engine->Forecast(name, series, opt));

  json::Value v = Ok();
  v.Set("dataset", name);
  v.Set("series", series);
  v.Set("series_name", result.series_name);
  v.Set("method", method);
  v.Set("tail_start", result.report.tail_start);
  v.Set("tail_length", result.report.tail_length);
  if (result.report.period != 0) v.Set("period", result.report.period);
  v.Set("values", json::Value::NumberArray(result.raw_values));
  v.Set("values_norm", json::Value::NumberArray(result.report.values));
  json::Value neighbors = json::Value::MakeArray();
  for (const ForecastNeighbor& n : result.report.neighbors) {
    json::Value row = RefToJson(n.ref);
    row.Set("distance", n.distance);
    neighbors.Append(std::move(row));
  }
  v.Set("neighbors", std::move(neighbors));
  v.Set("candidates", result.report.candidates);
  v.Set("groups_pruned", result.report.groups_pruned);
  // Binary clients get the raw forecast as a float64 section, like MATCH
  // values; the JSON body stays byte-identical across dialects.
  if (ctx.out_values != nullptr) {
    ctx.out_values->insert(ctx.out_values->end(), result.raw_values.begin(),
                           result.raw_values.end());
  }
  return v;
}

Result<json::Value> DoExtend(Engine* engine, const Session& session,
                             const Command& cmd) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  std::vector<double> points;
  const auto pit = cmd.options.find("points");
  if (pit != cmd.options.end()) {
    for (const std::string& token : SplitKeepEmpty(pit->second, ',')) {
      if (points.size() >= kMaxExtendPoints) {
        return Status::InvalidArgument(StrFormat(
            "EXTEND accepts at most %zu points per frame", kMaxExtendPoints));
      }
      ONEX_ASSIGN_OR_RETURN(double v, FiniteWireDouble(token));
      points.push_back(v);
    }
  } else if (!cmd.payload.empty()) {
    // Binary payloads honor the same caps as the text form: the transport
    // changed, neither the streaming-tail contract nor the finite-number
    // contract did.
    if (cmd.payload.size() > kMaxExtendPoints) {
      return Status::InvalidArgument(StrFormat(
          "EXTEND accepts at most %zu points per frame", kMaxExtendPoints));
    }
    ONEX_RETURN_IF_ERROR(CheckPayloadFinite(cmd.payload));
    points = cmd.payload;
  } else {
    return Status::InvalidArgument(
        "missing points=<comma-separated values> (or a binary value payload)");
  }

  ONEX_ASSIGN_OR_RETURN(std::size_t series,
                        ResolveSeriesOption(engine, name, cmd));
  ONEX_ASSIGN_OR_RETURN(Engine::ExtendSummary summary,
                        engine->ExtendSeries(name, series, std::move(points)));
  json::Value v = Ok();
  v.Set("dataset", name);
  v.Set("series", series);
  // Best-effort length report: the write is already installed, so a
  // concurrent DROP must not turn an acknowledged extend into an error.
  if (const Result<std::shared_ptr<const PreparedDataset>> after =
          engine->Get(name);
      after.ok() && (*after)->raw->CheckIndex(series).ok()) {
    v.Set("length", (*(*after)->raw)[series].length());
  }
  v.Set("points_appended", summary.points_appended);
  v.Set("new_members", summary.new_members);
  v.Set("max_drift", summary.max_drift);
  v.Set("regroup_scheduled", summary.regroup_scheduled);
  json::Value arr = json::Value::MakeArray();
  for (const LengthClassDrift& d : summary.drift) arr.Append(DriftToJson(d));
  v.Set("drift", std::move(arr));
  return v;
}

Result<json::Value> DoDrift(Engine* engine, const Session& session,
                            const Command& cmd) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  // Validate everything before committing the (registry-wide) threshold, so
  // a failed command leaves no side effect behind.
  ONEX_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedDataset> ds,
                        engine->Get(name));
  const auto tit = cmd.options.find("threshold");
  if (tit != cmd.options.end()) {
    ONEX_ASSIGN_OR_RETURN(double threshold, FiniteWireDouble(tit->second));
    if (!(threshold >= 0.0) || threshold > 1.0) {
      return Status::InvalidArgument("threshold must be in [0, 1]");
    }
    engine->registry().SetDriftThreshold(threshold);
  }
  ONEX_ASSIGN_OR_RETURN(MaintenanceStatus status,
                        engine->registry().Maintenance(name));
  json::Value v = Ok();
  v.Set("dataset", name);
  v.Set("threshold", status.drift_threshold);
  v.Set("regrouping", status.regroup_in_flight);
  v.Set("regroups_completed", status.regroups_completed);
  v.Set("last_max_drift", status.last_max_drift);
  v.Set("prepared", ds->prepared());
  if (ds->prepared()) {
    // Full scan over the resident base. Deliberately reads the snapshot via
    // Get, not GetPrepared: a DRIFT poll must not force an evicted base
    // back into memory.
    double max_drift = 0.0;
    json::Value arr = json::Value::MakeArray();
    for (const LengthClassDrift& d : ComputeDrift(*ds->base)) {
      max_drift = std::max(max_drift, d.fraction());
      arr.Append(DriftToJson(d));
    }
    v.Set("classes", std::move(arr));
    v.Set("max_drift", max_drift);
  }
  return v;
}

Result<json::Value> DoDatasets(Engine* engine) {
  json::Value v = Ok();
  json::Value arr = json::Value::MakeArray();
  for (const DatasetSlotInfo& info : engine->registry().Describe()) {
    json::Value row = json::Value::MakeObject();
    row.Set("name", info.name);
    row.Set("series", info.series);
    row.Set("prepared", info.prepared);
    row.Set("evicted", info.evicted);
    row.Set("bytes", info.prepared_bytes);
    row.Set("tier", info.tier);
    row.Set("mapped_bytes", info.mapped_bytes);
    row.Set("pinned", info.pinned);
    row.Set("regrouping", info.regrouping);
    row.Set("last_max_drift", info.last_max_drift);
    row.Set("durable", info.durable);
    if (info.durable) {
      row.Set("wal_seq", info.wal_seq);
      row.Set("wal_dirty", info.wal_dirty);
      row.Set("checkpoints", info.checkpoints);
    }
    arr.Append(std::move(row));
  }
  v.Set("datasets", std::move(arr));
  v.Set("budget", engine->registry().prepared_budget());
  v.Set("prepared_bytes", engine->registry().prepared_bytes());
  v.Set("mapped_bytes", engine->registry().mapped_bytes());
  v.Set("durable", engine->registry().durable());
  return v;
}

Result<json::Value> DoUse(Engine* engine, Session* session,
                          const Command& cmd) {
  ONEX_ASSIGN_OR_RETURN(std::string name, ExplicitNameArg(cmd));
  // Validate before committing so a typo does not poison the session.
  ONEX_RETURN_IF_ERROR(engine->Get(name).status());
  session->dataset = name;
  json::Value v = Ok();
  v.Set("dataset", name);
  return v;
}

Result<json::Value> DoBudget(Engine* engine, const Command& cmd) {
  const auto it = cmd.options.find("bytes");
  if (it != cmd.options.end()) {
    ONEX_ASSIGN_OR_RETURN(long long bytes, ParseInt(it->second));
    if (bytes < 0) {
      return Status::InvalidArgument("budget bytes must be >= 0");
    }
    engine->registry().SetPreparedBudget(static_cast<std::size_t>(bytes));
  }
  json::Value v = Ok();
  v.Set("budget", engine->registry().prepared_budget());
  v.Set("prepared_bytes", engine->registry().prepared_bytes());
  return v;
}

Result<json::Value> DoTier(Engine* engine, const Session& session,
                           const Command& cmd) {
  ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, session));
  if (const auto it = cmd.options.find("pin"); it != cmd.options.end()) {
    ONEX_ASSIGN_OR_RETURN(long long pin, ParseInt(it->second));
    if (pin != 0 && pin != 1) {
      return Status::InvalidArgument("pin must be 0 or 1");
    }
    ONEX_RETURN_IF_ERROR(engine->registry().SetPinned(name, pin == 1));
  }
  if (const auto it = cmd.options.find("demote"); it != cmd.options.end()) {
    ONEX_ASSIGN_OR_RETURN(long long demote, ParseInt(it->second));
    if (demote != 0 && demote != 1) {
      return Status::InvalidArgument("demote must be 0 or 1");
    }
    if (demote == 1) {
      ONEX_RETURN_IF_ERROR(engine->registry().Demote(name));
    }
  }
  ONEX_ASSIGN_OR_RETURN(std::string tier, engine->registry().Tier(name));
  json::Value v = Ok();
  v.Set("dataset", name);
  v.Set("tier", tier);
  for (const DatasetSlotInfo& info : engine->registry().Describe()) {
    if (info.name != name) continue;
    v.Set("pinned", info.pinned);
    v.Set("mapped_bytes", info.mapped_bytes);
    break;
  }
  return v;
}

Result<json::Value> DoLoad(Engine* engine, const Command& cmd) {
  // Positionals win over options, independently per field, so the mixed
  // forms ("LOAD foo path=/x") behave like every other verb's resolution.
  const std::string name =
      !cmd.args.empty() ? cmd.args[0] : OptString(cmd, "name", "");
  const std::string path =
      cmd.args.size() >= 2 ? cmd.args[1] : OptString(cmd, "path", "");
  if (name.empty() || path.empty()) {
    return Status::InvalidArgument(
        "LOAD needs <name> <path> (or name=<n> path=<p>)");
  }
  ONEX_RETURN_IF_ERROR(engine->LoadUcrFile(name, path));
  json::Value v = Ok();
  v.Set("dataset", name);
  return v;
}

// --- Replication verbs (DESIGN.md §16) -------------------------------------

Result<std::uint64_t> ParseHex64(const std::string& text) {
  if (text.empty() || text.size() > 16) {
    return Status::InvalidArgument("crc must be 1..16 hex digits");
  }
  std::uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return Status::InvalidArgument("crc must be hexadecimal");
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

Result<std::string> ReplDatasetArg(const Command& cmd) {
  const auto it = cmd.options.find("dataset");
  if (it == cmd.options.end() || it->second.empty()) {
    return Status::InvalidArgument(cmd.verb + " needs dataset=<name>");
  }
  return it->second;
}

Result<json::Value> DoReplHello(Engine* engine, const Command& cmd) {
  ONEX_ASSIGN_OR_RETURN(std::string name, ReplDatasetArg(cmd));
  json::Value v = Ok();
  v.Set("dataset", name);
  Result<SlotDurability> d = engine->registry().Durability(name);
  if (!d.ok()) {
    if (d.status().code() != StatusCode::kNotFound) return d.status();
    // Unknown slot: the replica starts from the log's beginning.
    v.Set("last_seq", 0);
    return v;
  }
  if (!d->durable) {
    return Status::FailedPrecondition(
        "dataset '" + name +
        "' has no journal here; replication needs a durable registry");
  }
  v.Set("last_seq", d->last_seq);
  return v;
}

Result<json::Value> DoReplApply(Engine* engine, const Command& cmd) {
  if (cmd.blob.empty()) {
    return Status::InvalidArgument(
        "REPLAPPLY carries WAL lines after the command line and is only "
        "meaningful over the binary frame");
  }
  ONEX_ASSIGN_OR_RETURN(std::string name, ReplDatasetArg(cmd));
  ONEX_ASSIGN_OR_RETURN(long long first, OptInt(cmd, "first", 0));
  ONEX_ASSIGN_OR_RETURN(long long count, OptInt(cmd, "count", 0));
  if (first < 1 || count < 1) {
    return Status::InvalidArgument("REPLAPPLY needs first=>=1 and count=>=1");
  }
  ONEX_ASSIGN_OR_RETURN(std::uint64_t crc,
                        ParseHex64(OptString(cmd, "crc", "")));
  ONEX_ASSIGN_OR_RETURN(
      std::vector<WalRecord> records,
      DecodeWalBatchBlob(cmd.blob, crc, static_cast<std::uint64_t>(first),
                         static_cast<std::uint64_t>(count)));
  for (const WalRecord& record : records) {
    ONEX_RETURN_IF_ERROR(engine->registry().ApplyReplicated(name, record));
  }
  ONEX_ASSIGN_OR_RETURN(SlotDurability d, engine->registry().Durability(name));
  json::Value v = Ok();
  v.Set("dataset", name);
  v.Set("applied", records.size());
  v.Set("last_seq", d.last_seq);
  return v;
}

Result<json::Value> DoReplStatus(Engine* engine) {
  json::Value v = Ok();
  json::Value floors = json::Value::MakeObject();
  for (const std::string& name : engine->ListDatasets()) {
    Result<SlotDurability> d = engine->registry().Durability(name);
    if (d.ok() && d->durable) floors.Set(name, d->last_seq);
  }
  v.Set("datasets", std::move(floors));
  return v;
}

Result<json::Value> Dispatch(Engine* engine, Session* session,
                             const Command& cmd, const ExecContext& ctx) {
  if (cmd.verb == "PING") {
    json::Value v = Ok();
    v.Set("pong", true);
    return v;
  }
  if (cmd.verb == "LIST") {
    json::Value v = Ok();
    json::Value arr = json::Value::MakeArray();
    for (const std::string& name : engine->ListDatasets()) {
      arr.Append(json::Value(name));
    }
    v.Set("datasets", std::move(arr));
    return v;
  }
  if (cmd.verb == "DATASETS") return DoDatasets(engine);
  if (cmd.verb == "USE") return DoUse(engine, session, cmd);
  if (cmd.verb == "BUDGET") return DoBudget(engine, cmd);
  if (cmd.verb == "TIER") return DoTier(engine, *session, cmd);
  if (cmd.verb == "GEN") return DoGen(engine, cmd);
  if (cmd.verb == "LOAD") return DoLoad(engine, cmd);
  if (cmd.verb == "DROP") {
    ONEX_ASSIGN_OR_RETURN(std::string name, ExplicitNameArg(cmd));
    ONEX_RETURN_IF_ERROR(engine->DropDataset(name));
    if (session->dataset == name) session->dataset.clear();
    return Ok();
  }
  if (cmd.verb == "PREPARE") return DoPrepare(engine, *session, cmd);
  if (cmd.verb == "APPEND") return DoAppend(engine, *session, cmd);
  if (cmd.verb == "EXTEND") return DoExtend(engine, *session, cmd);
  if (cmd.verb == "DRIFT") return DoDrift(engine, *session, cmd);
  if (cmd.verb == "SAVEBASE") {
    ONEX_RETURN_IF_ERROR(NeedArgs(cmd, 2));
    ONEX_RETURN_IF_ERROR(engine->SavePrepared(cmd.args[0], cmd.args[1]));
    json::Value v = Ok();
    v.Set("path", cmd.args[1]);
    return v;
  }
  if (cmd.verb == "LOADBASE") {
    ONEX_RETURN_IF_ERROR(NeedArgs(cmd, 2));
    ONEX_RETURN_IF_ERROR(engine->LoadPrepared(cmd.args[0], cmd.args[1]));
    json::Value v = Ok();
    v.Set("dataset", cmd.args[0]);
    return v;
  }
  if (cmd.verb == "PERSIST") return DoPersist(engine, cmd);
  if (cmd.verb == "CHECKPOINT") return DoCheckpoint(engine, *session, cmd);
  if (cmd.verb == "CATALOG") {
    ONEX_ASSIGN_OR_RETURN(std::string name, DatasetArg(cmd, *session));
    ONEX_ASSIGN_OR_RETURN(long long points, OptInt(cmd, "points", 24));
    if (points < 1 || points > kMaxCatalogPoints) {
      return Status::InvalidArgument(
          StrFormat("points must be in [1, %lld]", kMaxCatalogPoints));
    }
    ONEX_ASSIGN_OR_RETURN(
        std::vector<Engine::CatalogEntry> entries,
        engine->Catalog(name, static_cast<std::size_t>(points)));
    json::Value v = Ok();
    json::Value arr = json::Value::MakeArray();
    for (const Engine::CatalogEntry& e : entries) {
      json::Value row = json::Value::MakeObject();
      row.Set("name", e.series_name);
      row.Set("label", e.label);
      row.Set("length", e.length);
      row.Set("preview", json::Value::NumberArray(e.preview));
      arr.Append(std::move(row));
    }
    v.Set("series", std::move(arr));
    return v;
  }
  if (cmd.verb == "STATS") return DoStats(engine, *session, cmd);
  if (cmd.verb == "OVERVIEW") return DoOverview(engine, *session, cmd);
  if (cmd.verb == "MATCH") {
    return DoMatch(engine, *session, cmd, /*knn=*/false, ctx);
  }
  if (cmd.verb == "KNN") {
    return DoMatch(engine, *session, cmd, /*knn=*/true, ctx);
  }
  if (cmd.verb == "BATCH") return DoBatch(engine, *session, cmd, ctx);
  if (cmd.verb == "SEASONAL") return DoSeasonal(engine, *session, cmd);
  if (cmd.verb == "THRESHOLD") return DoThreshold(engine, *session, cmd);
  if (cmd.verb == "ANOMALY") return DoAnomaly(engine, *session, cmd, ctx);
  if (cmd.verb == "CHANGEPOINT") {
    return DoChangepoint(engine, *session, cmd, ctx);
  }
  if (cmd.verb == "MOTIF") return DoMotif(engine, *session, cmd, ctx);
  if (cmd.verb == "FORECAST") return DoForecast(engine, *session, cmd, ctx);
  if (cmd.verb == "QUIT") {
    json::Value v = Ok();
    v.Set("bye", true);
    return v;
  }
  if (cmd.verb == "REPLHELLO") return DoReplHello(engine, cmd);
  if (cmd.verb == "REPLAPPLY") return DoReplApply(engine, cmd);
  if (cmd.verb == "REPLSTATUS") return DoReplStatus(engine);
  if (cmd.verb == "CLUSTER") {
    // Single-node answer; a cluster coordinator intercepts this verb in
    // ExecuteCommand before Dispatch ever sees it.
    json::Value v = Ok();
    v.Set("enabled", false);
    return v;
  }
  return Status::InvalidArgument("unknown command: '" + cmd.verb + "'");
}

}  // namespace

Result<Command> ParseCommandLine(const std::string& line) {
  const std::vector<std::string> tokens = SplitString(TrimString(line));
  if (tokens.empty()) {
    return Status::ParseError("empty command line");
  }
  Command cmd;
  cmd.verb = tokens[0];
  std::transform(cmd.verb.begin(), cmd.verb.end(), cmd.verb.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      cmd.args.push_back(tokens[i]);
    } else {
      cmd.options[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
  }
  return cmd;
}

json::Value ErrorResponse(const Status& status) {
  json::Value v = json::Value::MakeObject();
  v.Set("ok", false);
  v.Set("error", status.message());
  v.Set("code", StatusCodeToString(status.code()));
  return v;
}

json::Value ExecuteCommand(Engine* engine, Session* session,
                           const Command& command, const ExecContext& context) {
  if (context.cluster != nullptr) {
    // Cluster mode: the coordinator routes the command — forwarding it to
    // the owning shard or re-entering this executor with cluster cleared.
    return context.cluster->Execute(engine, session, command, context);
  }
  Result<json::Value> result = Dispatch(engine, session, command, context);
  if (!result.ok()) return ErrorResponse(result.status());
  return std::move(result).value();
}

json::Value ExecuteCommand(Engine* engine, Session* session,
                           const Command& command) {
  return ExecuteCommand(engine, session, command, ExecContext{});
}

json::Value ExecuteCommand(Engine* engine, const Command& command) {
  Session session;
  return ExecuteCommand(engine, &session, command);
}

std::string FormatResponse(const json::Value& response) {
  return response.Dump() + "\n";
}

}  // namespace onex::net
