#ifndef ONEX_NET_SERVER_H_
#define ONEX_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "onex/common/result.h"
#include "onex/engine/engine.h"
#include "onex/net/socket.h"

namespace onex::net {

/// The ONEX analytics server: accepts loopback TCP clients, runs the line
/// protocol against a shared Engine, one thread per connection. This is the
/// substitute for the demo's web server tier (DESIGN.md §3): the engine
/// provides "near real-time responsiveness to the analyst exploring the
/// data via a client-server architecture".
///
/// Connection threads only shuttle lines; the compute for every session —
/// parallel queries, BATCH fan-out, threaded PREPAREs — multiplexes over
/// the shared engine's one task pool (DESIGN.md §6), so N dashboards cannot
/// oversubscribe the machine with N private thread herds.
class OnexServer {
 public:
  /// The engine must outlive the server. Does not take ownership: several
  /// servers (or in-process callers) may share one engine.
  explicit OnexServer(Engine* engine) : engine_(engine) {}
  ~OnexServer() { Stop(); }

  OnexServer(const OnexServer&) = delete;
  OnexServer& operator=(const OnexServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  Status Start(std::uint16_t port = 0);

  /// Bound port, valid after Start().
  std::uint16_t port() const { return listener_.port(); }

  bool running() const { return running_.load(); }

  /// Stops accepting, closes live connections, joins every thread. Safe to
  /// call twice.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Socket> socket);

  Engine* engine_;
  ServerSocket listener_;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  std::mutex mutex_;
  std::vector<std::thread> workers_;
  std::vector<std::weak_ptr<Socket>> live_sockets_;
};

}  // namespace onex::net

#endif  // ONEX_NET_SERVER_H_
