#include "onex/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string>
#include <string_view>
#include <sys/socket.h>
#include <unistd.h>

#include "onex/common/string_utils.h"

namespace onex::net {
namespace {

Status Errno(const char* what) {
  return Status::IoError(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

Status WriteAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

void SetTcpNoDelay(int fd) {
  // Best-effort: a socket that rejects the option (already closing, not
  // TCP) still works, just with Nagle latency.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

Status Socket::SendAll(std::string_view data) {
  if (!valid()) return Status::IoError("send on closed socket");
  return WriteAll(fd_, data);
}

void Socket::Shutdown() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::string> LineReader::ReadLine() {
  while (true) {
    const std::size_t pos = buffer_.find('\n', scanned_);
    if (pos != std::string::npos) {
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      scanned_ = 0;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    scanned_ = buffer_.size();
    if (eof_) {
      return Status::IoError("connection closed");
    }
    if (buffer_.size() > max_line_bytes_) {
      // A peer streaming bytes with no newline must not grow the buffer
      // without bound (see the anti-allocation contract in protocol.h).
      return Status::IoError(StrFormat(
          "line exceeds %zu bytes with no terminator", max_line_bytes_));
    }
    char chunk[4096];
    const ssize_t n = ::recv(socket_->fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      // An unterminated trailing fragment is deliberately discarded rather
      // than returned: a command protocol must not execute what may be a
      // truncated frame.
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<Socket> ConnectTcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect");
  }
  SetTcpNoDelay(fd);
  return sock;
}

Result<ServerSocket> ServerSocket::Listen(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  ServerSocket server;
  server.fd_ = fd;

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd, backlog) != 0) {
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  server.port_ = ntohs(addr.sin_port);
  return server;
}

Result<Socket> ServerSocket::Accept() {
  const int listener = fd_.load();
  if (listener < 0) return Status::IoError("accept on closed listener");
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd >= 0) {
      SetTcpNoDelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void ServerSocket::Shutdown() {
  const int fd = fd_.load();
  // shutdown() on a listening socket unblocks a parked accept() (EINVAL on
  // Linux) and fails later ones, while the fd number stays ours.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void ServerSocket::Close() {
  // Exchange claims the fd exactly once, so double-closes are harmless.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace onex::net
