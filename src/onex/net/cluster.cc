#include "onex/net/cluster.h"

#include <algorithm>
#include <set>
#include <utility>

#include "onex/common/string_utils.h"
#include "onex/engine/wal.h"
#include "onex/net/cluster_merge.h"

namespace onex::net {
namespace {

/// Mutators that reach the registry journal: the coordinator pins them to
/// the owner, never auto-retries them, and (on the owner) holds the
/// response until every live replica acked the append.
bool IsReplicatedMutator(const std::string& verb) {
  return verb == "GEN" || verb == "LOAD" || verb == "PREPARE" ||
         verb == "APPEND" || verb == "EXTEND";
}

/// Verbs the coordinator routes by dataset. Everything else either runs
/// locally, scatters, or is blocked in cluster mode.
bool IsDatasetScoped(const std::string& verb) {
  return IsReplicatedMutator(verb) || verb == "USE" || verb == "DRIFT" ||
         verb == "STATS" || verb == "CATALOG" || verb == "OVERVIEW" ||
         verb == "MATCH" || verb == "KNN" || verb == "BATCH" ||
         verb == "SEASONAL" || verb == "THRESHOLD" || verb == "ANOMALY" ||
         verb == "CHANGEPOINT" || verb == "MOTIF" || verb == "FORECAST";
}

/// Node-local durability and lifecycle controls make no sense through a
/// coordinator: a checkpoint would truncate the WAL replicas catch up from,
/// and a DROP on one shard could not be undone on its replicas.
bool IsBlockedInCluster(const std::string& verb) {
  return verb == "PERSIST" || verb == "CHECKPOINT" || verb == "BUDGET" ||
         verb == "DROP" || verb == "SAVEBASE" || verb == "LOADBASE" ||
         verb == "TIER";
}

/// Verbs that must answer from this node even in cluster mode.
bool IsAlwaysLocal(const std::string& verb) {
  return verb == "PING" || verb == "QUIT" || verb == "REPLHELLO" ||
         verb == "REPLAPPLY" || verb == "REPLSTATUS";
}

/// Mirror of the executor's per-verb dataset resolution (protocol.cc), so
/// the coordinator routes exactly the dataset the owner will act on. A
/// resolution failure is not an error here — the command runs locally and
/// the executor produces its canonical message.
Result<std::string> RouteDataset(const Command& cmd, const Session& session) {
  if (cmd.verb == "GEN") {
    if (cmd.args.empty()) return Status::InvalidArgument("unroutable");
    return cmd.args[0];
  }
  if (cmd.verb == "LOAD") {
    if (!cmd.args.empty()) return cmd.args[0];
    const auto it = cmd.options.find("name");
    if (it != cmd.options.end() && !it->second.empty()) return it->second;
    return Status::InvalidArgument("unroutable");
  }
  if (cmd.verb == "USE") {
    if (!cmd.args.empty()) return cmd.args[0];
    for (const char* key : {"name", "dataset"}) {
      const auto it = cmd.options.find(key);
      if (it != cmd.options.end()) return it->second;
    }
    return Status::InvalidArgument("unroutable");
  }
  if (!cmd.args.empty()) return cmd.args[0];
  const auto it = cmd.options.find("dataset");
  if (it != cmd.options.end()) return it->second;
  if (!session.dataset.empty()) return session.dataset;
  return Status::InvalidArgument("unroutable");
}

/// Re-serializes a command for the owning shard: same verb, args and
/// options, plus the resolved dataset (the shard session is fresh) and the
/// fwd=1 pin that stops the shard from routing it onward.
WireRequest BuildForward(const Command& cmd, const std::string& dataset) {
  std::string line = cmd.verb;
  for (const std::string& arg : cmd.args) line += " " + arg;
  for (const auto& [key, value] : cmd.options) {
    if (key == "fwd") continue;
    line += " " + key + "=" + value;
  }
  line += " dataset=" + dataset + " fwd=1";
  WireRequest req;
  req.command = std::move(line);
  req.values = cmd.payload;
  return req;
}

/// Single-dataset shard query for the datasets= fan-out. MATCH becomes
/// KNN k=1 on the shard — the same reduction DoMatchMulti applies — so the
/// coordinator merge sees uniform k-lists.
WireRequest BuildShardQuery(const Command& cmd, const std::string& dataset) {
  const bool match = cmd.verb == "MATCH";
  std::string line = cmd.verb == "BATCH" ? "BATCH" : "KNN";
  for (const auto& [key, value] : cmd.options) {
    if (key == "datasets" || key == "dataset" || key == "fwd") continue;
    if (match && key == "k") continue;  // MATCH ignores k; the shard must too.
    line += " " + key + "=" + value;
  }
  if (match) line += " k=1";
  line += " dataset=" + dataset + " fwd=1";
  WireRequest req;
  req.command = std::move(line);
  req.values = cmd.payload;
  return req;
}

/// Cuts the next match's values out of a shard response's float64 section.
std::vector<double> SliceValues(const std::vector<double>& values,
                                std::size_t* cursor, std::size_t length) {
  const std::size_t begin = std::min(*cursor, values.size());
  const std::size_t end = std::min(begin + length, values.size());
  *cursor = end;
  return std::vector<double>(values.begin() + static_cast<std::ptrdiff_t>(begin),
                             values.begin() + static_cast<std::ptrdiff_t>(end));
}

json::Value Ok() {
  json::Value v = json::Value::MakeObject();
  v.Set("ok", true);
  return v;
}

/// Allocation caps shared with protocol.cc (the single-node executor keeps
/// its own copies in an anonymous namespace; the values must match so the
/// coordinator's combined-volume error is byte-identical to the oracle's).
constexpr long long kMaxKnnK = 100'000;
constexpr std::size_t kMaxBatchSpecs = 1024;

Result<std::pair<std::string, std::uint16_t>> SplitHostPort(
    const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return Status::InvalidArgument("cluster node must be host:port, got '" +
                                   endpoint + "'");
  }
  ONEX_ASSIGN_OR_RETURN(long long port, ParseInt(endpoint.substr(colon + 1)));
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("cluster node port out of range in '" +
                                   endpoint + "'");
  }
  return std::make_pair(endpoint.substr(0, colon),
                        static_cast<std::uint16_t>(port));
}

}  // namespace

ClusterNode::ClusterNode(Engine* engine, Options options)
    : engine_(engine),
      options_(std::move(options)),
      alive_(options_.nodes.size(), true),
      pools_(options_.nodes.size()) {}

ClusterNode::~ClusterNode() { Stop(); }

Status ClusterNode::Start() {
  if (options_.nodes.empty() || options_.self >= options_.nodes.size()) {
    return Status::InvalidArgument(
        "cluster needs a node list containing this node's own index");
  }
  for (const std::string& endpoint : options_.nodes) {
    ONEX_RETURN_IF_ERROR(SplitHostPort(endpoint).status());
  }
  ReplicationHub::Options hub;
  for (std::size_t i = 0; i < options_.nodes.size(); ++i) {
    if (i != options_.self) hub.peers.push_back(options_.nodes[i]);
  }
  hub.ack_timeout = options_.ack_timeout;
  hub_ = std::make_unique<ReplicationHub>(engine_, hub);
  hub_->Start();
  return Status::OK();
}

void ClusterNode::Stop() {
  if (hub_ != nullptr) hub_->Stop();
  std::lock_guard<std::mutex> lock(pool_mutex_);
  for (auto& pool : pools_) pool.clear();
}

std::uint64_t ClusterNode::HrwWeight(const std::string& dataset,
                                     std::size_t node_index) {
  return Fnv1a64(dataset + "#" + std::to_string(node_index));
}

std::size_t ClusterNode::OwnerOf(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return OwnerOfLocked(dataset);
}

std::size_t ClusterNode::OwnerOfLocked(const std::string& dataset) const {
  const auto it = overrides_.find(dataset);
  if (it != overrides_.end() && alive_[it->second]) return it->second;
  std::size_t best = kNoNode;
  std::uint64_t best_weight = 0;
  for (std::size_t i = 0; i < options_.nodes.size(); ++i) {
    if (!alive_[i]) continue;
    const std::uint64_t w = HrwWeight(dataset, i);
    // Strict > keeps the lowest index on a (vanishingly unlikely) weight tie.
    if (best == kNoNode || w > best_weight) {
      best = i;
      best_weight = w;
    }
  }
  return best;
}

bool ClusterNode::IsAlive(std::size_t node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return node < alive_.size() && alive_[node];
}

Result<std::unique_ptr<OnexClient>> ClusterNode::Acquire(std::size_t node) {
  if (!IsAlive(node)) {
    return Status::IoError("node " + options_.nodes[node] + " is down");
  }
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pools_[node].empty()) {
      std::unique_ptr<OnexClient> client = std::move(pools_[node].back());
      pools_[node].pop_back();
      return client;
    }
  }
  ONEX_ASSIGN_OR_RETURN(auto endpoint, SplitHostPort(options_.nodes[node]));
  ONEX_ASSIGN_OR_RETURN(OnexClient client,
                        OnexClient::Connect(endpoint.first, endpoint.second));
  ONEX_RETURN_IF_ERROR(client.UpgradeBinary());
  return std::unique_ptr<OnexClient>(new OnexClient(std::move(client)));
}

void ClusterNode::Release(std::size_t node, std::unique_ptr<OnexClient> client) {
  if (!IsAlive(node)) return;  // Dropping the client closes the socket.
  std::lock_guard<std::mutex> lock(pool_mutex_);
  pools_[node].push_back(std::move(client));
}

Result<WireResponse> ClusterNode::CallNode(std::size_t node,
                                           const WireRequest& request) {
  ONEX_ASSIGN_OR_RETURN(std::unique_ptr<OnexClient> client, Acquire(node));
  Result<WireResponse> response = client->CallWire(request);
  // A failed connection's stream position is ambiguous; never pool it.
  if (response.ok()) Release(node, std::move(client));
  return response;
}

void ClusterNode::HandleNodeFailure(std::size_t node) {
  if (node >= options_.nodes.size() || node == options_.self) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!alive_[node]) return;  // Another caller already promoted around it.
    alive_[node] = false;
  }
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pools_[node].clear();
  }

  // Promotion sweep: with full replication every survivor holds a copy of
  // every dataset, so re-owning is a pure election — per dataset, the live
  // node with the longest acked journal wins (it is bit-identical to the
  // lost primary at that floor); ties break by HRW weight then index so
  // every coordinator elects the same node.
  std::lock_guard<std::mutex> sweep(promotion_mutex_);
  std::vector<bool> alive_now;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    alive_now = alive_;
  }
  const auto mark_dead = [&](std::size_t j) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      alive_[j] = false;
    }
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      pools_[j].clear();
    }
    alive_now[j] = false;
  };

  std::map<std::string, std::map<std::size_t, std::uint64_t>> floors;
  for (const std::string& name : engine_->ListDatasets()) {
    const Result<SlotDurability> d = engine_->registry().Durability(name);
    if (d.ok() && d->durable) floors[name][options_.self] = d->last_seq;
  }
  WireRequest status_req;
  status_req.command = "REPLSTATUS";
  for (std::size_t j = 0; j < options_.nodes.size(); ++j) {
    if (j == options_.self || !alive_now[j]) continue;
    const Result<WireResponse> r = CallNode(j, status_req);
    if (!r.ok() || !r->body["ok"].as_bool()) {
      // A peer failing mid-sweep just drops out of this election; its own
      // datasets get re-elected when a later request trips over it.
      mark_dead(j);
      continue;
    }
    for (const auto& [name, floor] : r->body["datasets"].as_object()) {
      floors[name][j] = static_cast<std::uint64_t>(floor.as_number());
    }
  }

  std::map<std::string, std::size_t> elected;
  for (const auto& [name, per_node] : floors) {
    std::size_t best = kNoNode;
    std::uint64_t best_floor = 0;
    for (const auto& [candidate, floor] : per_node) {
      if (!alive_now[candidate]) continue;
      if (best == kNoNode || floor > best_floor) {
        best = candidate;
        best_floor = floor;
      } else if (floor == best_floor) {
        const std::uint64_t wb = HrwWeight(name, best);
        const std::uint64_t wc = HrwWeight(name, candidate);
        if (wc > wb || (wc == wb && candidate < best)) best = candidate;
      }
    }
    if (best == kNoNode) continue;
    // Only a winner that differs from the hash's pick needs recording; the
    // rest is what OwnerOf computes anyway.
    std::size_t hrw = kNoNode;
    std::uint64_t hrw_weight = 0;
    for (std::size_t i = 0; i < options_.nodes.size(); ++i) {
      if (!alive_now[i]) continue;
      const std::uint64_t w = HrwWeight(name, i);
      if (hrw == kNoNode || w > hrw_weight) {
        hrw = i;
        hrw_weight = w;
      }
    }
    if (best != hrw) elected[name] = best;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  overrides_ = std::move(elected);
}

json::Value ClusterNode::ExecuteLocal(Engine* engine, Session* session,
                                      const Command& cmd,
                                      const ExecContext& ctx) {
  ExecContext local = ctx;
  local.cluster = nullptr;
  json::Value body = ExecuteCommand(engine, session, cmd, local);
  if (hub_ != nullptr && IsReplicatedMutator(cmd.verb) &&
      body["ok"].as_bool()) {
    // Sync replication: the ack floor this write reaches before we answer
    // is exactly what promotion relies on — an acked write exists, bit for
    // bit, on every live peer.
    const Result<std::string> dataset = RouteDataset(cmd, *session);
    if (dataset.ok()) {
      const Result<SlotDurability> d = engine->registry().Durability(*dataset);
      if (d.ok() && d->durable && d->last_seq > 0) {
        hub_->AwaitReplication(*dataset, d->last_seq);
      }
    }
  }
  return body;
}

WireResponse ClusterNode::ExecuteLocalWire(Engine* engine,
                                           const WireRequest& request,
                                           const ExecContext& ctx) {
  WireResponse out;
  Result<Command> parsed = ParseCommandLine(request.command);
  if (!parsed.ok()) {
    out.body = ErrorResponse(parsed.status());
    return out;
  }
  Command cmd = std::move(parsed).value();
  if (cmd.payload.empty()) cmd.payload = request.values;
  ExecContext local = ctx;
  local.cluster = nullptr;
  local.out_values = &out.values;
  Session scratch;  // Shard-side requests always carry dataset= explicitly.
  out.body = ExecuteLocal(engine, &scratch, cmd, local);
  return out;
}

json::Value ClusterNode::RouteSingle(Engine* engine, Session* session,
                                     const std::string& dataset,
                                     const Command& cmd,
                                     const ExecContext& ctx) {
  const bool mutator = IsReplicatedMutator(cmd.verb);
  for (std::size_t attempt = 0; attempt <= options_.nodes.size(); ++attempt) {
    const std::size_t owner = OwnerOf(dataset);
    if (owner == kNoNode) {
      return ErrorResponse(Status::IoError("no live node owns dataset '" +
                                           dataset + "'"));
    }
    if (owner == options_.self) return ExecuteLocal(engine, session, cmd, ctx);
    const Result<WireResponse> response =
        CallNode(owner, BuildForward(cmd, dataset));
    if (response.ok()) {
      if (ctx.out_values != nullptr) {
        ctx.out_values->insert(ctx.out_values->end(), response->values.begin(),
                               response->values.end());
      }
      return response->body;
    }
    HandleNodeFailure(owner);
    if (mutator) {
      // The owner died with the write in flight: it may or may not have
      // journaled (and replicated) it. Surfacing that is the only honest
      // answer — a blind retry could double-apply an APPEND.
      return ErrorResponse(Status::IoError(
          "node " + options_.nodes[owner] + " failed while executing " +
          cmd.verb + " on '" + dataset +
          "'; the write may or may not have applied — verify before retrying"));
    }
    // Idempotent read: loop again against whoever the election promoted.
  }
  return ErrorResponse(Status::IoError("no live node could answer " +
                                       cmd.verb + " for dataset '" + dataset +
                                       "'"));
}

Result<std::vector<WireResponse>> ClusterNode::ScatterPerDataset(
    Engine* engine, const std::vector<std::string>& names,
    const std::vector<WireRequest>& requests, const ExecContext& ctx) {
  std::vector<WireResponse> results(names.size());
  std::vector<bool> done(names.size(), false);
  for (std::size_t round = 0; round <= options_.nodes.size(); ++round) {
    std::map<std::size_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (done[i]) continue;
      const std::size_t owner = OwnerOf(names[i]);
      if (owner == kNoNode) {
        return Status::IoError("no live node owns dataset '" + names[i] + "'");
      }
      groups[owner].push_back(i);
    }
    if (groups.empty()) return results;

    for (const auto& [owner, indices] : groups) {
      if (owner == options_.self) {
        for (const std::size_t i : indices) {
          results[i] = ExecuteLocalWire(engine, requests[i], ctx);
          done[i] = true;
        }
        continue;
      }
      std::vector<WireRequest> batch;
      batch.reserve(indices.size());
      for (const std::size_t i : indices) batch.push_back(requests[i]);
      Result<std::unique_ptr<OnexClient>> client = Acquire(owner);
      if (!client.ok()) {
        HandleNodeFailure(owner);
        continue;  // Next round re-groups these datasets under the winner.
      }
      SendManyOutcome outcome = (*client)->SendManyTracked(batch);
      // Keep every answer that completed before any failure — the per-id
      // completion map is what confines a mid-stream crash to re-asking
      // only the unacknowledged requests.
      for (std::size_t j = 0; j < indices.size(); ++j) {
        if (j < outcome.completed.size() && outcome.completed[j]) {
          results[indices[j]] = std::move(outcome.responses[j]);
          done[indices[j]] = true;
        }
      }
      if (outcome.status.ok()) {
        Release(owner, std::move(client).value());
      } else {
        HandleNodeFailure(owner);
      }
    }
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!done[i]) {
      return Status::IoError("no live node could answer for dataset '" +
                             names[i] + "'");
    }
  }
  return results;
}

json::Value ClusterNode::ScatterMulti(Engine* engine, const Command& cmd,
                                      const ExecContext& ctx) {
  const bool batch = cmd.verb == "BATCH";
  const bool knn = cmd.verb == "KNN";
  Result<std::vector<std::string>> parsed =
      ParseDatasetsOption(cmd.options.at("datasets"));
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const std::vector<std::string> names = std::move(parsed).value();

  // k as the merge truncates it. An unparseable or out-of-range k is left
  // to the shards, whose rejection (identical to the single-node message)
  // comes back as the first per-dataset error below.
  long long k = 1;
  bool k_known = true;
  if (!cmd.options.count("k") || cmd.verb == "MATCH") {
    k = batch ? 1 : (knn ? 3 : 1);
  } else {
    const Result<long long> kr = ParseInt(cmd.options.at("k"));
    if (kr.ok() && *kr >= 1 && *kr <= kMaxKnnK) {
      k = *kr;
    } else {
      k_known = false;
    }
  }
  if (batch && k_known) {
    const auto qit = cmd.options.find("q");
    const std::size_t specs =
        qit == cmd.options.end()
            ? 0
            : SplitKeepEmpty(qit->second, ';').size();
    // The shards each enforce specs x k; only the coordinator sees the
    // full specs x datasets x k volume, mirroring DoBatchMulti's cap.
    if (specs > 0 && specs <= kMaxBatchSpecs &&
        static_cast<long long>(specs * names.size()) * k > kMaxKnnK) {
      return ErrorResponse(Status::InvalidArgument(StrFormat(
          "BATCH result volume (queries x datasets x k) is capped at %lld",
          kMaxKnnK)));
    }
  }

  std::vector<WireRequest> requests;
  requests.reserve(names.size());
  for (const std::string& name : names) {
    requests.push_back(BuildShardQuery(cmd, name));
  }
  Result<std::vector<WireResponse>> scattered =
      ScatterPerDataset(engine, names, requests, ctx);
  if (!scattered.ok()) return ErrorResponse(scattered.status());
  const std::vector<WireResponse>& responses = *scattered;

  // A shard-side rejection wins in user dataset order, exactly where the
  // single-node loop would have stopped.
  for (const WireResponse& r : responses) {
    if (!r.body["ok"].as_bool()) return r.body;
  }
  const std::size_t top_k = static_cast<std::size_t>(k < 1 ? 1 : k);

  if (!batch) {
    std::vector<ShardMatch> cands;
    json::Value stats = json::Value::MakeObject();
    bool any_stats = false;
    for (std::size_t i = 0; i < names.size(); ++i) {
      const json::Value& body = responses[i].body;
      std::size_t cursor = 0;
      for (const json::Value& m : body["matches"].as_array()) {
        ShardMatch c;
        c.dataset = names[i];
        c.match = m;
        c.match.Set("dataset", names[i]);
        c.values = SliceValues(responses[i].values, &cursor,
                               static_cast<std::size_t>(m["length"].as_number()));
        cands.push_back(std::move(c));
      }
      if (!body["matches"].as_array().empty()) {
        AccumulateStats(&stats, body["stats"]);
        any_stats = true;
      }
    }
    MergeTopK(&cands, top_k);

    json::Value v = Ok();
    if (knn) {
      json::Value arr = json::Value::MakeArray();
      for (const ShardMatch& c : cands) {
        arr.Append(c.match);
        if (ctx.out_values != nullptr) {
          ctx.out_values->insert(ctx.out_values->end(), c.values.begin(),
                                 c.values.end());
        }
      }
      v.Set("matches", std::move(arr));
      if (any_stats) v.Set("stats", std::move(stats));
    } else {
      if (cands.empty()) {
        return ErrorResponse(
            Status::NotFound("no match in any of the named datasets"));
      }
      v.Set("match", cands.front().match);
      v.Set("stats", std::move(stats));
      if (ctx.out_values != nullptr) {
        ctx.out_values->insert(ctx.out_values->end(),
                               cands.front().values.begin(),
                               cands.front().values.end());
      }
    }
    return v;
  }

  // BATCH: per-query merge across datasets, in user dataset order.
  struct ShardEntry {
    std::vector<ShardMatch> cands;
    json::Value stats;
    bool has_stats = false;
  };
  std::vector<std::vector<ShardEntry>> per_dataset(names.size());
  std::size_t num_queries = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const json::Value& body = responses[i].body;
    std::size_t cursor = 0;
    for (const json::Value& entry : body["results"].as_array()) {
      ShardEntry e;
      for (const json::Value& m : entry["matches"].as_array()) {
        ShardMatch c;
        c.dataset = names[i];
        c.match = m;
        c.match.Set("dataset", names[i]);
        c.values = SliceValues(responses[i].values, &cursor,
                               static_cast<std::size_t>(m["length"].as_number()));
        e.cands.push_back(std::move(c));
      }
      if (!e.cands.empty()) {
        e.stats = entry["stats"];
        e.has_stats = true;
      }
      per_dataset[i].push_back(std::move(e));
    }
    num_queries = std::max(num_queries, per_dataset[i].size());
  }

  json::Value v = Ok();
  json::Value results = json::Value::MakeArray();
  for (std::size_t qi = 0; qi < num_queries; ++qi) {
    std::vector<ShardMatch> cands;
    json::Value stats = json::Value::MakeObject();
    bool any_stats = false;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (qi >= per_dataset[i].size()) continue;
      ShardEntry& e = per_dataset[i][qi];
      for (ShardMatch& c : e.cands) cands.push_back(std::move(c));
      if (e.has_stats) {
        AccumulateStats(&stats, e.stats);
        any_stats = true;
      }
    }
    MergeTopK(&cands, top_k);
    json::Value entry = json::Value::MakeObject();
    json::Value arr = json::Value::MakeArray();
    for (const ShardMatch& c : cands) {
      arr.Append(c.match);
      if (ctx.out_values != nullptr) {
        ctx.out_values->insert(ctx.out_values->end(), c.values.begin(),
                               c.values.end());
      }
    }
    entry.Set("matches", std::move(arr));
    if (any_stats) entry.Set("stats", std::move(stats));
    results.Append(std::move(entry));
  }
  v.Set("results", std::move(results));
  return v;
}

json::Value ClusterNode::ScatterList(Engine* engine) {
  std::set<std::string> names;
  for (const std::string& name : engine->ListDatasets()) names.insert(name);
  WireRequest list_req;
  list_req.command = "LIST";
  for (std::size_t j = 0; j < options_.nodes.size(); ++j) {
    if (j == options_.self || !IsAlive(j)) continue;
    const Result<WireResponse> r = CallNode(j, list_req);
    if (!r.ok()) {
      HandleNodeFailure(j);
      continue;
    }
    if (!r->body["ok"].as_bool()) continue;
    for (const json::Value& name : r->body["datasets"].as_array()) {
      names.insert(name.as_string());
    }
  }
  json::Value v = Ok();
  json::Value arr = json::Value::MakeArray();
  for (const std::string& name : names) arr.Append(json::Value(name));
  v.Set("datasets", std::move(arr));
  return v;
}

json::Value ClusterNode::ScatterDatasets(Engine* engine) {
  Command cmd;
  cmd.verb = "DATASETS";
  Session scratch;
  ExecContext local;
  local.cluster = nullptr;
  const json::Value self_body = ExecuteCommand(engine, &scratch, cmd, local);

  // Row per dataset, taken from its owner when reachable (the owner's
  // prepared/evicted flags are the authoritative ones), else from whichever
  // replica answered.
  std::map<std::string, json::Value> rows;
  const auto absorb = [&](std::size_t node, const json::Value& body) {
    if (!body["ok"].as_bool()) return;
    for (const json::Value& row : body["datasets"].as_array()) {
      const std::string& name = row["name"].as_string();
      if (node == OwnerOf(name) || rows.count(name) == 0) rows[name] = row;
    }
  };
  absorb(options_.self, self_body);
  WireRequest req;
  req.command = "DATASETS";
  for (std::size_t j = 0; j < options_.nodes.size(); ++j) {
    if (j == options_.self || !IsAlive(j)) continue;
    const Result<WireResponse> r = CallNode(j, req);
    if (!r.ok()) {
      HandleNodeFailure(j);
      continue;
    }
    absorb(j, r->body);
  }

  json::Value v = self_body;  // Keeps the local budget/durability summary.
  json::Value arr = json::Value::MakeArray();
  for (auto& [name, row] : rows) arr.Append(std::move(row));
  v.Set("datasets", std::move(arr));
  return v;
}

json::Value ClusterNode::StatusReport(Engine* engine) {
  (void)engine;
  // Health probe: a dead node found here triggers the same promotion path a
  // failed forward would, which is how the fault harness forces detection
  // at a deterministic point instead of waiting for query traffic.
  WireRequest ping;
  ping.command = "PING";
  for (std::size_t j = 0; j < options_.nodes.size(); ++j) {
    if (j == options_.self || !IsAlive(j)) continue;
    const Result<WireResponse> r = CallNode(j, ping);
    if (!r.ok() || !r->body["ok"].as_bool()) HandleNodeFailure(j);
  }

  json::Value v = Ok();
  v.Set("enabled", true);
  v.Set("self", options_.self);
  json::Value nodes = json::Value::MakeArray();
  json::Value overrides = json::Value::MakeObject();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < options_.nodes.size(); ++i) {
      json::Value row = json::Value::MakeObject();
      row.Set("index", i);
      row.Set("endpoint", options_.nodes[i]);
      row.Set("alive", static_cast<bool>(alive_[i]));
      row.Set("self", i == options_.self);
      nodes.Append(std::move(row));
    }
    for (const auto& [name, node] : overrides_) overrides.Set(name, node);
  }
  v.Set("nodes", std::move(nodes));
  v.Set("overrides", std::move(overrides));
  v.Set("replication",
        hub_ != nullptr ? hub_->StatusJson() : json::Value::MakeArray());
  return v;
}

json::Value ClusterNode::Execute(Engine* engine, Session* session,
                                 const Command& cmd, const ExecContext& ctx) {
  // fwd=1 pins execution here: the sending coordinator already routed.
  if (cmd.options.count("fwd") != 0) {
    return ExecuteLocal(engine, session, cmd, ctx);
  }
  if (IsAlwaysLocal(cmd.verb)) return ExecuteLocal(engine, session, cmd, ctx);
  if (cmd.verb == "CLUSTER") return StatusReport(engine);
  if (IsBlockedInCluster(cmd.verb)) {
    return ErrorResponse(Status::FailedPrecondition(
        cmd.verb +
        " is node-local state and is disabled in cluster mode (durability is "
        "fixed at startup; checkpointing would truncate the replicated WAL)"));
  }
  if (cmd.verb == "LIST") return ScatterList(engine);
  if (cmd.verb == "DATASETS") return ScatterDatasets(engine);
  if ((cmd.verb == "MATCH" || cmd.verb == "KNN" || cmd.verb == "BATCH") &&
      cmd.options.count("datasets") != 0) {
    return ScatterMulti(engine, cmd, ctx);
  }
  if (IsDatasetScoped(cmd.verb)) {
    const Result<std::string> dataset = RouteDataset(cmd, *session);
    if (!dataset.ok()) {
      // Let the local executor produce its canonical resolution error.
      return ExecuteLocal(engine, session, cmd, ctx);
    }
    json::Value body = RouteSingle(engine, session, *dataset, cmd, ctx);
    // USE is validated on the owner; the session it changes is this one.
    if (cmd.verb == "USE" && body["ok"].as_bool()) session->dataset = *dataset;
    return body;
  }
  // Unknown verbs (and anything new) answer locally, same as single-node.
  return ExecuteLocal(engine, session, cmd, ctx);
}

}  // namespace onex::net
