#ifndef ONEX_NET_CLUSTER_H_
#define ONEX_NET_CLUSTER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "onex/common/result.h"
#include "onex/engine/engine.h"
#include "onex/json/json.h"
#include "onex/net/client.h"
#include "onex/net/protocol.h"
#include "onex/net/replication.h"

namespace onex::net {

/// Cluster coordinator (DESIGN.md §16). Every node runs one: datasets are
/// assigned to nodes by rendezvous (HRW) hashing, each node serves the
/// datasets it owns, forwards everything else to the owner over pooled
/// pipelined binary connections, and ships every local WAL append to every
/// peer through a ReplicationHub — full replication (R = N-1), so any
/// survivor holds a bit-identical copy of every acked write and can be
/// promoted.
///
/// Clients connect to ANY node with the unchanged text or ONEXB protocol;
/// the node they happen to reach is their coordinator. Forwarded commands
/// carry `fwd=1`, which pins execution to the receiving node — routing
/// decisions are made exactly once, by the coordinator that took the
/// request, so two nodes with divergent liveness views can never bounce a
/// command between each other.
///
/// Failure model: a node failure is detected by a transport error on a
/// forward (or a CLUSTER health probe). The failed node is marked dead for
/// good, its pooled connections are dropped, and each of its datasets is
/// re-owned: the most-caught-up live replica wins (max journal floor via
/// REPLSTATUS; ties break by HRW weight, then node index), recorded as an
/// explicit promotion override. Idempotent reads that were in flight are
/// retried against the new owner using SendMany's per-request completion
/// map; writes are never silently retried — a write that raced the crash
/// reports a structured error, because the coordinator cannot know whether
/// the dead primary applied it.
///
/// In cluster mode the durability knobs are not client-reachable: PERSIST,
/// CHECKPOINT, BUDGET, DROP, SAVEBASE and LOADBASE answer
/// FailedPrecondition. Checkpointing must stay disabled on cluster nodes —
/// replica catch-up replays the primary's WAL file from seq 1, which a
/// rotation would truncate (replication.h).
class ClusterNode {
 public:
  struct Options {
    /// Every node's "host:port", identically ordered on every node; the
    /// index in this list is the node id the hash ring uses.
    std::vector<std::string> nodes;
    /// This node's index into `nodes`.
    std::size_t self = 0;
    /// Replication ack timeout (ReplicationHub::Options::ack_timeout).
    std::chrono::milliseconds ack_timeout{5000};
  };

  /// The engine must outlive the node; ownership is not taken.
  ClusterNode(Engine* engine, Options options);
  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Starts the replication hub. Call after the engine recovered and
  /// before the server starts accepting.
  Status Start();
  void Stop();

  /// The routing entry point, invoked by ExecuteCommand when the serving
  /// layer set ExecContext::cluster. Returns the response payload (errors
  /// included, like ExecuteCommand itself).
  json::Value Execute(Engine* engine, Session* session, const Command& command,
                      const ExecContext& ctx);

  /// HRW owner of `dataset` among live nodes, honoring promotion
  /// overrides; SIZE_MAX when no node is alive. Exposed for tests.
  std::size_t OwnerOf(const std::string& dataset) const;

  /// Rendezvous weight of (dataset, node) — FNV-1a over "name#index".
  /// Every node computes the same weights, so ownership needs no
  /// coordination. Exposed for tests.
  static std::uint64_t HrwWeight(const std::string& dataset,
                                 std::size_t node_index);

 private:
  static constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

  std::size_t OwnerOfLocked(const std::string& dataset) const;
  bool IsAlive(std::size_t node) const;

  /// Pooled binary connection management. Acquire pops an idle connection
  /// or dials a new one; Release returns it. Connections to a node marked
  /// dead are refused/discarded.
  Result<std::unique_ptr<OnexClient>> Acquire(std::size_t node);
  void Release(std::size_t node, std::unique_ptr<OnexClient> client);
  /// One request/response against a node through the pool.
  Result<WireResponse> CallNode(std::size_t node, const WireRequest& request);

  /// Marks a node dead, drops its pool, and promotes its datasets.
  void HandleNodeFailure(std::size_t node);

  /// Local execution with the cluster pointer cleared; local primary
  /// mutations additionally wait for every live peer's replication ack
  /// before the response (sync replication — the ack floor IS the
  /// promotion guarantee).
  json::Value ExecuteLocal(Engine* engine, Session* session,
                           const Command& cmd, const ExecContext& ctx);
  WireResponse ExecuteLocalWire(Engine* engine, const WireRequest& request,
                                const ExecContext& ctx);

  /// Routes one dataset-scoped command to its owner (local or forwarded).
  json::Value RouteSingle(Engine* engine, Session* session,
                          const std::string& dataset, const Command& cmd,
                          const ExecContext& ctx);

  /// Runs one prepared request per dataset against the owning shards —
  /// grouped per owner, pipelined with SendManyTracked, incomplete
  /// requests retried on promoted owners after a failure. Results align
  /// with `names`.
  Result<std::vector<WireResponse>> ScatterPerDataset(
      Engine* engine, const std::vector<std::string>& names,
      const std::vector<WireRequest>& requests, const ExecContext& ctx);

  /// datasets= fan-out for MATCH/KNN/BATCH: scatter per dataset, then the
  /// same deterministic merge the single-node path uses (cluster_merge.h).
  json::Value ScatterMulti(Engine* engine, const Command& cmd,
                           const ExecContext& ctx);

  json::Value ScatterList(Engine* engine);
  json::Value ScatterDatasets(Engine* engine);
  /// CLUSTER verb: probe every node (dead ones get promoted away) and
  /// report topology, overrides and replication floors.
  json::Value StatusReport(Engine* engine);

  Engine* engine_;
  Options options_;
  std::unique_ptr<ReplicationHub> hub_;

  mutable std::mutex mutex_;  ///< Guards alive_ and overrides_.
  std::vector<bool> alive_;
  /// Promotion overrides: dataset → node that holds the longest acked log.
  std::map<std::string, std::size_t> overrides_;

  std::mutex pool_mutex_;  ///< Guards pools_.
  std::vector<std::vector<std::unique_ptr<OnexClient>>> pools_;

  std::mutex promotion_mutex_;  ///< Serializes HandleNodeFailure sweeps.
};

}  // namespace onex::net

#endif  // ONEX_NET_CLUSTER_H_
