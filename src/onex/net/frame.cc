#include "onex/net/frame.h"

#include <bit>
#include <cerrno>
#include <cstring>
#include <string>
#include <sys/socket.h>

#include "onex/common/string_utils.h"
#include "onex/net/socket.h"

namespace onex::net {
namespace {

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

FrameLimits ResponseFrameLimits() {
  FrameLimits limits;
  limits.max_text_bytes = 1u << 30;  // matches the client's LineReader cap
  limits.max_values = 1u << 27;      // 1 GiB of float64 payload
  return limits;
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.text.size() + 8 * frame.values.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(frame.flags));
  PutU64(&out, frame.request_id);
  PutU32(&out, static_cast<std::uint32_t>(frame.text.size()));
  PutU32(&out, static_cast<std::uint32_t>(frame.values.size()));
  out.append(frame.text);
  for (const double v : frame.values) {
    // bit_cast + byte-wise emit is endian-portable; on the little-endian
    // hosts this targets it compiles to a plain 8-byte store.
    PutU64(&out, std::bit_cast<std::uint64_t>(v));
  }
  return out;
}

FrameDecodeResult DecodeFrame(std::string_view buffer,
                              const FrameLimits& limits) {
  FrameDecodeResult r;
  if (buffer.size() < kFrameHeaderBytes) {
    r.state = FrameDecodeState::kNeedMore;
    return r;
  }
  const char* p = buffer.data();
  if (std::memcmp(p, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    r.state = FrameDecodeState::kError;
    r.error = Status::ParseError("bad frame magic (not an ONEXB stream)");
    return r;
  }
  const auto version = static_cast<std::uint8_t>(p[5]);
  if (version != kFrameVersion) {
    r.state = FrameDecodeState::kError;
    r.error = Status::ParseError(
        StrFormat("unsupported frame version %u", version));
    return r;
  }
  const auto type = static_cast<std::uint8_t>(p[6]);
  if (type != static_cast<std::uint8_t>(FrameType::kRequest) &&
      type != static_cast<std::uint8_t>(FrameType::kResponse)) {
    r.state = FrameDecodeState::kError;
    r.error = Status::ParseError(StrFormat("unknown frame type %u", type));
    return r;
  }
  const std::uint32_t text_len = GetU32(p + 16);
  const std::uint32_t value_count = GetU32(p + 20);
  // Caps are enforced on the *declared* lengths, before waiting for (or
  // allocating) the body: a hostile header cannot command memory.
  if (text_len > limits.max_text_bytes) {
    r.state = FrameDecodeState::kError;
    r.error = Status::InvalidArgument(StrFormat(
        "frame text of %u bytes exceeds the %zu-byte cap", text_len,
        limits.max_text_bytes));
    return r;
  }
  if (value_count > limits.max_values) {
    r.state = FrameDecodeState::kError;
    r.error = Status::InvalidArgument(StrFormat(
        "frame carries %u values; the cap is %zu", value_count,
        limits.max_values));
    return r;
  }
  const std::size_t body = static_cast<std::size_t>(text_len) +
                           8 * static_cast<std::size_t>(value_count);
  if (buffer.size() < kFrameHeaderBytes + body) {
    r.state = FrameDecodeState::kNeedMore;
    return r;
  }

  r.state = FrameDecodeState::kFrame;
  r.consumed = kFrameHeaderBytes + body;
  r.frame.type = static_cast<FrameType>(type);
  r.frame.flags = static_cast<std::uint8_t>(p[7]);
  r.frame.request_id = GetU64(p + 8);
  r.frame.text.assign(p + kFrameHeaderBytes, text_len);
  r.frame.values.resize(value_count);
  const char* vp = p + kFrameHeaderBytes + text_len;
  for (std::uint32_t i = 0; i < value_count; ++i) {
    r.frame.values[i] = std::bit_cast<double>(GetU64(vp + 8 * i));
  }
  return r;
}

Result<Frame> FrameReader::ReadFrame() {
  while (true) {
    FrameDecodeResult r = DecodeFrame(buffer_, limits_);
    if (r.state == FrameDecodeState::kError) return r.error;
    if (r.state == FrameDecodeState::kFrame) {
      buffer_.erase(0, r.consumed);
      return std::move(r.frame);
    }
    char chunk[16384];
    const ssize_t n = ::recv(socket_->fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(
          StrFormat("recv: %s", std::strerror(errno)));
    }
    if (n == 0) {
      // Same discipline as LineReader: a truncated trailing frame is
      // dropped, never surfaced as data.
      return Status::IoError("connection closed");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace onex::net
