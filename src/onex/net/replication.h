#ifndef ONEX_NET_REPLICATION_H_
#define ONEX_NET_REPLICATION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "onex/common/result.h"
#include "onex/engine/engine.h"
#include "onex/engine/wal.h"
#include "onex/json/json.h"

namespace onex::net {

/// WAL shipping between cluster nodes (DESIGN.md §16). The unit on the wire
/// is the WAL line itself — the exact bytes the primary journaled, batched
/// and guarded by a batch checksum — so a replica that applies an acked
/// batch holds a byte-identical log prefix and, through the same
/// snapshot_ops writers recovery uses, a bit-identical snapshot.
///
/// The protocol rides the existing ONEXB frame as three verbs:
///
///   REPLHELLO dataset=<name>
///     → {"ok":true,"dataset":...,"last_seq":<replica's journal floor>}
///   REPLAPPLY dataset=<name> first=<seq> count=<n> crc=<fnv64 hex>
///     (frame text carries the concatenated WAL lines after the first '\n')
///     → {"ok":true,"dataset":...,"last_seq":<new floor>}
///   REPLSTATUS
///     → {"ok":true,"datasets":{<name>:<floor>,...}}
///
/// The REPLAPPLY response IS the ack: a primary's floor for a peer advances
/// only on a decoded {"ok":true}. Any structured error tells the shipper to
/// fall back to catch-up from its own WAL file ("resubscribe"); nothing is
/// ever installed from a batch that fails its checksum, decoding, or
/// sequence contiguity.

/// Formats the REPLAPPLY frame text: the command line, then '\n', then the
/// blob of concatenated encoded WAL lines. `lines` must each be the full
/// EncodeWalRecord output (trailing newline included) in ascending seq
/// order starting at `first_seq`.
std::string EncodeReplApplyText(const std::string& dataset,
                                std::uint64_t first_seq,
                                const std::vector<std::string>& lines);

/// Validates and decodes a shipped batch: the blob checksum must equal
/// `crc`, the blob must be `count` whole newline-terminated WAL lines, each
/// line must decode (its own per-record checksum included), and the
/// sequence numbers must run first_seq, first_seq+1, ... contiguously.
/// Any violation is a structured error and no records are returned.
Result<std::vector<WalRecord>> DecodeWalBatchBlob(std::string_view blob,
                                                  std::uint64_t crc,
                                                  std::uint64_t first_seq,
                                                  std::uint64_t count);

/// Primary-side shipper: one background link per peer, fed by the
/// registry's WalSink. Each link lazily subscribes per dataset (REPLHELLO),
/// catches a behind replica up from the local WAL file, then streams live
/// records in batches and tracks the peer's ack floor. A link that fails —
/// transport error, rejected batch, or an ack timeout observed by
/// AwaitReplication — is dead for good (fail-stop): promotion safety comes
/// from never acknowledging a write as replicated to a peer that might not
/// have it.
class ReplicationHub {
 public:
  struct Options {
    /// Peer endpoints, "host:port". The hub ships every local primary
    /// append to every peer (full replication — R = N-1; the right trade
    /// at the 3-node scale this targets, and what makes any survivor a
    /// promotion candidate).
    std::vector<std::string> peers;
    /// How long a mutator waits for every live peer's ack before the slow
    /// peer is declared dead and the write proceeds without it.
    std::chrono::milliseconds ack_timeout{5000};
    /// Delay between connect attempts while a peer has not yet come up.
    std::chrono::milliseconds connect_backoff{100};
    /// Max records per REPLAPPLY batch.
    std::size_t batch_records = 64;
  };

  ReplicationHub(Engine* engine, Options options);
  ~ReplicationHub();

  ReplicationHub(const ReplicationHub&) = delete;
  ReplicationHub& operator=(const ReplicationHub&) = delete;

  /// Installs the WalSink and spawns the link threads. Call once, before
  /// the node starts serving (so no append can slip past the sink).
  void Start();

  /// Uninstalls the sink and joins the links. Idempotent.
  void Stop();

  /// Blocks until every live peer has acked `(dataset, seq)` or the ack
  /// timeout passes; a peer that times out is marked dead and skipped from
  /// then on. Returns the number of peers that have the record.
  std::size_t AwaitReplication(const std::string& dataset, std::uint64_t seq);

  /// Per-peer state for the CLUSTER status verb: endpoint, liveness, and
  /// ack floors.
  json::Value StatusJson() const;

 private:
  struct Item {
    std::string dataset;
    std::uint64_t seq = 0;
    std::shared_ptr<const std::string> line;  ///< Full encoded WAL line.
  };

  struct Link {
    std::string host;
    std::uint16_t port = 0;
    std::string label;  ///< "host:port" for status/errors.
    std::thread thread;

    mutable std::mutex mutex;
    std::condition_variable cv;       ///< Queue activity (link thread waits).
    std::condition_variable ack_cv;   ///< Floor advances (AwaitReplication).
    std::deque<Item> queue;
    std::map<std::string, std::uint64_t> floors;  ///< Acked seq per dataset.
    bool alive = true;
    bool connected = false;
    bool stop = false;
    std::string last_error;
  };

  void LinkMain(Link* link);
  /// One serving pass over a connected client; returns the error that ended
  /// the connection (the link is then dead).
  Status ServeLink(Link* link, class OnexClient* client);
  Status ShipBatch(Link* link, OnexClient* client, const std::string& dataset,
                   std::uint64_t first_seq,
                   const std::vector<std::string>& lines);
  /// Ships records (floor, tip] from the local WAL file for `dataset`.
  Status CatchUpFromFile(Link* link, OnexClient* client,
                         const std::string& dataset);
  void MarkDead(Link* link, const std::string& why);

  Engine* engine_;
  Options options_;
  std::vector<std::unique_ptr<Link>> links_;
  bool started_ = false;
};

}  // namespace onex::net

#endif  // ONEX_NET_REPLICATION_H_
