#ifndef ONEX_NET_PROTOCOL_H_
#define ONEX_NET_PROTOCOL_H_

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "onex/common/result.h"
#include "onex/engine/engine.h"
#include "onex/json/json.h"

namespace onex::net {

/// The wire protocol the ONEX server speaks: one command per line, one JSON
/// response per line — the minimal stand-in for the demo's HTTP/JSON web
/// API. Commands are a verb, positional arguments and key=value options.
///
/// One server session serves a whole dashboard of datasets: every
/// dataset-scoped verb resolves its target from (in priority order) a
/// positional name, a `dataset=<name>` option, or the session's current
/// dataset as set by USE (DESIGN.md §11). The persistence pair
/// (SAVEBASE/LOADBASE) is the exception: both name a dataset *and* a file,
/// so both arguments stay positional.
///
///   PING
///   LIST                                             names only
///   DATASETS                                         per-slot detail: series,
///                                                    prepared/evicted flags,
///                                                    base bytes, LRU budget
///   USE <name>|name=<name>                           session default dataset
///   BUDGET [bytes=N]                                 get/set prepared-base
///                                                    LRU byte budget (0 = off)
///   TIER [<name>] [pin=0|1] [demote=1]               serving-tier control
///       Reports the slot's tier (resident|mapped|evicted|raw, DESIGN.md
///       §17) plus pinned/mapped_bytes. pin=1 exempts the slot from LRU
///       eviction and downgrade; demote=1 swaps a clean checkpointed base
///       for its mmap'd arena now (FailedPrecondition if the WAL is dirty
///       or durability is off).
///   GEN <name> <kind> [num=50] [len=100] [seed=42]   kind: walk|sine|shapes|
///                                                    electricity|economic
///   LOAD <name> <path> | LOAD name=<n> path=<p>      UCR-format file
///   DROP <name>|name=<name>
///   PREPARE [st=0.2] [minlen=4] [maxlen=0] [lenstep=1] [stride=1]
///           [norm=minmax-dataset] [policy=running-mean] [threads=1]
///   APPEND v=<v1,v2,...> [series=appended]           incremental insert
///   EXTEND series=<idx|name> points=<v1,v2,...>      streaming point-append
///       Appends points (original units) to an existing series; the tail is
///       renormalized with the frozen dataset parameters and only the new
///       subsequences join the base (DESIGN.md §12). Reports the per-class
///       drift the write caused and whether a background regroup of the
///       drifted classes was scheduled.
///   DRIFT [threshold=f]                              maintenance report
///       Per-length-class drift of the prepared base (members beyond ST/2
///       of their centroid), the regroup trigger threshold, and whether a
///       regroup is in flight. threshold= sets the registry-wide trigger
///       (0 disables), like BUDGET sets the LRU budget.
///   SAVEBASE <name> <path>                           persist prepared state
///   LOADBASE <name> <path>                           restore prepared state
///   PERSIST [dir=<path>] [every=<records>] [fsync=0|1]
///       Durability control (DESIGN.md §13). With dir=, enables the
///       write-ahead journal rooted there: existing journals are recovered
///       (replayed bit-identically), datasets loaded earlier in this
///       process are bootstrapped in, and every later acknowledged
///       mutation is journaled before it is acknowledged. every= sets the
///       background checkpoint threshold (records since the last
///       checkpoint; 0 = manual only). Without dir=, reports the current
///       durability state. Enabling twice is FailedPrecondition.
///   CHECKPOINT [<name>|dataset=<name>]               checkpoint a slot now
///       Folds the slot's journal into a fresh ONEXPREP checkpoint file
///       and restarts its WAL; the live slot adopts the checkpoint's
///       canonical image, so recovery from it is bit-exact. Reports the
///       captured log position and file size.
///   STATS
///   CATALOG [points=24]                              series list + previews
///   OVERVIEW [length=0] [top=12]
///   MATCH q=<series>:<start>:<len> [window=-1] [topgroups=1]
///         [exhaustive=0] [threads=1] [deadline_ms=0]
///   KNN q=<series>:<start>:<len> [k=3] [window=-1] [exhaustive=0]
///       [threads=1] [deadline_ms=0]
///   BATCH q=<s>:<st>:<len>[;<s>:<st>:<len>...] [k=1] [window=-1]
///         [topgroups=1] [exhaustive=0] [threads=1] [deadline_ms=0]
///       Executes every query in one round-trip, fanned across the engine's
///       task pool (a dashboard refreshing its linked views issues one
///       BATCH instead of N MATCHes). Responds with results in query order:
///       {"ok":true,"results":[{"matches":[...]}, ...]}.
///   SEASONAL series=<idx> [length=0] [minocc=2] [top=5]
///   THRESHOLD [pairs=2000] [minlen=4] [maxlen=0]
///   ANOMALY [length=0] [top=10] [eps=0] [minpts=2] [deadline_ms=0]
///       Scores every member of the selected length class(es) by its exact
///       distance to the nearest centroid and flags outliers with the
///       DBSCAN-style rule (no centroid within eps heading a group of
///       >= minpts members). eps=0 uses the base's ST/2. Reports the top
///       findings plus the per-class drift view (DESIGN.md §18).
///   CHANGEPOINT series=<idx|name> [hazard=0.01] [maxrun=256]
///               [threshold=0.5] [last=0] [probs=0] [deadline_ms=0]
///       Bayesian online changepoint detection over the series' normalized
///       values (last= restricts to the streamed tail). Reports steps whose
///       new-regime posterior exceeds threshold=, the final MAP run length,
///       and the truncation error bound; probs=1 adds the full per-step
///       probability array.
///   MOTIF [length=0] [top=5] [discords=3] [deadline_ms=0]
///       Per length class: the densest groups (the motifs as the group
///       structure sees them), the exact closest non-overlapping pair, and
///       the exact loneliest members (discords), via admissible
///       centroid-distance pruning.
///   FORECAST series=<idx|name> [horizon=8] [length=0] [k=3]
///            [method=group|seasonal] [period=0] [deadline_ms=0]
///       Predicts horizon= points past the series' end. method=group
///       averages the continuations of the k exact nearest same-length
///       members; method=seasonal repeats the last period= points. Values
///       are reported in original units ("values") and normalized units
///       ("values_norm"); binary clients additionally receive the raw
///       forecast as the frame's float64 section.
///   QUIT
///
/// MATCH/KNN/BATCH also accept datasets=<a,b,c> in place of a single
/// dataset: the query runs against every named dataset (q= resolves within
/// each dataset independently) and the per-dataset top-k lists are merged
/// with the deterministic order of cluster_merge.h — ascending
/// normalized_dtw, ties by (dataset, series, start, length). Each merged
/// match carries a "dataset" field; stats are summed in the given dataset
/// order. The cluster coordinator scatter-gathers the same fan-out across
/// shards and merges with the same comparator, which is what makes a
/// cluster answer bitwise equal to a single node holding all the data.
///
/// Replication verbs (DESIGN.md §16; spoken between cluster nodes over the
/// ONEXB frame, not meant for interactive use):
///
///   REPLHELLO dataset=<name>           replica's journal floor for a slot
///   REPLAPPLY dataset=<n> first=<seq> count=<k> crc=<fnv64hex>  + blob
///       Applies a checksummed batch of the primary's WAL lines (carried
///       after the first '\n' of the frame text). The response is the ack:
///       {"ok":true,"last_seq":<floor>}. Corrupt, truncated, reordered or
///       non-contiguous batches install nothing.
///   REPLSTATUS                         all journal floors of this node
///   CLUSTER                            cluster topology/health (single-node
///                                      servers answer {"enabled":false})
///
/// `deadline_ms=` (MATCH/KNN/BATCH) bounds wall time from request *arrival*
/// (queue time included): the cancellation token is polled between cascade
/// stages and an expired query answers {"ok":false,"code":
/// "DeadlineExceeded"} instead of holding its connection's pipeline.
///
/// The reactor front end (reactor.h) adds two verbs of its own — BIN, which
/// upgrades a connection to the ONEXB binary frame (frame.h), and METRICS,
/// which reports serving statistics. Both live in the serving layer, not
/// here: they concern a *connection* and a *server*, which this executor
/// deliberately knows nothing about.
///
/// Responses: {"ok":true, ...payload...} or {"ok":false,"error":"...",
/// "code":"..."} — always a single line. Size-driving options (GEN
/// num/len, CATALOG points, KNN/BATCH k, THRESHOLD pairs, ANOMALY/MOTIF
/// top/minpts/discords, CHANGEPOINT maxrun, FORECAST horizon) are capped so
/// a malformed or hostile frame cannot make the server allocate unbounded
/// memory; the caps are far above anything the line protocol can usefully
/// carry and surface as InvalidArgument. Numeric option values and binary
/// value payloads must be finite: "nan"/"inf" tokens and NaN/Inf float64s
/// are rejected at parse time (InvalidArgument) before they can poison
/// distance comparisons downstream.
struct Command {
  std::string verb;  ///< Upper-cased.
  std::vector<std::string> args;
  std::map<std::string, std::string> options;
  /// Raw float64 payload from a binary frame (frame.h). APPEND and EXTEND
  /// consume it in place of v=/points= when those options are absent, so a
  /// binary client ships bulk points without ASCII round-trips. Empty for
  /// text-protocol commands.
  std::vector<double> payload;
  /// Everything after the first '\n' of a binary frame's text section: the
  /// replication layer ships raw WAL lines here (REPLAPPLY), outside the
  /// tokenizer so arbitrary journal bytes never fight the k=v grammar. The
  /// text protocol is line-delimited and therefore can never produce a
  /// blob; REPLAPPLY over text is rejected for exactly that reason.
  std::string blob;
};

/// Per-connection protocol state: the current dataset selected with USE.
struct Session {
  std::string dataset;
};

/// Splits a protocol line; ParseError on empty input or malformed k=v.
Result<Command> ParseCommandLine(const std::string& line);

/// Serving-layer context threaded into one command execution. The plain
/// ExecuteCommand overloads pass defaults, so the text server and in-process
/// callers are unaffected; the reactor fills it in per request.
struct ExecContext {
  /// When the request came off the wire; deadline_ms counts from here, so a
  /// request that sat queued behind a deep pipeline pays for the wait.
  std::chrono::steady_clock::time_point arrival =
      std::chrono::steady_clock::now();
  /// Connection-level kill switch (set on disconnect); owned by the caller
  /// and must outlive the execution.
  const std::atomic<bool>* disconnected = nullptr;
  /// When non-null, MATCH/KNN/BATCH append each match's normalized values
  /// here (concatenated in match order) for the binary response's raw
  /// float64 section. The JSON body is byte-identical either way.
  std::vector<double>* out_values = nullptr;
  /// Cluster-mode routing (DESIGN.md §16): when non-null, ExecuteCommand
  /// hands the command to the coordinator, which either forwards it to the
  /// owning shard or re-enters the executor locally with this pointer
  /// cleared. Single-node servers leave it null and nothing changes.
  class ClusterNode* cluster = nullptr;
};

/// Runs one command against the engine, reading and updating the session's
/// current dataset. Never fails — errors become {"ok":false,...} payloads,
/// so one bad command cannot kill a session.
json::Value ExecuteCommand(Engine* engine, Session* session,
                           const Command& command);

/// Full-context form used by the reactor (deadlines, disconnect
/// cancellation, binary value payloads).
json::Value ExecuteCommand(Engine* engine, Session* session,
                           const Command& command, const ExecContext& context);

/// Session-less convenience (in-process callers, tests): every command must
/// carry its dataset explicitly.
json::Value ExecuteCommand(Engine* engine, const Command& command);

/// Serializes a response (single line + '\n').
std::string FormatResponse(const json::Value& response);

/// Convenience: error payload with a status.
json::Value ErrorResponse(const Status& status);

}  // namespace onex::net

#endif  // ONEX_NET_PROTOCOL_H_
