#ifndef ONEX_NET_SOCKET_H_
#define ONEX_NET_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "onex/common/result.h"

namespace onex::net {

/// Writes the whole buffer to a (blocking) fd, retrying EINTR and short
/// writes; the single place partial-write handling lives. MSG_NOSIGNAL keeps
/// a dead peer an IoError instead of a SIGPIPE process kill.
Status WriteAll(int fd, std::string_view data);

/// Disables Nagle. Pipelined protocols write many small frames; without this
/// every sub-MSS response waits for the previous ACK (~40 ms stalls on
/// request-response traffic). Applied to every accepted and client socket.
void SetTcpNoDelay(int fd);

/// O_NONBLOCK for reactor-owned fds (edge-triggered epoll requires it).
Status SetNonBlocking(int fd);

/// Move-only RAII wrapper over a connected TCP socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes the whole buffer, retrying on short writes and EINTR.
  Status SendAll(std::string_view data);

  /// Half-closes the write side then closes; unblocks a peer's read.
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
};

/// Buffered line reader over a Socket: the protocol is newline-delimited.
class LineReader {
 public:
  /// A line may buffer at most `max_line_bytes` before the newline arrives;
  /// beyond that ReadLine fails (the server then drops the connection), so
  /// a peer streaming bytes without '\n' cannot grow the buffer without
  /// bound — the DoS exposure per connection is this constant, not the
  /// peer's patience. The default admits the largest frame the protocol
  /// itself allows (an APPEND of a kMaxGenPoints-sized series is ~50 MB of
  /// text) with headroom; clients reading trusted server responses pass a
  /// larger cap.
  static constexpr std::size_t kDefaultMaxLineBytes = 64u << 20;  // 64 MiB

  explicit LineReader(Socket* socket,
                      std::size_t max_line_bytes = kDefaultMaxLineBytes)
      : socket_(socket), max_line_bytes_(max_line_bytes) {}

  /// Next '\n'-terminated line (terminator stripped, trailing '\r' too).
  /// IoError on EOF ("connection closed") or when the pending line exceeds
  /// the length cap. An unterminated fragment pending at EOF is discarded,
  /// not returned — it may be a truncated frame, and executing truncated
  /// commands is worse than dropping them.
  Result<std::string> ReadLine();

 private:
  Socket* socket_;
  std::size_t max_line_bytes_;
  std::string buffer_;
  /// Bytes of buffer_ already known newline-free, so each recv scans only
  /// the new chunk (a large line costs one linear pass, not a quadratic
  /// rescan).
  std::size_t scanned_ = 0;
  bool eof_ = false;
};

/// Client-side connect to host:port ("127.0.0.1" etc.; no DNS needed for
/// the loopback deployments this library targets).
Result<Socket> ConnectTcp(const std::string& host, std::uint16_t port);

/// Listening socket bound to 127.0.0.1. Port 0 picks an ephemeral port,
/// readable via port() — tests rely on this.
///
/// The fd is atomic because Shutdown() is the documented cross-thread
/// unblock for a server's accept loop (OnexServer::Stop shuts down from
/// another thread while AcceptLoop sits in Accept); exchange-based Close
/// also makes concurrent double-closes harmless.
class ServerSocket {
 public:
  /// `backlog` sizes the kernel accept queue. The default suits a handful of
  /// interactive dashboards; the reactor passes a large value because a load
  /// generator ramping thousands of connections can easily land more SYNs
  /// between two accept sweeps than a small queue holds.
  static Result<ServerSocket> Listen(std::uint16_t port, int backlog = 16);

  ServerSocket() = default;
  ~ServerSocket() { Close(); }
  ServerSocket(const ServerSocket&) = delete;
  ServerSocket& operator=(const ServerSocket&) = delete;
  ServerSocket(ServerSocket&& other) noexcept
      : fd_(other.fd_.exchange(-1)), port_(other.port_) {}
  ServerSocket& operator=(ServerSocket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_.store(other.fd_.exchange(-1));
      port_ = other.port_;
    }
    return *this;
  }

  bool valid() const { return fd_.load() >= 0; }
  int fd() const { return fd_.load(); }
  std::uint16_t port() const { return port_; }

  /// Blocks until a client connects; IoError once Shutdown()/Close() has
  /// been called.
  Result<Socket> Accept();

  /// Unblocks any thread parked in Accept() and makes future Accepts fail,
  /// WITHOUT releasing the fd number. This is the safe cross-thread stop
  /// signal: because the descriptor stays reserved, a concurrent open()
  /// elsewhere in the process cannot recycle it under a racing accept().
  void Shutdown();

  /// Releases the descriptor. Only call once no other thread can still be
  /// inside Accept() (e.g. after joining the acceptor); use Shutdown() to
  /// get it out of there first.
  void Close();

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace onex::net

#endif  // ONEX_NET_SOCKET_H_
