#ifndef ONEX_NET_REACTOR_H_
#define ONEX_NET_REACTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "onex/common/result.h"
#include "onex/engine/engine.h"
#include "onex/net/metrics.h"
#include "onex/net/protocol.h"
#include "onex/net/socket.h"

namespace onex::net {

/// Tuning knobs for ReactorServer. The defaults serve the intended
/// deployment (thousands of mostly-idle dashboard connections, a few dozen
/// hot pipelines); tests shrink them to provoke the edge behaviours.
struct ReactorOptions {
  /// Outbox backpressure watermark. While a connection's pending response
  /// bytes sit above this, the reactor stops dispatching its queued requests
  /// and stops reading from its socket — a slow reader throttles itself
  /// instead of growing server memory.
  std::size_t outbox_high_bytes = 1u << 20;  // 1 MiB

  /// Absolute outbox cap: crossing it disconnects the peer immediately. With
  /// dispatch paused above the high watermark, the outbox can legitimately
  /// exceed it by at most one in-flight burst of responses, so the hard cap
  /// only triggers for a peer that has stopped reading under a pipeline of
  /// large responses — memory protection, not flow control.
  std::size_t outbox_hard_bytes = 32u << 20;  // 32 MiB

  /// A connection above the high watermark that makes no write progress for
  /// this long is disconnected as a slow reader (METRICS counts these).
  int slow_reader_grace_ms = 5000;

  /// Decoded-but-unanswered requests one connection may hold (queued plus
  /// executing). Past it the reactor stops reading that socket; TCP pushes
  /// the backpressure to the client. Bounds per-connection request memory
  /// the same way the watermarks bound response memory.
  std::size_t max_pipeline = 128;

  /// Kernel accept queue. Sized for load ramps: a generator opening
  /// thousands of connections can land more SYNs between two accept sweeps
  /// than the text server's interactive default would hold.
  int listen_backlog = 1024;
};

/// Epoll-driven serving front end: one reactor thread multiplexes every
/// connection (10k+ mostly-idle sockets cost one fd apiece, not one thread
/// apiece), decodes requests off the wire, and hands execution to the
/// process-wide TaskPool. Speaks both wire dialects: the newline/JSON text
/// protocol (protocol.h) and, after a BIN upgrade, the ONEXB binary frame
/// (frame.h).
///
/// Threading model (DESIGN.md §15):
///   - The reactor thread owns every fd: accept, edge-triggered reads,
///     frame/line decoding, nonblocking outbox flushes, disconnects.
///   - Decoded requests join a per-connection FIFO; execution runs on the
///     shared TaskPool so a slow query never blocks the wire for other
///     connections. Cheap request *recording* is thereby separated from
///     expensive request *execution*.
///   - Completions append the encoded response to the connection's outbox
///     and nudge the reactor through an eventfd; the reactor flushes.
///
/// Ordering: text connections execute strictly serially in arrival order
/// (legacy clients match responses by position). Binary connections execute
/// contiguous runs of read-only verbs (MATCH/KNN/BATCH/...) concurrently
/// and may complete them out of order — the echoed frame request id matches
/// them up — while mutators (GEN/PREPARE/APPEND/USE/...) act as barriers:
/// they run alone, after everything before them and before everything after
/// them, so PREPARE-then-MATCH pipelines read naturally.
///
/// Serving-layer verbs handled here, on the reactor thread, without a pool
/// round-trip: BIN (upgrade this connection's input to ONEXB frames; the
/// acknowledgement is the last text line), METRICS (ServerMetrics snapshot)
/// and QUIT. Everything else goes to ExecuteCommand with an ExecContext
/// carrying the arrival time (deadline_ms= budgets count queue time) and
/// the connection's disconnect flag (a vanished caller cancels its queries
/// at the next cascade stage boundary).
class ReactorServer {
 public:
  /// The engine must outlive the server; ownership is not taken.
  explicit ReactorServer(Engine* engine, ReactorOptions options = {});
  ~ReactorServer();

  ReactorServer(const ReactorServer&) = delete;
  ReactorServer& operator=(const ReactorServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the reactor thread.
  Status Start(std::uint16_t port = 0);

  /// Bound port, valid after Start().
  std::uint16_t port() const { return listener_.port(); }

  bool running() const { return running_.load(); }

  /// Disconnects every client (in-flight queries observe the disconnect and
  /// cancel), drains executor tasks, joins the reactor thread. The drain
  /// matters: executor tasks reference the engine, so returning while any
  /// are live would let callers destroy the engine under them. Safe to call
  /// twice.
  void Stop();

  /// Live serving statistics (also served on-wire by METRICS).
  const ServerMetrics& metrics() const { return metrics_; }

  /// Cluster-mode hookup (DESIGN.md §16): every executed command carries
  /// this pointer in its ExecContext, routing it through the coordinator.
  /// Must be set before Start() and outlive the server; single-node servers
  /// never call this.
  void SetCluster(ClusterNode* cluster) { cluster_ = cluster; }

 private:
  /// How a verb interacts with its connection's pipeline.
  enum class VerbKind {
    kInline,    ///< BIN/METRICS/QUIT (+ parse errors): reactor-thread reply.
    kMutator,   ///< Engine/session writers: barrier, runs alone.
    kReadOnly,  ///< Queries and reports: concurrent on binary connections.
  };
  static VerbKind ClassifyVerb(const std::string& verb);

  /// One decoded, not-yet-answered request.
  struct PendingRequest {
    Command cmd;
    Status parse_error;  ///< !ok(): answer with ErrorResponse, skip execute.
    bool binary = false;
    std::uint64_t request_id = 0;
    std::chrono::steady_clock::time_point arrival;
    std::size_t verb_index = 0;
    VerbKind kind = VerbKind::kReadOnly;
  };

  /// Per-connection state. Buffers and parse cursors belong to the reactor
  /// thread alone; the queue, outbox and session are shared with executor
  /// completions under `mutex`; `disconnected` is the lock-free kill switch
  /// in-flight queries poll.
  struct Conn {
    int fd = -1;

    // -- reactor thread only --
    std::string inbuf;
    std::size_t text_scan = 0;  ///< inbuf prefix known newline-free.
    bool binary_in = false;     ///< Input decodes as ONEXB after BIN.
    bool read_paused = false;
    std::chrono::steady_clock::time_point last_write_progress;
    bool over_high = false;
    std::chrono::steady_clock::time_point over_high_since;

    // -- shared, guarded by mutex --
    std::mutex mutex;
    Session session;
    std::deque<PendingRequest> queue;
    std::size_t inflight = 0;
    bool barrier_inflight = false;
    std::deque<std::string> outbox;
    std::size_t outbox_front_off = 0;
    std::size_t outbox_bytes = 0;
    bool close_after_flush = false;
    bool kill = false;    ///< Executor-requested disconnect (hard overflow).
    bool closed = false;  ///< fd gone; completions drop their responses.

    /// Set on any disconnect; ExecContext points queries at it.
    std::atomic<bool> disconnected{false};
  };

  void Loop();
  void AcceptReady();
  void WakeLoop();
  void NotifyDirty(const std::shared_ptr<Conn>& conn);

  /// Edge-triggered read: drain the socket, parse, pump, flush.
  void OnReadable(const std::shared_ptr<Conn>& conn);
  /// Post-completion service: flush the outbox, resume a paused read.
  void ServiceConn(const std::shared_ptr<Conn>& conn);
  /// ~100 ms tick: enforce the slow-reader grace across connections.
  void SweepSlowReaders();

  /// Decode as many requests as the pipeline cap admits. Lock held.
  /// Returns false on a protocol violation (close the connection).
  bool ParseInputLocked(const std::shared_ptr<Conn>& conn);
  /// Dispatch from the queue front per the ordering rules. Lock held.
  void PumpLocked(const std::shared_ptr<Conn>& conn);
  /// Nonblocking send until EAGAIN or empty. Lock held. Returns false when
  /// the connection must close (write error, hard cap, flushed-after-QUIT).
  bool FlushOutboxLocked(const std::shared_ptr<Conn>& conn);
  /// Recompute read_paused from queue depth + outbox level. Lock held.
  /// Returns true when a paused read should resume (caller re-reads; with
  /// edge triggering no new event will announce the already-arrived bytes).
  bool UpdateReadPauseLocked(const std::shared_ptr<Conn>& conn);

  void ExecuteInlineLocked(const std::shared_ptr<Conn>& conn,
                           PendingRequest req);
  void DispatchLocked(const std::shared_ptr<Conn>& conn, PendingRequest req);
  void CompleteRequest(const std::shared_ptr<Conn>& conn,
                       const PendingRequest& req, json::Value response,
                       std::vector<double> values, Session session_after);
  void AppendResponseLocked(Conn* conn, const PendingRequest& req,
                            const json::Value& response,
                            std::vector<double> values);

  /// Reactor thread only: deregister, close, cancel, drop queued state.
  void CloseConn(const std::shared_ptr<Conn>& conn);

  Engine* engine_;
  ReactorOptions options_;
  ClusterNode* cluster_ = nullptr;
  ServerMetrics metrics_;

  ServerSocket listener_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread loop_thread_;

  /// Reactor-thread-only fd → connection map.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  /// Connections with fresh completions awaiting a reactor-side flush.
  std::mutex dirty_mutex_;
  std::vector<std::weak_ptr<Conn>> dirty_;

  /// Executor tasks in flight across all connections; Stop() drains to zero
  /// before returning.
  std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::size_t inflight_global_ = 0;
};

}  // namespace onex::net

#endif  // ONEX_NET_REACTOR_H_
