#include "onex/net/replication.h"

#include <algorithm>
#include <utility>

#include "onex/common/string_utils.h"
#include "onex/net/client.h"

namespace onex::net {

namespace {

/// The WAL file backing one slot — valid while the cluster invariant holds
/// (checkpointing disabled, so the log is never rotated and always reaches
/// back to the slot's birth).
std::string WalPathFor(const DatasetRegistry& registry,
                       const std::string& dataset) {
  return registry.data_dir() + "/" + SlotDirName(dataset) + "/wal";
}

}  // namespace

std::string EncodeReplApplyText(const std::string& dataset,
                                std::uint64_t first_seq,
                                const std::vector<std::string>& lines) {
  std::string blob;
  for (const std::string& line : lines) blob += line;
  std::string text = StrFormat(
      "REPLAPPLY dataset=%s first=%llu count=%zu crc=%016llx\n",
      dataset.c_str(), static_cast<unsigned long long>(first_seq),
      lines.size(), static_cast<unsigned long long>(Fnv1a64(blob)));
  text += blob;
  return text;
}

Result<std::vector<WalRecord>> DecodeWalBatchBlob(std::string_view blob,
                                                  std::uint64_t crc,
                                                  std::uint64_t first_seq,
                                                  std::uint64_t count) {
  if (Fnv1a64(blob) != crc) {
    return Status::ParseError(
        "replication batch checksum mismatch; dropping the whole batch");
  }
  if (!blob.empty() && blob.back() != '\n') {
    return Status::ParseError(
        "replication batch does not end at a record boundary");
  }
  std::vector<WalRecord> records;
  std::size_t pos = 0;
  while (pos < blob.size()) {
    const std::size_t nl = blob.find('\n', pos);
    // back() == '\n' above guarantees a hit; keep the check for clarity.
    if (nl == std::string_view::npos) {
      return Status::ParseError(
          "replication batch does not end at a record boundary");
    }
    ONEX_ASSIGN_OR_RETURN(WalRecord record,
                          DecodeWalRecord(blob.substr(pos, nl - pos)));
    if (record.seq != first_seq + records.size()) {
      return Status::ParseError(StrFormat(
          "replication batch is not contiguous: record %zu has seq %llu, "
          "expected %llu",
          records.size(), static_cast<unsigned long long>(record.seq),
          static_cast<unsigned long long>(first_seq + records.size())));
    }
    records.push_back(std::move(record));
    pos = nl + 1;
  }
  if (records.size() != count) {
    return Status::ParseError(StrFormat(
        "replication batch declared %llu records but carried %zu",
        static_cast<unsigned long long>(count), records.size()));
  }
  return records;
}

// --- ReplicationHub --------------------------------------------------------

ReplicationHub::ReplicationHub(Engine* engine, Options options)
    : engine_(engine), options_(std::move(options)) {}

ReplicationHub::~ReplicationHub() { Stop(); }

void ReplicationHub::Start() {
  if (started_) return;
  started_ = true;
  for (const std::string& peer : options_.peers) {
    auto link = std::make_unique<Link>();
    const std::size_t colon = peer.rfind(':');
    link->host = colon == std::string::npos ? peer : peer.substr(0, colon);
    Result<long long> port = ParseInt(
        colon == std::string::npos ? "" : peer.substr(colon + 1));
    link->port = port.ok() ? static_cast<std::uint16_t>(*port) : 0;
    link->label = peer;
    links_.push_back(std::move(link));
  }
  // Sink before hints, hints before threads: once a link thread runs, the
  // links_ vector and the sink are both immutable.
  engine_->registry().SetWalSink(
      [this](const std::string& dataset, const WalRecord& record,
             const std::string& encoded) {
        auto line = std::make_shared<const std::string>(encoded);
        for (auto& link : links_) {
          std::lock_guard<std::mutex> lock(link->mutex);
          if (link->stop || !link->alive) continue;
          link->queue.push_back(Item{dataset, record.seq, line});
          link->cv.notify_all();
        }
      });
  // Datasets that were recovered before the hub started never fire the
  // sink until their next write; a null-line hint makes each link
  // subscribe and catch the peer up from the local file right away.
  for (const std::string& name : engine_->ListDatasets()) {
    for (auto& link : links_) {
      std::lock_guard<std::mutex> lock(link->mutex);
      link->queue.push_back(Item{name, 0, nullptr});
      link->cv.notify_all();
    }
  }
  for (auto& link : links_) {
    link->thread = std::thread(&ReplicationHub::LinkMain, this, link.get());
  }
}

void ReplicationHub::Stop() {
  if (!started_) return;
  engine_->registry().SetWalSink(nullptr);
  for (auto& link : links_) {
    {
      std::lock_guard<std::mutex> lock(link->mutex);
      link->stop = true;
    }
    link->cv.notify_all();
    link->ack_cv.notify_all();
  }
  for (auto& link : links_) {
    if (link->thread.joinable()) link->thread.join();
  }
  started_ = false;
}

void ReplicationHub::MarkDead(Link* link, const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(link->mutex);
    if (!link->alive) return;
    link->alive = false;
    link->last_error = why;
  }
  link->cv.notify_all();
  link->ack_cv.notify_all();
}

void ReplicationHub::LinkMain(Link* link) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(link->mutex);
      if (link->stop || !link->alive) return;
    }
    Result<OnexClient> client = OnexClient::Connect(link->host, link->port);
    Status up = client.ok() ? client->UpgradeBinary() : client.status();
    if (!up.ok()) {
      // The peer has not come up yet (cluster nodes start concurrently);
      // keep knocking until it listens, we are stopped, or an ack timeout
      // declared the link dead.
      std::unique_lock<std::mutex> lock(link->mutex);
      link->last_error = up.message();
      link->cv.wait_for(lock, options_.connect_backoff, [link] {
        return link->stop || !link->alive;
      });
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(link->mutex);
      link->connected = true;
    }
    Status err = ServeLink(link, &*client);
    client->Close();
    if (err.ok()) return;  // Clean stop.
    // Fail-stop: a link that broke mid-stream never silently rejoins —
    // AwaitReplication must not count a peer whose floor is in doubt.
    MarkDead(link, err.message());
    return;
  }
}

Status ReplicationHub::ServeLink(Link* link, OnexClient* client) {
  // The thread's own view of each dataset's acked floor; link->floors
  // mirrors it for AwaitReplication/StatusJson.
  std::map<std::string, std::uint64_t> floors;

  auto subscribe = [&](const std::string& dataset) -> Status {
    if (floors.count(dataset) != 0) return Status::OK();
    WireRequest hello;
    hello.command = "REPLHELLO dataset=" + dataset;
    ONEX_ASSIGN_OR_RETURN(WireResponse response, client->CallWire(hello));
    if (!response.body["ok"].as_bool()) {
      return Status::IoError("peer " + link->label + " rejected REPLHELLO: " +
                             response.body["error"].as_string());
    }
    const auto floor =
        static_cast<std::uint64_t>(response.body["last_seq"].as_number());
    floors[dataset] = floor;
    {
      std::lock_guard<std::mutex> lock(link->mutex);
      link->floors[dataset] = floor;
    }
    link->ack_cv.notify_all();
    return Status::OK();
  };

  for (;;) {
    std::vector<Item> batch;
    {
      std::unique_lock<std::mutex> lock(link->mutex);
      link->cv.wait(lock, [link] {
        return link->stop || !link->alive || !link->queue.empty();
      });
      if (link->stop || !link->alive) return Status::OK();
      const std::string dataset = link->queue.front().dataset;
      while (!link->queue.empty() &&
             link->queue.front().dataset == dataset &&
             batch.size() < options_.batch_records) {
        batch.push_back(std::move(link->queue.front()));
        link->queue.pop_front();
      }
    }
    const std::string dataset = batch.front().dataset;
    ONEX_RETURN_IF_ERROR(subscribe(dataset));

    const bool hinted =
        std::any_of(batch.begin(), batch.end(),
                    [](const Item& item) { return item.line == nullptr; });
    std::uint64_t floor = floors[dataset];
    std::vector<std::string> lines;
    std::uint64_t first = 0;
    bool contiguous = true;
    for (const Item& item : batch) {
      if (item.line == nullptr || item.seq <= floor) continue;
      if (lines.empty()) {
        first = item.seq;
        contiguous = (item.seq == floor + 1);
      }
      lines.push_back(*item.line);
    }
    if (hinted || !contiguous) {
      // The peer is behind the live window (fresh subscription, or records
      // predating the sink): replay from the local WAL file. Everything in
      // this batch was journaled before its sink event fired, so the file
      // covers the batch too.
      ONEX_RETURN_IF_ERROR(CatchUpFromFile(link, client, dataset));
      {
        std::lock_guard<std::mutex> lock(link->mutex);
        floors[dataset] = link->floors[dataset];
      }
      continue;
    }
    if (lines.empty()) continue;
    ONEX_RETURN_IF_ERROR(ShipBatch(link, client, dataset, first, lines));
    floors[dataset] = first + lines.size() - 1;
  }
}

Status ReplicationHub::ShipBatch(Link* link, OnexClient* client,
                                 const std::string& dataset,
                                 std::uint64_t first_seq,
                                 const std::vector<std::string>& lines) {
  WireRequest request;
  request.command = EncodeReplApplyText(dataset, first_seq, lines);
  ONEX_ASSIGN_OR_RETURN(WireResponse response, client->CallWire(request));
  if (!response.body["ok"].as_bool()) {
    return Status::IoError("peer " + link->label + " rejected REPLAPPLY: " +
                           response.body["error"].as_string());
  }
  const auto acked =
      static_cast<std::uint64_t>(response.body["last_seq"].as_number());
  {
    std::lock_guard<std::mutex> lock(link->mutex);
    std::uint64_t& floor = link->floors[dataset];
    floor = std::max(floor, acked);
  }
  link->ack_cv.notify_all();
  return Status::OK();
}

Status ReplicationHub::CatchUpFromFile(Link* link, OnexClient* client,
                                       const std::string& dataset) {
  ONEX_ASSIGN_OR_RETURN(
      WalScan scan, ScanWalFile(WalPathFor(engine_->registry(), dataset)));
  std::uint64_t floor;
  {
    std::lock_guard<std::mutex> lock(link->mutex);
    floor = link->floors[dataset];
  }
  std::vector<std::string> lines;
  std::uint64_t first = 0;
  for (const WalRecord& record : scan.records) {
    if (record.seq <= floor) continue;
    if (record.type == WalRecordType::kCheckpoint) {
      return Status::FailedPrecondition(
          "dataset '" + dataset +
          "' has checkpoint history; cluster nodes must run with "
          "checkpointing disabled so the full log is shippable");
    }
    if (lines.empty()) {
      first = record.seq;
      if (record.seq != floor + 1) {
        return Status::FailedPrecondition(StrFormat(
            "wal for '%s' starts at seq %llu but the peer floor is %llu; "
            "the log was rotated and cannot replicate bit-identically",
            dataset.c_str(), static_cast<unsigned long long>(record.seq),
            static_cast<unsigned long long>(floor)));
      }
    }
    lines.push_back(EncodeWalRecord(record));
    if (lines.size() == options_.batch_records) {
      ONEX_RETURN_IF_ERROR(ShipBatch(link, client, dataset, first, lines));
      floor = first + lines.size() - 1;
      lines.clear();
    }
  }
  if (!lines.empty()) {
    ONEX_RETURN_IF_ERROR(ShipBatch(link, client, dataset, first, lines));
  }
  return Status::OK();
}

std::size_t ReplicationHub::AwaitReplication(const std::string& dataset,
                                             std::uint64_t seq) {
  const auto deadline =
      std::chrono::steady_clock::now() + options_.ack_timeout;
  std::size_t acked = 0;
  for (auto& link : links_) {
    bool timed_out = false;
    bool has = false;
    {
      std::unique_lock<std::mutex> lock(link->mutex);
      const bool done = link->ack_cv.wait_until(lock, deadline, [&] {
        if (link->stop || !link->alive) return true;
        auto it = link->floors.find(dataset);
        return it != link->floors.end() && it->second >= seq;
      });
      timed_out = !done;
      auto it = link->floors.find(dataset);
      has = link->alive && !link->stop && it != link->floors.end() &&
            it->second >= seq;
    }
    if (timed_out) {
      MarkDead(link.get(), StrFormat(
          "ack timeout waiting for %s@%llu", dataset.c_str(),
          static_cast<unsigned long long>(seq)));
      continue;
    }
    if (has) ++acked;
  }
  return acked;
}

json::Value ReplicationHub::StatusJson() const {
  json::Value peers = json::Value::MakeArray();
  for (const auto& link : links_) {
    std::lock_guard<std::mutex> lock(link->mutex);
    json::Value row = json::Value::MakeObject();
    row.Set("peer", link->label);
    row.Set("alive", link->alive);
    row.Set("connected", link->connected);
    if (!link->last_error.empty()) row.Set("error", link->last_error);
    json::Value floors = json::Value::MakeObject();
    for (const auto& [dataset, floor] : link->floors) {
      floors.Set(dataset, floor);
    }
    row.Set("floors", std::move(floors));
    peers.Append(std::move(row));
  }
  return peers;
}

}  // namespace onex::net
