#include "onex/net/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

namespace onex::net {
namespace {

/// The fixed verb table. Order is the wire-protocol table order
/// (protocol.h) plus the serving-layer verbs; the last entry absorbs
/// everything unrecognized (typos, fuzz noise).
constexpr const char* kMetricVerbs[] = {
    "PING",     "LIST",    "DATASETS", "USE",       "BUDGET",  "TIER",
    "GEN",      "LOAD",    "DROP",     "PREPARE",   "APPEND",  "EXTEND",
    "DRIFT",    "SAVEBASE", "LOADBASE", "PERSIST", "CHECKPOINT", "STATS",
    "CATALOG",  "OVERVIEW", "MATCH",   "KNN",      "BATCH",   "SEASONAL",
    "THRESHOLD", "ANOMALY", "CHANGEPOINT", "MOTIF", "FORECAST",
    "BIN",      "METRICS", "QUIT",     "OTHER",
};
constexpr std::size_t kNumVerbs =
    sizeof(kMetricVerbs) / sizeof(kMetricVerbs[0]);

}  // namespace

ServerMetrics::ServerMetrics() : start_(std::chrono::steady_clock::now()) {
  static_assert(kNumVerbs <= kMaxVerbs,
                "grow kMaxVerbs alongside the verb table");
}

std::size_t ServerMetrics::VerbIndex(const std::string& verb) {
  for (std::size_t i = 0; i < kNumVerbs - 1; ++i) {
    if (verb == kMetricVerbs[i]) return i;
  }
  return kNumVerbs - 1;  // OTHER
}

std::size_t ServerMetrics::HistBucket(double latency_ms) {
  const double us = latency_ms * 1000.0;
  if (!(us > 1.0)) return 0;
  const double idx = 4.0 * std::log2(us);
  if (idx >= static_cast<double>(kHistBuckets - 1)) return kHistBuckets - 1;
  return static_cast<std::size_t>(idx);
}

double ServerMetrics::BucketMidMs(std::size_t bucket) {
  // Geometric midpoint of [2^(b/4), 2^((b+1)/4)] microseconds.
  const double us = std::exp2((static_cast<double>(bucket) + 0.5) / 4.0);
  return us / 1000.0;
}

std::int64_t ServerMetrics::UptimeSeconds() const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void ServerMetrics::RecordRequest(std::size_t verb_index, double latency_ms,
                                  bool deadline_expired) {
  if (verb_index >= kNumVerbs) verb_index = kNumVerbs - 1;
  VerbStats& vs = verbs_[verb_index];
  vs.count.fetch_add(1, kRelaxed);
  vs.hist[HistBucket(latency_ms)].fetch_add(1, kRelaxed);
  requests_.fetch_add(1, kRelaxed);
  if (deadline_expired) deadline_expired_.fetch_add(1, kRelaxed);

  // Rolling qps ring: claim the slot for the current second, then count.
  // The claim races benignly — a lost update near a second boundary skews
  // one slot by a handful of requests, which is noise at qps scale.
  const std::int64_t sec = UptimeSeconds();
  QpsSlot& slot = qps_[static_cast<std::size_t>(sec) % kQpsSlots];
  std::int64_t cur = slot.second.load(kRelaxed);
  if (cur != sec && slot.second.compare_exchange_strong(cur, sec, kRelaxed)) {
    slot.count.store(0, kRelaxed);
  }
  slot.count.fetch_add(1, kRelaxed);
}

void ServerMetrics::ConnectionOpened() {
  connections_total_.fetch_add(1, kRelaxed);
  const std::uint64_t live = connections_live_.fetch_add(1, kRelaxed) + 1;
  std::uint64_t peak = connections_peak_.load(kRelaxed);
  while (live > peak &&
         !connections_peak_.compare_exchange_weak(peak, live, kRelaxed)) {
  }
}

json::Value ServerMetrics::ToJson() const {
  json::Value v = json::Value::MakeObject();
  v.Set("ok", true);
  v.Set("uptime_s", static_cast<double>(UptimeSeconds()));
  v.Set("requests", requests_.load(kRelaxed));
  v.Set("bytes_in", bytes_in_.load(kRelaxed));
  v.Set("bytes_out", bytes_out_.load(kRelaxed));
  v.Set("queue_depth", queue_depth_.load(kRelaxed));
  v.Set("deadline_expired", deadline_expired_.load(kRelaxed));
  v.Set("slow_reader_disconnects", slow_disconnects_.load(kRelaxed));

  json::Value conns = json::Value::MakeObject();
  conns.Set("live", connections_live_.load(kRelaxed));
  conns.Set("peak", connections_peak_.load(kRelaxed));
  conns.Set("total", connections_total_.load(kRelaxed));
  conns.Set("binary_upgrades", binary_upgrades_.load(kRelaxed));
  v.Set("connections", std::move(conns));

  // qps over the last completed window (current second excluded — it is
  // still filling). Early in life the divisor is the short uptime instead,
  // so a 2-second-old server doesn't report a tenth of its rate.
  const std::int64_t now_sec = UptimeSeconds();
  std::uint64_t in_window = 0;
  const std::int64_t window =
      std::min<std::int64_t>(kQpsWindowSeconds, std::max<std::int64_t>(now_sec, 1));
  for (std::int64_t s = now_sec - window; s < now_sec; ++s) {
    if (s < 0) continue;
    const QpsSlot& slot = qps_[static_cast<std::size_t>(s) % kQpsSlots];
    if (slot.second.load(kRelaxed) == s) in_window += slot.count.load(kRelaxed);
  }
  v.Set("qps", static_cast<double>(in_window) / static_cast<double>(window));

  json::Value verbs = json::Value::MakeObject();
  for (std::size_t i = 0; i < kNumVerbs; ++i) {
    const VerbStats& vs = verbs_[i];
    const std::uint64_t count = vs.count.load(kRelaxed);
    if (count == 0) continue;  // keep the response proportional to traffic
    json::Value row = json::Value::MakeObject();
    row.Set("count", count);
    // Percentiles from the histogram, nearest-rank: the p-th percentile is
    // the ceil(p * count)-th smallest sample (1-indexed). The old
    // floor(p * (count-1)) walk truncated the rank, so a tail of one slow
    // request among many fast ones never surfaced — p99 of {10 x 2us,
    // 1 x 100ms} reported the 2us bucket.
    const double targets[] = {0.50, 0.95, 0.99};
    const char* names[] = {"p50_ms", "p95_ms", "p99_ms"};
    for (int t = 0; t < 3; ++t) {
      const auto rank = static_cast<std::uint64_t>(
          std::ceil(targets[t] * static_cast<double>(count)));
      std::uint64_t seen = 0;
      double value = 0.0;
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        seen += vs.hist[b].load(kRelaxed);
        if (seen >= rank) {
          value = BucketMidMs(b);
          break;
        }
      }
      row.Set(names[t], value);
    }
    verbs.Set(kMetricVerbs[i], std::move(row));
  }
  v.Set("verbs", std::move(verbs));
  return v;
}

}  // namespace onex::net
