#ifndef ONEX_NET_FRAME_H_
#define ONEX_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "onex/common/result.h"

namespace onex::net {

class Socket;

/// The ONEXB length-prefixed binary frame, negotiated per connection with
/// the text protocol's BIN verb (protocol.h). One frame carries one request
/// or one response; the fixed little-endian header makes it cheap to decode
/// incrementally off a nonblocking socket:
///
///   offset  size  field
///   0       5     magic "ONEXB"
///   5       1     version (kFrameVersion)
///   6       1     type: 1 = request, 2 = response
///   7       1     flags (responses: bit 0 set when the body is {"ok":false})
///   8       8     u64 request id (echoed verbatim on the response, so a
///                 pipelining client can match out-of-order completions)
///   16      4     u32 text length in bytes
///   20      4     u32 value count (trailing raw IEEE-754 float64s)
///   24      ...   text, then value_count * 8 bytes of little-endian doubles
///
/// `text` is a command line (requests) or a single-line JSON body byte-
/// identical to the text protocol's (responses) — the frame changes how
/// bytes are carried, never what they say. `values` carries the bulk floats
/// that are wasteful as ASCII: APPEND/EXTEND points on requests (the
/// executor consumes them in place of v=/points=), matched subsequence
/// values on MATCH/KNN/BATCH responses (concatenated in match order; each
/// match's "length" field in the JSON slices them apart).
///
/// Both declared lengths are capped *before* any allocation (FrameLimits),
/// mirroring the text protocol's anti-allocation contract: a 16-byte header
/// claiming a 4 GiB body is rejected for the price of reading 24 bytes.
inline constexpr char kFrameMagic[5] = {'O', 'N', 'E', 'X', 'B'};
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;

enum class FrameType : std::uint8_t { kRequest = 1, kResponse = 2 };
inline constexpr std::uint8_t kFrameFlagError = 0x1;

struct Frame {
  FrameType type = FrameType::kRequest;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::string text;
  std::vector<double> values;
};

/// Decode-side allocation caps. The server holds requests to the text
/// protocol's own limits (a command line cap, an APPEND-sized value cap);
/// clients reading trusted responses use looser ones, exactly like
/// LineReader's asymmetric line caps.
struct FrameLimits {
  std::size_t max_text_bytes = 64u << 20;      // LineReader's request cap
  std::size_t max_values = 2'000'000;          // kMaxGenPoints-sized payload
};

/// Loose limits for a client decoding responses from a server it chose to
/// trust (large KNN/BATCH value payloads).
FrameLimits ResponseFrameLimits();

std::string EncodeFrame(const Frame& frame);

/// Incremental decode from the front of `buffer`.
enum class FrameDecodeState {
  kNeedMore,  ///< No complete frame yet; read more bytes and retry.
  kFrame,     ///< One frame decoded; `consumed` bytes are spent.
  kError,     ///< Unrecoverable framing violation; close the connection.
};

struct FrameDecodeResult {
  FrameDecodeState state = FrameDecodeState::kNeedMore;
  std::size_t consumed = 0;  ///< Valid when state == kFrame.
  Frame frame;               ///< Valid when state == kFrame.
  Status error;              ///< Valid when state == kError.
};

/// Inspects the buffer head: kNeedMore while the header or body is still
/// partial, kFrame once a whole frame is present, kError on bad magic /
/// version / type or a declared length beyond `limits`. Never allocates
/// more than the (capped) declared body size, and never consumes bytes on
/// kNeedMore/kError — resynchronizing inside a corrupt binary stream is
/// impossible, so the caller's only safe move on kError is to drop the
/// connection.
FrameDecodeResult DecodeFrame(std::string_view buffer,
                              const FrameLimits& limits = {});

/// Blocking frame reader for client-side use (the reactor decodes straight
/// from its own input buffer instead). Pairs with LineReader: same Socket,
/// same EOF discipline — a partial trailing frame at EOF is an error, not a
/// frame.
class FrameReader {
 public:
  explicit FrameReader(Socket* socket, FrameLimits limits)
      : socket_(socket), limits_(limits) {}

  Result<Frame> ReadFrame();

 private:
  Socket* socket_;
  FrameLimits limits_;
  std::string buffer_;
};

}  // namespace onex::net

#endif  // ONEX_NET_FRAME_H_
