#include "onex/net/client.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace onex::net {

Result<OnexClient> OnexClient::Connect(const std::string& host,
                                       std::uint16_t port) {
  ONEX_ASSIGN_OR_RETURN(Socket sock, ConnectTcp(host, port));
  OnexClient client;
  client.socket_ = std::make_unique<Socket>(std::move(sock));
  // The client reads responses from the server the caller chose to trust,
  // and legal responses (large KNN/CATALOG payloads) can exceed the
  // server-side request cap by orders of magnitude — so the response limit
  // is far looser than LineReader's default.
  client.reader_ = std::make_unique<LineReader>(client.socket_.get(),
                                                /*max_line_bytes=*/1u << 30);
  return client;
}

Result<json::Value> OnexClient::Call(const std::string& command_line) {
  WireRequest request;
  request.command = command_line;
  if (!request.command.empty() && request.command.back() == '\n') {
    request.command.pop_back();
  }
  ONEX_ASSIGN_OR_RETURN(WireResponse response, CallWire(request));
  return std::move(response.body);
}

Status OnexClient::UpgradeBinary() {
  if (binary()) return Status::OK();
  ONEX_ASSIGN_OR_RETURN(json::Value ack, Call("BIN"));
  if (!ack["ok"].as_bool()) {
    return Status::FailedPrecondition("server rejected BIN upgrade: " +
                                      ack["error"].as_string());
  }
  // The ack was this connection's last text line; with no other request
  // outstanding the line reader holds no buffered bytes, so the frame
  // reader starts exactly at the first frame boundary.
  frames_ = std::make_unique<FrameReader>(socket_.get(),
                                          ResponseFrameLimits());
  return Status::OK();
}

Result<WireResponse> OnexClient::ReadOneResponse() {
  if (binary()) {
    ONEX_ASSIGN_OR_RETURN(Frame frame, frames_->ReadFrame());
    WireResponse response;
    ONEX_ASSIGN_OR_RETURN(response.body, json::Parse(frame.text));
    response.values = std::move(frame.values);
    return response;
  }
  ONEX_ASSIGN_OR_RETURN(std::string line, reader_->ReadLine());
  WireResponse response;
  ONEX_ASSIGN_OR_RETURN(response.body, json::Parse(line));
  return response;
}

Result<WireResponse> OnexClient::CallWire(const WireRequest& request) {
  if (socket_ == nullptr || !socket_->valid()) {
    return Status::IoError("client is not connected");
  }
  if (binary()) {
    Frame frame;
    frame.type = FrameType::kRequest;
    frame.request_id = next_request_id_++;
    frame.text = request.command;
    frame.values = request.values;
    ONEX_RETURN_IF_ERROR(socket_->SendAll(EncodeFrame(frame)));
  } else {
    if (!request.values.empty()) {
      return Status::InvalidArgument(
          "binary value payloads need UpgradeBinary() first");
    }
    ONEX_RETURN_IF_ERROR(socket_->SendAll(request.command + "\n"));
  }
  return ReadOneResponse();
}

Result<std::vector<WireResponse>> OnexClient::SendMany(
    const std::vector<WireRequest>& requests, std::size_t window) {
  SendManyOutcome outcome = SendManyTracked(requests, window);
  if (!outcome.status.ok()) return outcome.status;
  return std::move(outcome.responses);
}

SendManyOutcome OnexClient::SendManyTracked(
    const std::vector<WireRequest>& requests, std::size_t window) {
  const std::size_t n = requests.size();
  SendManyOutcome outcome;
  outcome.responses.resize(n);
  outcome.completed.assign(n, false);
  auto fail = [&outcome](Status status) -> SendManyOutcome {
    outcome.status = std::move(status);
    return std::move(outcome);
  };
  if (socket_ == nullptr || !socket_->valid()) {
    return fail(Status::IoError("client is not connected"));
  }
  if (window == 0) window = 1;
  // Frame id → request index, for matching the reactor's out-of-order
  // binary completions back to their slots. Text responses are positional.
  std::map<std::uint64_t, std::size_t> pending;

  std::size_t sent = 0;
  std::size_t received = 0;
  while (received < n) {
    if (sent < n && sent - received < window) {
      // Write the whole admissible burst as one buffer: pipelining's win is
      // precisely this — many requests per syscall and per wakeup.
      std::string burst;
      while (sent < n && sent - received < window) {
        const WireRequest& request = requests[sent];
        if (binary()) {
          Frame frame;
          frame.type = FrameType::kRequest;
          frame.request_id = next_request_id_++;
          frame.text = request.command;
          frame.values = request.values;
          pending[frame.request_id] = sent;
          burst += EncodeFrame(frame);
        } else {
          if (!request.values.empty()) {
            return fail(Status::InvalidArgument(
                "binary value payloads need UpgradeBinary() first"));
          }
          burst += request.command;
          burst += '\n';
        }
        ++sent;
      }
      if (Status s = socket_->SendAll(burst); !s.ok()) {
        return fail(std::move(s));
      }
    }
    if (binary()) {
      Result<Frame> frame = frames_->ReadFrame();
      if (!frame.ok()) return fail(frame.status());
      auto it = pending.find(frame->request_id);
      if (it == pending.end()) {
        return fail(Status::IoError("response for unknown request id " +
                                    std::to_string(frame->request_id)));
      }
      const std::size_t slot = it->second;
      pending.erase(it);
      Result<json::Value> body = json::Parse(frame->text);
      if (!body.ok()) return fail(body.status());
      outcome.responses[slot].body = std::move(*body);
      outcome.responses[slot].values = std::move(frame->values);
      outcome.completed[slot] = true;
    } else {
      Result<WireResponse> response = ReadOneResponse();
      if (!response.ok()) return fail(response.status());
      outcome.responses[received] = std::move(*response);
      outcome.completed[received] = true;
    }
    ++received;
  }
  outcome.status = Status::OK();
  return outcome;
}

void OnexClient::Close() {
  if (socket_ != nullptr) socket_->Close();
}

}  // namespace onex::net
