#include "onex/net/client.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace onex::net {

Result<OnexClient> OnexClient::Connect(const std::string& host,
                                       std::uint16_t port) {
  ONEX_ASSIGN_OR_RETURN(Socket sock, ConnectTcp(host, port));
  OnexClient client;
  client.socket_ = std::make_unique<Socket>(std::move(sock));
  // The client reads responses from the server the caller chose to trust,
  // and legal responses (large KNN/CATALOG payloads) can exceed the
  // server-side request cap by orders of magnitude — so the response limit
  // is far looser than LineReader's default.
  client.reader_ = std::make_unique<LineReader>(client.socket_.get(),
                                                /*max_line_bytes=*/1u << 30);
  return client;
}

Result<json::Value> OnexClient::Call(const std::string& command_line) {
  if (socket_ == nullptr || !socket_->valid()) {
    return Status::IoError("client is not connected");
  }
  std::string line = command_line;
  if (line.empty() || line.back() != '\n') line += '\n';
  ONEX_RETURN_IF_ERROR(socket_->SendAll(line));
  ONEX_ASSIGN_OR_RETURN(std::string response, reader_->ReadLine());
  return json::Parse(response);
}

void OnexClient::Close() {
  if (socket_ != nullptr) socket_->Close();
}

}  // namespace onex::net
