#ifndef ONEX_NET_METRICS_H_
#define ONEX_NET_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "onex/json/json.h"

namespace onex::net {

/// Serving statistics behind the METRICS verb (reactor.h): request counts
/// and latency histograms per verb, rolling qps, connection and byte
/// counters, backpressure outcomes. Everything is relaxed atomics — a
/// metrics read races benignly with writers and reports a near-instant
/// snapshot, never blocks the serving path.
///
/// Latencies land in log-scale buckets (4 per octave of microseconds, so
/// ~19% worst-case quantile error) and p50/p95/p99 are interpolated from
/// the histogram at METRICS time. qps comes from a ring of per-second
/// counters over the last completed 10 seconds.
class ServerMetrics {
 public:
  ServerMetrics();

  /// Fixed verb table index; unknown verbs collapse into "OTHER".
  static std::size_t VerbIndex(const std::string& verb);

  void RecordRequest(std::size_t verb_index, double latency_ms,
                     bool deadline_expired);
  void AddBytesIn(std::uint64_t n) { bytes_in_.fetch_add(n, kRelaxed); }
  void AddBytesOut(std::uint64_t n) { bytes_out_.fetch_add(n, kRelaxed); }

  void ConnectionOpened();
  void ConnectionClosed() { connections_live_.fetch_sub(1, kRelaxed); }
  void BinaryUpgrade() { binary_upgrades_.fetch_add(1, kRelaxed); }
  void SlowReaderDisconnect() { slow_disconnects_.fetch_add(1, kRelaxed); }

  /// Requests recorded but not yet answered, across all connections.
  void QueueEnter() { queue_depth_.fetch_add(1, kRelaxed); }
  void QueueLeave() { queue_depth_.fetch_sub(1, kRelaxed); }

  std::uint64_t connections_live() const {
    return connections_live_.load(kRelaxed);
  }
  std::uint64_t slow_reader_disconnects() const {
    return slow_disconnects_.load(kRelaxed);
  }
  std::uint64_t deadline_expired() const {
    return deadline_expired_.load(kRelaxed);
  }
  std::uint64_t requests_total() const { return requests_.load(kRelaxed); }

  /// The METRICS response body (includes "ok":true).
  json::Value ToJson() const;

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;
  /// 4 buckets per octave over [1us, ~2^36us]; index 0 also absorbs sub-us.
  static constexpr std::size_t kHistBuckets = 144;
  static constexpr std::size_t kQpsSlots = 16;
  static constexpr std::size_t kQpsWindowSeconds = 10;

  struct VerbStats {
    std::atomic<std::uint64_t> count{0};
    std::array<std::atomic<std::uint64_t>, kHistBuckets> hist{};
  };
  struct QpsSlot {
    std::atomic<std::int64_t> second{-1};
    std::atomic<std::uint64_t> count{0};
  };

  static std::size_t HistBucket(double latency_ms);
  /// Representative latency (ms) for a bucket, used when interpolating.
  static double BucketMidMs(std::size_t bucket);
  std::int64_t UptimeSeconds() const;

  std::chrono::steady_clock::time_point start_;
  // One VerbStats per kMetricVerbs entry; sized in the .cc against the table.
  static constexpr std::size_t kMaxVerbs = 40;
  std::array<VerbStats, kMaxVerbs> verbs_;
  std::array<QpsSlot, kQpsSlots> qps_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> connections_live_{0};
  std::atomic<std::uint64_t> connections_peak_{0};
  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> binary_upgrades_{0};
  std::atomic<std::uint64_t> slow_disconnects_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> queue_depth_{0};
};

}  // namespace onex::net

#endif  // ONEX_NET_METRICS_H_
