#ifndef ONEX_NET_CLIENT_H_
#define ONEX_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "onex/common/result.h"
#include "onex/json/json.h"
#include "onex/net/frame.h"
#include "onex/net/socket.h"

namespace onex::net {

/// One request on the wire: a protocol command line plus (binary mode only)
/// a raw float64 payload, delivered to APPEND/EXTEND in place of the ASCII
/// v=/points= options.
struct WireRequest {
  std::string command;
  std::vector<double> values;
};

/// One decoded response: the JSON body (identical across both wire
/// dialects) plus the raw float64 section a binary response carries —
/// MATCH/KNN/BATCH match values, concatenated in match order and sliced by
/// each match's "length" field. Always empty in text mode.
struct WireResponse {
  json::Value body;
  std::vector<double> values;
};

/// Full outcome of a pipelined batch. On transport failure mid-stream the
/// status is the error and `completed` records exactly which request
/// indices finished (response fully received and decoded) before the
/// connection died — in binary mode completions can be out of order, so
/// this is a per-id map, not a prefix length. `responses[i]` is meaningful
/// iff `completed[i]`. This is what lets the cluster coordinator (and any
/// careful caller) keep the answers it already has and retry only the
/// unacknowledged idempotent reads on a fresh connection.
struct SendManyOutcome {
  Status status;  ///< OK when every request completed.
  std::vector<WireResponse> responses;
  std::vector<bool> completed;
};

/// Synchronous client for the ONEX protocol — what the demo's browser
/// front-end would be. Starts in the newline/JSON text dialect;
/// UpgradeBinary() negotiates the ONEXB frame (frame.h) after which every
/// request and response is a frame. SendMany() pipelines a batch of
/// requests over the one connection with a bounded in-flight window —
/// against the reactor server this collapses per-request round-trips into
/// streaming writes and reads.
class OnexClient {
 public:
  static Result<OnexClient> Connect(const std::string& host,
                                    std::uint16_t port);

  /// Sends one protocol line and parses the JSON response (works in both
  /// dialects; in binary mode the payload/value sections ride empty). A
  /// transport failure returns IoError; a server-side error returns the
  /// decoded {"ok":false} payload (callers check ["ok"]).
  Result<json::Value> Call(const std::string& command_line);

  /// Negotiates the ONEXB binary frame with the BIN verb. Call with no
  /// requests outstanding (the ack is the connection's last text line).
  /// Fails against a server that does not speak BIN — the text dialect
  /// keeps working in that case.
  Status UpgradeBinary();

  bool binary() const { return frames_ != nullptr; }

  /// One request, full wire detail (binary payloads in, raw values out).
  Result<WireResponse> CallWire(const WireRequest& request);

  /// Pipelines `requests` over the connection, at most `window` in flight
  /// at once (the window bounds both peers' buffering; responses drain as
  /// requests are still being written). Responses arrive in request order
  /// regardless of dialect: text responses are positional; binary
  /// responses may complete out of order on the server and are matched
  /// back by their echoed frame request id. Fails fast on the first
  /// transport error; server-side {"ok":false} bodies are results, not
  /// errors.
  Result<std::vector<WireResponse>> SendMany(
      const std::vector<WireRequest>& requests, std::size_t window = 32);

  /// SendMany with per-request completion detail: never "throws away" the
  /// responses that landed before a mid-stream transport error. See
  /// SendManyOutcome. After a non-OK outcome the connection is unusable
  /// (the stream position is ambiguous); reconnect before retrying the
  /// incomplete requests.
  SendManyOutcome SendManyTracked(const std::vector<WireRequest>& requests,
                                  std::size_t window = 32);

  void Close();

 private:
  OnexClient() = default;

  Result<WireResponse> ReadOneResponse();

  std::unique_ptr<Socket> socket_;
  std::unique_ptr<LineReader> reader_;
  /// Non-null once the connection speaks ONEXB.
  std::unique_ptr<FrameReader> frames_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace onex::net

#endif  // ONEX_NET_CLIENT_H_
