#ifndef ONEX_NET_CLIENT_H_
#define ONEX_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "onex/common/result.h"
#include "onex/json/json.h"
#include "onex/net/socket.h"

namespace onex::net {

/// Synchronous client for the ONEX line protocol — what the demo's browser
/// front-end would be. One command in flight at a time.
class OnexClient {
 public:
  static Result<OnexClient> Connect(const std::string& host,
                                    std::uint16_t port);

  /// Sends one protocol line and parses the JSON response. A transport
  /// failure returns IoError; a server-side error returns the decoded
  /// {"ok":false} payload (callers check ["ok"]).
  Result<json::Value> Call(const std::string& command_line);

  void Close();

 private:
  OnexClient() = default;

  std::unique_ptr<Socket> socket_;
  std::unique_ptr<LineReader> reader_;
};

}  // namespace onex::net

#endif  // ONEX_NET_CLIENT_H_
