#include "onex/common/task_pool.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <utility>

namespace onex {
namespace {

/// Queue index meaning "not a pool worker" (external ParallelFor callers).
constexpr std::size_t kExternal = std::numeric_limits<std::size_t>::max();

std::size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

TaskPool::TaskPool(std::size_t threads)
    : target_workers_(threads == 0 ? HardwareThreads() : threads) {
  queues_.reserve(target_workers_);
  for (std::size_t i = 0; i < target_workers_; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::EnsureStarted() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  workers_.reserve(target_workers_);
  for (std::size_t i = 0; i < target_workers_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void TaskPool::Submit(std::function<void()> task) {
  EnsureStarted();
  pending_.fetch_add(1);
  std::size_t slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    slot = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  wake_.notify_one();
}

bool TaskHandle::done() const {
  if (state_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->done;
}

void TaskHandle::Wait() const {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return state_->done; });
}

TaskHandle TaskPool::SubmitWithHandle(std::function<void()> task) {
  auto state = std::make_shared<TaskHandle::State>();
  Submit([state, task = std::move(task)] {
    task();
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->done = true;
    }
    state->cv.notify_all();
  });
  return TaskHandle(std::move(state));
}

bool TaskPool::TryRunOneTask(std::size_t self) {
  std::function<void()> task;
  // Own queue first, newest task (back): it is the one whose data is still
  // hot in this worker's cache.
  if (self != kExternal) {
    std::lock_guard<std::mutex> lock(queues_[self]->mutex);
    if (!queues_[self]->tasks.empty()) {
      task = std::move(queues_[self]->tasks.back());
      queues_[self]->tasks.pop_back();
    }
  }
  if (!task) {
    // Steal the oldest task (front) from a sibling, scanning round-robin
    // from the slot after ours so thieves spread across victims.
    const std::size_t start = self == kExternal ? 0 : self + 1;
    for (std::size_t k = 0; k < queues_.size() && !task; ++k) {
      WorkerQueue& q = *queues_[(start + k) % queues_.size()];
      std::lock_guard<std::mutex> lock(q.mutex);
      if (!q.tasks.empty()) {
        task = std::move(q.tasks.front());
        q.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  task();
  // Last task out wakes the pool: shutting-down workers (and the
  // destructor) park on wake_ until pending_ drains.
  if (pending_.fetch_sub(1) == 1) wake_.notify_all();
  return true;
}

void TaskPool::WorkerLoop(std::size_t self) {
  while (true) {
    if (TryRunOneTask(self)) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    // Exit only when shutdown is flagged AND nothing is left to run: a
    // worker whose first (empty) queue scan raced ahead of the initial
    // Submit burst must not retire while those tasks sit queued.
    if (shutdown_ && pending_.load() == 0) return;
    // Timed wait as lost-wakeup insurance: a Submit that raced our queue
    // scan has already notified, so the 50ms cap keeps the worker live.
    wake_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void TaskPool::ParallelFor(std::size_t n,
                           const std::function<void(std::size_t)>& body,
                           std::size_t max_concurrency) {
  if (n == 0) return;
  std::size_t width =
      max_concurrency == 0 ? target_workers_ + 1 : max_concurrency;
  width = std::min(width, n);
  if (width <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct State {
    std::atomic<std::size_t> next{0};       ///< Next unclaimed iteration.
    std::atomic<std::size_t> live_helpers{0};
    std::mutex mutex;
    std::condition_variable done;
  };
  auto state = std::make_shared<State>();
  // The caller blocks in this frame until every helper retires, so `body`
  // may be captured by reference.
  auto drain = [state, &body, n] {
    std::size_t i;
    while ((i = state->next.fetch_add(1)) < n) body(i);
  };

  const std::size_t helpers = width - 1;  // the caller takes one lane
  state->live_helpers.store(helpers);
  for (std::size_t h = 0; h < helpers; ++h) {
    Submit([state, drain] {
      drain();
      if (state->live_helpers.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->done.notify_all();
      }
    });
  }

  drain();  // caller participates

  // Help-first join: while helpers are outstanding, execute queued pool
  // tasks (ours or anyone's) instead of parking. This is what makes nested
  // ParallelFor deadlock-free: a caller never sleeps while runnable work
  // exists, so queued helper tasks always find a thread.
  while (state->live_helpers.load() != 0) {
    if (TryRunOneTask(kExternal)) continue;
    std::unique_lock<std::mutex> lock(state->mutex);
    if (state->live_helpers.load() == 0) break;
    state->done.wait_for(lock, std::chrono::milliseconds(1));
  }
}

TaskPool& TaskPool::Shared() {
  static TaskPool pool(0);
  return pool;
}

}  // namespace onex
