#include "onex/common/math_utils.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <span>
#include <vector>

namespace onex {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 1) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double Percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> Linspace(double lo, double hi, std::size_t n) {
  std::vector<double> out;
  if (n == 0) return out;
  out.reserve(n);
  if (n == 1) {
    out.push_back(lo);
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(lo + step * static_cast<double>(i));
  }
  return out;
}

bool AlmostEqual(double a, double b, double abs_tol, double rel_tol) {
  const double diff = std::abs(a - b);
  const double scale = std::max(std::abs(a), std::abs(b));
  return diff <= abs_tol + rel_tol * scale;
}

double PearsonCorrelation(std::span<const double> a,
                          std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

double Autocorrelation(std::span<const double> xs, std::size_t k) {
  if (k >= xs.size()) return 0.0;
  const double mu = Mean(xs);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double d = xs[i] - mu;
    den += d * d;
  }
  if (den == 0.0) return 0.0;
  for (std::size_t i = 0; i + k < xs.size(); ++i) {
    num += (xs[i] - mu) * (xs[i + k] - mu);
  }
  return num / den;
}

}  // namespace onex
