#ifndef ONEX_COMMON_RANDOM_H_
#define ONEX_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace onex {

/// Deterministic, seedable random source used by generators, samplers and
/// tests. A thin wrapper over std::mt19937_64 so every consumer shares one
/// reproducibility story: same seed, same platform-independent draws for the
/// integer helpers (the floating helpers depend only on the engine stream).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t UniformIndex(std::size_t n);

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// n i.i.d. Gaussian draws.
  std::vector<double> GaussianVector(std::size_t n, double mean = 0.0,
                                     double stddev = 1.0);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* xs) {
    if (xs->size() < 2) return;
    for (std::size_t i = xs->size() - 1; i > 0; --i) {
      std::swap((*xs)[i], (*xs)[UniformIndex(i + 1)]);
    }
  }

  /// Derives an independent child RNG; lets parallel generators share one
  /// top-level seed without correlated streams.
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace onex

#endif  // ONEX_COMMON_RANDOM_H_
