#ifndef ONEX_COMMON_LOGGING_H_
#define ONEX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace onex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped. Tests set kOff.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one formatted line to stderr if `level` passes the filter.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector used by the ONEX_LOG macro.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace onex

#define ONEX_LOG(level) \
  ::onex::internal::LogLine(::onex::LogLevel::level)

#endif  // ONEX_COMMON_LOGGING_H_
