#ifndef ONEX_COMMON_HASH_H_
#define ONEX_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace onex {

/// FNV-1a 64-bit over a byte range: the integrity checksum of every ONEX
/// persistence format (WAL records, ONEXCKPT payloads, ONEXARENA sections)
/// and the fingerprint the golden tests use. Not cryptographic — it guards
/// against torn writes and media corruption, not adversaries with write
/// access to the data dir.
std::uint64_t Fnv1a64(std::string_view bytes);

}  // namespace onex

#endif  // ONEX_COMMON_HASH_H_
