#ifndef ONEX_COMMON_CANCELLATION_H_
#define ONEX_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>

#include "onex/common/status.h"

namespace onex {

/// Cooperative cancellation token for long-running queries: a monotonic
/// deadline, an optional external kill flag, or both. The token itself is a
/// cheap value (a time point and a pointer); the query cascade polls it at
/// stage boundaries and between refined groups, so cancellation latency is
/// one cascade stage, never mid-DTW.
///
/// Two producers feed it:
///   - the protocol's `deadline_ms=` option (deadline measured from request
///     *arrival*, so time spent queued behind a pipeline counts against it);
///   - the reactor's per-connection disconnect flag, so a client that hangs
///     up mid-request stops burning pool time on an answer nobody will read.
///
/// Thread-safety: the deadline is set before the token is shared and never
/// written again; the external flag is an atomic owned by the caller (the
/// connection), which must outlive every query holding the token.
class Cancellation {
 public:
  using Clock = std::chrono::steady_clock;

  Cancellation() = default;
  Cancellation(Clock::time_point deadline, const std::atomic<bool>* external)
      : deadline_(deadline), external_(external) {}

  /// Token that only watches an external flag (no deadline).
  explicit Cancellation(const std::atomic<bool>* external)
      : external_(external) {}

  bool expired() const {
    if (external_ != nullptr && external_->load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline_ != Clock::time_point::max() && Clock::now() >= deadline_;
  }

  /// OK while live; DeadlineExceeded once the deadline passed or the caller
  /// disconnected (one code for both so clients branch on a single value,
  /// with the message telling the two apart).
  Status Check() const {
    if (external_ != nullptr && external_->load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded("request cancelled: caller disconnected");
    }
    if (deadline_ != Clock::time_point::max() && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  Clock::time_point deadline_ = Clock::time_point::max();
  const std::atomic<bool>* external_ = nullptr;
};

}  // namespace onex

#endif  // ONEX_COMMON_CANCELLATION_H_
