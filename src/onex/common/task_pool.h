#ifndef ONEX_COMMON_TASK_POOL_H_
#define ONEX_COMMON_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace onex {

/// Completion handle for a task submitted with TaskPool::SubmitWithHandle.
/// Copyable (handles share one completion record); a default-constructed
/// handle is empty and reports done. Wait() parks the caller — it does not
/// help drain the pool — so waiting from inside a pool task on a saturated
/// pool can stall; callers inside the pool should poll done() or structure
/// the work as ParallelFor instead.
class TaskHandle {
 public:
  TaskHandle() = default;

  bool valid() const { return state_ != nullptr; }

  /// True once the task body has returned (always true for empty handles).
  bool done() const;

  /// Blocks until the task body has returned. No-op for empty handles.
  void Wait() const;

 private:
  friend class TaskPool;
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
  };
  explicit TaskHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Shared work-stealing thread pool (DESIGN.md §6): the one execution
/// substrate behind base construction, the parallel query path and the
/// engine's batch APIs. One process-wide pool (Shared()) sized to the
/// hardware serves every caller, so concurrent queries multiplex over a
/// fixed set of OS threads instead of each spawning its own.
///
/// Structure: every worker owns a deque. Submitters push to the queues
/// round-robin; a worker pops from the back of its own queue (LIFO, cache
/// warm) and steals from the front of a sibling's queue (FIFO, oldest work
/// first) when its own runs dry.
///
/// Deadlock freedom: ParallelFor callers never park while work is
/// outstanding — they drain the iteration counter themselves and then help
/// execute queued pool tasks until their own tasks retire. Nested
/// ParallelFor from inside a pool task is therefore safe: some caller always
/// makes progress.
///
/// Workers start lazily on the first parallel call, so constructing a pool
/// (e.g. embedded in an Engine) costs nothing until parallelism is used.
class TaskPool {
 public:
  /// `threads` = worker count; 0 = one per hardware core. Workers are
  /// spawned on first use, not here.
  explicit TaskPool(std::size_t threads = 0);

  /// Joins all workers. Pending tasks are completed first.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Number of workers this pool will run (spawned or not).
  std::size_t worker_count() const { return target_workers_; }

  /// Enqueues one fire-and-forget task.
  void Submit(std::function<void()> task);

  /// Enqueues one task and returns a handle the caller can poll or wait on —
  /// how the engine's dataset registry tracks asynchronous preparation jobs
  /// (DESIGN.md §11).
  TaskHandle SubmitWithHandle(std::function<void()> task);

  /// Runs body(i) for every i in [0, n), distributing iterations over up to
  /// `max_concurrency` threads (0 = pool width + caller). Blocks until all
  /// iterations finish; the caller participates, so the call completes even
  /// on a pool with zero free workers. Iterations are claimed dynamically in
  /// index order; any iteration may run on any thread, so bodies must only
  /// write to disjoint, index-addressed state (results land deterministic).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body,
                   std::size_t max_concurrency = 0);

  /// The process-wide pool, created on first use, sized to the hardware.
  static TaskPool& Shared();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void EnsureStarted();
  void WorkerLoop(std::size_t self);
  /// Pops one task (own queue back first for `self` < workers, else steals a
  /// front task round-robin). Returns false when every queue is empty.
  bool TryRunOneTask(std::size_t self);

  const std::size_t target_workers_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;                 ///< Guards startup + sleep/wake.
  std::condition_variable wake_;
  bool started_ = false;
  bool shutdown_ = false;
  std::size_t next_queue_ = 0;       ///< Round-robin submission cursor.
  /// Tasks submitted but not yet finished executing. Workers only exit on
  /// shutdown when this reaches zero, so the destructor's "pending tasks
  /// complete first" guarantee holds even for tasks enqueued before any
  /// worker had its first look at the queues.
  std::atomic<std::size_t> pending_{0};
};

}  // namespace onex

#endif  // ONEX_COMMON_TASK_POOL_H_
