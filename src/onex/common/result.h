#ifndef ONEX_COMMON_RESULT_H_
#define ONEX_COMMON_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "onex/common/status.h"

namespace onex {

/// Either a value of type T or a non-OK Status explaining why there is none.
///
/// The usual flow:
///
///   Result<Dataset> r = LoadUcrFile(path);
///   if (!r.ok()) return r.status();
///   Dataset ds = std::move(r).value();
///
/// Constructing a Result from an OK status is a programming error and aborts:
/// an OK result must carry a value.
template <typename T>
class Result {
 public:
  /// Implicit from value, mirroring absl::StatusOr ergonomics.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (std::get<Status>(repr_).ok()) {
      // An OK status with no value is unrepresentable; fail loudly.
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status of the result: OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result holds an error.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace onex

/// Evaluates `rexpr` (a Result<T>), propagating errors, else binds the value.
#define ONEX_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  ONEX_ASSIGN_OR_RETURN_IMPL_(                                 \
      ONEX_RESULT_CONCAT_(_onex_result, __LINE__), lhs, rexpr)

#define ONEX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define ONEX_RESULT_CONCAT_(a, b) ONEX_RESULT_CONCAT_IMPL_(a, b)
#define ONEX_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // ONEX_COMMON_RESULT_H_
