#include "onex/common/status.h"

#include <string>

namespace onex {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace onex
