#ifndef ONEX_COMMON_MATH_UTILS_H_
#define ONEX_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace onex {

/// Small numeric helpers shared across the library. All functions take spans
/// so they work on whole series and on subsequence views alike.

/// Arithmetic mean; 0.0 for an empty span.
double Mean(std::span<const double> xs);

/// Population variance (divides by n); 0.0 for spans shorter than 1.
double Variance(std::span<const double> xs);

/// Population standard deviation.
double StdDev(std::span<const double> xs);

/// Minimum / maximum; both undefined (returns 0.0) on empty input.
double Min(std::span<const double> xs);
double Max(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
/// Returns 0.0 on empty input.
double Percentile(std::span<const double> xs, double p);

/// n evenly spaced values from lo to hi inclusive (n >= 2), or {lo} for n == 1.
std::vector<double> Linspace(double lo, double hi, std::size_t n);

/// True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool AlmostEqual(double a, double b, double abs_tol = 1e-9,
                 double rel_tol = 1e-9);

/// Pearson correlation of two equal-length spans; 0.0 when either side is
/// constant or lengths differ.
double PearsonCorrelation(std::span<const double> a, std::span<const double> b);

/// Lag-k autocorrelation of xs (biased estimator); 0.0 when k >= xs.size()
/// or xs is constant. Used by tests to verify planted seasonal periods.
double Autocorrelation(std::span<const double> xs, std::size_t k);

}  // namespace onex

#endif  // ONEX_COMMON_MATH_UTILS_H_
