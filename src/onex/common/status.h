#ifndef ONEX_COMMON_STATUS_H_
#define ONEX_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace onex {

/// Error categories used across the library. Mirrors the small, fixed set of
/// failure classes a caller can meaningfully branch on.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,  ///< Caller passed a value outside the documented domain.
  kNotFound = 2,         ///< Named dataset/series/group does not exist.
  kOutOfRange = 3,       ///< Index or interval outside the addressed container.
  kFailedPrecondition = 4,  ///< Operation ordering violated (e.g. query before build).
  kAlreadyExists = 5,    ///< Unique name collision.
  kIoError = 6,          ///< Filesystem or socket failure.
  kParseError = 7,       ///< Malformed input text (UCR file, JSON, protocol line).
  kInternal = 8,         ///< Invariant violation inside the library; a bug.
  kDeadlineExceeded = 9, ///< Cooperatively cancelled: deadline passed or caller gone.
};

/// Returns a stable human-readable name ("Ok", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Value-semantics status object carrying a code and a message.
///
/// Fallible ONEX APIs return `Status` (or `Result<T>`, see result.h) instead of
/// throwing; exceptions are reserved for programming errors. A default
/// constructed Status is OK, and OK statuses carry no message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace onex

/// Propagates a non-OK Status from the evaluated expression to the caller.
#define ONEX_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::onex::Status _onex_status = (expr);         \
    if (!_onex_status.ok()) return _onex_status;  \
  } while (false)

#endif  // ONEX_COMMON_STATUS_H_
