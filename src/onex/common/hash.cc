#include "onex/common/hash.h"

namespace onex {

std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace onex
