#include "onex/common/string_utils.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace onex {

std::vector<std::string> SplitString(std::string_view text,
                                     std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    if (end > start) out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::vector<std::string> SplitKeepEmpty(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t end = text.find(delim, start);
    if (end == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view TrimString(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

Result<double> ParseDouble(std::string_view text) {
  const std::string_view trimmed = TrimString(text);
  if (trimmed.empty()) {
    return Status::ParseError("empty string is not a number");
  }
  const std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::ParseError("not a number: '" + buf + "'");
  }
  return value;
}

Result<long long> ParseInt(std::string_view text) {
  const std::string_view trimmed = TrimString(text);
  if (trimmed.empty()) {
    return Status::ParseError("empty string is not an integer");
  }
  const std::string buf(trimmed);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || errno == ERANGE) {
    return Status::ParseError("not an integer: '" + buf + "'");
  }
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace onex
