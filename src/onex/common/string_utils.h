#ifndef ONEX_COMMON_STRING_UTILS_H_
#define ONEX_COMMON_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

#include "onex/common/result.h"

namespace onex {

/// Splits on any character in `delims`, dropping empty fields.
std::vector<std::string> SplitString(std::string_view text,
                                     std::string_view delims = " \t");

/// Splits on a single delimiter, keeping empty fields (CSV-style).
std::vector<std::string> SplitKeepEmpty(std::string_view text, char delim);

/// Removes leading/trailing whitespace.
std::string_view TrimString(std::string_view text);

std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Strict full-string numeric parses; reject partial consumption such as
/// "1.5abc" so malformed data files fail loudly instead of silently
/// truncating values.
Result<double> ParseDouble(std::string_view text);
Result<long long> ParseInt(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace onex

#endif  // ONEX_COMMON_STRING_UTILS_H_
