#include "onex/common/random.h"

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

namespace onex {

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

std::size_t Rng::UniformIndex(std::size_t n) {
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<double> Rng::GaussianVector(std::size_t n, double mean,
                                        double stddev) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(Gaussian(mean, stddev));
  return out;
}

Rng Rng::Fork() {
  // Two draws decorrelate the child stream from the parent's next draws.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace onex
