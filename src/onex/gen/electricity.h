#ifndef ONEX_GEN_ELECTRICITY_H_
#define ONEX_GEN_ELECTRICITY_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "onex/ts/dataset.h"

namespace onex::gen {

/// Synthetic household electricity consumption, standing in for the UCR
/// ElectricityLoad collection driving the paper's Seasonal View (Fig 4).
/// The signal is a sum of planted periodicities — a daily cycle (morning /
/// evening peaks), a weekly cycle (weekend shift) and an annual cycle
/// (winter heating vs. summer cooling regimes) — plus noise, so seasonal
/// mining has recoverable ground truth at known lags.
struct ElectricityOptions {
  std::size_t num_households = 1;
  /// Number of observations; with `samples_per_day` = 24 a year is 8760.
  std::size_t length = 24 * 365;
  std::size_t samples_per_day = 24;
  double daily_amplitude = 1.0;
  double weekly_amplitude = 0.3;
  double annual_amplitude = 0.6;
  double noise_stddev = 0.08;
  double base_load = 2.0;
  std::uint64_t seed = 7;
  std::string name = "electricity_load";
};

Dataset MakeElectricityLoad(const ElectricityOptions& options);

}  // namespace onex::gen

#endif  // ONEX_GEN_ELECTRICITY_H_
