#ifndef ONEX_GEN_GENERATORS_H_
#define ONEX_GEN_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "onex/common/random.h"
#include "onex/common/result.h"
#include "onex/ts/dataset.h"

namespace onex::gen {

/// Basic synthetic collections standing in for the UCR archive datasets used
/// by the paper's timing experiments (DESIGN.md §3). All generators are
/// deterministic given the seed.

struct RandomWalkOptions {
  std::size_t num_series = 50;
  std::size_t length = 100;
  double step_stddev = 1.0;
  double start_value = 0.0;
  std::uint64_t seed = 42;
  std::string name = "random_walk";
};

/// Gaussian random walks: the canonical hard case for grouping (little shared
/// structure), used to measure construction cost and compaction honestly.
Dataset MakeRandomWalks(const RandomWalkOptions& options);

struct SineFamilyOptions {
  std::size_t num_series = 50;
  std::size_t length = 100;
  /// Series are drawn from `num_shapes` base sinusoids (random frequency and
  /// phase per shape), plus per-series noise: a clustered collection where
  /// similarity groups are meaningful.
  std::size_t num_shapes = 5;
  double noise_stddev = 0.05;
  std::uint64_t seed = 42;
  std::string name = "sine_family";
};

/// Noisy sinusoid families; labels record the generating shape, giving tests
/// a clustering ground truth.
Dataset MakeSineFamilies(const SineFamilyOptions& options);

struct WarpedShapeOptions {
  std::size_t num_series = 50;
  std::size_t length = 100;
  /// Number of distinct base templates.
  std::size_t num_shapes = 4;
  /// Maximum local time-warp: each series is the template resampled through a
  /// smooth monotone time distortion whose slope varies in
  /// [1-warp_intensity, 1+warp_intensity]. This is the regime where DTW and
  /// ED disagree, the ingredient of the accuracy experiment E3.
  double warp_intensity = 0.4;
  double noise_stddev = 0.02;
  std::uint64_t seed = 42;
  /// Seed of the template shapes themselves. Two datasets generated with the
  /// same template_seed but different `seed`s contain fresh warped instances
  /// of the SAME shapes — the query-vs-corpus setup of the accuracy
  /// experiment (E3). 0 derives the templates from `seed`.
  std::uint64_t template_seed = 0;
  std::string name = "warped_shapes";
};

/// Time-warped instances of shared templates (cylinder / bell / funnel /
/// ramp). Labels record the template.
Dataset MakeWarpedShapes(const WarpedShapeOptions& options);

}  // namespace onex::gen

#endif  // ONEX_GEN_GENERATORS_H_
