#ifndef ONEX_GEN_ECONOMIC_PANEL_H_
#define ONEX_GEN_ECONOMIC_PANEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "onex/ts/dataset.h"

namespace onex::gen {

/// Synthetic MATTERS-style state economic panel (DESIGN.md §3). One series
/// per US state for a chosen indicator. States are grouped into economic
/// "blocks" that share a latent trend, so cross-state similarity has ground
/// truth; Massachusetts gets a designated partner state whose indicator
/// tracks MA's with a small lag — the pair the demo walkthrough finds.
enum class Indicator {
  kGrowthRate,       ///< Percent units, range roughly [-4, 8].
  kUnemployment,     ///< People, tens of thousands: a ~1000x larger scale.
  kTechEmployment,   ///< Thousand jobs; trending with moderate noise.
};

const char* IndicatorToString(Indicator indicator);

struct EconomicPanelOptions {
  Indicator indicator = Indicator::kGrowthRate;
  /// Yearly observations per state (the demo shows "the last 6 years"; the
  /// underlying MATTERS series are a few decades).
  std::size_t years = 25;
  /// Number of latent economic blocks sharing a trend.
  std::size_t num_blocks = 5;
  /// Partner state whose series is a lagged, lightly warped copy of MA's.
  std::string partner_state = "Arkansas";
  std::uint64_t seed = 2013;  ///< The motivating example's tax-repeal year.
};

/// All fifty state names, postal order (used as series names).
const std::vector<std::string>& StateNames();

/// Builds the panel: one series per state, labeled by latent block id.
Dataset MakeEconomicPanel(const EconomicPanelOptions& options);

}  // namespace onex::gen

#endif  // ONEX_GEN_ECONOMIC_PANEL_H_
