#include "onex/gen/electricity.h"

#include <cmath>
#include <cstddef>
#include <numbers>
#include <utility>
#include <vector>

#include "onex/common/random.h"
#include "onex/common/string_utils.h"

namespace onex::gen {

Dataset MakeElectricityLoad(const ElectricityOptions& options) {
  Rng rng(options.seed);
  Dataset ds(options.name);
  const double spd = static_cast<double>(options.samples_per_day);
  for (std::size_t h = 0; h < options.num_households; ++h) {
    // Per-household phase offsets: households differ in habits, not physics.
    const double morning = rng.Uniform(6.0, 9.0);
    const double evening = rng.Uniform(17.0, 21.0);
    const double habit_scale = rng.Uniform(0.8, 1.2);
    std::vector<double> vals;
    vals.reserve(options.length);
    for (std::size_t i = 0; i < options.length; ++i) {
      const double day = static_cast<double>(i) / spd;
      const double hour = std::fmod(static_cast<double>(i), spd) / spd * 24.0;
      // Daily: two Gaussian bumps at the morning and evening peaks.
      const double daily =
          options.daily_amplitude *
          (std::exp(-0.5 * std::pow((hour - morning) / 1.5, 2)) +
           1.3 * std::exp(-0.5 * std::pow((hour - evening) / 2.0, 2)));
      // Weekly: weekends run flatter and slightly higher at midday.
      const int dow = static_cast<int>(day) % 7;
      const double weekly =
          options.weekly_amplitude * ((dow == 5 || dow == 6) ? 1.0 : 0.0) *
          std::exp(-0.5 * std::pow((hour - 13.0) / 3.0, 2));
      // Annual: winter heating + summer cooling humps.
      const double year_frac = day / 365.0;
      const double annual =
          options.annual_amplitude *
          (0.6 * std::cos(2.0 * std::numbers::pi * year_frac) +
           0.4 * std::cos(4.0 * std::numbers::pi * year_frac));
      vals.push_back(options.base_load +
                     habit_scale * (daily + weekly) + annual +
                     rng.Gaussian(0.0, options.noise_stddev));
    }
    ds.Add(TimeSeries(StrFormat("household_%zu", h), std::move(vals)));
  }
  return ds;
}

}  // namespace onex::gen
