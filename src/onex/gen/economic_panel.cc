#include "onex/gen/economic_panel.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/random.h"
#include "onex/common/string_utils.h"

namespace onex::gen {

const char* IndicatorToString(Indicator indicator) {
  switch (indicator) {
    case Indicator::kGrowthRate:
      return "growth_rate";
    case Indicator::kUnemployment:
      return "unemployment";
    case Indicator::kTechEmployment:
      return "tech_employment";
  }
  return "unknown";
}

const std::vector<std::string>& StateNames() {
  static const std::vector<std::string>* const kNames =
      new std::vector<std::string>{
          "Alabama",       "Alaska",        "Arizona",       "Arkansas",
          "California",    "Colorado",      "Connecticut",   "Delaware",
          "Florida",       "Georgia",       "Hawaii",        "Idaho",
          "Illinois",      "Indiana",       "Iowa",          "Kansas",
          "Kentucky",      "Louisiana",     "Maine",         "Maryland",
          "Massachusetts", "Michigan",      "Minnesota",     "Mississippi",
          "Missouri",      "Montana",       "Nebraska",      "Nevada",
          "NewHampshire",  "NewJersey",     "NewMexico",     "NewYork",
          "NorthCarolina", "NorthDakota",   "Ohio",          "Oklahoma",
          "Oregon",        "Pennsylvania",  "RhodeIsland",   "SouthCarolina",
          "SouthDakota",   "Tennessee",     "Texas",         "Utah",
          "Vermont",       "Virginia",      "Washington",    "WestVirginia",
          "Wisconsin",     "Wyoming"};
  return *kNames;
}

namespace {

/// Indicator-specific level, amplitude and noise so the three domains land on
/// genuinely different numeric scales (the paper's threshold-recommendation
/// motivation).
struct IndicatorScale {
  double base;
  double trend_amp;
  double noise;
  double drift;
};

IndicatorScale ScaleFor(Indicator ind) {
  switch (ind) {
    case Indicator::kGrowthRate:
      return {2.0, 2.5, 0.4, 0.0};  // percent
    case Indicator::kUnemployment:
      return {120000.0, 35000.0, 4000.0, 1500.0};  // people
    case Indicator::kTechEmployment:
      return {80.0, 20.0, 3.0, 2.2};  // thousand jobs
  }
  return {0.0, 1.0, 0.1, 0.0};
}

}  // namespace

Dataset MakeEconomicPanel(const EconomicPanelOptions& options) {
  const std::vector<std::string>& states = StateNames();
  Rng rng(options.seed);
  const IndicatorScale scale = ScaleFor(options.indicator);
  const std::size_t blocks = std::max<std::size_t>(1, options.num_blocks);
  const std::size_t years = std::max<std::size_t>(4, options.years);

  // Latent block trends: smooth AR(1)-style paths with a shared recession dip
  // around 40% of the horizon (the 2008-shaped event every state shows).
  std::vector<std::vector<double>> block_trend(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    Rng brng = rng.Fork();
    std::vector<double>& trend = block_trend[b];
    trend.resize(years);
    double v = brng.Gaussian(0.0, 0.5);
    for (std::size_t t = 0; t < years; ++t) {
      v = 0.75 * v + brng.Gaussian(0.0, 0.45);
      const double recession =
          -1.4 * std::exp(-0.5 * std::pow((static_cast<double>(t) -
                                           0.4 * static_cast<double>(years)) /
                                              1.6,
                                          2));
      trend[t] = v + recession;
    }
  }

  Dataset ds(StrFormat("matters_%s", IndicatorToString(options.indicator)));
  std::vector<double> ma_values;  // filled when Massachusetts is generated

  for (std::size_t s = 0; s < states.size(); ++s) {
    const std::size_t block = s % blocks;
    Rng srng = rng.Fork();
    std::vector<double> vals(years);
    for (std::size_t t = 0; t < years; ++t) {
      const double shape =
          block_trend[block][t] + srng.Gaussian(0.0, scale.noise / scale.trend_amp);
      vals[t] = scale.base + scale.trend_amp * shape +
                scale.drift * static_cast<double>(t);
    }
    if (states[s] == "Massachusetts") ma_values = vals;
    ds.Add(TimeSeries(states[s], std::move(vals), StrFormat("%zu", block)));
  }

  // Rewrite the partner state as a 1-year-lagged, lightly perturbed copy of
  // Massachusetts: the demo's "find the state most similar to MA" answer.
  if (!ma_values.empty()) {
    for (std::size_t s = 0; s < ds.size(); ++s) {
      if (ds[s].name() != options.partner_state || states[s] == "Massachusetts") {
        continue;
      }
      Rng prng = rng.Fork();
      std::vector<double> partner(years);
      for (std::size_t t = 0; t < years; ++t) {
        const std::size_t src = t == 0 ? 0 : t - 1;  // one-year lag
        partner[t] = ma_values[src] + prng.Gaussian(0.0, scale.noise * 0.3);
      }
      TimeSeries replaced(ds[s].name(), std::move(partner), ds[s].label());
      Dataset rebuilt(ds.name());
      for (std::size_t k = 0; k < ds.size(); ++k) {
        rebuilt.Add(k == s ? replaced : ds[k]);
      }
      ds = std::move(rebuilt);
      break;
    }
  }
  return ds;
}

}  // namespace onex::gen
