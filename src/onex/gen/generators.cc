#include "onex/gen/generators.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numbers>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"

namespace onex::gen {
namespace {

/// Smooth monotone time distortion on [0,1]: identity plus a few random
/// sinusoidal bumps, clamped so the slope stays positive.
class TimeWarp {
 public:
  TimeWarp(Rng* rng, double intensity) {
    for (int k = 1; k <= 3; ++k) {
      amps_.push_back(rng->Uniform(-intensity, intensity) /
                      (std::numbers::pi * k * 2.0));
      phases_.push_back(rng->Uniform(0.0, 2.0 * std::numbers::pi));
    }
  }

  /// Maps t in [0,1] to a warped position in [0,1], monotone by construction
  /// (derivative >= 1 - sum |amp|*2*pi*k > 0 for intensity < 1).
  double operator()(double t) const {
    double out = t;
    for (std::size_t k = 0; k < amps_.size(); ++k) {
      const double freq = 2.0 * std::numbers::pi * static_cast<double>(k + 1);
      out += amps_[k] * (std::sin(freq * t + phases_[k]) - std::sin(phases_[k]));
    }
    return std::clamp(out, 0.0, 1.0);
  }

 private:
  std::vector<double> amps_;
  std::vector<double> phases_;
};

/// Linear interpolation into a template sampled at `n` points.
double SampleTemplate(const std::vector<double>& tpl, double t) {
  const double pos = t * static_cast<double>(tpl.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, tpl.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return tpl[lo] * (1.0 - frac) + tpl[hi] * frac;
}

/// Classic cylinder-bell-funnel style templates plus a ramp, all on [0,1].
std::vector<double> MakeTemplate(std::size_t shape, std::size_t n, Rng* rng) {
  std::vector<double> tpl(n, 0.0);
  const std::size_t a = n / 8 + rng->UniformIndex(n / 8 + 1);
  const std::size_t b = n - n / 8 - rng->UniformIndex(n / 8 + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    switch (shape % 4) {
      case 0:  // cylinder: plateau between a and b
        tpl[i] = (i >= a && i <= b) ? 1.0 : 0.0;
        break;
      case 1:  // bell: linear rise across [a, b]
        tpl[i] = (i >= a && i <= b)
                     ? static_cast<double>(i - a) /
                           std::max<std::size_t>(1, b - a)
                     : 0.0;
        break;
      case 2:  // funnel: linear fall across [a, b]
        tpl[i] = (i >= a && i <= b)
                     ? static_cast<double>(b - i) /
                           std::max<std::size_t>(1, b - a)
                     : 0.0;
        break;
      default:  // smooth ramp + dip
        tpl[i] = t * t - 0.5 * std::sin(3.0 * std::numbers::pi * t);
        break;
    }
  }
  return tpl;
}

}  // namespace

Dataset MakeRandomWalks(const RandomWalkOptions& options) {
  Rng rng(options.seed);
  Dataset ds(options.name);
  for (std::size_t s = 0; s < options.num_series; ++s) {
    std::vector<double> vals;
    vals.reserve(options.length);
    double v = options.start_value;
    for (std::size_t i = 0; i < options.length; ++i) {
      v += rng.Gaussian(0.0, options.step_stddev);
      vals.push_back(v);
    }
    ds.Add(TimeSeries(StrFormat("%s_%zu", options.name.c_str(), s),
                      std::move(vals)));
  }
  return ds;
}

Dataset MakeSineFamilies(const SineFamilyOptions& options) {
  Rng rng(options.seed);
  Dataset ds(options.name);
  struct Shape {
    double freq, phase, amp;
  };
  std::vector<Shape> shapes;
  for (std::size_t k = 0; k < options.num_shapes; ++k) {
    shapes.push_back({rng.Uniform(1.0, 4.0), rng.Uniform(0.0, 2.0 * std::numbers::pi),
                      rng.Uniform(0.5, 1.5)});
  }
  for (std::size_t s = 0; s < options.num_series; ++s) {
    const std::size_t k = s % std::max<std::size_t>(1, options.num_shapes);
    const Shape& sh = shapes[k];
    std::vector<double> vals;
    vals.reserve(options.length);
    for (std::size_t i = 0; i < options.length; ++i) {
      const double t =
          static_cast<double>(i) / static_cast<double>(options.length - 1);
      vals.push_back(sh.amp * std::sin(2.0 * std::numbers::pi * sh.freq * t +
                                       sh.phase) +
                     rng.Gaussian(0.0, options.noise_stddev));
    }
    ds.Add(TimeSeries(StrFormat("%s_%zu", options.name.c_str(), s),
                      std::move(vals), StrFormat("%zu", k)));
  }
  return ds;
}

Dataset MakeWarpedShapes(const WarpedShapeOptions& options) {
  Rng rng(options.seed);
  Dataset ds(options.name);
  std::vector<std::vector<double>> templates;
  Rng tpl_rng = options.template_seed == 0 ? rng.Fork()
                                           : Rng(options.template_seed);
  for (std::size_t k = 0; k < options.num_shapes; ++k) {
    templates.push_back(MakeTemplate(k, options.length, &tpl_rng));
  }
  for (std::size_t s = 0; s < options.num_series; ++s) {
    const std::size_t k = s % std::max<std::size_t>(1, options.num_shapes);
    TimeWarp warp(&rng, options.warp_intensity);
    std::vector<double> vals;
    vals.reserve(options.length);
    for (std::size_t i = 0; i < options.length; ++i) {
      const double t =
          static_cast<double>(i) / static_cast<double>(options.length - 1);
      vals.push_back(SampleTemplate(templates[k], warp(t)) +
                     rng.Gaussian(0.0, options.noise_stddev));
    }
    ds.Add(TimeSeries(StrFormat("%s_%zu", options.name.c_str(), s),
                      std::move(vals), StrFormat("%zu", k)));
  }
  return ds;
}

}  // namespace onex::gen
