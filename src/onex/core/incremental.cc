#include "onex/core/incremental.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"
#include "onex/core/grouping_util.h"

namespace onex {

Result<OnexBase> AppendSeries(const OnexBase& base, TimeSeries series) {
  if (series.length() < 2) {
    return Status::InvalidArgument("appended series needs >= 2 points");
  }
  const BaseBuildOptions& options = base.options();

  // Extended dataset: existing refs stay valid (indices unchanged), the new
  // series gets index old_size.
  Dataset extended(base.dataset().name());
  for (const TimeSeries& ts : base.dataset().series()) extended.Add(ts);
  const std::size_t new_idx = extended.size();
  const std::size_t new_len = series.length();
  extended.Add(std::move(series));
  auto dataset = std::make_shared<const Dataset>(std::move(extended));
  const Dataset& ds = *dataset;

  // Deep-copy the length classes (SimilarityGroup is value-semantic), then
  // insert the new series' subsequences.
  std::vector<LengthClass> classes(base.length_classes());
  const std::size_t max_len =
      options.max_length == 0 ? std::max(base.dataset().MaxLength(), new_len)
                              : options.max_length;
  const double radius = options.st / 2.0;
  const bool update_centroid =
      options.centroid_policy != CentroidPolicy::kFixedLeader;

  for (std::size_t len = options.min_length; len <= max_len;
       len += options.length_step) {
    if (new_len < len) continue;
    // Find or create the class for this length, keeping the sort order.
    auto it = std::lower_bound(classes.begin(), classes.end(), len,
                               [](const LengthClass& cls, std::size_t value) {
                                 return cls.length < value;
                               });
    if (it == classes.end() || it->length != len) {
      LengthClass fresh;
      fresh.length = len;
      it = classes.insert(it, std::move(fresh));
    }
    LengthClass& cls = *it;
    for (std::size_t start = 0; start + len <= new_len;
         start += options.stride) {
      const std::span<const double> vals = ds[new_idx].Slice(start, len);
      const auto [idx, dist] =
          internal::NearestGroup(cls.groups, vals, radius);
      if (idx == cls.groups.size()) {
        SimilarityGroup g(len);
        g.Add({new_idx, start, len}, vals, update_centroid);
        cls.groups.push_back(std::move(g));
      } else {
        cls.groups[idx].Add({new_idx, start, len}, vals, update_centroid);
      }
      ++cls.total_members;
    }
  }

  // Restore recomputes centroids/envelopes/stats; note this realigns
  // running-mean centroids to the exact member mean (insertion kept them
  // approximately there) and keeps leaders fixed for kFixedLeader.
  return OnexBase::Restore(std::move(dataset), options, std::move(classes),
                           base.stats().repaired_members);
}

}  // namespace onex
