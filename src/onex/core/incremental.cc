#include "onex/core/incremental.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"
#include "onex/core/grouping_util.h"
#include "onex/distance/euclidean.h"

namespace onex {
namespace {

/// Matches the build-time insertion radius with a hair of slack so drift
/// accounting never flags members over floating-point noise alone.
constexpr double kRadiusSlack = 1e-9;

/// Thaws one columnar class back into a mutable draft: member lists copied
/// out of the store's arena, centroids seeded verbatim from the store so
/// the insertion radius test sees exactly the representatives the base
/// queries with.
LengthClassDraft ThawClass(const LengthClass& cls) {
  LengthClassDraft draft;
  draft.length = cls.length;
  draft.groups.reserve(cls.groups.size());
  for (const SimilarityGroup& g : cls.groups) {
    GroupBuilder b(cls.length);
    b.SetMembers({g.members().begin(), g.members().end()});
    b.SetCentroid(g.centroid());
    draft.groups.push_back(std::move(b));
  }
  return draft;
}

std::vector<LengthClassDraft> ThawClasses(const OnexBase& base) {
  std::vector<LengthClassDraft> classes;
  classes.reserve(base.length_classes().size());
  for (const LengthClass& cls : base.length_classes()) {
    classes.push_back(ThawClass(cls));
  }
  return classes;
}

/// Finds the draft for `len`, creating it in sorted position when the base
/// has never seen this length (a longer series arrived under max_length == 0
/// scoping).
LengthClassDraft* FindOrCreateClass(std::vector<LengthClassDraft>* classes,
                                    std::size_t len) {
  auto it = std::lower_bound(
      classes->begin(), classes->end(), len,
      [](const LengthClassDraft& cls, std::size_t value) {
        return cls.length < value;
      });
  if (it == classes->end() || it->length != len) {
    LengthClassDraft fresh;
    fresh.length = len;
    it = classes->insert(it, std::move(fresh));
  }
  return &*it;
}

/// Inserts one subsequence under the build-time leader rule.
void InsertMember(LengthClassDraft* cls, const Dataset& ds,
                  const SubseqRef& ref, double radius, bool update_centroid) {
  const std::span<const double> vals = ref.Resolve(ds);
  const auto [idx, dist] = internal::NearestGroup(cls->groups, vals, radius);
  if (idx == cls->groups.size()) {
    GroupBuilder g(ref.length);
    g.Add(ref, vals, update_centroid);
    cls->groups.push_back(std::move(g));
  } else {
    cls->groups[idx].Add(ref, vals, update_centroid);
  }
}

LengthClassDrift DriftOfClass(const OnexBase& base, const LengthClass& cls) {
  const double radius = base.options().st / 2.0;
  LengthClassDrift drift;
  drift.length = cls.length;
  drift.members = cls.total_members;
  for (const SimilarityGroup& g : cls.groups) {
    for (const SubseqRef& ref : g.members()) {
      const double d =
          NormalizedEuclidean(g.centroid_span(), ref.Resolve(base.dataset()));
      if (d > radius + kRadiusSlack) ++drift.outliers;
    }
  }
  return drift;
}

}  // namespace

Result<OnexBase> AppendSeries(const OnexBase& base, TimeSeries series) {
  if (series.length() < 2) {
    return Status::InvalidArgument("appended series needs >= 2 points");
  }
  const BaseBuildOptions& options = base.options();

  // Extended dataset: existing refs stay valid (indices unchanged), the new
  // series gets index old_size.
  Dataset extended(base.dataset().name());
  for (const TimeSeries& ts : base.dataset().series()) extended.Add(ts);
  const std::size_t new_idx = extended.size();
  const std::size_t new_len = series.length();
  extended.Add(std::move(series));
  auto dataset = std::make_shared<const Dataset>(std::move(extended));
  const Dataset& ds = *dataset;

  std::vector<LengthClassDraft> classes = ThawClasses(base);

  const std::size_t max_len =
      options.max_length == 0 ? std::max(base.dataset().MaxLength(), new_len)
                              : options.max_length;
  const double radius = options.st / 2.0;
  const bool update_centroid =
      options.centroid_policy != CentroidPolicy::kFixedLeader;

  for (std::size_t len = options.min_length; len <= max_len;
       len += options.length_step) {
    if (new_len < len) continue;
    LengthClassDraft* cls = FindOrCreateClass(&classes, len);
    for (std::size_t start = 0; start + len <= new_len;
         start += options.stride) {
      InsertMember(cls, ds, {new_idx, start, len}, radius, update_centroid);
    }
  }

  // Restore recomputes centroids/envelopes/stats and repacks the columnar
  // stores; note this realigns running-mean centroids to the exact member
  // mean (insertion kept them approximately there) and keeps leaders fixed
  // for kFixedLeader.
  return OnexBase::Restore(std::move(dataset), options, std::move(classes),
                           base.stats().repaired_members);
}

Result<std::vector<std::vector<double>>> MergeExtensions(
    std::size_t num_series, std::span<const SeriesExtension> extensions) {
  if (extensions.empty()) {
    return Status::InvalidArgument("ExtendSeries needs >= 1 extension");
  }
  // Merge duplicate targets in arrival order, so one batch behaves like the
  // same points streamed one call at a time.
  std::vector<std::vector<double>> pending(num_series);
  for (const SeriesExtension& ext : extensions) {
    if (ext.series >= num_series) {
      return Status::InvalidArgument(StrFormat(
          "cannot extend series %zu: dataset has %zu series", ext.series,
          num_series));
    }
    if (ext.points.empty()) {
      return Status::InvalidArgument(
          StrFormat("extension of series %zu has no points", ext.series));
    }
    pending[ext.series].insert(pending[ext.series].end(), ext.points.begin(),
                               ext.points.end());
  }
  return pending;
}

Dataset ExtendTails(const Dataset& ds,
                    const std::vector<std::vector<double>>& pending) {
  // Every ref into the untouched prefix stays valid because tails only grow.
  Dataset extended(ds.name());
  for (std::size_t s = 0; s < ds.size(); ++s) {
    if (s >= pending.size() || pending[s].empty()) {
      extended.Add(ds[s]);
    } else {
      std::vector<double> values = ds[s].values();
      values.insert(values.end(), pending[s].begin(), pending[s].end());
      extended.Add(TimeSeries(ds[s].name(), std::move(values), ds[s].label()));
    }
  }
  return extended;
}

Result<ExtendResult> ExtendSeries(
    const OnexBase& base, std::span<const SeriesExtension> extensions) {
  const Dataset& old_ds = base.dataset();
  const BaseBuildOptions& options = base.options();

  ONEX_ASSIGN_OR_RETURN(std::vector<std::vector<double>> pending,
                        MergeExtensions(old_ds.size(), extensions));
  auto dataset =
      std::make_shared<const Dataset>(ExtendTails(old_ds, pending));
  const Dataset& ds = *dataset;

  std::vector<LengthClassDraft> classes = ThawClasses(base);

  const std::size_t max_len = options.max_length == 0
                                  ? std::max(old_ds.MaxLength(), ds.MaxLength())
                                  : options.max_length;
  const double radius = options.st / 2.0;
  const bool update_centroid =
      options.centroid_policy != CentroidPolicy::kFixedLeader;

  std::size_t new_members = 0;
  std::vector<std::size_t> touched;
  for (std::size_t len = options.min_length; len <= max_len;
       len += options.length_step) {
    LengthClassDraft* cls = nullptr;
    for (std::size_t s = 0; s < pending.size(); ++s) {
      if (pending[s].empty()) continue;
      const std::size_t old_len = old_ds[s].length();
      const std::size_t new_len = ds[s].length();
      if (new_len < len) continue;
      // Only subsequences that end past the old tail are new; everything
      // else was grouped at build (or earlier extend) time. Starts stay on
      // the build-time stride grid.
      std::size_t first = 0;
      if (old_len >= len) {
        const std::size_t lo = old_len - len + 1;
        first = (lo + options.stride - 1) / options.stride * options.stride;
      }
      for (std::size_t start = first; start + len <= new_len;
           start += options.stride) {
        if (cls == nullptr) cls = FindOrCreateClass(&classes, len);
        InsertMember(cls, ds, {s, start, len}, radius, update_centroid);
        ++new_members;
      }
    }
    if (cls != nullptr) touched.push_back(len);
  }

  ONEX_ASSIGN_OR_RETURN(
      OnexBase next,
      OnexBase::Restore(std::move(dataset), options, std::move(classes),
                        base.stats().repaired_members));

  // Drift is measured on the restored base (exact post-insert centroids) so
  // the number the regroup policy sees is the one queries experience. Under
  // kFixedLeader the invariant is exact — report the touched classes with
  // zero outliers instead of paying the member scan on every tick.
  const bool leader =
      options.centroid_policy == CentroidPolicy::kFixedLeader;
  std::vector<LengthClassDrift> drift;
  drift.reserve(touched.size());
  for (const std::size_t len : touched) {
    Result<const LengthClass*> cls = next.FindLengthClass(len);
    if (!cls.ok()) continue;
    drift.push_back(leader
                        ? LengthClassDrift{len, (*cls)->total_members, 0}
                        : DriftOfClass(next, **cls));
  }
  ExtendResult result{std::move(next), new_members, std::move(drift)};
  return result;
}

Result<ExtendResult> ExtendSeries(const OnexBase& base, std::size_t series_id,
                                  std::span<const double> new_points) {
  SeriesExtension ext;
  ext.series = series_id;
  ext.points.assign(new_points.begin(), new_points.end());
  return ExtendSeries(base, std::span<const SeriesExtension>(&ext, 1));
}

std::vector<LengthClassDrift> ComputeDrift(const OnexBase& base) {
  std::vector<LengthClassDrift> out;
  out.reserve(base.length_classes().size());
  for (const LengthClass& cls : base.length_classes()) {
    out.push_back(DriftOfClass(base, cls));
  }
  return out;
}

Result<OnexBase> RegroupLengthClasses(const OnexBase& base,
                                      std::span<const std::size_t> lengths) {
  const std::set<std::size_t> want(lengths.begin(), lengths.end());
  std::size_t repaired = base.stats().repaired_members;
  std::vector<LengthClassDraft> classes;
  classes.reserve(base.length_classes().size());
  for (const LengthClass& cls : base.length_classes()) {
    if (want.contains(cls.length)) {
      // Fresh leader clustering: every member re-admitted against the
      // centroids of its own era, the exact pipeline the offline build runs.
      LengthClassDraft draft;
      draft.length = cls.length;
      draft.groups = internal::BuildGroupsForLength(base.dataset(), cls.length,
                                                    base.options(), &repaired);
      classes.push_back(std::move(draft));
    } else {
      classes.push_back(ThawClass(cls));
    }
  }
  return OnexBase::Restore(base.shared_dataset(), base.options(),
                           std::move(classes), repaired);
}

}  // namespace onex
