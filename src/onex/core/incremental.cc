#include "onex/core/incremental.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"
#include "onex/core/grouping_util.h"

namespace onex {

Result<OnexBase> AppendSeries(const OnexBase& base, TimeSeries series) {
  if (series.length() < 2) {
    return Status::InvalidArgument("appended series needs >= 2 points");
  }
  const BaseBuildOptions& options = base.options();

  // Extended dataset: existing refs stay valid (indices unchanged), the new
  // series gets index old_size.
  Dataset extended(base.dataset().name());
  for (const TimeSeries& ts : base.dataset().series()) extended.Add(ts);
  const std::size_t new_idx = extended.size();
  const std::size_t new_len = series.length();
  extended.Add(std::move(series));
  auto dataset = std::make_shared<const Dataset>(std::move(extended));
  const Dataset& ds = *dataset;

  // Thaw the columnar classes back into mutable drafts: member lists copied
  // out of the store's arena, centroids seeded verbatim from the store so
  // the insertion radius test sees exactly the representatives the base
  // queries with. Then insert the new series' subsequences.
  std::vector<LengthClassDraft> classes;
  classes.reserve(base.length_classes().size());
  for (const LengthClass& cls : base.length_classes()) {
    LengthClassDraft draft;
    draft.length = cls.length;
    draft.groups.reserve(cls.groups.size());
    for (const SimilarityGroup& g : cls.groups) {
      GroupBuilder b(cls.length);
      b.SetMembers({g.members().begin(), g.members().end()});
      b.SetCentroid(g.centroid());
      draft.groups.push_back(std::move(b));
    }
    classes.push_back(std::move(draft));
  }

  const std::size_t max_len =
      options.max_length == 0 ? std::max(base.dataset().MaxLength(), new_len)
                              : options.max_length;
  const double radius = options.st / 2.0;
  const bool update_centroid =
      options.centroid_policy != CentroidPolicy::kFixedLeader;

  for (std::size_t len = options.min_length; len <= max_len;
       len += options.length_step) {
    if (new_len < len) continue;
    // Find or create the class for this length, keeping the sort order.
    auto it = std::lower_bound(
        classes.begin(), classes.end(), len,
        [](const LengthClassDraft& cls, std::size_t value) {
          return cls.length < value;
        });
    if (it == classes.end() || it->length != len) {
      LengthClassDraft fresh;
      fresh.length = len;
      it = classes.insert(it, std::move(fresh));
    }
    LengthClassDraft& cls = *it;
    for (std::size_t start = 0; start + len <= new_len;
         start += options.stride) {
      const std::span<const double> vals = ds[new_idx].Slice(start, len);
      const auto [idx, dist] =
          internal::NearestGroup(cls.groups, vals, radius);
      if (idx == cls.groups.size()) {
        GroupBuilder g(len);
        g.Add({new_idx, start, len}, vals, update_centroid);
        cls.groups.push_back(std::move(g));
      } else {
        cls.groups[idx].Add({new_idx, start, len}, vals, update_centroid);
      }
    }
  }

  // Restore recomputes centroids/envelopes/stats and repacks the columnar
  // stores; note this realigns running-mean centroids to the exact member
  // mean (insertion kept them approximately there) and keeps leaders fixed
  // for kFixedLeader.
  return OnexBase::Restore(std::move(dataset), options, std::move(classes),
                           base.stats().repaired_members);
}

}  // namespace onex
