#ifndef ONEX_CORE_INCREMENTAL_H_
#define ONEX_CORE_INCREMENTAL_H_

#include <cstddef>
#include <span>
#include <vector>

#include "onex/common/result.h"
#include "onex/core/onex_base.h"

namespace onex {

/// Incremental maintenance of the ONEX base: extend an existing base with
/// new data without re-grouping the whole collection. The demo loads data
/// "with a click of a button"; production collections keep growing (a new
/// year of state indicators, another household, a live feed ticking), and a
/// full rebuild per arrival wastes the offline work already done.
///
/// Two write shapes (DESIGN.md §12):
///   - AppendSeries: a whole new series joins the collection.
///   - ExtendSeries: existing series grow at the tail, point by point — the
///     streaming-ingest path a dashboard tailing live feeds exercises.
///
/// Semantics: new subsequences are inserted with the identical leader rule
/// used at build time (join the nearest group whose centroid is within
/// ST/2, else found a new group). Existing group memberships never change,
/// so the ST/2 invariant (exact for kFixedLeader) is preserved; with
/// kRunningMean the centroids of joined groups move, exactly as they would
/// have during a batch build. Lengths the base has never seen (a longer
/// series than any before, under max_length == 0 scoping) get fresh length
/// classes.
///
/// Results are new immutable bases over the grown dataset; the input base
/// is untouched (readers keep their snapshot, mirroring Engine::Prepare).

Result<OnexBase> AppendSeries(const OnexBase& base, TimeSeries series);

/// One series' pending tail: `points` (in the base's units — normalized
/// upstream with the dataset's frozen parameters) are appended to series
/// `series`.
struct SeriesExtension {
  std::size_t series = 0;
  std::vector<double> points;
};

/// Drift of one length class under kRunningMean: incremental inserts move
/// centroids, so members admitted long ago can end up farther than ST/2
/// from today's representative. `outliers` counts such members; when the
/// fraction grows, group envelopes widen, pruning weakens and answer
/// quality decays toward the regroup threshold (DESIGN.md §12). Exactly 0
/// under kFixedLeader, whose invariant is exact.
struct LengthClassDrift {
  std::size_t length = 0;
  std::size_t members = 0;
  std::size_t outliers = 0;  ///< Members farther than ST/2 from centroid.

  double fraction() const {
    return members == 0
               ? 0.0
               : static_cast<double>(outliers) / static_cast<double>(members);
  }
};

/// Outcome of ExtendSeries: the grown base plus the maintenance signals the
/// registry's drift policy consumes.
struct ExtendResult {
  OnexBase base;
  std::size_t new_members = 0;  ///< Subsequences this extension generated.
  /// Post-extension drift of every length class the extension touched
  /// (ascending by length). Untouched classes did not move.
  std::vector<LengthClassDrift> drift;
};

/// Merges extensions into one pending tail per series (duplicate targets
/// concatenate in arrival order). InvalidArgument on an out-of-range series
/// index or an empty point vector. Shared by the core extend below and the
/// engine's raw/normalized bookkeeping so all three agree on validation and
/// merge order.
Result<std::vector<std::vector<double>>> MergeExtensions(
    std::size_t num_series, std::span<const SeriesExtension> extensions);

/// Returns a copy of `ds` with each series' tail extended by `pending[s]`.
/// Empty entries leave the series untouched; entries beyond ds.size() are
/// ignored (the engine's evicted-extend path may hold a pending vector
/// sized to a raw dataset that is one catch-up ahead of this copy).
Dataset ExtendTails(const Dataset& ds,
                    const std::vector<std::vector<double>>& pending);

/// Extends existing series at the tail, generating and inserting only the
/// subsequences the new points create (those ending past each series' old
/// length, on the build-time stride grid). Duplicate series entries
/// concatenate in order. InvalidArgument on an out-of-range series index or
/// an empty extension list / point vector.
Result<ExtendResult> ExtendSeries(const OnexBase& base,
                                  std::span<const SeriesExtension> extensions);

/// Single-series convenience form.
Result<ExtendResult> ExtendSeries(const OnexBase& base, std::size_t series_id,
                                  std::span<const double> new_points);

/// Full drift scan: every length class of `base`, ascending by length. The
/// DRIFT verb and the property suite read this; ExtendSeries reports the
/// touched subset itself.
std::vector<LengthClassDrift> ComputeDrift(const OnexBase& base);

/// Rebuilds just the named length classes from scratch — fresh leader
/// clustering over the (current) dataset via the shared
/// internal::BuildGroupsForLength pipeline — while every other class is
/// carried over untouched. This is the drift repair: a regrouped class's
/// members were all admitted against final-era centroids, restoring the
/// tight envelopes incremental maintenance eroded. Lengths with no class in
/// `base` are ignored.
Result<OnexBase> RegroupLengthClasses(const OnexBase& base,
                                      std::span<const std::size_t> lengths);

}  // namespace onex

#endif  // ONEX_CORE_INCREMENTAL_H_
