#ifndef ONEX_CORE_INCREMENTAL_H_
#define ONEX_CORE_INCREMENTAL_H_

#include "onex/common/result.h"
#include "onex/core/onex_base.h"

namespace onex {

/// Incremental maintenance of the ONEX base: extend an existing base with a
/// new series without re-grouping the whole collection. The demo loads data
/// "with a click of a button"; production collections keep growing (a new
/// year of state indicators, another household), and a full rebuild per
/// arrival wastes the offline work already done.
///
/// Semantics: the new series' subsequences are inserted with the identical
/// leader rule used at build time (join the nearest group whose centroid is
/// within ST/2, else found a new group). Existing group memberships never
/// change, so the ST/2 invariant (exact for kFixedLeader) is preserved; with
/// kRunningMean the centroids of joined groups move, exactly as they would
/// have during a batch build. Lengths the base has never seen (a longer
/// series than any before, under max_length == 0 scoping) get fresh length
/// classes.
///
/// The result is a new immutable base over dataset + series; the input base
/// is untouched (readers keep their snapshot, mirroring Engine::Prepare).
Result<OnexBase> AppendSeries(const OnexBase& base, TimeSeries series);

}  // namespace onex

#endif  // ONEX_CORE_INCREMENTAL_H_
