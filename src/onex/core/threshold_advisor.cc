#include "onex/core/threshold_advisor.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "onex/common/math_utils.h"
#include "onex/common/random.h"
#include "onex/common/string_utils.h"
#include "onex/distance/euclidean.h"

namespace onex {

Result<ThresholdReport> RecommendThresholds(
    const Dataset& dataset, const ThresholdAdvisorOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot sample an empty dataset");
  }
  if (options.sample_pairs == 0) {
    return Status::InvalidArgument("sample_pairs must be positive");
  }
  const std::size_t max_len =
      options.max_length == 0 ? dataset.MaxLength() : options.max_length;
  if (options.min_length < 2 || options.min_length > max_len) {
    return Status::InvalidArgument(
        StrFormat("invalid length range [%zu, %zu]", options.min_length,
                  max_len));
  }

  // Series long enough to host at least a min_length subsequence.
  std::vector<std::size_t> eligible;
  for (std::size_t s = 0; s < dataset.size(); ++s) {
    if (dataset[s].length() >= options.min_length) eligible.push_back(s);
  }
  if (eligible.empty()) {
    return Status::InvalidArgument(StrFormat(
        "no series is at least %zu points long", options.min_length));
  }

  Rng rng(options.seed);
  std::vector<double> distances;
  distances.reserve(options.sample_pairs);
  // Rejection-sample pairs; with ragged series a drawn length may not fit a
  // drawn series, so bound the attempts.
  std::size_t attempts = 0;
  const std::size_t max_attempts = options.sample_pairs * 20;
  while (distances.size() < options.sample_pairs && attempts < max_attempts) {
    ++attempts;
    const std::size_t len = static_cast<std::size_t>(
        rng.UniformInt(static_cast<std::int64_t>(options.min_length),
                       static_cast<std::int64_t>(max_len)));
    const std::size_t sa = eligible[rng.UniformIndex(eligible.size())];
    const std::size_t sb = eligible[rng.UniformIndex(eligible.size())];
    if (dataset[sa].length() < len || dataset[sb].length() < len) continue;
    const std::size_t pa = rng.UniformIndex(dataset[sa].length() - len + 1);
    const std::size_t pb = rng.UniformIndex(dataset[sb].length() - len + 1);
    if (sa == sb && pa == pb) continue;  // identical subsequence: distance 0
    distances.push_back(NormalizedEuclidean(dataset[sa].Slice(pa, len),
                                            dataset[sb].Slice(pb, len)));
  }
  if (distances.empty()) {
    return Status::Internal("sampling produced no subsequence pairs");
  }

  ThresholdReport report;
  report.pairs_sampled = distances.size();
  report.min_distance = Min(distances);
  report.median_distance = Percentile(distances, 50.0);
  report.max_distance = Max(distances);
  for (double p : options.percentiles) {
    if (p < 0.0 || p > 100.0) {
      return Status::InvalidArgument(
          StrFormat("percentile %g outside [0, 100]", p));
    }
    report.recommendations.push_back({Percentile(distances, p), p});
  }
  std::sort(report.recommendations.begin(), report.recommendations.end(),
            [](const ThresholdRecommendation& a,
               const ThresholdRecommendation& b) { return a.st < b.st; });
  return report;
}

}  // namespace onex
