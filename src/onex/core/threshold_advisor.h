#ifndef ONEX_CORE_THRESHOLD_ADVISOR_H_
#define ONEX_CORE_THRESHOLD_ADVISOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "onex/common/result.h"
#include "onex/ts/dataset.h"

namespace onex {

/// Data-driven similarity-threshold recommendation (paper §3.3: "Threshold
/// recommendations help analysts to select appropriate parameter settings in
/// a data-driven fashion"). The advisor samples the distribution of
/// length-normalized Euclidean distances between random same-length
/// subsequence pairs and proposes ST values at chosen percentiles: the
/// percentile directly states what fraction of random pairs would count as
/// "similar" under that threshold — a scale-free notion that transfers
/// between growth-rate percents and unemployment head-counts.
struct ThresholdAdvisorOptions {
  /// Number of random subsequence pairs to sample.
  std::size_t sample_pairs = 2000;
  /// Percentiles of the sampled distance distribution to turn into
  /// recommendations.
  std::vector<double> percentiles = {1.0, 5.0, 10.0, 25.0};
  /// Subsequence lengths sampled uniformly from [min_length, max_length]
  /// (max 0 = longest series).
  std::size_t min_length = 4;
  std::size_t max_length = 0;
  std::uint64_t seed = 42;
};

struct ThresholdRecommendation {
  double st = 0.0;          ///< Recommended similarity threshold.
  double percentile = 0.0;  ///< Fraction (in %) of sampled pairs within st.
};

struct ThresholdReport {
  std::vector<ThresholdRecommendation> recommendations;
  /// Summary of the sampled distance distribution, for display.
  double min_distance = 0.0;
  double median_distance = 0.0;
  double max_distance = 0.0;
  std::size_t pairs_sampled = 0;
};

/// Samples `dataset` (normalize it first if you intend to build the base on
/// normalized data — recommendations are in the same units as the input).
Result<ThresholdReport> RecommendThresholds(
    const Dataset& dataset, const ThresholdAdvisorOptions& options = {});

}  // namespace onex

#endif  // ONEX_CORE_THRESHOLD_ADVISOR_H_
