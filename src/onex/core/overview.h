#ifndef ONEX_CORE_OVERVIEW_H_
#define ONEX_CORE_OVERVIEW_H_

#include <cstddef>
#include <vector>

#include "onex/common/result.h"
#include "onex/core/onex_base.h"

namespace onex {

/// Data behind the demo's Overview Pane (Fig 2, top left): "representatives
/// of the similarity groups, color-coded such that the color intensity
/// increases proportional with the cardinality of sequences in the group".
struct OverviewEntry {
  std::size_t length = 0;
  std::size_t group_index = 0;
  std::size_t cardinality = 0;
  /// cardinality / max cardinality across the overview: the color intensity.
  double intensity = 0.0;
  /// The representative's values: the "small graph that captures the general
  /// shape of the group".
  std::vector<double> representative;
};

struct OverviewOptions {
  /// Restrict to one length class (0 = all).
  std::size_t length = 0;
  /// Keep the top_n most populous groups (0 = all).
  std::size_t top_n = 24;
};

/// Entries sorted by cardinality descending.
Result<std::vector<OverviewEntry>> BuildOverview(
    const OnexBase& base, const OverviewOptions& options = {});

}  // namespace onex

#endif  // ONEX_CORE_OVERVIEW_H_
