#ifndef ONEX_CORE_ONEX_BASE_H_
#define ONEX_CORE_ONEX_BASE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "onex/common/result.h"
#include "onex/common/task_pool.h"
#include "onex/core/group_store.h"
#include "onex/core/similarity_group.h"
#include "onex/ts/dataset.h"

namespace onex {

/// How the group representative evolves as members join (DESIGN.md §5).
enum class CentroidPolicy {
  /// The first member is the representative forever. The ST/2 radius
  /// invariant is exact: every member was admitted against the final
  /// centroid.
  kFixedLeader = 0,
  /// Representative is the running mean (the paper's "average of all
  /// sequences in each group"). The radius invariant can drift slightly.
  kRunningMean = 1,
  /// Running mean plus a repair pass: members whose distance to the final
  /// centroid exceeds ST/2 are pulled out and re-inserted.
  kRunningMeanRepair = 2,
};

const char* CentroidPolicyToString(CentroidPolicy policy);

/// Parameters of ONEX-base construction.
struct BaseBuildOptions {
  /// Similarity threshold ST in length-normalized ED units. Members join a
  /// group when within ST/2 of its representative.
  double st = 0.2;
  /// Subsequence scoping. max_length == 0 means "up to the longest series".
  /// Defaults cover every length >= min_length at every offset, like the
  /// paper; benches narrow these for the big sweeps.
  std::size_t min_length = 4;
  std::size_t max_length = 0;
  std::size_t length_step = 1;
  std::size_t stride = 1;
  CentroidPolicy centroid_policy = CentroidPolicy::kRunningMean;
  /// Worker threads for construction, scheduled over the shared TaskPool.
  /// Length classes are independent, so they parallelize perfectly; the
  /// result is bit-identical to a serial build. 1 = serial (default),
  /// 0 = one thread per hardware core.
  std::size_t threads = 1;

  Status Validate() const;
};

/// All similarity groups for one subsequence length: a columnar GroupStore
/// holding the data (DESIGN.md §4) plus one two-word view per group. The
/// store sits behind a shared_ptr so the views stay valid when a
/// LengthClass is moved or copied (copies share the immutable store).
struct LengthClass {
  std::size_t length = 0;
  std::shared_ptr<const GroupStore> store;
  std::vector<SimilarityGroup> groups;  ///< Views into *store, by index.
  std::size_t total_members = 0;
};

/// A length class still under construction: plain mutable builders, the
/// form Restore accepts from the persistence and incremental layers before
/// centroids/envelopes are recomputed and packed into the columnar store.
struct LengthClassDraft {
  std::size_t length = 0;
  std::vector<GroupBuilder> groups;
};

/// Construction statistics surfaced by benches and the engine.
struct BaseStats {
  std::size_t num_subsequences = 0;  ///< Members placed into groups.
  std::size_t num_groups = 0;
  std::size_t num_length_classes = 0;
  std::size_t repaired_members = 0;  ///< Moved by the repair pass.
  double build_seconds = 0.0;

  /// Groups per subsequence: the data-reduction factor the paper's §3.1
  /// claims ("compact ONEX base instead of the entire dataset").
  double CompactionRatio() const {
    return num_subsequences == 0
               ? 1.0
               : static_cast<double>(num_groups) /
                     static_cast<double>(num_subsequences);
  }
};

/// The ONEX base: a normalized dataset plus its similarity groups, the
/// structure every exploratory operation queries. Immutable after build;
/// safe to share across threads.
class OnexBase {
 public:
  /// Groups `dataset` (already normalized; see Engine for the full
  /// pipeline). The base keeps a shared copy so SubseqRefs stay resolvable.
  /// With options.threads != 1, construction fans out over `pool` (the
  /// process-wide TaskPool::Shared() when none is injected — the Engine
  /// passes its own so build and query work share one set of lanes).
  static Result<OnexBase> Build(std::shared_ptr<const Dataset> dataset,
                                const BaseBuildOptions& options,
                                TaskPool* pool = nullptr);

  /// Reassembles a base from persisted parts (base_io.h): validates member
  /// references, recomputes centroids (policy-aware) and envelopes, packs
  /// each class into its columnar store, and rebuilds stats. `classes`
  /// entries must be sorted by length and carry their members.
  static Result<OnexBase> Restore(std::shared_ptr<const Dataset> dataset,
                                  const BaseBuildOptions& options,
                                  std::vector<LengthClassDraft> classes,
                                  std::size_t repaired_members);

  /// Assembles a base directly from already-columnar stores — the ONEXARENA
  /// load path (arena_layout.h), which carries centroids and envelopes
  /// verbatim and so must NOT go through Restore's recompute. Stores must be
  /// non-null, non-empty, strictly increasing in length, with members the
  /// caller has validated against `dataset` (the arena parser does). When
  /// the stores borrow external bytes (an mmap'd arena), `storage` keeps
  /// those bytes alive for the base's whole lifetime.
  static Result<OnexBase> FromStores(
      std::shared_ptr<const Dataset> dataset, const BaseBuildOptions& options,
      std::vector<std::shared_ptr<const GroupStore>> stores,
      std::size_t repaired_members, std::shared_ptr<const void> storage);

  const Dataset& dataset() const { return *dataset_; }
  std::shared_ptr<const Dataset> shared_dataset() const { return dataset_; }
  const BaseBuildOptions& options() const { return options_; }
  const BaseStats& stats() const { return stats_; }

  const std::vector<LengthClass>& length_classes() const { return classes_; }

  /// Length class for exactly `length`, or NotFound. Binary search over the
  /// length-sorted classes_ vector.
  Result<const LengthClass*> FindLengthClass(std::size_t length) const;

  std::size_t TotalGroups() const { return stats_.num_groups; }
  std::size_t TotalMembers() const { return stats_.num_subsequences; }

  /// Byte footprint of the grouping structures (sum of every length class's
  /// GroupStore plus the view vectors). This is the cost the engine's
  /// prepared-base LRU cache accounts against its budget (DESIGN.md §11);
  /// the shared dataset is excluded — it stays resident after eviction.
  std::size_t MemoryUsage() const;

  /// Non-null when this base serves out of borrowed storage (FromStores
  /// over an mmap'd arena): the handle pinning the mapped bytes.
  const std::shared_ptr<const void>& storage() const { return storage_; }

 private:
  OnexBase() = default;

  std::shared_ptr<const Dataset> dataset_;
  BaseBuildOptions options_;
  BaseStats stats_;
  std::vector<LengthClass> classes_;  ///< Sorted by length ascending.
  /// Keepalive for borrowed group-store columns (null for owned bases).
  /// Destruction order vs classes_ is irrelevant: stores never dereference
  /// their borrowed spans while being destroyed.
  std::shared_ptr<const void> storage_;
};

}  // namespace onex

#endif  // ONEX_CORE_ONEX_BASE_H_
