#include "onex/core/analytics.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numbers>
#include <span>
#include <utility>
#include <vector>

#include "onex/common/status.h"
#include "onex/distance/envelope.h"
#include "onex/distance/euclidean.h"
#include "onex/distance/kernels.h"

namespace onex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Status Poll(const Cancellation* cancel) {
  return cancel == nullptr ? Status::OK() : cancel->Check();
}

/// Early-abandon filter that never changes an answer: proves
/// d(a,b) >= cutoff (returns +inf) or computes the *exact* normalized ED
/// through the same NormalizedEuclidean the oracles call — so accelerated
/// and naive paths agree bit for bit. The cutoff is inflated by a relative
/// slack before the squared-space scan, which makes an abandonment prove
/// d strictly greater than cutoff: candidates tied exactly at the cutoff
/// always reach the exact comparison, keeping canonical tie-breaks intact.
double FilteredDistance(std::span<const double> a, std::span<const double> b,
                        double cutoff, std::size_t* evals,
                        std::size_t* abandoned) {
  if (std::isfinite(cutoff)) {
    const double n = static_cast<double>(a.size());
    const double cutoff_sq = cutoff * cutoff * n * (1.0 + 1e-9) + 1e-12;
    const double sq = SquaredEuclideanEarlyAbandon(a, b, cutoff_sq);
    if (!(sq < cutoff_sq)) {
      ++*abandoned;
      return kInf;
    }
  }
  ++*evals;
  return NormalizedEuclidean(a, b);
}

/// Exact max member-to-centroid distance of one group.
double GroupRadius(const Dataset& ds, const SimilarityGroup& g) {
  double r = 0.0;
  for (const SubseqRef& ref : g.members()) {
    r = std::max(r, NormalizedEuclidean(g.centroid_span(), ref.Resolve(ds)));
  }
  return r;
}

bool RefLess(const SubseqRef& a, const SubseqRef& b) { return a < b; }

}  // namespace

// ---------------------------------------------------------------------------
// ANOMALY
// ---------------------------------------------------------------------------

Result<AnomalyReport> DetectAnomalies(const OnexBase& base,
                                      const AnomalyOptions& options) {
  if (!(options.eps >= 0.0) || !std::isfinite(options.eps)) {
    return Status::InvalidArgument("eps must be finite and >= 0");
  }
  if (options.min_pts < 1) {
    return Status::InvalidArgument("min_pts must be >= 1");
  }
  const double eps =
      options.eps > 0.0 ? options.eps : base.options().st / 2.0;
  if (options.length != 0) {
    ONEX_RETURN_IF_ERROR(base.FindLengthClass(options.length).status());
  }

  const Dataset& ds = base.dataset();
  AnomalyReport report;
  std::vector<AnomalyFinding> all;
  for (const LengthClass& cls : base.length_classes()) {
    if (options.length != 0 && cls.length != options.length) continue;
    ONEX_RETURN_IF_ERROR(Poll(options.cancel));

    // Pairwise centroid distances turn the triangle inequality into an
    // O(1)-per-centroid prefilter: d(m, c_g) >= d(c_own, c_g) - d(m, c_own).
    // Cheaper than one member scan (G <= M), and the only filter that
    // saves arithmetic at short lengths, where the blocked EA kernel has
    // already paid for the full distance by its first abandon check.
    // Capped so a degenerate base (every member its own group) cannot
    // commit a quadratic table; the scan stays exact without it.
    const std::size_t n_groups = cls.groups.size();
    std::vector<double> cdist;
    if (n_groups >= 2 && n_groups <= (std::size_t{1} << 11)) {
      cdist.assign(n_groups * n_groups, 0.0);
      for (std::size_t i = 0; i < n_groups; ++i) {
        for (std::size_t j = i + 1; j < n_groups; ++j) {
          const double d =
              NormalizedEuclidean(cls.groups[i].centroid_span(),
                                  cls.groups[j].centroid_span());
          cdist[i * n_groups + j] = d;
          cdist[j * n_groups + i] = d;
        }
      }
    }

    for (std::size_t own = 0; own < cls.groups.size(); ++own) {
      for (const SubseqRef& ref : cls.groups[own].members()) {
        const std::span<const double> values = ref.Resolve(ds);
        // Own centroid first (almost always the nearest), exact.
        double score = NormalizedEuclidean(
            cls.groups[own].centroid_span(), values);
        ++report.distance_evals;
        const double d_own = score;
        bool clustered = score <= eps && cls.groups[own].size() >=
                                             options.min_pts;
        for (std::size_t gi = 0; gi < cls.groups.size(); ++gi) {
          if (gi == own) continue;
          const SimilarityGroup& g = cls.groups[gi];
          // Skipping is safe only once this centroid can neither improve
          // the score nor flip the clustered flag; prove d >= both.
          const bool qual = !clustered && g.size() >= options.min_pts;
          const double cutoff = qual ? std::max(score, eps) : score;
          if (!cdist.empty()) {
            // Deflate the bound by the distances' own rounding slack so
            // a skip proves d strictly greater than the cutoff — exact
            // ties always fall through to the exact comparison.
            const double cc = cdist[own * n_groups + gi];
            const double lb = cc - d_own - 1e-9 * (cc + d_own) - 1e-12;
            if (lb > cutoff) {
              ++report.evals_abandoned;
              continue;
            }
          }
          const double d =
              FilteredDistance(g.centroid_span(), values, cutoff,
                               &report.distance_evals,
                               &report.evals_abandoned);
          if (d < score) score = d;
          if (d <= eps && g.size() >= options.min_pts) clustered = true;
        }
        AnomalyFinding f;
        f.ref = ref;
        f.score = score;
        f.outlier = !clustered;
        if (f.outlier) ++report.outliers;
        all.push_back(f);
        ++report.members_scanned;
      }
      ONEX_RETURN_IF_ERROR(Poll(options.cancel));
    }
  }

  for (const LengthClassDrift& d : ComputeDrift(base)) {
    if (options.length == 0 || d.length == options.length) {
      report.drift.push_back(d);
    }
  }

  std::sort(all.begin(), all.end(),
            [](const AnomalyFinding& a, const AnomalyFinding& b) {
              if (a.score != b.score) return a.score > b.score;
              return RefLess(a.ref, b.ref);
            });
  if (all.size() > options.top_k) all.resize(options.top_k);
  report.findings = std::move(all);
  return report;
}

// ---------------------------------------------------------------------------
// CHANGEPOINT
// ---------------------------------------------------------------------------

namespace {

/// One live run-length hypothesis: the Normal-Inverse-Gamma posterior for
/// the observations since its changepoint, plus its (normalized) weight.
struct RunHypothesis {
  std::size_t run = 0;
  double mu = 0.0;
  double kappa = 1.0;
  double alpha = 1.0;
  double beta = 1.0;
  double prob = 1.0;
};

/// Student-t predictive density of the NIG posterior at x.
double PredictiveDensity(const RunHypothesis& h, double x) {
  const double nu = 2.0 * h.alpha;
  const double s2 = h.beta * (h.kappa + 1.0) / (h.alpha * h.kappa);
  const double z = (x - h.mu) * (x - h.mu) / (nu * s2);
  const double log_pdf = std::lgamma((nu + 1.0) / 2.0) -
                         std::lgamma(nu / 2.0) -
                         0.5 * std::log(nu * std::numbers::pi * s2) -
                         (nu + 1.0) / 2.0 * std::log1p(z);
  return std::exp(log_pdf);
}

RunHypothesis Updated(const RunHypothesis& h, double x, double prob) {
  RunHypothesis n;
  n.run = h.run + 1;
  n.mu = (h.kappa * h.mu + x) / (h.kappa + 1.0);
  n.beta = h.beta + h.kappa * (x - h.mu) * (x - h.mu) / (2.0 * (h.kappa + 1.0));
  n.kappa = h.kappa + 1.0;
  n.alpha = h.alpha + 0.5;
  n.prob = prob;
  return n;
}

/// Conservative allowance for how truncation-dropped mass can be amplified
/// by later renormalizations. The differential suite validates it across
/// seeded schedules; with nothing dropped the recursion is exact.
constexpr double kDropAmplification = 8.0;

}  // namespace

Result<ChangepointReport> DetectChangepoints(std::span<const double> values,
                                             const ChangepointOptions& options) {
  if (!(options.hazard > 0.0) || !(options.hazard < 1.0) ||
      !std::isfinite(options.hazard)) {
    return Status::InvalidArgument("hazard must be in (0, 1)");
  }
  if (options.max_run < 2) {
    return Status::InvalidArgument("max_run must be >= 2");
  }
  if (!(options.threshold >= 0.0) || options.threshold > 1.0 ||
      !std::isfinite(options.threshold)) {
    return Status::InvalidArgument("threshold must be in [0, 1]");
  }
  if (options.last > 0 && options.last < values.size()) {
    values = values.subspan(values.size() - options.last);
  }
  if (values.empty()) {
    return Status::InvalidArgument("changepoint needs at least one point");
  }

  const double h = options.hazard;
  ChangepointReport report;
  report.change_probability.reserve(values.size());
  std::vector<RunHypothesis> runs{RunHypothesis{}};
  std::vector<RunHypothesis> next;
  for (std::size_t t = 0; t < values.size(); ++t) {
    if ((t & 63u) == 0) ONEX_RETURN_IF_ERROR(Poll(options.cancel));
    const double x = values[t];

    next.clear();
    double cp_mass = 0.0;
    double total = 0.0;
    // Fresh changepoint hypothesis first, so runs stay sorted by run.
    next.push_back(RunHypothesis{});
    for (const RunHypothesis& r : runs) {
      const double pred = PredictiveDensity(r, x);
      const double joint = r.prob * pred;
      cp_mass += joint * h;
      next.push_back(Updated(r, x, joint * (1.0 - h)));
      total += joint;
    }
    next.front().prob = cp_mass;
    if (!(total > 0.0) || !std::isfinite(total)) {
      return Status::InvalidArgument(
          "changepoint recursion degenerated (non-finite input?)");
    }
    for (RunHypothesis& r : next) r.prob /= total;

    // Truncate to the max_run most probable hypotheses. Dropped mass is
    // accounted and converted into the report's error bound; the kept
    // hypotheses are renormalized so the recursion stays a distribution.
    if (next.size() > options.max_run) {
      std::sort(next.begin(), next.end(),
                [](const RunHypothesis& a, const RunHypothesis& b) {
                  if (a.prob != b.prob) return a.prob > b.prob;
                  return a.run < b.run;
                });
      double dropped = 0.0;
      for (std::size_t i = options.max_run; i < next.size(); ++i) {
        dropped += next[i].prob;
      }
      next.resize(options.max_run);
      report.mass_dropped += dropped;
      if (dropped < 1.0) {
        for (RunHypothesis& r : next) r.prob /= (1.0 - dropped);
      }
      std::sort(next.begin(), next.end(),
                [](const RunHypothesis& a, const RunHypothesis& b) {
                  return a.run < b.run;
                });
    }
    runs.swap(next);

    // P(run = 0 | x_1:t) is identically the hazard in this recursion —
    // the change and growth branches share every predictive factor, so
    // the fresh hypothesis carries no evidence about x_t. The step's
    // change signal is the ONE-step-old run: it dominates exactly when
    // the regime hypothesized to start at t scored its first point x_t
    // better than every older run's predictive did.
    double p_change = 0.0;
    if (t > 0) {
      for (const RunHypothesis& r : runs) {
        if (r.run == 1) p_change = r.prob;
      }
    }
    report.change_probability.push_back(p_change);
    if (p_change > options.threshold) {
      report.changepoints.push_back(ChangepointHit{t, p_change});
    }
  }

  const RunHypothesis* map = &runs.front();
  for (const RunHypothesis& r : runs) {
    if (r.prob > map->prob) map = &r;
  }
  report.map_run_length = map->run;
  report.evaluated = values.size();
  report.error_bound =
      std::min(1.0, kDropAmplification * report.mass_dropped);
  return report;
}

// ---------------------------------------------------------------------------
// MOTIF / DISCORD
// ---------------------------------------------------------------------------

namespace {

/// Everything the per-class motif/discord search reuses per member.
struct ClassIndex {
  std::vector<SubseqRef> refs;          ///< All members, group-major.
  std::vector<std::size_t> ref_group;   ///< Owning group per member.
  std::vector<double> radius;           ///< Exact per-group radius.
};

ClassIndex BuildClassIndex(const Dataset& ds, const LengthClass& cls) {
  ClassIndex idx;
  idx.refs.reserve(cls.total_members);
  idx.radius.reserve(cls.groups.size());
  for (std::size_t gi = 0; gi < cls.groups.size(); ++gi) {
    idx.radius.push_back(GroupRadius(ds, cls.groups[gi]));
    for (const SubseqRef& ref : cls.groups[gi].members()) {
      idx.refs.push_back(ref);
      idx.ref_group.push_back(gi);
    }
  }
  return idx;
}

/// Canonical pair ordering: the closest pair, ties broken by (a, b) with
/// a < b — the same rule the brute-force oracle applies, so accelerated
/// and naive searches pick identical winners even on exact ties.
struct PairBest {
  double distance = kInf;
  SubseqRef a, b;
  bool valid = false;

  void Offer(double d, SubseqRef x, SubseqRef y) {
    if (RefLess(y, x)) std::swap(x, y);
    if (!valid || d < distance ||
        (d == distance &&
         (RefLess(x, a) || (x == a && RefLess(y, b))))) {
      distance = d;
      a = x;
      b = y;
      valid = true;
    }
  }
};

}  // namespace

Result<MotifReport> FindMotifs(const OnexBase& base,
                               const MotifOptions& options) {
  if (options.length != 0) {
    ONEX_RETURN_IF_ERROR(base.FindLengthClass(options.length).status());
  }
  const Dataset& ds = base.dataset();
  MotifReport report;

  for (const LengthClass& cls : base.length_classes()) {
    if (options.length != 0 && cls.length != options.length) continue;
    ONEX_RETURN_IF_ERROR(Poll(options.cancel));

    MotifClassReport out;
    out.length = cls.length;
    const ClassIndex idx = BuildClassIndex(ds, cls);
    report.members_scanned += idx.refs.size();

    // Densest groups: population is the motif strength, radius the spread.
    std::vector<std::size_t> order(cls.groups.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                if (cls.groups[a].size() != cls.groups[b].size()) {
                  return cls.groups[a].size() > cls.groups[b].size();
                }
                return a < b;
              });
    for (std::size_t i = 0; i < order.size() && i < options.top_k; ++i) {
      MotifGroup g;
      g.group = order[i];
      g.count = cls.groups[order[i]].size();
      g.radius = idx.radius[order[i]];
      out.densest.push_back(g);
    }

    // Closest non-overlapping pair. Within-group pairs first (densest
    // groups first — members of one group are within ST of each other, so
    // the best pair almost always lives here), then cross-group pairs
    // under the admissible bound d(a,b) >= d(c_a,c_b) - r_a - r_b.
    PairBest best;
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      const SimilarityGroup& g = cls.groups[order[oi]];
      const auto members = g.members();
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          if (members[i].Overlaps(members[j])) continue;
          const double d = FilteredDistance(
              members[i].Resolve(ds), members[j].Resolve(ds), best.distance,
              &report.pairs_evaluated, &report.pairs_pruned);
          if (std::isfinite(d)) best.Offer(d, members[i], members[j]);
        }
      }
      ONEX_RETURN_IF_ERROR(Poll(options.cancel));
    }
    for (std::size_t gi = 0; gi < cls.groups.size(); ++gi) {
      for (std::size_t hi = gi + 1; hi < cls.groups.size(); ++hi) {
        const double centroid_gap =
            NormalizedEuclidean(cls.groups[gi].centroid_span(),
                                cls.groups[hi].centroid_span());
        const double bound =
            centroid_gap - idx.radius[gi] - idx.radius[hi];
        if (best.valid && bound > best.distance) {
          report.pairs_pruned +=
              cls.groups[gi].size() * cls.groups[hi].size();
          continue;
        }
        for (const SubseqRef& a : cls.groups[gi].members()) {
          for (const SubseqRef& b : cls.groups[hi].members()) {
            if (a.Overlaps(b)) continue;
            const double d = FilteredDistance(
                a.Resolve(ds), b.Resolve(ds), best.distance,
                &report.pairs_evaluated, &report.pairs_pruned);
            if (std::isfinite(d)) best.Offer(d, a, b);
          }
        }
      }
      ONEX_RETURN_IF_ERROR(Poll(options.cancel));
    }
    if (best.valid) {
      out.motif_a = best.a;
      out.motif_b = best.b;
      out.motif_distance = best.distance;
      out.has_motif = true;
    }

    // Discords: exact nearest-neighbor distance per member, groups visited
    // in ascending lower-bound order d(m, c_g) - r_g so most are skipped.
    std::vector<Discord> lonely;
    std::vector<std::pair<double, std::size_t>> group_order(
        cls.groups.size());
    for (std::size_t mi = 0; mi < idx.refs.size(); ++mi) {
      const SubseqRef m = idx.refs[mi];
      const std::span<const double> mv = m.Resolve(ds);
      for (std::size_t gi = 0; gi < cls.groups.size(); ++gi) {
        const double to_centroid =
            NormalizedEuclidean(mv, cls.groups[gi].centroid_span());
        group_order[gi] = {to_centroid - idx.radius[gi], gi};
      }
      std::sort(group_order.begin(), group_order.end());
      double nn = kInf;
      for (const auto& [lb, gi] : group_order) {
        if (lb >= nn) break;  // Every later group is at least this far.
        for (const SubseqRef& other : cls.groups[gi].members()) {
          if (other.Overlaps(m)) continue;  // Trivial self-match.
          const double d = FilteredDistance(
              mv, other.Resolve(ds), nn, &report.pairs_evaluated,
              &report.pairs_pruned);
          if (d < nn) nn = d;
        }
      }
      if (std::isfinite(nn)) lonely.push_back(Discord{m, nn});
      if ((mi & 31u) == 0) ONEX_RETURN_IF_ERROR(Poll(options.cancel));
    }
    std::sort(lonely.begin(), lonely.end(),
              [](const Discord& a, const Discord& b) {
                if (a.distance != b.distance) return a.distance > b.distance;
                return RefLess(a.ref, b.ref);
              });
    if (lonely.size() > options.discords) lonely.resize(options.discords);
    out.discords = std::move(lonely);

    report.classes.push_back(std::move(out));
  }
  return report;
}

// ---------------------------------------------------------------------------
// FORECAST
// ---------------------------------------------------------------------------

Result<ForecastReport> ForecastSeries(const OnexBase& base,
                                      std::size_t series,
                                      const ForecastOptions& options) {
  const Dataset& ds = base.dataset();
  ONEX_RETURN_IF_ERROR(ds.CheckIndex(series));
  ONEX_RETURN_IF_ERROR(Poll(options.cancel));
  if (options.horizon < 1) {
    return Status::InvalidArgument("horizon must be >= 1");
  }
  if (options.k < 1) return Status::InvalidArgument("k must be >= 1");
  const std::size_t len = ds[series].length();

  // Resolve the tail/pattern length: the requested class, or the longest
  // class that fits the series. Seasonal-naive with an explicit period
  // never consults the group structure, so it skips the resolution.
  const bool seasonal = options.method == ForecastMethod::kSeasonalNaive;
  std::size_t tail_len = options.length;
  if (tail_len == 0 && seasonal && options.period != 0) {
    tail_len = std::min(options.period, len);
  } else if (tail_len == 0) {
    for (const LengthClass& cls : base.length_classes()) {
      if (cls.length <= len) tail_len = cls.length;
    }
    if (tail_len == 0) {
      return Status::FailedPrecondition(
          "no length class fits the series; pass length= or period=");
    }
  } else if (options.method == ForecastMethod::kGroupNn) {
    ONEX_RETURN_IF_ERROR(base.FindLengthClass(tail_len).status());
  }
  if (tail_len > len) {
    return Status::InvalidArgument("length exceeds the series");
  }

  ForecastReport report;
  report.method = options.method;
  report.series = series;
  report.tail_length = tail_len;

  if (options.method == ForecastMethod::kSeasonalNaive) {
    const std::size_t period = options.period != 0 ? options.period : tail_len;
    if (period < 1 || period > len) {
      return Status::InvalidArgument("period must be in [1, series length]");
    }
    report.period = period;
    report.tail_start = len - period;
    report.values.reserve(options.horizon);
    const std::span<const double> v = ds[series].values();
    for (std::size_t j = 0; j < options.horizon; ++j) {
      report.values.push_back(v[len - period + (j % period)]);
    }
    return report;
  }

  // kGroupNn: exact k nearest members with a full continuation, found by
  // visiting groups in ascending lower-bound order and abandoning members
  // against the current k-th best.
  ONEX_ASSIGN_OR_RETURN(const LengthClass* cls,
                        base.FindLengthClass(tail_len));
  const std::size_t tail_start = len - tail_len;
  report.tail_start = tail_start;
  const SubseqRef tail_ref{series, tail_start, tail_len};
  const std::span<const double> tail = tail_ref.Resolve(ds);

  // (distance, ref) ascending; canonical tie-break by ref so the neighbor
  // *set* — and therefore the averaged forecast — is deterministic and
  // identical to the oracle's.
  std::vector<std::pair<double, SubseqRef>> best;
  const auto canon_less = [](const std::pair<double, SubseqRef>& a,
                             const std::pair<double, SubseqRef>& b) {
    if (a.first != b.first) return a.first < b.first;
    return RefLess(a.second, b.second);
  };

  // Lower-bound every group off its precomputed member envelope (the
  // pointwise min/max band in the GroupStore): one O(length) evaluation
  // bounds the distance from the tail to EVERY member, with no member
  // scan. Ascending order makes the prune a break, not a skip.
  Envelope tail_env;
  tail_env.lower.assign(tail.begin(), tail.end());
  tail_env.upper = tail_env.lower;
  const double inv_sqrt_len = 1.0 / std::sqrt(static_cast<double>(tail_len));
  std::vector<std::pair<double, std::size_t>> group_order;
  group_order.reserve(cls->groups.size());
  for (std::size_t gi = 0; gi < cls->groups.size(); ++gi) {
    const double lb =
        LbKeoghGroup(tail_env, cls->groups[gi].envelope()) * inv_sqrt_len;
    group_order.push_back({lb, gi});
  }
  std::sort(group_order.begin(), group_order.end());

  std::size_t evals = 0;
  std::size_t abandoned = 0;
  for (std::size_t oi = 0; oi < group_order.size(); ++oi) {
    const auto& [lb, gi] = group_order[oi];
    // Deflate by the bound's own rounding slack so a prune proves every
    // member strictly beyond the k-th best; boundary ties fall through.
    if (best.size() == options.k &&
        lb * (1.0 - 1e-9) - 1e-12 > best.back().first) {
      report.groups_pruned += group_order.size() - oi;
      break;
    }
    for (const SubseqRef& m : cls->groups[gi].members()) {
      if (m.end() + options.horizon > ds[m.series].length()) continue;
      if (m.Overlaps(tail_ref)) continue;  // The tail itself / leakage.
      ++report.candidates;
      const double cutoff =
          best.size() == options.k ? best.back().first : kInf;
      const double d =
          FilteredDistance(tail, m.Resolve(ds), cutoff, &evals, &abandoned);
      if (!std::isfinite(d)) continue;
      const std::pair<double, SubseqRef> cand{d, m};
      if (best.size() < options.k || canon_less(cand, best.back())) {
        best.insert(
            std::lower_bound(best.begin(), best.end(), cand, canon_less),
            cand);
        if (best.size() > options.k) best.pop_back();
      }
    }
    ONEX_RETURN_IF_ERROR(Poll(options.cancel));
  }

  if (best.empty()) {
    return Status::FailedPrecondition(
        "no member has a full continuation for this horizon");
  }
  report.values.assign(options.horizon, 0.0);
  for (const auto& [d, m] : best) {
    report.neighbors.push_back(ForecastNeighbor{m, d});
    const std::span<const double> src = ds[m.series].values();
    for (std::size_t j = 0; j < options.horizon; ++j) {
      report.values[j] += src[m.end() + j];
    }
  }
  const double inv = 1.0 / static_cast<double>(best.size());
  for (double& v : report.values) v *= inv;
  return report;
}

}  // namespace onex
