#include "onex/core/overview.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace onex {

Result<std::vector<OverviewEntry>> BuildOverview(
    const OnexBase& base, const OverviewOptions& options) {
  std::vector<OverviewEntry> entries;
  bool saw_length = false;
  for (const LengthClass& cls : base.length_classes()) {
    if (options.length != 0 && cls.length != options.length) continue;
    saw_length = true;
    for (std::size_t gi = 0; gi < cls.groups.size(); ++gi) {
      const SimilarityGroup& g = cls.groups[gi];
      OverviewEntry e;
      e.length = cls.length;
      e.group_index = gi;
      e.cardinality = g.size();
      e.representative.assign(g.centroid().begin(), g.centroid().end());
      entries.push_back(std::move(e));
    }
  }
  if (options.length != 0 && !saw_length) {
    return Status::NotFound("base has no groups of the requested length");
  }
  std::sort(entries.begin(), entries.end(),
            [](const OverviewEntry& a, const OverviewEntry& b) {
              if (a.cardinality != b.cardinality) {
                return a.cardinality > b.cardinality;
              }
              if (a.length != b.length) return a.length < b.length;
              return a.group_index < b.group_index;
            });
  if (options.top_n != 0 && entries.size() > options.top_n) {
    entries.resize(options.top_n);
  }
  std::size_t max_card = 0;
  for (const OverviewEntry& e : entries) {
    max_card = std::max(max_card, e.cardinality);
  }
  for (OverviewEntry& e : entries) {
    e.intensity = max_card == 0 ? 0.0
                                : static_cast<double>(e.cardinality) /
                                      static_cast<double>(max_card);
  }
  return entries;
}

}  // namespace onex
