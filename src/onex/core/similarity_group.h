#ifndef ONEX_CORE_SIMILARITY_GROUP_H_
#define ONEX_CORE_SIMILARITY_GROUP_H_

#include <cstddef>
#include <span>

#include "onex/core/group_store.h"
#include "onex/distance/envelope.h"
#include "onex/ts/subsequence.h"

namespace onex {

/// One "ONEX similarity group" (paper §3.1): same-length subsequences that
/// are pairwise similar within the threshold ST under (length-normalized)
/// Euclidean distance, summarized by a centroid representative. Construction
/// guarantees every member was within ST/2 of the centroid at insertion
/// time, which by the ED triangle inequality makes members pairwise-similar
/// within ST.
///
/// A SimilarityGroup is a two-word view — (store, index) — over the length
/// class's columnar GroupStore (DESIGN.md §4). Centroids, envelopes and
/// member lists live in the store's flat matrices/arena; this type only
/// addresses them. Copying a group copies the view, never the data. Groups
/// under construction use GroupBuilder (group_store.h) instead; stores and
/// their views are immutable once built.
class SimilarityGroup {
 public:
  SimilarityGroup(const GroupStore* store, std::size_t index)
      : store_(store), index_(index) {}

  std::size_t length() const { return store_->length(); }
  std::size_t size() const { return store_->group_size(index_); }
  bool empty() const { return size() == 0; }
  /// This group's index inside its length class (and store).
  std::size_t index() const { return index_; }

  std::span<const SubseqRef> members() const {
    return store_->members(index_);
  }

  /// The representative: running mean of member values (or the first member
  /// under the fixed-leader policy; see CentroidPolicy). A row of the
  /// store's centroid matrix.
  std::span<const double> centroid() const { return store_->centroid(index_); }
  std::span<const double> centroid_span() const { return centroid(); }

  /// Pointwise min/max over all member values, for group-level LB pruning.
  EnvelopeView envelope() const { return store_->envelope(index_); }

 private:
  const GroupStore* store_;
  std::size_t index_;
};

}  // namespace onex

#endif  // ONEX_CORE_SIMILARITY_GROUP_H_
