#ifndef ONEX_CORE_SIMILARITY_GROUP_H_
#define ONEX_CORE_SIMILARITY_GROUP_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "onex/distance/envelope.h"
#include "onex/ts/subsequence.h"

namespace onex {

/// One "ONEX similarity group" (paper §3.1): same-length subsequences that
/// are pairwise similar within the threshold ST under (length-normalized)
/// Euclidean distance, summarized by a centroid representative. Construction
/// guarantees every member was within ST/2 of the centroid at insertion
/// time, which by the ED triangle inequality makes members pairwise-similar
/// within ST.
class SimilarityGroup {
 public:
  explicit SimilarityGroup(std::size_t length) : length_(length) {}

  std::size_t length() const { return length_; }
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  const std::vector<SubseqRef>& members() const { return members_; }

  /// The representative: running mean of member values (or the first member
  /// under the fixed-leader policy; see CentroidPolicy).
  const std::vector<double>& centroid() const { return centroid_; }
  std::span<const double> centroid_span() const {
    return std::span<const double>(centroid_);
  }

  /// Pointwise min/max over all member values, for group-level LB pruning.
  const Envelope& envelope() const { return envelope_; }

  /// Adds a member. `values` must resolve `ref` against the base's dataset.
  /// When `update_centroid` is set the centroid moves to the running mean.
  void Add(const SubseqRef& ref, std::span<const double> values,
           bool update_centroid);

  /// Replaces the member list (used by the repair pass). Does not touch the
  /// centroid; callers decide whether to recompute.
  void SetMembers(std::vector<SubseqRef> members) {
    members_ = std::move(members);
  }

  /// Recomputes centroid and envelope from scratch out of `dataset`. With
  /// `leader_centroid` the centroid is the first member's values (the
  /// fixed-leader policy's representative) instead of the member mean.
  void RecomputeFromMembers(const Dataset& dataset,
                            bool leader_centroid = false);

 private:
  std::size_t length_;
  std::vector<SubseqRef> members_;
  std::vector<double> centroid_;
  Envelope envelope_;
};

}  // namespace onex

#endif  // ONEX_CORE_SIMILARITY_GROUP_H_
