#include "onex/core/group_store.h"

#include <cstddef>
#include <span>

#include "onex/distance/kernels.h"

namespace onex {

void GroupBuilder::Add(const SubseqRef& ref, std::span<const double> values,
                       bool update_centroid) {
  members_.push_back(ref);
  if (centroid_.empty()) {
    centroid_.assign(values.begin(), values.end());
  } else if (update_centroid) {
    // Incremental running mean: c += (x - c) / k.
    const double k = static_cast<double>(members_.size());
    for (std::size_t i = 0; i < centroid_.size(); ++i) {
      centroid_[i] += (values[i] - centroid_[i]) / k;
    }
  }
  AccumulateEnvelope(&envelope_, values);
}

void GroupBuilder::RecomputeFromMembers(const Dataset& dataset,
                                        bool leader_centroid) {
  centroid_.assign(length_, 0.0);
  envelope_ = Envelope();
  if (members_.empty()) return;
  for (const SubseqRef& ref : members_) {
    const std::span<const double> vals = ref.Resolve(dataset);
    for (std::size_t i = 0; i < length_; ++i) centroid_[i] += vals[i];
    AccumulateEnvelope(&envelope_, vals);
  }
  if (leader_centroid) {
    const std::span<const double> leader = members_.front().Resolve(dataset);
    centroid_.assign(leader.begin(), leader.end());
    return;
  }
  const double inv = 1.0 / static_cast<double>(members_.size());
  for (double& c : centroid_) c *= inv;
}

std::size_t GroupStore::MemoryUsage() const {
  return sizeof(GroupStore) +
         (centroids_span().size() + env_lower_span().size() +
          env_upper_span().size() + cent_env_lower_span().size() +
          cent_env_upper_span().size()) *
             sizeof(double) +
         members_span().size() * sizeof(SubseqRef) +
         offsets_span().size() * sizeof(std::size_t);
}

GroupStore GroupStore::Borrow(const Columns& cols) {
  GroupStore store;
  store.length_ = cols.length;
  store.cent_env_window_ = cols.cent_env_window;
  store.borrowed_ = true;
  store.cols_ = cols;
  return store;
}

GroupStore GroupStore::CopyFrom(const Columns& cols) {
  GroupStore store;
  store.length_ = cols.length;
  store.cent_env_window_ = cols.cent_env_window;
  store.centroids_.assign(cols.centroids.begin(), cols.centroids.end());
  store.env_lower_.assign(cols.env_lower.begin(), cols.env_lower.end());
  store.env_upper_.assign(cols.env_upper.begin(), cols.env_upper.end());
  store.cent_env_lower_.assign(cols.cent_env_lower.begin(),
                               cols.cent_env_lower.end());
  store.cent_env_upper_.assign(cols.cent_env_upper.begin(),
                               cols.cent_env_upper.end());
  store.member_arena_.assign(cols.members.begin(), cols.members.end());
  store.member_offsets_.assign(cols.member_offsets.begin(),
                               cols.member_offsets.end());
  return store;
}

GroupStore GroupStore::Pack(std::size_t length,
                            const std::vector<GroupBuilder>& groups) {
  GroupStore store;
  store.length_ = length;
  const std::size_t n = groups.size();
  store.centroids_.reserve(n * length);
  store.env_lower_.reserve(n * length);
  store.env_upper_.reserve(n * length);
  store.member_offsets_.reserve(n + 1);
  std::size_t total = 0;
  for (const GroupBuilder& g : groups) total += g.size();
  store.member_arena_.reserve(total);

  store.member_offsets_.push_back(0);
  for (const GroupBuilder& g : groups) {
    store.centroids_.insert(store.centroids_.end(), g.centroid().begin(),
                            g.centroid().end());
    store.env_lower_.insert(store.env_lower_.end(),
                            g.envelope().lower.begin(),
                            g.envelope().lower.end());
    store.env_upper_.insert(store.env_upper_.end(),
                            g.envelope().upper.begin(),
                            g.envelope().upper.end());
    store.member_arena_.insert(store.member_arena_.end(), g.members().begin(),
                               g.members().end());
    store.member_offsets_.push_back(store.member_arena_.size());
  }

  // Precompute each centroid's Keogh envelope, unconstrained so it stays
  // admissible for every query window. Min/max envelopes are exact (no FP
  // reassociation), so the matrices are identical under every kernel table.
  if (length > 0) {
    store.cent_env_lower_.resize(n * length);
    store.cent_env_upper_.resize(n * length);
    const DistanceKernel& kernel = ActiveKernel();
    for (std::size_t g = 0; g < n; ++g) {
      kernel.keogh_envelope(store.centroids_.data() + g * length, length,
                            store.cent_env_window_,
                            store.cent_env_lower_.data() + g * length,
                            store.cent_env_upper_.data() + g * length);
    }
  }
  return store;
}

}  // namespace onex
