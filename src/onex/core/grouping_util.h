#ifndef ONEX_CORE_GROUPING_UTIL_H_
#define ONEX_CORE_GROUPING_UTIL_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "onex/core/group_store.h"
#include "onex/core/onex_base.h"

namespace onex::internal {

/// Index of the nearest group centroid under length-normalized ED, early
/// abandoned at `radius` (only hits within the radius matter). Returns
/// (index, distance); index == groups.size() when nothing is within radius.
/// Shared by the offline builder and the incremental appender so both apply
/// the identical leader-clustering rule. Operates on builders: grouping is
/// a construction-time activity; finished classes live in the columnar
/// GroupStore instead.
std::pair<std::size_t, double> NearestGroup(
    const std::vector<GroupBuilder>& groups, std::span<const double> values,
    double radius);

/// Leader-clusters every admissible length-`len` subsequence of `ds`
/// (policy-aware, including the kRunningMeanRepair repair rounds) and
/// returns the finished builders. The one clustering pipeline behind the
/// offline build (OnexBase::Build) and the drift-triggered regroup of a
/// single length class (incremental.h), so both produce identical groupings
/// for identical inputs. `repaired` accumulates members the repair pass
/// moved. Thread-safe: touches only its own outputs.
std::vector<GroupBuilder> BuildGroupsForLength(const Dataset& ds,
                                               std::size_t len,
                                               const BaseBuildOptions& options,
                                               std::size_t* repaired);

}  // namespace onex::internal

#endif  // ONEX_CORE_GROUPING_UTIL_H_
