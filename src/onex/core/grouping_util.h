#ifndef ONEX_CORE_GROUPING_UTIL_H_
#define ONEX_CORE_GROUPING_UTIL_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "onex/core/group_store.h"

namespace onex::internal {

/// Index of the nearest group centroid under length-normalized ED, early
/// abandoned at `radius` (only hits within the radius matter). Returns
/// (index, distance); index == groups.size() when nothing is within radius.
/// Shared by the offline builder and the incremental appender so both apply
/// the identical leader-clustering rule. Operates on builders: grouping is
/// a construction-time activity; finished classes live in the columnar
/// GroupStore instead.
std::pair<std::size_t, double> NearestGroup(
    const std::vector<GroupBuilder>& groups, std::span<const double> values,
    double radius);

}  // namespace onex::internal

#endif  // ONEX_CORE_GROUPING_UTIL_H_
