#include "onex/core/similarity_group.h"

#include <cstddef>
#include <span>

namespace onex {

void SimilarityGroup::Add(const SubseqRef& ref, std::span<const double> values,
                          bool update_centroid) {
  members_.push_back(ref);
  if (centroid_.empty()) {
    centroid_.assign(values.begin(), values.end());
  } else if (update_centroid) {
    // Incremental running mean: c += (x - c) / k.
    const double k = static_cast<double>(members_.size());
    for (std::size_t i = 0; i < centroid_.size(); ++i) {
      centroid_[i] += (values[i] - centroid_[i]) / k;
    }
  }
  AccumulateEnvelope(&envelope_, values);
}

void SimilarityGroup::RecomputeFromMembers(const Dataset& dataset,
                                           bool leader_centroid) {
  centroid_.assign(length_, 0.0);
  envelope_ = Envelope();
  if (members_.empty()) return;
  for (const SubseqRef& ref : members_) {
    const std::span<const double> vals = ref.Resolve(dataset);
    for (std::size_t i = 0; i < length_; ++i) centroid_[i] += vals[i];
    AccumulateEnvelope(&envelope_, vals);
  }
  if (leader_centroid) {
    const std::span<const double> leader = members_.front().Resolve(dataset);
    centroid_.assign(leader.begin(), leader.end());
    return;
  }
  const double inv = 1.0 / static_cast<double>(members_.size());
  for (double& c : centroid_) c *= inv;
}

}  // namespace onex
