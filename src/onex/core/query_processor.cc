#include "onex/core/query_processor.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"
#include "onex/distance/envelope.h"
#include "onex/distance/lower_bounds.h"

namespace onex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double NormFactor(std::size_t n, std::size_t m) {
  return std::sqrt(static_cast<double>(std::max(n, m)));
}

}  // namespace

std::vector<QueryProcessor::RankedGroup> QueryProcessor::RankGroups(
    std::span<const double> query, const QueryOptions& options,
    QueryStats* stats) const {
  std::vector<RankedGroup> ranked;
  const std::size_t qn = query.size();
  // Keogh envelope of the query, reused for every same-length group. Its
  // band must match the query window to stay admissible.
  const Envelope query_env = ComputeKeoghEnvelope(
      query, options.window < 0 ? -1
                                : EffectiveWindow(qn, qn, options.window));

  double best_norm = kInf;  // best-so-far normalized rep distance
  for (std::size_t ci = 0; ci < base_->length_classes().size(); ++ci) {
    const LengthClass& cls = base_->length_classes()[ci];
    if (options.min_length != 0 && cls.length < options.min_length) continue;
    if (options.max_length != 0 && cls.length > options.max_length) continue;
    const double nf = NormFactor(qn, cls.length);
    for (std::size_t gi = 0; gi < cls.groups.size(); ++gi) {
      const SimilarityGroup& g = cls.groups[gi];
      if (stats != nullptr) ++stats->groups_total;

      if (options.use_lower_bounds) {
        double lb = LbKim(query, g.centroid_span());
        if (cls.length == qn) {
          lb = std::max(lb, LbKeogh(query_env, g.centroid_span()));
        }
        if (lb / nf >= best_norm && std::isfinite(best_norm)) {
          if (stats != nullptr) ++stats->groups_pruned_lb;
          // Still rank it by its lower bound so top-K exploration can come
          // back to it if everything else is worse.
          ranked.push_back({lb / nf, lb, ci, gi, /*exact=*/false});
          continue;
        }
      }

      const double cutoff =
          options.use_early_abandon && std::isfinite(best_norm)
              ? best_norm * nf
              : -1.0;
      if (stats != nullptr) ++stats->rep_dtw_evaluations;
      double raw = DtwDistanceEarlyAbandon(query, g.centroid_span(), cutoff,
                                           options.window);
      double norm = std::isinf(raw) ? kInf : raw / nf;
      bool exact = true;
      if (std::isinf(raw)) {
        // Abandoned: true distance exceeds the cutoff; rank with that floor.
        raw = cutoff;
        norm = best_norm;
        exact = false;
      } else {
        best_norm = std::min(best_norm, norm);
      }
      ranked.push_back({norm, raw, ci, gi, exact});
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedGroup& a, const RankedGroup& b) {
              if (a.normalized_rep_dtw != b.normalized_rep_dtw) {
                return a.normalized_rep_dtw < b.normalized_rep_dtw;
              }
              return a.exact > b.exact;  // exact values win ties
            });
  return ranked;
}

Result<BestMatch> QueryProcessor::BestMatchQuery(std::span<const double> query,
                                                 const QueryOptions& options,
                                                 QueryStats* stats) const {
  ONEX_ASSIGN_OR_RETURN(std::vector<BestMatch> top,
                        KnnQuery(query, 1, options, stats));
  if (top.empty()) {
    return Status::NotFound("no admissible groups for this query");
  }
  return std::move(top.front());
}

Result<std::vector<BestMatch>> QueryProcessor::KnnQuery(
    std::span<const double> query, std::size_t k, const QueryOptions& options,
    QueryStats* stats) const {
  if (query.size() < 2) {
    return Status::InvalidArgument(
        StrFormat("query must have >= 2 points, got %zu", query.size()));
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  const std::vector<RankedGroup> ranked = RankGroups(query, options, stats);
  if (ranked.empty()) {
    return Status::NotFound(
        "no groups to search (length restrictions exclude every class)");
  }

  const Dataset& ds = base_->dataset();
  const std::size_t qn = query.size();
  const double st = base_->options().st;
  const Envelope query_env = ComputeKeoghEnvelope(
      query, options.window < 0 ? -1
                                : EffectiveWindow(qn, qn, options.window));

  // Candidate answers, kept sorted ascending by normalized DTW; the k-th
  // value is the pruning horizon.
  std::vector<BestMatch> best;
  auto worst_kth = [&]() {
    return best.size() < k ? kInf : best.back().normalized_dtw;
  };

  // How many groups must be refined: at least explore_top_groups (>=1 for
  // best-match, >=k for knn so k answers can come from k distinct groups),
  // and keep going while a group's representative is close enough that it
  // could still hold a better member.
  const std::size_t must_explore =
      std::max<std::size_t>(std::max<std::size_t>(1, options.explore_top_groups), k);

  for (std::size_t r = 0; r < ranked.size(); ++r) {
    const RankedGroup& rg = ranked[r];
    if (r >= must_explore &&
        (!options.exhaustive || rg.normalized_rep_dtw > worst_kth() + st)) {
      break;
    }

    const LengthClass& cls = base_->length_classes()[rg.class_index];
    const SimilarityGroup& g = cls.groups[rg.group_index];
    const double nf = NormFactor(qn, cls.length);

    // Group-envelope bound: no member can beat the current k-th answer.
    if (options.use_lower_bounds && cls.length == qn && best.size() >= k) {
      const double glb = LbKeoghGroup(query_env, g.envelope()) / nf;
      if (glb >= worst_kth()) {
        if (stats != nullptr) ++stats->groups_pruned_lb;
        continue;
      }
    }

    for (const SubseqRef& ref : g.members()) {
      const std::span<const double> vals = ref.Resolve(ds);
      if (options.use_lower_bounds) {
        double lb = LbKim(query, vals);
        if (cls.length == qn) {
          lb = std::max(lb, LbKeogh(query_env, vals));
        }
        if (lb / nf >= worst_kth()) {
          if (stats != nullptr) ++stats->members_pruned_lb;
          continue;
        }
      }
      const double cutoff = options.use_early_abandon && best.size() >= k
                                ? worst_kth() * nf
                                : -1.0;
      if (stats != nullptr) ++stats->member_dtw_evaluations;
      const double raw =
          DtwDistanceEarlyAbandon(query, vals, cutoff, options.window);
      if (std::isinf(raw)) continue;
      const double norm = raw / nf;
      if (best.size() >= k && norm >= worst_kth()) continue;

      BestMatch m;
      m.ref = ref;
      m.length = cls.length;
      m.group_index = rg.group_index;
      m.dtw = raw;
      m.normalized_dtw = norm;
      m.rep_dtw = rg.raw_rep_dtw;
      m.normalized_rep_dtw = rg.normalized_rep_dtw;
      best.insert(std::upper_bound(best.begin(), best.end(), m,
                                   [](const BestMatch& a, const BestMatch& b) {
                                     return a.normalized_dtw <
                                            b.normalized_dtw;
                                   }),
                  std::move(m));
      if (best.size() > k) best.pop_back();
    }
  }

  if (best.empty()) {
    return Status::NotFound("no match found (base has no members)");
  }
  if (options.compute_path) {
    for (BestMatch& m : best) {
      m.path = DtwWithPath(query, m.ref.Resolve(ds), options.window).path;
    }
  }
  return best;
}

}  // namespace onex
