#include "onex/core/query_processor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"
#include "onex/distance/envelope.h"
#include "onex/distance/kernels.h"

namespace onex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double NormFactor(std::size_t n, std::size_t m) {
  return std::sqrt(static_cast<double>(std::max(n, m)));
}

/// Thread-safe work counters. Totals are sums of per-iteration increments,
/// so they are identical however iterations are partitioned — the property
/// that lets QueryStats stay deterministic under options.threads.
struct StatsAcc {
  std::atomic<std::size_t> groups_pruned_lb{0};
  std::atomic<std::size_t> rep_dtw_evaluations{0};
  std::atomic<std::size_t> member_dtw_evaluations{0};
  std::atomic<std::size_t> members_pruned_lb{0};
  std::atomic<std::size_t> pruned_kim{0};
  std::atomic<std::size_t> pruned_keogh{0};

  void FlushInto(QueryStats* stats) const {
    if (stats == nullptr) return;
    stats->groups_pruned_lb += groups_pruned_lb.load();
    stats->rep_dtw_evaluations += rep_dtw_evaluations.load();
    stats->member_dtw_evaluations += member_dtw_evaluations.load();
    stats->members_pruned_lb += members_pruned_lb.load();
    stats->pruned_kim += pruned_kim.load();
    stats->pruned_keogh += pruned_keogh.load();
    stats->dtw_evals +=
        rep_dtw_evaluations.load() + member_dtw_evaluations.load();
  }
};

/// Below this many items a per-group fan-out costs more than it buys;
/// gating on size is safe because partitioning never affects results.
constexpr std::size_t kMinItemsForFanOut = 16;

}  // namespace

std::vector<QueryProcessor::RankedGroup> QueryProcessor::RankGroups(
    std::span<const double> query, const QueryOptions& options,
    QueryStats* stats) const {
  const std::size_t qn = query.size();
  // Keogh envelope of the query, reused for every same-length group. Its
  // band must match the query window to stay admissible.
  const Envelope query_env = ComputeKeoghEnvelope(
      query, options.window < 0 ? -1
                                : EffectiveWindow(qn, qn, options.window));

  // Admissible (class, group) pairs, in deterministic class-major order.
  // The columnar store makes the per-class portion of this scan a linear
  // walk over one centroid matrix.
  struct Entry {
    std::size_t class_index;
    std::size_t group_index;
    double nf;
    bool same_length;
  };
  std::vector<Entry> entries;
  for (std::size_t ci = 0; ci < base_->length_classes().size(); ++ci) {
    const LengthClass& cls = base_->length_classes()[ci];
    if (options.min_length != 0 && cls.length < options.min_length) continue;
    if (options.max_length != 0 && cls.length > options.max_length) continue;
    const double nf = NormFactor(qn, cls.length);
    for (std::size_t gi = 0; gi < cls.store->num_groups(); ++gi) {
      entries.push_back({ci, gi, nf, cls.length == qn});
    }
  }
  if (stats != nullptr) stats->groups_total += entries.size();
  std::vector<RankedGroup> ranked(entries.size());
  if (entries.empty()) return ranked;

  StatsAcc acc;
  auto centroid_of = [&](const Entry& e) {
    return base_->length_classes()[e.class_index].store->centroid(
        e.group_index);
  };

  // Small bases don't amortize a fan-out; the gate never changes results
  // (partitioning is outcome-neutral by design).
  const std::size_t rank_threads =
      entries.size() >= kMinItemsForFanOut ? options.threads : 1;

  // Stage 1 (parallel): admissible lower bounds for every group. Three
  // bounds per same-length group, cheapest first: LB_Kim (endpoints only),
  // forward LB_Keogh (query envelope vs centroid), and reversed LB_Keogh
  // against the centroid envelope the GroupStore precomputed at Pack time.
  // Bounds are computed in full (no abandoning) because the values double
  // as rank keys for pruned groups; LB_Kim is kept separately so stage 3
  // can attribute each prune to the stage that achieved it.
  std::vector<double> lb_raw(entries.size(), 0.0);
  std::vector<double> lb_kim_raw(entries.size(), 0.0);
  if (options.use_lower_bounds) {
    ForEach(entries.size(), rank_threads, [&](std::size_t i) {
      const Entry& e = entries[i];
      const std::span<const double> cent = centroid_of(e);
      const double kim = LbKim(query, cent);
      double lb = kim;
      if (e.same_length) {
        lb = std::max(lb, LbKeogh(query_env, cent));
        const GroupStore& store =
            *base_->length_classes()[e.class_index].store;
        if (EnvelopeWindowCovers(store.centroid_envelope_window(),
                                 options.window)) {
          lb = std::max(
              lb, LbKeogh(store.centroid_envelope(e.group_index), query));
        }
      }
      lb_kim_raw[i] = kim;
      lb_raw[i] = lb;
    });
  }

  // Stage 2: seed the pruning horizon with the exact representative DTW of
  // the most promising group (smallest normalized lower bound; lowest index
  // on ties). One group, computed once, deterministically.
  std::size_t seed = 0;
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (lb_raw[i] / entries[i].nf < lb_raw[seed] / entries[seed].nf) seed = i;
  }
  acc.rep_dtw_evaluations.fetch_add(1);
  const double seed_raw = DtwDistanceEarlyAbandon(
      query, centroid_of(entries[seed]), /*cutoff=*/-1.0, options.window);
  const double horizon = seed_raw / entries[seed].nf;
  ranked[seed] = {horizon, seed_raw, entries[seed].class_index,
                  entries[seed].group_index, /*exact=*/true};

  // Stage 3 (parallel): score every other group against the fixed horizon.
  // Because the horizon never moves, each group's prune/evaluate/abandon
  // outcome depends only on the group itself — any partition of this loop
  // over threads produces the identical ranked list and identical stats.
  ForEach(entries.size(), rank_threads, [&](std::size_t i) {
    if (i == seed) return;
    const Entry& e = entries[i];
    if (options.use_lower_bounds && lb_raw[i] / e.nf >= horizon) {
      acc.groups_pruned_lb.fetch_add(1);
      if (lb_kim_raw[i] / e.nf >= horizon) {
        acc.pruned_kim.fetch_add(1);
      } else {
        acc.pruned_keogh.fetch_add(1);
      }
      // Still rank it by its lower bound so top-K exploration can come
      // back to it if everything else is worse.
      ranked[i] = {lb_raw[i] / e.nf, lb_raw[i], e.class_index, e.group_index,
                   /*exact=*/false};
      return;
    }
    const double cutoff =
        options.use_early_abandon ? horizon * e.nf : -1.0;
    acc.rep_dtw_evaluations.fetch_add(1);
    double raw =
        DtwDistanceEarlyAbandon(query, centroid_of(e), cutoff, options.window);
    double norm = std::isinf(raw) ? kInf : raw / e.nf;
    bool exact = true;
    if (std::isinf(raw)) {
      // Abandoned: true distance exceeds the horizon; rank with that floor.
      raw = cutoff;
      norm = horizon;
      exact = false;
    }
    ranked[i] = {norm, raw, e.class_index, e.group_index, exact};
  });
  acc.FlushInto(stats);

  std::sort(ranked.begin(), ranked.end(),
            [](const RankedGroup& a, const RankedGroup& b) {
              if (a.normalized_rep_dtw != b.normalized_rep_dtw) {
                return a.normalized_rep_dtw < b.normalized_rep_dtw;
              }
              if (a.exact != b.exact) return a.exact;  // exact values win ties
              if (a.class_index != b.class_index) {
                return a.class_index < b.class_index;
              }
              return a.group_index < b.group_index;
            });
  return ranked;
}

Result<BestMatch> QueryProcessor::BestMatchQuery(std::span<const double> query,
                                                 const QueryOptions& options,
                                                 QueryStats* stats) const {
  ONEX_ASSIGN_OR_RETURN(std::vector<BestMatch> top,
                        KnnQuery(query, 1, options, stats));
  if (top.empty()) {
    return Status::NotFound("no admissible groups for this query");
  }
  return std::move(top.front());
}

Result<std::vector<BestMatch>> QueryProcessor::KnnQuery(
    std::span<const double> query, std::size_t k, const QueryOptions& options,
    QueryStats* stats) const {
  if (query.size() < 2) {
    return Status::InvalidArgument(
        StrFormat("query must have >= 2 points, got %zu", query.size()));
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  // Cascade stage boundary 1: before ranking. Catches requests that were
  // already over deadline when they came off the pipeline queue.
  if (options.cancel != nullptr) {
    ONEX_RETURN_IF_ERROR(options.cancel->Check());
  }
  const std::vector<RankedGroup> ranked = RankGroups(query, options, stats);
  if (ranked.empty()) {
    return Status::NotFound(
        "no groups to search (length restrictions exclude every class)");
  }
  // Stage boundary 2: between ranking and refinement.
  if (options.cancel != nullptr) {
    ONEX_RETURN_IF_ERROR(options.cancel->Check());
  }

  const Dataset& ds = base_->dataset();
  const std::size_t qn = query.size();
  const double st = base_->options().st;
  const Envelope query_env = ComputeKeoghEnvelope(
      query, options.window < 0 ? -1
                                : EffectiveWindow(qn, qn, options.window));

  // Candidate answers, kept sorted ascending by normalized DTW; the k-th
  // value is the pruning horizon.
  std::vector<BestMatch> best;
  auto worst_kth = [&]() {
    return best.size() < k ? kInf : best.back().normalized_dtw;
  };

  // How many groups must be refined: at least explore_top_groups (>=1 for
  // best-match, >=k for knn so k answers can come from k distinct groups),
  // and keep going while a group's representative is close enough that it
  // could still hold a better member.
  const std::size_t must_explore =
      std::max<std::size_t>(std::max<std::size_t>(1, options.explore_top_groups), k);

  StatsAcc acc;
  std::vector<double> dist;  // per-member distances, reused across groups
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    const RankedGroup& rg = ranked[r];
    if (r >= must_explore &&
        (!options.exhaustive || rg.normalized_rep_dtw > worst_kth() + st)) {
      break;
    }
    // Stage boundary 3: between refined groups — the granularity that bounds
    // how stale a doomed query can run. Checked at this sequential point
    // (not inside the member fan-out) so a completed query's results and
    // stats stay deterministic.
    if (options.cancel != nullptr) {
      ONEX_RETURN_IF_ERROR(options.cancel->Check());
    }

    const LengthClass& cls = base_->length_classes()[rg.class_index];
    const GroupStore& store = *cls.store;
    const double nf = NormFactor(qn, cls.length);

    // Group-envelope bound: no member can beat the current k-th answer.
    if (options.use_lower_bounds && cls.length == qn && best.size() >= k) {
      const double glb =
          LbKeoghGroup(query_env, store.envelope(rg.group_index)) / nf;
      if (glb >= worst_kth()) {
        acc.groups_pruned_lb.fetch_add(1);
        acc.pruned_keogh.fetch_add(1);
        continue;
      }
    }

    // Refine this group in two deterministic phases. Phase 1 scores every
    // member against the horizon as it stood when the group was entered
    // (fixed, so the member scan parallelizes with bit-identical outcomes);
    // phase 2 merges the survivors into the top-k sequentially in member
    // order, exactly as a serial scan would.
    const std::span<const SubseqRef> members = store.members(rg.group_index);
    const double entry_horizon = worst_kth();
    const bool have_k = best.size() >= k;
    dist.assign(members.size(), kInf);
    const std::size_t scan_threads =
        members.size() >= kMinItemsForFanOut ? options.threads : 1;
    ForEach(members.size(), scan_threads, [&](std::size_t i) {
      const std::span<const double> vals = members[i].Resolve(ds);
      if (options.use_lower_bounds) {
        // LB_Kim → LB_Keogh cascade: each stage runs only when the previous
        // one failed to prune, and LB_Keogh abandons once it proves the
        // member can't beat the horizon. The prune set equals the old
        // max(kim, keogh) >= horizon test, so results are unchanged; only
        // the work (and the per-stage attribution) differs.
        if (LbKim(query, vals) / nf >= entry_horizon) {
          acc.members_pruned_lb.fetch_add(1);
          acc.pruned_kim.fetch_add(1);
          return;
        }
        if (cls.length == qn) {
          const double lb_cutoff =
              options.use_early_abandon && have_k ? entry_horizon * nf : -1.0;
          if (LbKeogh(query_env, vals, lb_cutoff) / nf >= entry_horizon) {
            acc.members_pruned_lb.fetch_add(1);
            acc.pruned_keogh.fetch_add(1);
            return;
          }
        }
      }
      const double cutoff =
          options.use_early_abandon && have_k ? entry_horizon * nf : -1.0;
      acc.member_dtw_evaluations.fetch_add(1);
      const double raw =
          DtwDistanceEarlyAbandon(query, vals, cutoff, options.window);
      if (!std::isinf(raw)) dist[i] = raw;
    });

    for (std::size_t i = 0; i < members.size(); ++i) {
      if (std::isinf(dist[i])) continue;
      const double norm = dist[i] / nf;
      if (best.size() >= k && norm >= worst_kth()) continue;

      BestMatch m;
      m.ref = members[i];
      m.length = cls.length;
      m.group_index = rg.group_index;
      m.dtw = dist[i];
      m.normalized_dtw = norm;
      m.rep_dtw = rg.raw_rep_dtw;
      m.normalized_rep_dtw = rg.normalized_rep_dtw;
      best.insert(std::upper_bound(best.begin(), best.end(), m,
                                   [](const BestMatch& a, const BestMatch& b) {
                                     return a.normalized_dtw <
                                            b.normalized_dtw;
                                   }),
                  std::move(m));
      if (best.size() > k) best.pop_back();
    }
  }
  acc.FlushInto(stats);

  if (best.empty()) {
    return Status::NotFound("no match found (base has no members)");
  }
  // Stage boundary 4: before the (full, unabandoned) alignment DPs.
  if (options.cancel != nullptr) {
    ONEX_RETURN_IF_ERROR(options.cancel->Check());
  }
  if (options.compute_path) {
    // Final answers are fixed; their alignments are independent (and each
    // is a full O(n*m) DP, heavy enough to fan out even for small k).
    ForEach(best.size(), options.threads, [&](std::size_t i) {
      best[i].path =
          DtwWithPath(query, best[i].ref.Resolve(ds), options.window).path;
    });
  }
  return best;
}

}  // namespace onex
