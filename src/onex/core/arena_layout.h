#ifndef ONEX_CORE_ARENA_LAYOUT_H_
#define ONEX_CORE_ARENA_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "onex/common/result.h"
#include "onex/core/onex_base.h"
#include "onex/ts/dataset.h"
#include "onex/ts/normalization.h"
#include "onex/ts/subsequence.h"

namespace onex {

/// The ONEXARENA checkpoint format (DESIGN.md §17): one relocatable blob
/// whose on-disk bytes ARE the in-memory columnar layout. A 64-byte header,
/// a table of 32-byte section descriptors, then 64-byte-aligned sections
/// holding exactly what GroupStore/OnexBase hold in RAM — the centroid
/// matrix, the member-envelope and centroid-envelope matrices, the SubseqRef
/// arena and its offset table, the raw and normalized series values, and the
/// frozen normalization parameters. Everything is addressed by offset, never
/// by pointer, so an arena can be mmap'd read-only and served in place: a
/// cold dataset's first query is a page-in, not a rebuild.
///
/// Integrity: the header carries an FNV-1a 64 over every byte after it, and
/// each section descriptor carries its own FNV over the section's bytes.
/// ParseArena validates both, plus every structural invariant (counts
/// cross-checked against section byte sizes before anything is allocated,
/// member refs bounds-checked against the declared series lengths, offset
/// tables monotone) — a hostile or truncated file is a structured error,
/// never UB and never a silently different base.

/// Read-only mmap of an arena file. Realized bases borrow spans into the
/// mapping and keep it alive via shared_ptr, so the mapping can never
/// outlive its last reader. Non-copyable; always heap-held.
class ArenaMapping {
 public:
  /// Maps `path` read-only (MAP_PRIVATE). IoError when the file cannot be
  /// opened or mapped; InvalidArgument on an empty file.
  static Result<std::shared_ptr<const ArenaMapping>> Map(
      const std::string& path);

  ~ArenaMapping();
  ArenaMapping(const ArenaMapping&) = delete;
  ArenaMapping& operator=(const ArenaMapping&) = delete;

  std::span<const std::byte> bytes() const {
    return std::span<const std::byte>(static_cast<const std::byte*>(addr_),
                                      size_);
  }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// madvise hints. DontNeed drops resident pages after a downgrade (the
  /// data stays servable — the next read faults it back in); WillNeed
  /// prefetches before a known query burst. Both are best-effort.
  void AdviseDontNeed() const;
  void AdviseWillNeed() const;

 private:
  ArenaMapping() = default;
  void* addr_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

/// Parsed, validated view of one length class inside an arena. All spans
/// point into the parsed buffer.
struct ArenaClassView {
  std::size_t length = 0;
  std::size_t num_groups = 0;
  int cent_env_window = -1;
  std::span<const double> centroids;
  std::span<const double> env_lower;
  std::span<const double> env_upper;
  std::span<const double> cent_env_lower;
  std::span<const double> cent_env_upper;
  std::span<const SubseqRef> members;
  std::span<const std::size_t> member_offsets;  ///< num_groups + 1 entries.
};

/// Name/label/length of one series (values live in the bulk sections).
struct ArenaSeriesMeta {
  std::string name;
  std::string label;
  std::size_t length = 0;
};

/// Fully validated view of an arena buffer. Spans reference the buffer
/// passed to ParseArena; the caller keeps that buffer alive (RealizeArena
/// takes an explicit keepalive for exactly this).
struct ArenaView {
  std::string dataset_name;
  NormalizationKind norm_kind = NormalizationKind::kMinMaxDataset;
  NormalizationParams norm_params;
  BaseBuildOptions build_options;
  std::size_t repaired_members = 0;
  std::vector<ArenaSeriesMeta> series;
  std::span<const double> raw_values;   ///< All series, concatenated.
  std::span<const double> norm_values;  ///< Same order and lengths.
  std::vector<ArenaClassView> classes;
};

/// The structures RealizeArena assembles from a view.
struct RealizedArena {
  std::shared_ptr<const Dataset> raw;
  std::shared_ptr<const Dataset> normalized;
  std::shared_ptr<const OnexBase> base;
};

/// True when `bytes` starts with the ONEXARENA magic — the cheap sniff the
/// version-switched readers (checkpoints, LOADBASE) dispatch on.
bool LooksLikeArena(std::span<const std::byte> bytes);
bool LooksLikeArena(std::string_view bytes);

/// Serializes a prepared dataset into one arena blob. `base.dataset()` must
/// be the normalized dataset; `raw` carries the exact original-unit values
/// (same series count and lengths). Deterministic: the same inputs encode
/// to the same bytes, so independent builds of the same base are
/// byte-identical (core_arena_golden_test).
Result<std::string> EncodeArena(const Dataset& raw, NormalizationKind kind,
                                const NormalizationParams& params,
                                const OnexBase& base);

/// Parses and fully validates an arena buffer. The buffer must be 8-byte
/// aligned (mmap and heap buffers both are) and outlive the returned view.
/// Every count is cross-checked against actual section byte sizes before it
/// drives any allocation or loop.
Result<ArenaView> ParseArena(std::span<const std::byte> bytes);

/// Assembles datasets and an OnexBase from a parsed view. With `keepalive`
/// non-null the group stores BORROW the view's spans (zero-copy serving off
/// a mapping) and the base holds `keepalive` so the buffer outlives every
/// reader; with null they deep-copy into owned storage (the materialized
/// load path). Series values are always materialized owned — Dataset owns
/// its vectors — so only the group structures page in lazily.
Result<RealizedArena> RealizeArena(const ArenaView& view,
                                   std::shared_ptr<const void> keepalive);

}  // namespace onex

#endif  // ONEX_CORE_ARENA_LAYOUT_H_
