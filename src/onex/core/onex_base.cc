#include "onex/core/onex_base.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "onex/common/logging.h"
#include "onex/common/string_utils.h"
#include "onex/common/task_pool.h"
#include "onex/core/grouping_util.h"

namespace onex {
namespace {

/// Packs finished builders into a LengthClass: columnar store + one view
/// per group. `total_members` is recounted from the builders so callers
/// cannot desynchronize it.
LengthClass FinalizeLengthClass(std::size_t length,
                                const std::vector<GroupBuilder>& builders) {
  LengthClass cls;
  cls.length = length;
  cls.store =
      std::make_shared<const GroupStore>(GroupStore::Pack(length, builders));
  cls.groups.reserve(builders.size());
  for (std::size_t g = 0; g < builders.size(); ++g) {
    cls.groups.emplace_back(cls.store.get(), g);
  }
  cls.total_members = cls.store->total_members();
  return cls;
}

/// Builds the length-`len` class: leader clustering of every admissible
/// subsequence, plus the optional repair pass — the shared
/// internal::BuildGroupsForLength pipeline, packed columnar. Returns the
/// number of members the repair pass moved through `repaired`. Thread-safe:
/// touches only its own outputs.
LengthClass BuildLengthClass(const Dataset& ds, std::size_t len,
                             const BaseBuildOptions& options,
                             std::size_t* repaired) {
  const std::vector<GroupBuilder> groups =
      internal::BuildGroupsForLength(ds, len, options, repaired);
  if (groups.empty()) return LengthClass{len, nullptr, {}, 0};
  return FinalizeLengthClass(len, groups);
}

}  // namespace

const char* CentroidPolicyToString(CentroidPolicy policy) {
  switch (policy) {
    case CentroidPolicy::kFixedLeader:
      return "fixed-leader";
    case CentroidPolicy::kRunningMean:
      return "running-mean";
    case CentroidPolicy::kRunningMeanRepair:
      return "running-mean-repair";
  }
  return "unknown";
}

Status BaseBuildOptions::Validate() const {
  if (!(st > 0.0) || !std::isfinite(st)) {
    return Status::InvalidArgument(
        StrFormat("similarity threshold must be positive, got %g", st));
  }
  if (min_length < 2) {
    return Status::InvalidArgument("min_length must be >= 2");
  }
  if (max_length != 0 && max_length < min_length) {
    return Status::InvalidArgument(StrFormat(
        "max_length (%zu) < min_length (%zu)", max_length, min_length));
  }
  if (length_step == 0 || stride == 0) {
    return Status::InvalidArgument("length_step and stride must be positive");
  }
  return Status::OK();
}

Result<OnexBase> OnexBase::Build(std::shared_ptr<const Dataset> dataset,
                                 const BaseBuildOptions& options,
                                 TaskPool* pool) {
  if (dataset == nullptr || dataset->empty()) {
    return Status::InvalidArgument("cannot build a base over an empty dataset");
  }
  ONEX_RETURN_IF_ERROR(options.Validate());

  const auto t0 = std::chrono::steady_clock::now();
  OnexBase base;
  base.dataset_ = std::move(dataset);
  base.options_ = options;
  const Dataset& ds = *base.dataset_;

  const std::size_t max_len =
      options.max_length == 0 ? ds.MaxLength() : options.max_length;
  std::vector<std::size_t> lengths;
  for (std::size_t len = options.min_length; len <= max_len;
       len += options.length_step) {
    lengths.push_back(len);
  }

  std::vector<LengthClass> classes(lengths.size());
  std::vector<std::size_t> repaired(lengths.size(), 0);
  TaskPool& tasks = pool != nullptr ? *pool : TaskPool::Shared();
  std::size_t workers = options.threads == 0 ? tasks.worker_count() + 1
                                             : options.threads;
  workers = std::min(workers, lengths.size() == 0 ? 1 : lengths.size());

  if (workers <= 1) {
    for (std::size_t i = 0; i < lengths.size(); ++i) {
      classes[i] = BuildLengthClass(ds, lengths[i], options, &repaired[i]);
    }
  } else {
    // Length classes are independent work items; the pool dynamically
    // balances them (long lengths cost more than short ones). Each item
    // writes only its own slot, so the result is bit-identical to the
    // serial loop regardless of scheduling.
    tasks.ParallelFor(
        lengths.size(),
        [&](std::size_t i) {
          classes[i] = BuildLengthClass(ds, lengths[i], options, &repaired[i]);
        },
        workers);
  }

  for (std::size_t i = 0; i < classes.size(); ++i) {
    LengthClass& cls = classes[i];
    if (cls.total_members == 0) continue;
    base.stats_.repaired_members += repaired[i];
    base.stats_.num_subsequences += cls.total_members;
    base.stats_.num_groups += cls.groups.size();
    base.classes_.push_back(std::move(cls));
  }

  if (base.classes_.empty()) {
    return Status::InvalidArgument(StrFormat(
        "no subsequences: every series is shorter than min_length=%zu",
        options.min_length));
  }

  base.stats_.num_length_classes = base.classes_.size();
  base.stats_.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ONEX_LOG(kInfo) << "built ONEX base over '" << ds.name() << "': "
                  << base.stats_.num_subsequences << " subsequences -> "
                  << base.stats_.num_groups << " groups in "
                  << base.stats_.build_seconds << "s";
  return base;
}

Result<OnexBase> OnexBase::Restore(std::shared_ptr<const Dataset> dataset,
                                   const BaseBuildOptions& options,
                                   std::vector<LengthClassDraft> classes,
                                   std::size_t repaired_members) {
  if (dataset == nullptr || dataset->empty()) {
    return Status::InvalidArgument("cannot restore a base without a dataset");
  }
  ONEX_RETURN_IF_ERROR(options.Validate());
  if (classes.empty()) {
    return Status::InvalidArgument("cannot restore a base with no groups");
  }

  const auto t0 = std::chrono::steady_clock::now();
  OnexBase base;
  base.dataset_ = std::move(dataset);
  base.options_ = options;
  base.stats_.repaired_members = repaired_members;
  const Dataset& ds = *base.dataset_;
  const bool leader =
      options.centroid_policy == CentroidPolicy::kFixedLeader;

  std::size_t prev_length = 0;
  for (LengthClassDraft& draft : classes) {
    if (draft.length <= prev_length) {
      return Status::InvalidArgument(
          "length classes must be strictly increasing");
    }
    prev_length = draft.length;
    // Build() never materializes a class with zero members, but the ONEXBASE
    // text format can carry one ("groups 0"). Skip it rather than install a
    // memberless LengthClass that every later consumer (drift ratios, group
    // scans) would have to special-case.
    if (draft.groups.empty()) continue;
    for (GroupBuilder& g : draft.groups) {
      if (g.empty()) {
        return Status::InvalidArgument("restored group has no members");
      }
      for (const SubseqRef& ref : g.members()) {
        ONEX_RETURN_IF_ERROR(ds.CheckRange(ref.series, ref.start, ref.length));
        if (ref.length != draft.length) {
          return Status::InvalidArgument(StrFormat(
              "member %s in length class %zu", ref.ToString().c_str(),
              draft.length));
        }
      }
      g.RecomputeFromMembers(ds, leader);
    }
    LengthClass cls = FinalizeLengthClass(draft.length, draft.groups);
    base.stats_.num_subsequences += cls.total_members;
    base.stats_.num_groups += cls.groups.size();
    base.classes_.push_back(std::move(cls));
  }
  if (base.classes_.empty()) {
    return Status::InvalidArgument("cannot restore a base with no groups");
  }
  base.stats_.num_length_classes = base.classes_.size();
  base.stats_.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return base;
}

Result<OnexBase> OnexBase::FromStores(
    std::shared_ptr<const Dataset> dataset, const BaseBuildOptions& options,
    std::vector<std::shared_ptr<const GroupStore>> stores,
    std::size_t repaired_members, std::shared_ptr<const void> storage) {
  if (dataset == nullptr || dataset->empty()) {
    return Status::InvalidArgument("cannot assemble a base without a dataset");
  }
  ONEX_RETURN_IF_ERROR(options.Validate());
  if (stores.empty()) {
    return Status::InvalidArgument("cannot assemble a base with no stores");
  }

  OnexBase base;
  base.dataset_ = std::move(dataset);
  base.options_ = options;
  base.stats_.repaired_members = repaired_members;
  base.storage_ = std::move(storage);

  std::size_t prev_length = 0;
  for (std::shared_ptr<const GroupStore>& store : stores) {
    if (store == nullptr || store->num_groups() == 0) {
      return Status::InvalidArgument("assembled length class has no groups");
    }
    if (store->length() <= prev_length) {
      return Status::InvalidArgument(
          "length classes must be strictly increasing");
    }
    prev_length = store->length();

    LengthClass cls;
    cls.length = store->length();
    cls.store = std::move(store);
    cls.groups.reserve(cls.store->num_groups());
    for (std::size_t g = 0; g < cls.store->num_groups(); ++g) {
      cls.groups.emplace_back(cls.store.get(), g);
    }
    cls.total_members = cls.store->total_members();
    base.stats_.num_subsequences += cls.total_members;
    base.stats_.num_groups += cls.groups.size();
    base.classes_.push_back(std::move(cls));
  }
  base.stats_.num_length_classes = base.classes_.size();
  return base;
}

std::size_t OnexBase::MemoryUsage() const {
  std::size_t total = 0;
  for (const LengthClass& cls : classes_) {
    if (cls.store != nullptr) total += cls.store->MemoryUsage();
    total += cls.groups.size() * sizeof(SimilarityGroup);
  }
  return total;
}

Result<const LengthClass*> OnexBase::FindLengthClass(std::size_t length) const {
  // classes_ is sorted by length: binary search replaces the old
  // std::map index, which duplicated information the vector already has.
  const auto it = std::lower_bound(
      classes_.begin(), classes_.end(), length,
      [](const LengthClass& cls, std::size_t value) {
        return cls.length < value;
      });
  if (it == classes_.end() || it->length != length) {
    return Status::NotFound(
        StrFormat("no length class for length %zu", length));
  }
  return &*it;
}

}  // namespace onex
