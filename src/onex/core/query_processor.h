#ifndef ONEX_CORE_QUERY_PROCESSOR_H_
#define ONEX_CORE_QUERY_PROCESSOR_H_

#include <cstddef>
#include <span>
#include <vector>

#include "onex/common/cancellation.h"
#include "onex/common/result.h"
#include "onex/common/task_pool.h"
#include "onex/core/onex_base.h"
#include "onex/distance/dtw.h"
#include "onex/distance/warping_path.h"

namespace onex {

/// Knobs of the DTW-side exploration (paper §3.2/§3.3). Defaults enable the
/// full pruning cascade; the ablation bench (E7) toggles the flags.
struct QueryOptions {
  /// Sakoe-Chiba half-width for query-time DTW; kNoWindow = unconstrained.
  int window = kNoWindow;
  /// Group-envelope + Keogh lower-bound pruning ("indexing of time series
  /// using bounding envelopes").
  bool use_lower_bounds = true;
  /// Early-abandoning DTW against the best-so-far ("early pruning of
  /// unpromising candidates").
  bool use_early_abandon = true;
  /// How many of the best-representative groups to refine. 1 reproduces the
  /// paper's "best match representative" rule; larger values trade time for
  /// accuracy.
  std::size_t explore_top_groups = 1;
  /// When set, keeps refining groups whose representative lies within ST of
  /// the current k-th answer instead of stopping after explore_top_groups.
  /// Stronger answers, but the scan can touch a large share of the base —
  /// the paper's speed claim assumes this is off.
  bool exhaustive = false;
  /// Restrict searched lengths (0 = no bound). The demo's Similarity View
  /// searches all lengths; Seasonal View pins one.
  std::size_t min_length = 0;
  std::size_t max_length = 0;
  /// Extract the warping path of the final answer (Fig 2's dotted lines).
  bool compute_path = true;
  /// Worker threads for this query (DESIGN.md §6). 1 = run everything on
  /// the calling thread (default); 0 = the shared pool's full width; N > 1
  /// caps the pool lanes used. Every pruning decision is made against
  /// deterministic horizons (fixed per ranking pass / per refined group),
  /// so matches, distances AND QueryStats are bit-identical for every
  /// thread count — parallelism is a pure latency knob.
  std::size_t threads = 1;
  /// Optional cooperative cancellation (deadline_ms on the wire, or the
  /// serving layer's disconnect flag). Polled between cascade stages and
  /// between refined groups; an expired token turns the query into
  /// DeadlineExceeded. Queries that complete before expiry are bit-identical
  /// to uncancellable runs — the token is only ever *read* at deterministic
  /// sequential points, never inside the horizon arithmetic.
  const Cancellation* cancel = nullptr;
};

/// Work counters for one query; benches report these to show where pruning
/// pays off. Deterministic for a given (base, query, options) regardless of
/// options.threads.
struct QueryStats {
  std::size_t groups_total = 0;
  std::size_t groups_pruned_lb = 0;       ///< Skipped by lower bound alone.
  std::size_t rep_dtw_evaluations = 0;    ///< DTW calls against centroids.
  std::size_t member_dtw_evaluations = 0; ///< DTW calls against members.
  std::size_t members_pruned_lb = 0;
  /// Per-stage attribution of the LB_Kim → LB_Keogh → DTW cascade
  /// (DESIGN.md §14): which bound removed a candidate (group or member),
  /// and how many DTW dynamic programs actually ran. pruned_kim +
  /// pruned_keogh == groups_pruned_lb + members_pruned_lb; dtw_evals ==
  /// rep_dtw_evaluations + member_dtw_evaluations. Surfaced on the wire in
  /// MATCH/KNN/STATS responses.
  std::size_t pruned_kim = 0;    ///< Candidates dropped by LB_Kim alone.
  std::size_t pruned_keogh = 0;  ///< Dropped by an LB_Keogh-family bound.
  std::size_t dtw_evals = 0;     ///< Total DTW evaluations (reps + members).
};

/// A retrieved match. Distances come in raw (sqrt of summed squared costs)
/// and length-normalized (raw / sqrt(max(n,m))) forms; normalized values are
/// comparable across lengths and against the build threshold ST.
struct BestMatch {
  SubseqRef ref;
  std::size_t length = 0;
  std::size_t group_index = 0;   ///< Group's index inside its length class.
  double dtw = 0.0;              ///< Raw DTW(query, match).
  double normalized_dtw = 0.0;
  double rep_dtw = 0.0;          ///< Raw DTW(query, group representative).
  double normalized_rep_dtw = 0.0;
  WarpingPath path;              ///< Query-to-match alignment (optional).
};

/// DTW-side exploration over a built ONEX base (paper §3.2): rank groups by
/// representative DTW, refine inside the winner(s). The base must outlive
/// the processor. Stateless between calls and safe to share across threads;
/// with options.threads != 1 a single query fans out over `pool` (or the
/// process-wide TaskPool::Shared() when none was injected).
class QueryProcessor {
 public:
  explicit QueryProcessor(const OnexBase* base, TaskPool* pool = nullptr)
      : base_(base), pool_(pool) {}

  /// The demo's similarity search: the best match to `query` across every
  /// group of every (admissible) length. The triangle-inequality foundation
  /// guarantees the answer's DTW is within ST of the true optimum.
  Result<BestMatch> BestMatchQuery(std::span<const double> query,
                                   const QueryOptions& options = {},
                                   QueryStats* stats = nullptr) const;

  /// k nearest groups' best members, ascending by normalized DTW. Examines
  /// the max(k, explore_top_groups) best-representative groups (plus, with
  /// options.exhaustive, any group whose representative is within ST of the
  /// current k-th answer); a documented extension of the paper's best-match
  /// rule.
  Result<std::vector<BestMatch>> KnnQuery(std::span<const double> query,
                                          std::size_t k,
                                          const QueryOptions& options = {},
                                          QueryStats* stats = nullptr) const;

  const OnexBase& base() const { return *base_; }

 private:
  struct RankedGroup {
    double normalized_rep_dtw;
    double raw_rep_dtw;
    std::size_t class_index;
    std::size_t group_index;
    /// True when normalized_rep_dtw is the exact representative DTW; false
    /// when it is only a lower bound (group was pruned or abandoned during
    /// ranking). Exact entries win sorting ties so pruning can never demote
    /// the true argmin group below a bound-valued one.
    bool exact;
  };

  /// Pass 1: every group scored by DTW between query and representative,
  /// ascending. Pruning runs against a fixed horizon — the exact
  /// representative DTW of the group with the smallest lower bound — so the
  /// scored list, the stats and all tie-breaks are independent of how the
  /// scan is partitioned over threads (DESIGN.md §6).
  std::vector<RankedGroup> RankGroups(std::span<const double> query,
                                      const QueryOptions& options,
                                      QueryStats* stats) const;

  /// Runs body(i) for i in [0, n): inline when `threads` is 1 (or the item
  /// count is too small to amortize a fan-out), otherwise over the pool.
  /// Templated so the serial path pays no std::function type erasure.
  /// Bodies write only index-addressed slots, so the partition never
  /// affects results.
  template <typename Body>
  void ForEach(std::size_t n, std::size_t threads, Body&& body) const {
    if (threads == 1 || n < 2) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    TaskPool& pool = pool_ != nullptr ? *pool_ : TaskPool::Shared();
    pool.ParallelFor(n, body, threads);
  }

  const OnexBase* base_;
  TaskPool* pool_;
};

}  // namespace onex

#endif  // ONEX_CORE_QUERY_PROCESSOR_H_
