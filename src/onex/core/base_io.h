#ifndef ONEX_CORE_BASE_IO_H_
#define ONEX_CORE_BASE_IO_H_

#include <iosfwd>
#include <string>

#include "onex/common/result.h"
#include "onex/core/onex_base.h"

namespace onex {

/// Persistence for the ONEX base, so the expensive offline preprocessing
/// (paper: "loading a new dataset ... triggers the preprocessing of this
/// data at the server side") runs once per dataset and reloads in
/// milliseconds on every later session.
///
/// The format is a versioned, line-oriented text format ("ONEXBASE 1"): the
/// normalized dataset (values with full double round-trip precision), the
/// build options, and every group's member references. Centroids and
/// envelopes are *recomputed* on load from the member values — they are
/// derived state, and recomputing keeps the file small and the invariants
/// impossible to corrupt independently of the data.
///
/// Note: the running-mean centroid after an out-of-order rebuild equals the
/// member mean, which is what RecomputeFromMembers restores; for the
/// fixed-leader policy the first stored member is the leader, so member
/// order is preserved by the writer.
Status SaveBase(const OnexBase& base, std::ostream& out);
Status SaveBaseToFile(const OnexBase& base, const std::string& path);

Result<OnexBase> LoadBase(std::istream& in);
Result<OnexBase> LoadBaseFromFile(const std::string& path);

}  // namespace onex

#endif  // ONEX_CORE_BASE_IO_H_
