#ifndef ONEX_CORE_GROUP_STORE_H_
#define ONEX_CORE_GROUP_STORE_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "onex/distance/envelope.h"
#include "onex/ts/subsequence.h"

namespace onex {

/// Mutable, value-semantic similarity group used while a length class is
/// under construction (offline build, repair pass, incremental append, base
/// restore). Once a class is final its builders are packed into a columnar
/// GroupStore and discarded; query-time code only ever sees the store
/// (DESIGN.md §4).
class GroupBuilder {
 public:
  explicit GroupBuilder(std::size_t length) : length_(length) {}

  std::size_t length() const { return length_; }
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  const std::vector<SubseqRef>& members() const { return members_; }

  /// The representative: running mean of member values (or the first member
  /// under the fixed-leader policy; see CentroidPolicy).
  const std::vector<double>& centroid() const { return centroid_; }
  std::span<const double> centroid_span() const {
    return std::span<const double>(centroid_);
  }

  /// Pointwise min/max over all member values, for group-level LB pruning.
  const Envelope& envelope() const { return envelope_; }

  /// Adds a member. `values` must resolve `ref` against the base's dataset.
  /// When `update_centroid` is set the centroid moves to the running mean.
  void Add(const SubseqRef& ref, std::span<const double> values,
           bool update_centroid);

  /// Replaces the member list (used by the repair pass). Does not touch the
  /// centroid; callers decide whether to recompute.
  void SetMembers(std::vector<SubseqRef> members) {
    members_ = std::move(members);
  }

  /// Seeds the centroid directly — how the incremental appender thaws a
  /// columnar group back into a builder without losing the exact
  /// representative the base was querying with.
  void SetCentroid(std::span<const double> values) {
    centroid_.assign(values.begin(), values.end());
  }

  /// Recomputes centroid and envelope from scratch out of `dataset`. With
  /// `leader_centroid` the centroid is the first member's values (the
  /// fixed-leader policy's representative) instead of the member mean.
  void RecomputeFromMembers(const Dataset& dataset,
                            bool leader_centroid = false);

 private:
  std::size_t length_;
  std::vector<SubseqRef> members_;
  std::vector<double> centroid_;
  Envelope envelope_;
};

/// Columnar storage for every similarity group of one length class
/// (DESIGN.md §4). Instead of per-group heap vectors scattered across the
/// allocator, the store keeps four flat arrays:
///
///   centroids       num_groups x length  row-major centroid matrix
///   env_lower       num_groups x length  pointwise member minima
///   env_upper       num_groups x length  pointwise member maxima
///   cent_env_lower  num_groups x length  Keogh envelope of each centroid
///   cent_env_upper  num_groups x length  (precomputed at Pack time)
///   member arena                         all SubseqRefs back to back, with
///                                        a num_groups+1 offset table
///
/// The query processor's group scan walks the centroid matrix linearly —
/// one allocation, no pointer chasing, hardware-prefetcher friendly — which
/// is what makes the parallel RankGroups pass memory-bandwidth-bound rather
/// than latency-bound. Immutable after Pack; safe to share across threads.
///
/// Storage comes in two flavors (DESIGN.md §17). An OWNED store (Pack,
/// CopyFrom) holds its matrices in vectors, like always. A BORROWED store
/// (Borrow) holds only spans over columns that live elsewhere — an mmap'd
/// ONEXARENA checkpoint — so a cold dataset serves queries straight off the
/// page cache. Borrowed stores never own or free anything; whoever creates
/// them (OnexBase keeps a keepalive handle) guarantees the backing bytes
/// outlive the store. Every accessor reads through the same span-returning
/// switch, so query code cannot tell the flavors apart.
class GroupStore {
 public:
  GroupStore() = default;

  /// Packs finished builders into columnar form. Builders must all have
  /// centroids/envelopes of exactly `length` points (enforced by the build
  /// and restore paths, which recompute before packing).
  static GroupStore Pack(std::size_t length,
                         const std::vector<GroupBuilder>& groups);

  /// Raw columns of one length class as they sit in an ONEXARENA section
  /// set (arena_layout.h). Shapes must be consistent — num_groups*length
  /// entries per matrix, member_offsets carrying num_groups+1 entries that
  /// end at members.size() — which the arena parser enforces before any
  /// store is constructed.
  struct Columns {
    std::size_t length = 0;
    std::size_t num_groups = 0;
    int cent_env_window = -1;
    std::span<const double> centroids;
    std::span<const double> env_lower;
    std::span<const double> env_upper;
    std::span<const double> cent_env_lower;
    std::span<const double> cent_env_upper;
    std::span<const SubseqRef> members;
    std::span<const std::size_t> member_offsets;
  };

  /// A store serving directly out of `cols` — zero copies, zero ownership.
  static GroupStore Borrow(const Columns& cols);

  /// An owned store holding a deep copy of `cols` — the materialized load
  /// path, and the copy-on-write target when a mutation thaws a borrowed
  /// class.
  static GroupStore CopyFrom(const Columns& cols);

  /// True when this store borrows external storage instead of owning it.
  bool borrowed() const { return borrowed_; }

  std::size_t length() const { return length_; }
  std::size_t num_groups() const {
    const std::span<const std::size_t> offs = offsets_span();
    return offs.empty() ? 0 : offs.size() - 1;
  }
  std::size_t total_members() const { return members_span().size(); }

  std::span<const double> centroid(std::size_t g) const {
    return centroids_span().subspan(g * length_, length_);
  }
  EnvelopeView envelope(std::size_t g) const {
    return EnvelopeView{env_lower_span().subspan(g * length_, length_),
                        env_upper_span().subspan(g * length_, length_)};
  }
  /// Keogh envelope of group g's centroid, precomputed at Pack time with
  /// band half-width centroid_envelope_window(). Backs the reversed
  /// LB_Keogh stage of the query cascade: the query is scored against the
  /// candidate-side envelope, so ranking needs no per-group envelope
  /// construction. Stored unconstrained (window < 0), it stays admissible
  /// for every query window (see EnvelopeWindowCovers in kernels.h).
  EnvelopeView centroid_envelope(std::size_t g) const {
    return EnvelopeView{cent_env_lower_span().subspan(g * length_, length_),
                        cent_env_upper_span().subspan(g * length_, length_)};
  }
  /// Band half-width the centroid envelopes were computed with (negative =
  /// unconstrained). Callers must check EnvelopeWindowCovers against their
  /// query window before using centroid_envelope() as a bound.
  int centroid_envelope_window() const { return cent_env_window_; }

  std::span<const SubseqRef> members(std::size_t g) const {
    const std::span<const std::size_t> offs = offsets_span();
    return members_span().subspan(offs[g], offs[g + 1] - offs[g]);
  }
  std::size_t group_size(std::size_t g) const {
    const std::span<const std::size_t> offs = offsets_span();
    return offs[g + 1] - offs[g];
  }

  /// The whole centroid matrix (num_groups x length, row-major); benches
  /// and kernels that want one linear pass read it directly.
  std::span<const double> centroid_matrix() const { return centroids_span(); }

  /// Payload bytes of this store: centroid + envelope matrices, member
  /// arena and offset table. Deterministic for a given base (element counts,
  /// not allocator capacities — identical for owned and borrowed flavors),
  /// so the engine's LRU cache can budget prepared bases reproducibly
  /// (DESIGN.md §11); the registry accounts a borrowed store's bytes as
  /// mapped, not resident.
  std::size_t MemoryUsage() const;

 private:
  std::span<const double> centroids_span() const {
    return borrowed_ ? cols_.centroids : std::span<const double>(centroids_);
  }
  std::span<const double> env_lower_span() const {
    return borrowed_ ? cols_.env_lower : std::span<const double>(env_lower_);
  }
  std::span<const double> env_upper_span() const {
    return borrowed_ ? cols_.env_upper : std::span<const double>(env_upper_);
  }
  std::span<const double> cent_env_lower_span() const {
    return borrowed_ ? cols_.cent_env_lower
                     : std::span<const double>(cent_env_lower_);
  }
  std::span<const double> cent_env_upper_span() const {
    return borrowed_ ? cols_.cent_env_upper
                     : std::span<const double>(cent_env_upper_);
  }
  std::span<const SubseqRef> members_span() const {
    return borrowed_ ? cols_.members
                     : std::span<const SubseqRef>(member_arena_);
  }
  std::span<const std::size_t> offsets_span() const {
    return borrowed_ ? cols_.member_offsets
                     : std::span<const std::size_t>(member_offsets_);
  }

  std::size_t length_ = 0;
  std::vector<double> centroids_;
  std::vector<double> env_lower_;
  std::vector<double> env_upper_;
  std::vector<double> cent_env_lower_;
  std::vector<double> cent_env_upper_;
  int cent_env_window_ = -1;  ///< Unconstrained: admissible for any window.
  std::vector<SubseqRef> member_arena_;
  std::vector<std::size_t> member_offsets_;  ///< num_groups + 1 entries.
  /// Borrowed flavor: spans over external storage; the vectors stay empty.
  bool borrowed_ = false;
  Columns cols_;
};

}  // namespace onex

#endif  // ONEX_CORE_GROUP_STORE_H_
