#include "onex/core/seasonal.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "onex/distance/euclidean.h"

namespace onex {
namespace {

/// Greedy left-to-right selection of non-overlapping occurrences (sorted by
/// start); keeps the earliest of each overlapping run.
std::vector<SubseqRef> DropOverlaps(std::vector<SubseqRef> refs) {
  std::vector<SubseqRef> out;
  for (const SubseqRef& r : refs) {
    if (out.empty() || r.start >= out.back().end()) out.push_back(r);
  }
  return out;
}

std::size_t TypicalGap(const std::vector<SubseqRef>& refs) {
  if (refs.size() < 2) return 0;
  std::map<std::size_t, std::size_t> votes;
  for (std::size_t i = 1; i < refs.size(); ++i) {
    ++votes[refs[i].start - refs[i - 1].start];
  }
  std::size_t best_gap = 0, best_votes = 0;
  for (const auto& [gap, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_gap = gap;
    }
  }
  return best_gap;
}

}  // namespace

Result<std::vector<SeasonalPattern>> FindSeasonalPatterns(
    const OnexBase& base, std::size_t series_idx,
    const SeasonalOptions& options) {
  ONEX_RETURN_IF_ERROR(base.dataset().CheckIndex(series_idx));
  if (options.min_occurrences < 2) {
    return Status::InvalidArgument(
        "a pattern needs at least 2 occurrences to repeat");
  }

  std::vector<SeasonalPattern> patterns;
  const Dataset& ds = base.dataset();
  for (const LengthClass& cls : base.length_classes()) {
    if (options.length != 0 && cls.length != options.length) continue;
    for (const SimilarityGroup& g : cls.groups) {
      // Occurrences of this group's shape inside the probed series.
      std::vector<SubseqRef> occ;
      for (const SubseqRef& ref : g.members()) {
        if (ref.series == series_idx) occ.push_back(ref);
      }
      if (occ.size() < options.min_occurrences) continue;
      std::sort(occ.begin(), occ.end(),
                [](const SubseqRef& a, const SubseqRef& b) {
                  return a.start < b.start;
                });
      if (!options.allow_overlap) occ = DropOverlaps(std::move(occ));
      if (occ.size() < options.min_occurrences) continue;

      SeasonalPattern p;
      p.length = cls.length;
      p.representative.assign(g.centroid().begin(), g.centroid().end());
      double cohesion = 0.0;
      for (const SubseqRef& r : occ) {
        cohesion += NormalizedEuclidean(g.centroid_span(), r.Resolve(ds));
      }
      p.cohesion = cohesion / static_cast<double>(occ.size());
      p.typical_gap = TypicalGap(occ);
      p.occurrences = std::move(occ);
      patterns.push_back(std::move(p));
    }
  }

  std::sort(patterns.begin(), patterns.end(),
            [](const SeasonalPattern& a, const SeasonalPattern& b) {
              if (a.occurrences.size() != b.occurrences.size()) {
                return a.occurrences.size() > b.occurrences.size();
              }
              return a.cohesion < b.cohesion;
            });
  if (options.top_k != 0 && patterns.size() > options.top_k) {
    patterns.resize(options.top_k);
  }
  return patterns;
}

}  // namespace onex
