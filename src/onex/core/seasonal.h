#ifndef ONEX_CORE_SEASONAL_H_
#define ONEX_CORE_SEASONAL_H_

#include <cstddef>
#include <vector>

#include "onex/common/result.h"
#include "onex/core/onex_base.h"

namespace onex {

/// Parameters for seasonal-similarity mining (the demo's Seasonal View,
/// Fig 4: "find repeated patterns within a given time series").
struct SeasonalOptions {
  /// Pattern length(s) to mine. 0 = every length class in the base.
  std::size_t length = 0;
  /// A pattern needs at least this many (non-overlapping) occurrences.
  std::size_t min_occurrences = 2;
  /// Whether two occurrences of one pattern may overlap in time. The demo's
  /// alternating blue/green segments are non-overlapping; allowing overlap
  /// reveals sliding self-similarity instead.
  bool allow_overlap = false;
  /// Keep at most this many patterns (by occurrence count, then tightness).
  /// 0 = all.
  std::size_t top_k = 10;
};

/// One repeated pattern: a similarity group restricted to the probed series.
struct SeasonalPattern {
  std::size_t length = 0;
  /// Occurrences sorted by start index; non-overlapping unless allow_overlap.
  std::vector<SubseqRef> occurrences;
  /// The group representative (shape of the pattern).
  std::vector<double> representative;
  /// Mean normalized ED from occurrences to the representative (tightness;
  /// smaller = crisper pattern).
  double cohesion = 0.0;
  /// Dominant gap between consecutive occurrence starts; the recovered
  /// "period" when the pattern is truly seasonal.
  std::size_t typical_gap = 0;
};

/// Mines repeating patterns of `series_idx` from the base's groups: a group
/// whose members cluster inside one series *is* a repeated motif. Returns
/// patterns ranked by occurrence count (desc), then cohesion (asc).
Result<std::vector<SeasonalPattern>> FindSeasonalPatterns(
    const OnexBase& base, std::size_t series_idx,
    const SeasonalOptions& options = {});

}  // namespace onex

#endif  // ONEX_CORE_SEASONAL_H_
