#ifndef ONEX_CORE_ANALYTICS_H_
#define ONEX_CORE_ANALYTICS_H_

#include <cstddef>
#include <span>
#include <vector>

#include "onex/common/cancellation.h"
#include "onex/common/result.h"
#include "onex/core/incremental.h"
#include "onex/core/onex_base.h"
#include "onex/ts/subsequence.h"

namespace onex {

/// Analytics verbs on the group structure (DESIGN.md §18): the compacted
/// similarity groups are an index, not just a MATCH/KNN accelerator. Each
/// query family below answers directly off the GroupStore — centroids
/// bound member distances (triangle inequality), group populations are
/// density estimates, and group radii make cross-group pruning admissible —
/// so the accelerated paths return *the same answers* as a scan that never
/// heard of groups. core_analytics_diff_test proves exactly that: exact
/// equivalence for ANOMALY scores and MOTIF/DISCORD distances, bounded
/// (with the bound reported by the algorithm itself) for CHANGEPOINT.
///
/// Every entry point polls an optional Cancellation between stages (length
/// classes, groups, BOCPD steps), so `deadline_ms=` and client disconnects
/// stop analytics mid-flight the same way they stop the query cascade.

// ---------------------------------------------------------------------------
// ANOMALY — nearest-centroid scoring + DBSCAN-style outlier flags
// ---------------------------------------------------------------------------

struct AnomalyOptions {
  /// Restrict to one length class; 0 = every class in the base.
  std::size_t length = 0;
  /// Report at most this many findings (descending score).
  std::size_t top_k = 10;
  /// Neighborhood radius for the outlier rule. 0 = the base's ST/2 — the
  /// same radius the PR 4 drift machinery checks members against.
  double eps = 0.0;
  /// A member is *clustered* when some centroid within `eps` of it heads a
  /// group with at least `min_pts` members (the DBSCAN core-point rule with
  /// group population as the density estimate). Everything else is flagged.
  std::size_t min_pts = 2;
  const Cancellation* cancel = nullptr;
};

/// One scored subsequence. `score` is the exact distance to the nearest
/// centroid of its length class (normalized ED, the grouping metric).
struct AnomalyFinding {
  SubseqRef ref;
  double score = 0.0;
  bool outlier = false;
};

struct AnomalyReport {
  /// Top findings across all scanned classes, by (score desc, ref asc).
  std::vector<AnomalyFinding> findings;
  /// Per-class drift (PR 4 machinery): members beyond ST/2 of their *own*
  /// centroid — the maintenance view of the same outlier population.
  std::vector<LengthClassDrift> drift;
  std::size_t members_scanned = 0;
  std::size_t outliers = 0;  ///< Flagged members across scanned classes.
  /// Centroid distance evaluations abandoned early (the work the index
  /// saved relative to the oracle's exhaustive centroid scan).
  std::size_t distance_evals = 0;
  std::size_t evals_abandoned = 0;
};

/// Scores every member of the selected length class(es) by its distance to
/// the nearest centroid and applies the DBSCAN-style outlier rule. Exact:
/// early abandonment never changes a score, only skips arithmetic.
Result<AnomalyReport> DetectAnomalies(const OnexBase& base,
                                      const AnomalyOptions& options = {});

// ---------------------------------------------------------------------------
// CHANGEPOINT — Bayesian online changepoint detection (BOCPD)
// ---------------------------------------------------------------------------

struct ChangepointOptions {
  /// Constant hazard rate: prior probability that any step is a change.
  double hazard = 0.01;
  /// Run-length distribution cap. Mass beyond the `max_run` most probable
  /// run lengths is dropped (and accounted in `mass_dropped`); the report's
  /// `error_bound` converts that into a guarantee on every probability.
  std::size_t max_run = 256;
  /// Report step t as a changepoint when the posterior that a new regime
  /// began at t exceeds this. The statistic is the weight of the one-step-
  /// old run once its first point has been scored: in the BOCPD recursion
  /// P(run = 0) is identically the hazard (change and growth share every
  /// predictive factor), so the run-0 mass carries no evidence — the
  /// run-1 mass is where a fresh regime first beats the old ones.
  double threshold = 0.5;
  /// Evaluate only the last `last` points (0 = the whole series): the
  /// streamed-EXTEND shape, where only the fresh tail is in question.
  std::size_t last = 0;
  const Cancellation* cancel = nullptr;
};

struct ChangepointHit {
  std::size_t index = 0;     ///< Position in the evaluated window.
  double probability = 0.0;  ///< Posterior that a new regime began there.
};

struct ChangepointReport {
  std::vector<ChangepointHit> changepoints;
  /// Posterior that a new regime began at each evaluated step (the run-1
  /// weight; see ChangepointOptions::threshold), for charting.
  std::vector<double> change_probability;
  /// MAP run length after the final step.
  std::size_t map_run_length = 0;
  std::size_t evaluated = 0;  ///< Points the recursion consumed.
  /// Total posterior mass dropped by the max_run truncation, and the total-
  /// variation bound it implies on any reported probability vs. the exact
  /// (unpruned) recursion: |p_pruned - p_exact| <= error_bound. Zero when
  /// nothing was dropped — then the pruned answer IS the exact answer.
  double mass_dropped = 0.0;
  double error_bound = 0.0;
};

/// Runs the BOCPD recursion (normal observations, Normal-Inverse-Gamma
/// conjugate prior, Student-t predictive) over `values`. Pure function of
/// the input window — the engine feeds it a series' normalized values, so
/// streamed EXTEND tails are evaluated in the same units the base groups.
Result<ChangepointReport> DetectChangepoints(
    std::span<const double> values, const ChangepointOptions& options = {});

// ---------------------------------------------------------------------------
// MOTIF / DISCORD — densest groups, closest pair, loneliest members
// ---------------------------------------------------------------------------

struct MotifOptions {
  /// Restrict to one length class; 0 = every class.
  std::size_t length = 0;
  /// Densest groups to report per class.
  std::size_t top_k = 5;
  /// Loneliest members (discords) to report per class.
  std::size_t discords = 3;
  const Cancellation* cancel = nullptr;
};

/// One dense group: the motif as the *paper's* structure sees it.
struct MotifGroup {
  std::size_t group = 0;  ///< Index within its length class.
  std::size_t count = 0;  ///< Members.
  double radius = 0.0;    ///< Exact max member-to-centroid distance.
};

/// One discord: the member whose nearest non-overlapping same-length
/// neighbor is farthest away. `distance` is that exact nearest-neighbor
/// distance (normalized ED).
struct Discord {
  SubseqRef ref;
  double distance = 0.0;
};

struct MotifClassReport {
  std::size_t length = 0;
  std::vector<MotifGroup> densest;  ///< By (count desc, group asc).
  /// The exact closest non-overlapping pair in the class (the classical
  /// motif pair), found by centroid-distance pruning.
  SubseqRef motif_a, motif_b;
  double motif_distance = 0.0;
  bool has_motif = false;  ///< False when no non-overlapping pair exists.
  std::vector<Discord> discords;  ///< By (distance desc, ref asc).
};

struct MotifReport {
  std::vector<MotifClassReport> classes;
  std::size_t members_scanned = 0;
  /// Pair distance evaluations skipped by the group bound
  /// d(a,b) >= d(c_a,c_b) - r_a - r_b (admissible, so results stay exact).
  std::size_t pairs_pruned = 0;
  std::size_t pairs_evaluated = 0;
};

/// Exact motif-pair and discord discovery per length class, plus the
/// densest-group ranking. Group centroids and radii prune candidate pairs
/// without ever changing an answer; core_analytics_diff_test holds the
/// result to the O(n^2) scan's, bit for bit.
Result<MotifReport> FindMotifs(const OnexBase& base,
                               const MotifOptions& options = {});

// ---------------------------------------------------------------------------
// FORECAST — nearest-group continuations and seasonal-naive baselines
// ---------------------------------------------------------------------------

enum class ForecastMethod {
  /// k nearest same-length members of the base (by tail distance) vote with
  /// their observed continuations — the analog method, served off the group
  /// index with admissible pruning.
  kGroupNn = 0,
  /// Repeat the last observed period verbatim. The baseline every other
  /// forecaster must beat; exact and index-free by construction.
  kSeasonalNaive = 1,
};

struct ForecastOptions {
  std::size_t horizon = 8;
  /// Tail length to match (and the length class consulted). 0 = the longest
  /// class that fits the series.
  std::size_t length = 0;
  std::size_t k = 3;  ///< Neighbors for kGroupNn.
  ForecastMethod method = ForecastMethod::kGroupNn;
  /// Season length for kSeasonalNaive. 0 = the resolved tail length.
  std::size_t period = 0;
  const Cancellation* cancel = nullptr;
};

struct ForecastNeighbor {
  SubseqRef ref;
  double distance = 0.0;  ///< Normalized ED from the tail to the member.
};

struct ForecastReport {
  ForecastMethod method = ForecastMethod::kGroupNn;
  std::size_t series = 0;
  std::size_t tail_start = 0;   ///< Where the matched tail begins.
  std::size_t tail_length = 0;  ///< Resolved tail / pattern length.
  std::size_t period = 0;       ///< Resolved season (kSeasonalNaive only).
  /// Predicted values in normalized units (the engine denormalizes).
  std::vector<double> values;
  /// The neighbors that voted, ascending by (distance, ref). Empty for
  /// kSeasonalNaive.
  std::vector<ForecastNeighbor> neighbors;
  std::size_t candidates = 0;  ///< Members with a full continuation.
  std::size_t groups_pruned = 0;
};

/// Forecasts `horizon` points past the end of series `series` from the
/// base's normalized dataset. kGroupNn finds the exact k nearest members
/// with a full `horizon`-point continuation (group-bound pruning, early
/// abandonment) and averages their continuations; kSeasonalNaive repeats
/// the last `period` points.
Result<ForecastReport> ForecastSeries(const OnexBase& base,
                                      std::size_t series,
                                      const ForecastOptions& options = {});

}  // namespace onex

#endif  // ONEX_CORE_ANALYTICS_H_
