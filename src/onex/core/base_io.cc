#include "onex/core/base_io.h"

#include <cstddef>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"
#include "onex/json/json.h"

namespace onex {
namespace {

constexpr const char* kMagic = "ONEXBASE";
constexpr int kVersion = 1;

std::string Quoted(const std::string& s) {
  std::string out;
  const std::string escaped = json::EscapeString(s);
  out.reserve(escaped.size() + 2);
  out += '"';
  out += escaped;
  out += '"';
  return out;
}

/// Reads one line, rejecting EOF.
Result<std::string> NextLine(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError(StrFormat("unexpected end of base file at %s",
                                        what));
  }
  return line;
}

/// "<prefix> rest..." -> rest; error when the prefix does not match.
Result<std::string> ExpectPrefix(const std::string& line,
                                 const std::string& prefix) {
  if (!StartsWith(line, prefix)) {
    return Status::ParseError("expected '" + prefix + "' line, got '" + line +
                              "'");
  }
  return std::string(TrimString(line.substr(prefix.size())));
}

/// Parses a JSON-quoted string at the start of `text`; returns the remainder
/// through `rest`.
Result<std::string> TakeQuoted(const std::string& text, std::string* rest) {
  if (text.empty() || text.front() != '"') {
    return Status::ParseError("expected quoted string in: '" + text + "'");
  }
  // Find the closing quote, honoring backslash escapes.
  std::size_t end = 1;
  while (end < text.size()) {
    if (text[end] == '\\') {
      end += 2;
      continue;
    }
    if (text[end] == '"') break;
    ++end;
  }
  if (end >= text.size()) {
    return Status::ParseError("unterminated quoted string");
  }
  ONEX_ASSIGN_OR_RETURN(json::Value v,
                        json::Parse(text.substr(0, end + 1)));
  *rest = std::string(TrimString(text.substr(end + 1)));
  return v.as_string();
}

Result<CentroidPolicy> PolicyFromString(const std::string& name) {
  if (name == "fixed-leader") return CentroidPolicy::kFixedLeader;
  if (name == "running-mean") return CentroidPolicy::kRunningMean;
  if (name == "running-mean-repair") {
    return CentroidPolicy::kRunningMeanRepair;
  }
  return Status::ParseError("unknown centroid policy: '" + name + "'");
}

}  // namespace

Status SaveBase(const OnexBase& base, std::ostream& out) {
  const Dataset& ds = base.dataset();
  const BaseBuildOptions& opt = base.options();
  out << kMagic << ' ' << kVersion << '\n';
  out << "name " << Quoted(ds.name()) << '\n';
  out << StrFormat("options %.17g %zu %zu %zu %zu ", opt.st, opt.min_length,
                   opt.max_length, opt.length_step, opt.stride)
      << CentroidPolicyToString(opt.centroid_policy) << '\n';
  out << "series " << ds.size() << '\n';
  for (const TimeSeries& ts : ds.series()) {
    out << "s " << Quoted(ts.name()) << ' ' << Quoted(ts.label()) << ' '
        << ts.length();
    for (double v : ts.values()) out << ' ' << StrFormat("%.17g", v);
    out << '\n';
  }
  out << "classes " << base.length_classes().size() << '\n';
  for (const LengthClass& cls : base.length_classes()) {
    out << "class " << cls.length << " groups " << cls.groups.size() << '\n';
    for (const SimilarityGroup& g : cls.groups) {
      out << "g";
      for (const SubseqRef& ref : g.members()) {
        out << ' ' << ref.series << ':' << ref.start;
      }
      out << '\n';
    }
  }
  out << "repaired " << base.stats().repaired_members << '\n';
  out << "END\n";
  if (!out) return Status::IoError("write failure while saving base");
  return Status::OK();
}

Status SaveBaseToFile(const OnexBase& base, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  return SaveBase(base, out);
}

Result<OnexBase> LoadBase(std::istream& in) {
  // Header.
  ONEX_ASSIGN_OR_RETURN(std::string header, NextLine(in, "header"));
  {
    const std::vector<std::string> fields = SplitString(header);
    if (fields.size() != 2 || fields[0] != kMagic) {
      return Status::ParseError("not an ONEX base file");
    }
    ONEX_ASSIGN_OR_RETURN(long long version, ParseInt(fields[1]));
    if (version != kVersion) {
      return Status::ParseError(
          StrFormat("unsupported base version %lld", version));
    }
  }

  // Dataset name.
  ONEX_ASSIGN_OR_RETURN(std::string name_line, NextLine(in, "name"));
  ONEX_ASSIGN_OR_RETURN(std::string name_rest, ExpectPrefix(name_line, "name"));
  std::string after;
  ONEX_ASSIGN_OR_RETURN(std::string ds_name, TakeQuoted(name_rest, &after));

  // Options.
  BaseBuildOptions options;
  {
    ONEX_ASSIGN_OR_RETURN(std::string line, NextLine(in, "options"));
    ONEX_ASSIGN_OR_RETURN(std::string rest, ExpectPrefix(line, "options"));
    const std::vector<std::string> f = SplitString(rest);
    if (f.size() != 6) {
      return Status::ParseError("options line needs 6 fields");
    }
    ONEX_ASSIGN_OR_RETURN(options.st, ParseDouble(f[0]));
    ONEX_ASSIGN_OR_RETURN(long long minlen, ParseInt(f[1]));
    ONEX_ASSIGN_OR_RETURN(long long maxlen, ParseInt(f[2]));
    ONEX_ASSIGN_OR_RETURN(long long step, ParseInt(f[3]));
    ONEX_ASSIGN_OR_RETURN(long long stride, ParseInt(f[4]));
    if (minlen < 0 || maxlen < 0 || step < 1 || stride < 1) {
      return Status::ParseError("invalid scoping in options line");
    }
    options.min_length = static_cast<std::size_t>(minlen);
    options.max_length = static_cast<std::size_t>(maxlen);
    options.length_step = static_cast<std::size_t>(step);
    options.stride = static_cast<std::size_t>(stride);
    ONEX_ASSIGN_OR_RETURN(options.centroid_policy, PolicyFromString(f[5]));
  }

  // Dataset.
  Dataset ds(ds_name);
  {
    ONEX_ASSIGN_OR_RETURN(std::string line, NextLine(in, "series count"));
    ONEX_ASSIGN_OR_RETURN(std::string rest, ExpectPrefix(line, "series"));
    ONEX_ASSIGN_OR_RETURN(long long count, ParseInt(rest));
    if (count <= 0) return Status::ParseError("series count must be positive");
    for (long long s = 0; s < count; ++s) {
      ONEX_ASSIGN_OR_RETURN(std::string sline, NextLine(in, "series"));
      ONEX_ASSIGN_OR_RETURN(std::string srest, ExpectPrefix(sline, "s"));
      std::string tail;
      ONEX_ASSIGN_OR_RETURN(std::string sname, TakeQuoted(srest, &tail));
      std::string tail2;
      ONEX_ASSIGN_OR_RETURN(std::string slabel, TakeQuoted(tail, &tail2));
      const std::vector<std::string> nums = SplitString(tail2);
      if (nums.empty()) return Status::ParseError("series line has no length");
      ONEX_ASSIGN_OR_RETURN(long long len, ParseInt(nums[0]));
      if (len < 0 || nums.size() != static_cast<std::size_t>(len) + 1) {
        return Status::ParseError(
            StrFormat("series '%s' declares %lld values but has %zu",
                      sname.c_str(), len, nums.size() - 1));
      }
      std::vector<double> values;
      values.reserve(static_cast<std::size_t>(len));
      for (std::size_t i = 1; i < nums.size(); ++i) {
        ONEX_ASSIGN_OR_RETURN(double v, ParseDouble(nums[i]));
        values.push_back(v);
      }
      ds.Add(TimeSeries(sname, std::move(values), slabel));
    }
  }

  // Groups.
  std::vector<LengthClassDraft> classes;
  {
    ONEX_ASSIGN_OR_RETURN(std::string line, NextLine(in, "classes count"));
    ONEX_ASSIGN_OR_RETURN(std::string rest, ExpectPrefix(line, "classes"));
    ONEX_ASSIGN_OR_RETURN(long long count, ParseInt(rest));
    if (count < 0) return Status::ParseError("negative class count");
    for (long long c = 0; c < count; ++c) {
      ONEX_ASSIGN_OR_RETURN(std::string cline, NextLine(in, "class"));
      ONEX_ASSIGN_OR_RETURN(std::string crest, ExpectPrefix(cline, "class"));
      const std::vector<std::string> f = SplitString(crest);
      if (f.size() != 3 || f[1] != "groups") {
        return Status::ParseError("malformed class line: '" + cline + "'");
      }
      ONEX_ASSIGN_OR_RETURN(long long length, ParseInt(f[0]));
      ONEX_ASSIGN_OR_RETURN(long long group_count, ParseInt(f[2]));
      if (length < 2 || group_count < 0) {
        return Status::ParseError("invalid class header");
      }
      LengthClassDraft cls;
      cls.length = static_cast<std::size_t>(length);
      for (long long g = 0; g < group_count; ++g) {
        ONEX_ASSIGN_OR_RETURN(std::string gline, NextLine(in, "group"));
        ONEX_ASSIGN_OR_RETURN(std::string grest, ExpectPrefix(gline, "g"));
        GroupBuilder group(cls.length);
        std::vector<SubseqRef> members;
        for (const std::string& token : SplitString(grest)) {
          const std::vector<std::string> parts = SplitKeepEmpty(token, ':');
          if (parts.size() != 2) {
            return Status::ParseError("malformed member ref: '" + token + "'");
          }
          ONEX_ASSIGN_OR_RETURN(long long series, ParseInt(parts[0]));
          ONEX_ASSIGN_OR_RETURN(long long start, ParseInt(parts[1]));
          if (series < 0 || start < 0) {
            return Status::ParseError("negative member ref: '" + token + "'");
          }
          members.push_back({static_cast<std::size_t>(series),
                             static_cast<std::size_t>(start), cls.length});
        }
        group.SetMembers(std::move(members));
        cls.groups.push_back(std::move(group));
      }
      classes.push_back(std::move(cls));
    }
  }

  // Footer.
  std::size_t repaired = 0;
  {
    ONEX_ASSIGN_OR_RETURN(std::string line, NextLine(in, "repaired"));
    ONEX_ASSIGN_OR_RETURN(std::string rest, ExpectPrefix(line, "repaired"));
    ONEX_ASSIGN_OR_RETURN(long long n, ParseInt(rest));
    if (n < 0) return Status::ParseError("negative repaired count");
    repaired = static_cast<std::size_t>(n);
    ONEX_ASSIGN_OR_RETURN(std::string end_line, NextLine(in, "END"));
    if (TrimString(end_line) != "END") {
      return Status::ParseError("missing END marker");
    }
  }

  return OnexBase::Restore(std::make_shared<const Dataset>(std::move(ds)),
                           options, std::move(classes), repaired);
}

Result<OnexBase> LoadBaseFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  return LoadBase(in);
}

}  // namespace onex
