#include "onex/core/grouping_util.h"

#include <cmath>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "onex/distance/euclidean.h"

namespace onex::internal {

std::pair<std::size_t, double> NearestGroup(
    const std::vector<GroupBuilder>& groups, std::span<const double> values,
    double radius) {
  std::size_t best_idx = groups.size();
  double best = radius;
  const double n = static_cast<double>(values.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    // Early-abandon on the squared, unnormalized scale of the current best.
    const double cutoff_sq = best * best * n;
    const double sq = SquaredEuclideanEarlyAbandon(groups[g].centroid_span(),
                                                   values, cutoff_sq);
    if (std::isinf(sq)) continue;
    const double dist = std::sqrt(sq / n);
    if (dist <= best) {
      best = dist;
      best_idx = g;
    }
  }
  return {best_idx, best};
}

}  // namespace onex::internal
