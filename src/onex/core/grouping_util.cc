#include "onex/core/grouping_util.h"

#include <cmath>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "onex/distance/euclidean.h"

namespace onex::internal {

std::pair<std::size_t, double> NearestGroup(
    const std::vector<GroupBuilder>& groups, std::span<const double> values,
    double radius) {
  std::size_t best_idx = groups.size();
  double best = radius;
  const double n = static_cast<double>(values.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    // Early-abandon on the squared, unnormalized scale of the current best.
    const double cutoff_sq = best * best * n;
    const double sq = SquaredEuclideanEarlyAbandon(groups[g].centroid_span(),
                                                   values, cutoff_sq);
    if (std::isinf(sq)) continue;
    const double dist = std::sqrt(sq / n);
    if (dist <= best) {
      best = dist;
      best_idx = g;
    }
  }
  return {best_idx, best};
}

std::vector<GroupBuilder> BuildGroupsForLength(const Dataset& ds,
                                               std::size_t len,
                                               const BaseBuildOptions& options,
                                               std::size_t* repaired) {
  const double radius = options.st / 2.0;
  const bool update_centroid =
      options.centroid_policy != CentroidPolicy::kFixedLeader;
  std::vector<GroupBuilder> groups;
  std::size_t members = 0;
  for (std::size_t s = 0; s < ds.size(); ++s) {
    const TimeSeries& ts = ds[s];
    if (ts.length() < len) continue;
    for (std::size_t start = 0; start + len <= ts.length();
         start += options.stride) {
      const std::span<const double> vals = ts.Slice(start, len);
      const auto [idx, dist] = NearestGroup(groups, vals, radius);
      if (idx == groups.size()) {
        GroupBuilder g(len);
        g.Add({s, start, len}, vals, update_centroid);
        groups.push_back(std::move(g));
      } else {
        groups[idx].Add({s, start, len}, vals, update_centroid);
      }
      ++members;
    }
  }
  if (members == 0) return groups;

  if (options.centroid_policy == CentroidPolicy::kRunningMeanRepair) {
    // Running-mean centroids drift, so some members may no longer sit
    // within ST/2 of their group's final centroid. Repair in bounded
    // rounds: evict violators, recompute centroids, re-insert. Because a
    // recomputed centroid can create new violators, the last pass evicts
    // into singleton groups with no recomputation, which terminates with
    // the invariant guaranteed.
    constexpr int kRepairRounds = 4;
    for (int round = 0; round < kRepairRounds; ++round) {
      const bool final_round = round == kRepairRounds - 1;
      std::vector<SubseqRef> evicted;
      for (GroupBuilder& g : groups) {
        std::vector<SubseqRef> keep;
        keep.reserve(g.size());
        for (const SubseqRef& ref : g.members()) {
          const double d =
              NormalizedEuclidean(g.centroid_span(), ref.Resolve(ds));
          if (d <= radius) {
            keep.push_back(ref);
          } else {
            evicted.push_back(ref);
          }
        }
        if (keep.size() != g.size()) {
          g.SetMembers(std::move(keep));
          if (!final_round) g.RecomputeFromMembers(ds);
        }
      }
      if (evicted.empty()) break;
      *repaired += evicted.size();
      for (const SubseqRef& ref : evicted) {
        const std::span<const double> vals = ref.Resolve(ds);
        const std::size_t idx =
            final_round ? groups.size()
                        : NearestGroup(groups, vals, radius).first;
        if (idx == groups.size()) {
          GroupBuilder g(len);
          g.Add(ref, vals, /*update_centroid=*/false);
          groups.push_back(std::move(g));
        } else {
          // Fixed centroid on re-insert keeps the pass from cascading.
          groups[idx].Add(ref, vals, /*update_centroid=*/false);
        }
      }
    }
    // Drop any group the repair emptied.
    std::erase_if(groups, [](const GroupBuilder& g) { return g.empty(); });
  }
  return groups;
}

}  // namespace onex::internal
