#include "onex/core/arena_layout.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <type_traits>
#include <utility>

#include "onex/common/hash.h"
#include "onex/common/string_utils.h"
#include "onex/json/json.h"

namespace onex {
namespace {

// The arena stores SubseqRef arrays and size_t offset tables verbatim; the
// format is only defined for the layout every supported target actually has.
static_assert(sizeof(double) == 8, "arena format assumes 8-byte doubles");
static_assert(sizeof(std::size_t) == 8, "arena format assumes 64-bit size_t");
static_assert(sizeof(SubseqRef) == 24 && alignof(SubseqRef) == 8 &&
                  std::is_trivially_copyable_v<SubseqRef>,
              "arena format assumes the packed three-word SubseqRef");

constexpr char kArenaMagic[8] = {'O', 'N', 'E', 'X', 'A', 'R', 'N', 'A'};
constexpr std::uint32_t kArenaVersion = 1;
/// Written on encode, compared on parse: a file produced on a foreign byte
/// order reads back as 0x04030201 and is rejected instead of misdecoded.
constexpr std::uint32_t kEndianTag = 0x01020304;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kDescriptorBytes = 32;
constexpr std::size_t kSectionAlign = 64;

/// Section kinds. Bulk sections are raw host-layout arrays; meta is the
/// line-oriented text block carrying everything small (names, options,
/// normalization params, per-class shapes).
enum SectionKind : std::uint32_t {
  kSecMeta = 1,
  kSecRawValues = 2,
  kSecNormValues = 3,
  kSecCentroids = 4,
  kSecEnvLower = 5,
  kSecEnvUpper = 6,
  kSecCentEnvLower = 7,
  kSecCentEnvUpper = 8,
  kSecMembers = 9,
  kSecMemberOffsets = 10,
};
constexpr std::uint32_t kMaxSectionKind = kSecMemberOffsets;
constexpr std::size_t kSectionsPerClass = 7;
constexpr std::size_t kGlobalSections = 3;  ///< meta, raw, norm.

struct SectionDesc {
  std::uint32_t kind = 0;
  std::uint32_t index = 0;  ///< Length-class index; 0 for global sections.
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t fnv = 0;
};

std::size_t Align64(std::size_t n) {
  return (n + (kSectionAlign - 1)) & ~(kSectionAlign - 1);
}

std::string_view AsView(std::span<const std::byte> bytes) {
  return std::string_view(reinterpret_cast<const char*>(bytes.data()),
                          bytes.size());
}

std::string Quoted(const std::string& s) {
  return "\"" + json::EscapeString(s) + "\"";
}

/// Parses a JSON-quoted string at the start of `text`; returns the remainder
/// through `rest` (same idiom as base_io.cc).
Result<std::string> TakeQuoted(const std::string& text, std::string* rest) {
  if (text.empty() || text.front() != '"') {
    return Status::ParseError("expected quoted string in arena meta");
  }
  std::size_t end = 1;
  while (end < text.size()) {
    if (text[end] == '\\') {
      end += 2;
      continue;
    }
    if (text[end] == '"') break;
    ++end;
  }
  if (end >= text.size()) {
    return Status::ParseError("unterminated quoted string in arena meta");
  }
  ONEX_ASSIGN_OR_RETURN(json::Value v, json::Parse(text.substr(0, end + 1)));
  *rest = std::string(TrimString(text.substr(end + 1)));
  return v.as_string();
}

Result<CentroidPolicy> PolicyFromString(const std::string& name) {
  if (name == "fixed-leader") return CentroidPolicy::kFixedLeader;
  if (name == "running-mean") return CentroidPolicy::kRunningMean;
  if (name == "running-mean-repair") return CentroidPolicy::kRunningMeanRepair;
  return Status::ParseError("unknown centroid policy: '" + name + "'");
}

Result<std::string> NextLine(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError(
        StrFormat("arena meta ends early at %s", what));
  }
  return line;
}

Result<std::string> ExpectPrefix(const std::string& line,
                                 const std::string& prefix) {
  if (!StartsWith(line, prefix + " ") && line != prefix) {
    return Status::ParseError("arena meta: expected '" + prefix +
                              "' line, got '" + line + "'");
  }
  return std::string(TrimString(line.substr(prefix.size())));
}

template <typename T>
void PutPod(std::string* out, std::size_t at, T value) {
  std::memcpy(out->data() + at, &value, sizeof(T));
}

template <typename T>
T GetPod(std::span<const std::byte> bytes, std::size_t at) {
  T value;
  std::memcpy(&value, bytes.data() + at, sizeof(T));
  return value;
}

void AppendPod32(std::string* out, std::uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendPod64(std::string* out, std::uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// One section payload staged before assembly.
struct PendingSection {
  std::uint32_t kind = 0;
  std::uint32_t index = 0;
  std::string bytes;
};

void AppendDoubles(std::string* out, std::span<const double> values) {
  out->append(reinterpret_cast<const char*>(values.data()),
              values.size() * sizeof(double));
}

/// The parse-side bookkeeping for one described section.
struct SectionTable {
  std::span<const std::byte> file;
  std::vector<SectionDesc> descs;

  /// The unique section (kind, index), or ParseError when absent.
  Result<std::span<const std::byte>> Find(std::uint32_t kind,
                                          std::uint32_t index) const {
    for (const SectionDesc& d : descs) {
      if (d.kind == kind && d.index == index) {
        return file.subspan(d.offset, d.size);
      }
    }
    return Status::ParseError(StrFormat(
        "arena is missing section kind=%u index=%u", kind, index));
  }
};

/// Casts a validated, 8-aligned section to a typed span after checking the
/// byte size matches `count` elements exactly. Division, not multiplication:
/// `count` is attacker-declared and must never feed overflowing arithmetic.
template <typename T>
Result<std::span<const T>> TypedSection(std::span<const std::byte> sec,
                                        std::size_t count, const char* what) {
  if (sec.size() % sizeof(T) != 0 || sec.size() / sizeof(T) != count) {
    return Status::ParseError(
        StrFormat("arena section %s holds %zu bytes, expected %zu elements",
                  what, sec.size(), count));
  }
  return std::span<const T>(reinterpret_cast<const T*>(sec.data()), count);
}

/// A num_groups x length double matrix section; shape verified by division
/// so a crafted (groups, length) pair cannot wrap a product.
Result<std::span<const double>> MatrixSection(std::span<const std::byte> sec,
                                              std::size_t num_groups,
                                              std::size_t length,
                                              const char* what) {
  if (sec.size() % sizeof(double) != 0) {
    return Status::ParseError(
        StrFormat("arena section %s is not double-sized", what));
  }
  const std::size_t elems = sec.size() / sizeof(double);
  if (length == 0 || elems % length != 0 || elems / length != num_groups) {
    return Status::ParseError(
        StrFormat("arena section %s holds %zu doubles, expected %zu x %zu",
                  what, elems, num_groups, length));
  }
  return std::span<const double>(reinterpret_cast<const double*>(sec.data()),
                                 elems);
}

}  // namespace

// ---------------------------------------------------------------------------
// ArenaMapping
// ---------------------------------------------------------------------------

Result<std::shared_ptr<const ArenaMapping>> ArenaMapping::Map(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open arena '" + path + "': " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("cannot stat arena '" + path + "': " + err);
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::InvalidArgument("arena '" + path + "' is empty");
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping survives the descriptor; closing immediately keeps the fd
  // table flat no matter how many cold datasets are mapped.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IoError("cannot mmap arena '" + path + "': " +
                           std::strerror(errno));
  }
  auto mapping = std::shared_ptr<ArenaMapping>(new ArenaMapping());
  mapping->addr_ = addr;
  mapping->size_ = size;
  mapping->path_ = path;
  return std::shared_ptr<const ArenaMapping>(std::move(mapping));
}

ArenaMapping::~ArenaMapping() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

void ArenaMapping::AdviseDontNeed() const {
  if (addr_ != nullptr) ::madvise(addr_, size_, MADV_DONTNEED);
}

void ArenaMapping::AdviseWillNeed() const {
  if (addr_ != nullptr) ::madvise(addr_, size_, MADV_WILLNEED);
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

bool LooksLikeArena(std::span<const std::byte> bytes) {
  return bytes.size() >= sizeof(kArenaMagic) &&
         std::memcmp(bytes.data(), kArenaMagic, sizeof(kArenaMagic)) == 0;
}

bool LooksLikeArena(std::string_view bytes) {
  return bytes.size() >= sizeof(kArenaMagic) &&
         std::memcmp(bytes.data(), kArenaMagic, sizeof(kArenaMagic)) == 0;
}

Result<std::string> EncodeArena(const Dataset& raw, NormalizationKind kind,
                                const NormalizationParams& params,
                                const OnexBase& base) {
  const Dataset& norm = base.dataset();
  if (raw.size() != norm.size()) {
    return Status::InvalidArgument(
        StrFormat("arena encode: raw has %zu series, normalized %zu",
                  raw.size(), norm.size()));
  }
  for (std::size_t s = 0; s < raw.size(); ++s) {
    if (raw[s].length() != norm[s].length()) {
      return Status::InvalidArgument(StrFormat(
          "arena encode: series %zu raw/normalized length mismatch", s));
    }
  }
  if (base.length_classes().empty()) {
    return Status::InvalidArgument("arena encode: base has no length classes");
  }

  // Meta: every small field, text with %.17g doubles so re-encoding a
  // realized arena reproduces the bytes exactly.
  std::string meta;
  meta += "dataset " + Quoted(norm.name()) + "\n";
  meta += StrFormat("norm %s %.17g %.17g %zu\n",
                    NormalizationKindToString(kind), params.min, params.max,
                    params.per_series.size());
  for (const auto& [offset, scale] : params.per_series) {
    meta += StrFormat("p %.17g %.17g\n", offset, scale);
  }
  const BaseBuildOptions& opt = base.options();
  meta += StrFormat("options %.17g %zu %zu %zu %zu %s\n", opt.st,
                    opt.min_length, opt.max_length, opt.length_step,
                    opt.stride, CentroidPolicyToString(opt.centroid_policy));
  meta += StrFormat("repaired %zu\n", base.stats().repaired_members);
  meta += StrFormat("series %zu\n", norm.size());
  for (const TimeSeries& ts : norm.series()) {
    meta += "s " + Quoted(ts.name()) + " " + Quoted(ts.label()) +
            StrFormat(" %zu\n", ts.length());
  }
  meta += StrFormat("classes %zu\n", base.length_classes().size());
  for (const LengthClass& cls : base.length_classes()) {
    meta += StrFormat("class %zu %zu %zu %d\n", cls.length,
                      cls.store->num_groups(), cls.store->total_members(),
                      cls.store->centroid_envelope_window());
  }
  meta += "end\n";

  std::vector<PendingSection> sections;
  sections.push_back({kSecMeta, 0, std::move(meta)});

  PendingSection raw_sec{kSecRawValues, 0, {}};
  PendingSection norm_sec{kSecNormValues, 0, {}};
  raw_sec.bytes.reserve(raw.TotalPoints() * sizeof(double));
  norm_sec.bytes.reserve(norm.TotalPoints() * sizeof(double));
  for (std::size_t s = 0; s < raw.size(); ++s) {
    AppendDoubles(&raw_sec.bytes, raw[s].AsSpan());
    AppendDoubles(&norm_sec.bytes, norm[s].AsSpan());
  }
  sections.push_back(std::move(raw_sec));
  sections.push_back(std::move(norm_sec));

  for (std::size_t c = 0; c < base.length_classes().size(); ++c) {
    const GroupStore& store = *base.length_classes()[c].store;
    const std::size_t n = store.num_groups();
    const std::uint32_t index = static_cast<std::uint32_t>(c);

    PendingSection cent{kSecCentroids, index, {}};
    PendingSection env_lo{kSecEnvLower, index, {}};
    PendingSection env_hi{kSecEnvUpper, index, {}};
    PendingSection ce_lo{kSecCentEnvLower, index, {}};
    PendingSection ce_hi{kSecCentEnvUpper, index, {}};
    PendingSection members{kSecMembers, index, {}};
    PendingSection offsets{kSecMemberOffsets, index, {}};

    AppendDoubles(&cent.bytes, store.centroid_matrix());
    std::uint64_t running = 0;
    AppendPod64(&offsets.bytes, running);
    for (std::size_t g = 0; g < n; ++g) {
      AppendDoubles(&env_lo.bytes, store.envelope(g).lower);
      AppendDoubles(&env_hi.bytes, store.envelope(g).upper);
      AppendDoubles(&ce_lo.bytes, store.centroid_envelope(g).lower);
      AppendDoubles(&ce_hi.bytes, store.centroid_envelope(g).upper);
      const std::span<const SubseqRef> refs = store.members(g);
      members.bytes.append(reinterpret_cast<const char*>(refs.data()),
                           refs.size() * sizeof(SubseqRef));
      running += refs.size();
      AppendPod64(&offsets.bytes, running);
    }
    sections.push_back(std::move(cent));
    sections.push_back(std::move(env_lo));
    sections.push_back(std::move(env_hi));
    sections.push_back(std::move(ce_lo));
    sections.push_back(std::move(ce_hi));
    sections.push_back(std::move(members));
    sections.push_back(std::move(offsets));
  }

  // Layout: header, descriptor table, then 64-byte-aligned sections with
  // zero padding between. file_size ends at the last section's last byte.
  const std::size_t table_end =
      kHeaderBytes + sections.size() * kDescriptorBytes;
  std::vector<SectionDesc> descs(sections.size());
  std::size_t off = Align64(table_end);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    descs[i].kind = sections[i].kind;
    descs[i].index = sections[i].index;
    descs[i].offset = off;
    descs[i].size = sections[i].bytes.size();
    descs[i].fnv = Fnv1a64(sections[i].bytes);
    off = Align64(off + sections[i].bytes.size());
  }
  const std::size_t file_size =
      sections.empty() ? table_end
                       : static_cast<std::size_t>(descs.back().offset +
                                                  descs.back().size);

  std::string blob(file_size, '\0');
  std::memcpy(blob.data(), kArenaMagic, sizeof(kArenaMagic));
  PutPod(&blob, 8, kArenaVersion);
  PutPod(&blob, 12, kEndianTag);
  PutPod(&blob, 16, static_cast<std::uint64_t>(file_size));
  PutPod(&blob, 24, static_cast<std::uint32_t>(sections.size()));
  // Bytes 28..32 reserved (zero), 40..64 padding (zero; parse enforces).
  for (std::size_t i = 0; i < sections.size(); ++i) {
    std::string desc_bytes;
    desc_bytes.reserve(kDescriptorBytes);
    AppendPod32(&desc_bytes, descs[i].kind);
    AppendPod32(&desc_bytes, descs[i].index);
    AppendPod64(&desc_bytes, descs[i].offset);
    AppendPod64(&desc_bytes, descs[i].size);
    AppendPod64(&desc_bytes, descs[i].fnv);
    std::memcpy(blob.data() + kHeaderBytes + i * kDescriptorBytes,
                desc_bytes.data(), kDescriptorBytes);
    std::memcpy(blob.data() + descs[i].offset, sections[i].bytes.data(),
                sections[i].bytes.size());
  }
  const std::uint64_t file_fnv =
      Fnv1a64(std::string_view(blob).substr(kHeaderBytes));
  PutPod(&blob, 32, file_fnv);
  return blob;
}

// ---------------------------------------------------------------------------
// Parse
// ---------------------------------------------------------------------------

Result<ArenaView> ParseArena(std::span<const std::byte> bytes) {
  if (bytes.size() < kHeaderBytes) {
    return Status::ParseError("arena file truncated (no header)");
  }
  if (!LooksLikeArena(bytes)) {
    return Status::ParseError("not an ONEX arena file");
  }
  if (reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(double) != 0) {
    return Status::InvalidArgument("arena buffer is not 8-byte aligned");
  }
  const std::uint32_t version = GetPod<std::uint32_t>(bytes, 8);
  if (version != kArenaVersion) {
    return Status::ParseError(
        StrFormat("unsupported arena version %u", version));
  }
  if (GetPod<std::uint32_t>(bytes, 12) != kEndianTag) {
    return Status::ParseError("arena was written with a foreign byte order");
  }
  const std::uint64_t file_size = GetPod<std::uint64_t>(bytes, 16);
  if (file_size != bytes.size()) {
    return Status::ParseError(
        StrFormat("arena declares %llu bytes but file holds %zu",
                  static_cast<unsigned long long>(file_size), bytes.size()));
  }
  const std::uint32_t section_count = GetPod<std::uint32_t>(bytes, 24);
  if (GetPod<std::uint32_t>(bytes, 28) != 0) {
    return Status::ParseError("arena reserved header field is not zero");
  }
  for (std::size_t i = 40; i < kHeaderBytes; ++i) {
    if (bytes[i] != std::byte{0}) {
      return Status::ParseError("arena header padding is not zero");
    }
  }
  const std::uint64_t file_fnv = GetPod<std::uint64_t>(bytes, 32);
  if (Fnv1a64(AsView(bytes.subspan(kHeaderBytes))) != file_fnv) {
    return Status::ParseError("arena whole-file checksum mismatch");
  }
  // The table must fit BEFORE the count drives the descriptor loop.
  if (section_count < kGlobalSections ||
      kHeaderBytes + static_cast<std::uint64_t>(section_count) *
                         kDescriptorBytes >
          file_size) {
    return Status::ParseError(
        StrFormat("arena section table (%u entries) does not fit", section_count));
  }
  const std::size_t table_end =
      kHeaderBytes + section_count * kDescriptorBytes;

  SectionTable table;
  table.file = bytes;
  table.descs.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::size_t at = kHeaderBytes + i * kDescriptorBytes;
    SectionDesc d;
    d.kind = GetPod<std::uint32_t>(bytes, at);
    d.index = GetPod<std::uint32_t>(bytes, at + 4);
    d.offset = GetPod<std::uint64_t>(bytes, at + 8);
    d.size = GetPod<std::uint64_t>(bytes, at + 16);
    d.fnv = GetPod<std::uint64_t>(bytes, at + 24);
    if (d.kind == 0 || d.kind > kMaxSectionKind) {
      return Status::ParseError(
          StrFormat("arena section %u has unknown kind %u", i, d.kind));
    }
    if (d.offset % kSectionAlign != 0 || d.offset < table_end ||
        d.offset > file_size || d.size > file_size - d.offset) {
      return Status::ParseError(
          StrFormat("arena section %u lies outside the file", i));
    }
    for (const SectionDesc& prev : table.descs) {
      if (prev.kind == d.kind && prev.index == d.index) {
        return Status::ParseError(StrFormat(
            "arena has duplicate section kind=%u index=%u", d.kind, d.index));
      }
    }
    if (Fnv1a64(AsView(bytes.subspan(d.offset, d.size))) != d.fnv) {
      return Status::ParseError(
          StrFormat("arena section %u checksum mismatch", i));
    }
    table.descs.push_back(d);
  }

  ArenaView view;

  // --- Meta ---------------------------------------------------------------
  ONEX_ASSIGN_OR_RETURN(std::span<const std::byte> meta_sec,
                        table.Find(kSecMeta, 0));
  std::istringstream meta{std::string(AsView(meta_sec))};
  {
    ONEX_ASSIGN_OR_RETURN(std::string line, NextLine(meta, "dataset"));
    ONEX_ASSIGN_OR_RETURN(std::string rest, ExpectPrefix(line, "dataset"));
    std::string after;
    ONEX_ASSIGN_OR_RETURN(view.dataset_name, TakeQuoted(rest, &after));
    if (!after.empty()) {
      return Status::ParseError("trailing bytes on arena dataset line");
    }
  }
  std::size_t per_series_count = 0;
  {
    ONEX_ASSIGN_OR_RETURN(std::string line, NextLine(meta, "norm"));
    ONEX_ASSIGN_OR_RETURN(std::string rest, ExpectPrefix(line, "norm"));
    const std::vector<std::string> f = SplitString(rest);
    if (f.size() != 4) {
      return Status::ParseError("arena norm line needs 4 fields");
    }
    ONEX_ASSIGN_OR_RETURN(view.norm_kind, NormalizationKindFromString(f[0]));
    ONEX_ASSIGN_OR_RETURN(view.norm_params.min, ParseDouble(f[1]));
    ONEX_ASSIGN_OR_RETURN(view.norm_params.max, ParseDouble(f[2]));
    ONEX_ASSIGN_OR_RETURN(long long count, ParseInt(f[3]));
    if (count < 0) return Status::ParseError("negative per-series count");
    per_series_count = static_cast<std::size_t>(count);
    view.norm_params.kind = view.norm_kind;
  }
  for (std::size_t i = 0; i < per_series_count; ++i) {
    // Entries append one by one as lines actually parse, so a hostile count
    // cannot command an allocation the meta bytes don't back.
    ONEX_ASSIGN_OR_RETURN(std::string line, NextLine(meta, "per-series"));
    ONEX_ASSIGN_OR_RETURN(std::string rest, ExpectPrefix(line, "p"));
    const std::vector<std::string> f = SplitString(rest);
    if (f.size() != 2) {
      return Status::ParseError("arena per-series line needs 2 fields");
    }
    ONEX_ASSIGN_OR_RETURN(double offset, ParseDouble(f[0]));
    ONEX_ASSIGN_OR_RETURN(double scale, ParseDouble(f[1]));
    view.norm_params.per_series.emplace_back(offset, scale);
  }
  {
    ONEX_ASSIGN_OR_RETURN(std::string line, NextLine(meta, "options"));
    ONEX_ASSIGN_OR_RETURN(std::string rest, ExpectPrefix(line, "options"));
    const std::vector<std::string> f = SplitString(rest);
    if (f.size() != 6) {
      return Status::ParseError("arena options line needs 6 fields");
    }
    ONEX_ASSIGN_OR_RETURN(view.build_options.st, ParseDouble(f[0]));
    ONEX_ASSIGN_OR_RETURN(long long minlen, ParseInt(f[1]));
    ONEX_ASSIGN_OR_RETURN(long long maxlen, ParseInt(f[2]));
    ONEX_ASSIGN_OR_RETURN(long long step, ParseInt(f[3]));
    ONEX_ASSIGN_OR_RETURN(long long stride, ParseInt(f[4]));
    if (minlen < 0 || maxlen < 0 || step < 1 || stride < 1) {
      return Status::ParseError("invalid scoping in arena options line");
    }
    view.build_options.min_length = static_cast<std::size_t>(minlen);
    view.build_options.max_length = static_cast<std::size_t>(maxlen);
    view.build_options.length_step = static_cast<std::size_t>(step);
    view.build_options.stride = static_cast<std::size_t>(stride);
    ONEX_ASSIGN_OR_RETURN(view.build_options.centroid_policy,
                          PolicyFromString(f[5]));
    ONEX_RETURN_IF_ERROR(view.build_options.Validate());
  }
  {
    ONEX_ASSIGN_OR_RETURN(std::string line, NextLine(meta, "repaired"));
    ONEX_ASSIGN_OR_RETURN(std::string rest, ExpectPrefix(line, "repaired"));
    ONEX_ASSIGN_OR_RETURN(long long n, ParseInt(rest));
    if (n < 0) return Status::ParseError("negative repaired count");
    view.repaired_members = static_cast<std::size_t>(n);
  }
  std::size_t total_points = 0;
  {
    ONEX_ASSIGN_OR_RETURN(std::string line, NextLine(meta, "series count"));
    ONEX_ASSIGN_OR_RETURN(std::string rest, ExpectPrefix(line, "series"));
    ONEX_ASSIGN_OR_RETURN(long long count, ParseInt(rest));
    if (count <= 0) {
      return Status::ParseError("arena series count must be positive");
    }
    for (long long s = 0; s < count; ++s) {
      ONEX_ASSIGN_OR_RETURN(std::string sline, NextLine(meta, "series"));
      ONEX_ASSIGN_OR_RETURN(std::string srest, ExpectPrefix(sline, "s"));
      ArenaSeriesMeta sm;
      std::string tail;
      ONEX_ASSIGN_OR_RETURN(sm.name, TakeQuoted(srest, &tail));
      std::string tail2;
      ONEX_ASSIGN_OR_RETURN(sm.label, TakeQuoted(tail, &tail2));
      ONEX_ASSIGN_OR_RETURN(long long len, ParseInt(tail2));
      if (len <= 0 || static_cast<std::uint64_t>(len) > file_size) {
        return Status::ParseError("arena series length is out of range");
      }
      sm.length = static_cast<std::size_t>(len);
      if (total_points > file_size) {
        // Lengths are about to index the value sections, which are capped
        // by the file size; bail before the sum can overflow.
        return Status::ParseError("arena series lengths exceed the file");
      }
      total_points += sm.length;
      view.series.push_back(std::move(sm));
    }
  }

  struct ClassMeta {
    std::size_t length = 0;
    std::size_t num_groups = 0;
    std::size_t num_members = 0;
    int cent_env_window = -1;
  };
  std::vector<ClassMeta> class_metas;
  {
    ONEX_ASSIGN_OR_RETURN(std::string line, NextLine(meta, "classes count"));
    ONEX_ASSIGN_OR_RETURN(std::string rest, ExpectPrefix(line, "classes"));
    ONEX_ASSIGN_OR_RETURN(long long count, ParseInt(rest));
    if (count <= 0) {
      return Status::ParseError("arena class count must be positive");
    }
    std::size_t prev_length = 0;
    for (long long c = 0; c < count; ++c) {
      ONEX_ASSIGN_OR_RETURN(std::string cline, NextLine(meta, "class"));
      ONEX_ASSIGN_OR_RETURN(std::string crest, ExpectPrefix(cline, "class"));
      const std::vector<std::string> f = SplitString(crest);
      if (f.size() != 4) {
        return Status::ParseError("arena class line needs 4 fields");
      }
      ONEX_ASSIGN_OR_RETURN(long long length, ParseInt(f[0]));
      ONEX_ASSIGN_OR_RETURN(long long groups, ParseInt(f[1]));
      ONEX_ASSIGN_OR_RETURN(long long members, ParseInt(f[2]));
      ONEX_ASSIGN_OR_RETURN(long long window, ParseInt(f[3]));
      if (length < 2 || groups < 1 || members < static_cast<long long>(groups)) {
        return Status::ParseError("invalid arena class header");
      }
      // Any real class needs at least this many bytes of sections; capping
      // at the file size keeps every later +1 / sum over these counts far
      // from overflow without trusting the declared values.
      if (static_cast<std::uint64_t>(length) > file_size ||
          static_cast<std::uint64_t>(groups) > file_size ||
          static_cast<std::uint64_t>(members) > file_size) {
        return Status::ParseError("arena class header exceeds the file");
      }
      if (static_cast<std::size_t>(length) <= prev_length) {
        return Status::ParseError(
            "arena length classes must be strictly increasing");
      }
      prev_length = static_cast<std::size_t>(length);
      class_metas.push_back({static_cast<std::size_t>(length),
                             static_cast<std::size_t>(groups),
                             static_cast<std::size_t>(members),
                             static_cast<int>(window)});
    }
    ONEX_ASSIGN_OR_RETURN(std::string end_line, NextLine(meta, "end"));
    if (TrimString(end_line) != "end") {
      return Status::ParseError("arena meta is missing its end marker");
    }
  }
  if (view.norm_kind != NormalizationKind::kMinMaxDataset &&
      view.norm_kind != NormalizationKind::kNone &&
      per_series_count != view.series.size()) {
    return Status::ParseError(
        "arena per-series normalization entries do not match series count");
  }
  if (section_count !=
      kGlobalSections + kSectionsPerClass * class_metas.size()) {
    return Status::ParseError(
        StrFormat("arena declares %zu classes but carries %u sections",
                  class_metas.size(), section_count));
  }

  // --- Bulk sections, every shape cross-checked against the meta ----------
  ONEX_ASSIGN_OR_RETURN(std::span<const std::byte> raw_sec,
                        table.Find(kSecRawValues, 0));
  ONEX_ASSIGN_OR_RETURN(view.raw_values,
                        TypedSection<double>(raw_sec, total_points, "raw"));
  ONEX_ASSIGN_OR_RETURN(std::span<const std::byte> norm_sec,
                        table.Find(kSecNormValues, 0));
  ONEX_ASSIGN_OR_RETURN(
      view.norm_values,
      TypedSection<double>(norm_sec, total_points, "normalized"));

  for (std::size_t c = 0; c < class_metas.size(); ++c) {
    const ClassMeta& cm = class_metas[c];
    const std::uint32_t index = static_cast<std::uint32_t>(c);
    ArenaClassView cls;
    cls.length = cm.length;
    cls.num_groups = cm.num_groups;
    cls.cent_env_window = cm.cent_env_window;

    std::span<const std::byte> sec;
    ONEX_ASSIGN_OR_RETURN(sec, table.Find(kSecCentroids, index));
    ONEX_ASSIGN_OR_RETURN(
        cls.centroids,
        MatrixSection(sec, cm.num_groups, cm.length, "centroids"));
    ONEX_ASSIGN_OR_RETURN(sec, table.Find(kSecEnvLower, index));
    ONEX_ASSIGN_OR_RETURN(
        cls.env_lower,
        MatrixSection(sec, cm.num_groups, cm.length, "env_lower"));
    ONEX_ASSIGN_OR_RETURN(sec, table.Find(kSecEnvUpper, index));
    ONEX_ASSIGN_OR_RETURN(
        cls.env_upper,
        MatrixSection(sec, cm.num_groups, cm.length, "env_upper"));
    ONEX_ASSIGN_OR_RETURN(sec, table.Find(kSecCentEnvLower, index));
    ONEX_ASSIGN_OR_RETURN(
        cls.cent_env_lower,
        MatrixSection(sec, cm.num_groups, cm.length, "cent_env_lower"));
    ONEX_ASSIGN_OR_RETURN(sec, table.Find(kSecCentEnvUpper, index));
    ONEX_ASSIGN_OR_RETURN(
        cls.cent_env_upper,
        MatrixSection(sec, cm.num_groups, cm.length, "cent_env_upper"));
    ONEX_ASSIGN_OR_RETURN(sec, table.Find(kSecMembers, index));
    ONEX_ASSIGN_OR_RETURN(
        cls.members, TypedSection<SubseqRef>(sec, cm.num_members, "members"));
    ONEX_ASSIGN_OR_RETURN(sec, table.Find(kSecMemberOffsets, index));
    ONEX_ASSIGN_OR_RETURN(cls.member_offsets,
                          TypedSection<std::size_t>(sec, cm.num_groups + 1,
                                                    "member_offsets"));

    // Offset table: starts at 0, strictly increasing (no empty groups —
    // build and restore both forbid them), ends at the member count.
    if (cls.member_offsets.front() != 0 ||
        cls.member_offsets.back() != cm.num_members) {
      return Status::ParseError(
          StrFormat("arena class %zu offset table has wrong bounds", c));
    }
    for (std::size_t g = 0; g < cm.num_groups; ++g) {
      if (cls.member_offsets[g] >= cls.member_offsets[g + 1]) {
        return Status::ParseError(StrFormat(
            "arena class %zu offset table is not strictly increasing", c));
      }
    }
    // Member refs: exact class length, valid series, in-range window.
    for (const SubseqRef& ref : cls.members) {
      if (ref.length != cm.length || ref.series >= view.series.size()) {
        return Status::ParseError(
            StrFormat("arena class %zu has an out-of-domain member ref", c));
      }
      const std::size_t slen = view.series[ref.series].length;
      if (ref.start > slen || ref.length > slen - ref.start) {
        return Status::ParseError(
            StrFormat("arena class %zu member ref exceeds its series", c));
      }
    }
    view.classes.push_back(cls);
  }
  return view;
}

// ---------------------------------------------------------------------------
// Realize
// ---------------------------------------------------------------------------

Result<RealizedArena> RealizeArena(const ArenaView& view,
                                   std::shared_ptr<const void> keepalive) {
  // Series values are always materialized: Dataset owns vectors, and the
  // streaming extend path mutates them copy-on-write anyway. The big wins —
  // centroid/envelope matrices and the member arena — stay borrowed.
  Dataset raw(view.dataset_name);
  Dataset norm(view.dataset_name);
  std::size_t at = 0;
  for (const ArenaSeriesMeta& sm : view.series) {
    const std::span<const double> rv = view.raw_values.subspan(at, sm.length);
    const std::span<const double> nv = view.norm_values.subspan(at, sm.length);
    raw.Add(TimeSeries(sm.name, {rv.begin(), rv.end()}, sm.label));
    norm.Add(TimeSeries(sm.name, {nv.begin(), nv.end()}, sm.label));
    at += sm.length;
  }
  auto raw_ptr = std::make_shared<const Dataset>(std::move(raw));
  auto norm_ptr = std::make_shared<const Dataset>(std::move(norm));

  std::vector<std::shared_ptr<const GroupStore>> stores;
  stores.reserve(view.classes.size());
  for (const ArenaClassView& cls : view.classes) {
    GroupStore::Columns cols;
    cols.length = cls.length;
    cols.num_groups = cls.num_groups;
    cols.cent_env_window = cls.cent_env_window;
    cols.centroids = cls.centroids;
    cols.env_lower = cls.env_lower;
    cols.env_upper = cls.env_upper;
    cols.cent_env_lower = cls.cent_env_lower;
    cols.cent_env_upper = cls.cent_env_upper;
    cols.members = cls.members;
    cols.member_offsets = cls.member_offsets;
    stores.push_back(std::make_shared<const GroupStore>(
        keepalive != nullptr ? GroupStore::Borrow(cols)
                             : GroupStore::CopyFrom(cols)));
  }

  ONEX_ASSIGN_OR_RETURN(
      OnexBase base,
      OnexBase::FromStores(norm_ptr, view.build_options, std::move(stores),
                           view.repaired_members, std::move(keepalive)));
  RealizedArena out;
  out.raw = std::move(raw_ptr);
  out.normalized = norm_ptr;
  out.base = std::make_shared<const OnexBase>(std::move(base));
  return out;
}

}  // namespace onex
