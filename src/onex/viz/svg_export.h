#ifndef ONEX_VIZ_SVG_EXPORT_H_
#define ONEX_VIZ_SVG_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "onex/viz/chart_data.h"

namespace onex::viz {

/// SVG renderers for the chart-data models: the faithful substitute for the
/// demo's D3 web views (DESIGN.md §3). Each function returns a standalone
/// `<svg>` element; WrapHtmlPage assembles a self-contained report the
/// analyst opens in any browser — no server required.

struct SvgOptions {
  int width = 640;
  int height = 320;
  /// Stroke colors for the first/second trace (any CSS color).
  std::string color_a = "#1f77b4";  // the demo's blue
  std::string color_b = "#2ca02c";  // and green
  /// Color of the warped-link dotted lines in the multi-line chart.
  std::string link_color = "#999999";
};

/// Fig 2's Results Pane: both series as polylines over a shared scale with
/// dotted lines between warped point pairs.
std::string RenderSvgMultiLine(const MultiLineChartData& data,
                               const SvgOptions& options = {});

/// Fig 3a: both traces as closed polar polylines.
std::string RenderSvgRadial(const RadialChartData& data,
                            const SvgOptions& options = {});

/// Fig 3b: the connected scatter plot with the 45-degree reference diagonal.
std::string RenderSvgConnectedScatter(const ConnectedScatterData& data,
                                      const SvgOptions& options = {});

/// Fig 4: the series polyline with alternately colored occurrence bands
/// under it, one band row per pattern.
std::string RenderSvgSeasonal(const SeasonalViewData& data,
                              const SvgOptions& options = {});

/// Overview Pane: a grid of small representative polylines, opacity scaled
/// by group cardinality (the demo's intensity coding).
std::string RenderSvgOverview(const OverviewPaneData& data,
                              const SvgOptions& options = {});

/// Assembles titled SVG sections into one self-contained HTML document.
std::string WrapHtmlPage(const std::string& title,
                         const std::vector<std::pair<std::string, std::string>>&
                             titled_svgs);

}  // namespace onex::viz

#endif  // ONEX_VIZ_SVG_EXPORT_H_
