#include "onex/viz/exporters.h"

#include <cstddef>
#include <ostream>

#include "onex/common/string_utils.h"

namespace onex::viz {
namespace {

Status CheckStream(const std::ostream& out) {
  return out ? Status::OK() : Status::IoError("CSV write failure");
}

}  // namespace

Status WriteMultiLineCsv(const MultiLineChartData& data, std::ostream& out) {
  out << "index_a,value_a,index_b,value_b\n";
  for (const auto& [i, j] : data.links) {
    if (i >= data.series_a.size() || j >= data.series_b.size()) {
      return Status::InvalidArgument("link index outside series bounds");
    }
    out << StrFormat("%zu,%.10g,%zu,%.10g\n", i, data.series_a[i], j,
                     data.series_b[j]);
  }
  return CheckStream(out);
}

Status WriteRadialCsv(const RadialChartData& data, std::ostream& out) {
  out << "series,angle,radius\n";
  for (const RadialPoint& p : data.points_a) {
    out << StrFormat("%s,%.10g,%.10g\n", data.name_a.c_str(), p.angle,
                     p.radius);
  }
  for (const RadialPoint& p : data.points_b) {
    out << StrFormat("%s,%.10g,%.10g\n", data.name_b.c_str(), p.angle,
                     p.radius);
  }
  return CheckStream(out);
}

Status WriteConnectedScatterCsv(const ConnectedScatterData& data,
                                std::ostream& out) {
  out << "x,y\n";
  for (const auto& [x, y] : data.points) {
    out << StrFormat("%.10g,%.10g\n", x, y);
  }
  return CheckStream(out);
}

Status WriteSeasonalCsv(const SeasonalViewData& data, std::ostream& out) {
  out << "pattern,start,length,color\n";
  for (std::size_t p = 0; p < data.patterns.size(); ++p) {
    for (const SeasonalSegment& seg : data.patterns[p].segments) {
      out << StrFormat("%zu,%zu,%zu,%d\n", p, seg.start, seg.length,
                       seg.color);
    }
  }
  return CheckStream(out);
}

}  // namespace onex::viz
