#ifndef ONEX_VIZ_EXPORTERS_H_
#define ONEX_VIZ_EXPORTERS_H_

#include <iosfwd>
#include <string>

#include "onex/common/status.h"
#include "onex/viz/chart_data.h"

namespace onex::viz {

/// CSV exports for spreadsheet-side replication of the demo's views. Each
/// writer emits a header row and returns IoError on stream failure.

/// Columns: index_a,value_a,index_b,value_b — one row per warped link.
Status WriteMultiLineCsv(const MultiLineChartData& data, std::ostream& out);

/// Columns: series,angle,radius.
Status WriteRadialCsv(const RadialChartData& data, std::ostream& out);

/// Columns: x,y in path order.
Status WriteConnectedScatterCsv(const ConnectedScatterData& data,
                                std::ostream& out);

/// Columns: pattern,start,length,color.
Status WriteSeasonalCsv(const SeasonalViewData& data, std::ostream& out);

}  // namespace onex::viz

#endif  // ONEX_VIZ_EXPORTERS_H_
