#include "onex/viz/svg_export.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/string_utils.h"
#include "onex/json/json.h"

namespace onex::viz {
namespace {

constexpr double kPad = 24.0;  // plot margin inside the SVG viewport

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void Add(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  double span() const { return hi > lo ? hi - lo : 1.0; }
};

/// Maps value v in [r.lo, r.hi] to pixel space [from, to].
double Scale(double v, const Range& r, double from, double to) {
  return from + (v - r.lo) / r.span() * (to - from);
}

std::string Escaped(const std::string& s) { return json::EscapeString(s); }

std::string OpenSvg(const SvgOptions& opt) {
  return StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "viewBox=\"0 0 %d %d\" style=\"background:#ffffff\">\n",
      opt.width, opt.height, opt.width, opt.height);
}

/// Polyline through (x(i), y(values[i])).
std::string Polyline(const std::vector<double>& values, const Range& y_range,
                     const SvgOptions& opt, const std::string& color,
                     double stroke_width = 1.5) {
  std::string points;
  const double w = static_cast<double>(opt.width);
  const double h = static_cast<double>(opt.height);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double x =
        values.size() == 1
            ? kPad
            : kPad + static_cast<double>(i) /
                         static_cast<double>(values.size() - 1) *
                         (w - 2.0 * kPad);
    const double y = Scale(values[i], y_range, h - kPad, kPad);
    points += StrFormat("%.1f,%.1f ", x, y);
  }
  return StrFormat(
      "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"%.1f\" "
      "points=\"%s\"/>\n",
      color.c_str(), stroke_width, points.c_str());
}

}  // namespace

std::string RenderSvgMultiLine(const MultiLineChartData& data,
                               const SvgOptions& opt) {
  Range y;
  for (double v : data.series_a) y.Add(v);
  for (double v : data.series_b) y.Add(v);
  const double w = static_cast<double>(opt.width);
  const double h = static_cast<double>(opt.height);
  auto x_of = [&](std::size_t i, std::size_t n) {
    return n <= 1 ? kPad
                  : kPad + static_cast<double>(i) / static_cast<double>(n - 1) *
                               (w - 2.0 * kPad);
  };

  std::string svg = OpenSvg(opt);
  // Warped links first so the traces draw on top ("matched points are
  // connected with dotted lines", Fig 2).
  for (const auto& [i, j] : data.links) {
    if (i >= data.series_a.size() || j >= data.series_b.size()) continue;
    svg += StrFormat(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
        "stroke=\"%s\" stroke-width=\"0.6\" stroke-dasharray=\"2,3\"/>\n",
        x_of(i, data.series_a.size()),
        Scale(data.series_a[i], y, h - kPad, kPad),
        x_of(j, data.series_b.size()),
        Scale(data.series_b[j], y, h - kPad, kPad), opt.link_color.c_str());
  }
  svg += Polyline(data.series_a, y, opt, opt.color_a);
  svg += Polyline(data.series_b, y, opt, opt.color_b);
  svg += StrFormat(
      "<text x=\"%.1f\" y=\"14\" font-size=\"11\" fill=\"%s\">%s</text>\n",
      kPad, opt.color_a.c_str(), Escaped(data.name_a).c_str());
  svg += StrFormat(
      "<text x=\"%.1f\" y=\"14\" font-size=\"11\" fill=\"%s\" "
      "text-anchor=\"end\">%s</text>\n",
      w - kPad, opt.color_b.c_str(), Escaped(data.name_b).c_str());
  svg += "</svg>\n";
  return svg;
}

std::string RenderSvgRadial(const RadialChartData& data,
                            const SvgOptions& opt) {
  const double size = std::min(opt.width, opt.height);
  const double c = size / 2.0;
  Range r;
  for (const RadialPoint& p : data.points_a) r.Add(p.radius);
  for (const RadialPoint& p : data.points_b) r.Add(p.radius);
  r.Add(0.0);  // keep the origin at the center

  auto trace = [&](const std::vector<RadialPoint>& pts,
                   const std::string& color) {
    if (pts.empty()) return std::string();
    std::string points;
    for (const RadialPoint& p : pts) {
      const double rho = Scale(p.radius, r, 0.0, c - kPad);
      points += StrFormat("%.1f,%.1f ", c + rho * std::cos(p.angle),
                          c - rho * std::sin(p.angle));
    }
    // Close the loop back to the first point (the demo's compact ring).
    const double rho0 = Scale(pts.front().radius, r, 0.0, c - kPad);
    points += StrFormat("%.1f,%.1f", c + rho0 * std::cos(pts.front().angle),
                        c - rho0 * std::sin(pts.front().angle));
    return StrFormat(
        "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.2\" "
        "points=\"%s\"/>\n",
        color.c_str(), points.c_str());
  };

  SvgOptions square = opt;
  square.width = static_cast<int>(size);
  square.height = static_cast<int>(size);
  std::string svg = OpenSvg(square);
  svg += StrFormat(
      "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"none\" "
      "stroke=\"#dddddd\"/>\n",
      c, c, c - kPad);
  svg += trace(data.points_a, opt.color_a);
  svg += trace(data.points_b, opt.color_b);
  svg += "</svg>\n";
  return svg;
}

std::string RenderSvgConnectedScatter(const ConnectedScatterData& data,
                                      const SvgOptions& opt) {
  const double size = std::min(opt.width, opt.height);
  Range r;
  for (const auto& [x, y] : data.points) {
    r.Add(x);
    r.Add(y);
  }
  SvgOptions square = opt;
  square.width = static_cast<int>(size);
  square.height = static_cast<int>(size);
  std::string svg = OpenSvg(square);
  // 45-degree reference diagonal.
  svg += StrFormat(
      "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
      "stroke=\"#cccccc\" stroke-dasharray=\"4,4\"/>\n",
      kPad, size - kPad, size - kPad, kPad);
  // Connected points in warping-path order.
  std::string points;
  for (const auto& [x, y] : data.points) {
    points += StrFormat("%.1f,%.1f ", Scale(x, r, kPad, size - kPad),
                        Scale(y, r, size - kPad, kPad));
  }
  svg += StrFormat(
      "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.0\" "
      "points=\"%s\"/>\n",
      opt.color_a.c_str(), points.c_str());
  for (const auto& [x, y] : data.points) {
    svg += StrFormat(
        "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.2\" fill=\"%s\"/>\n",
        Scale(x, r, kPad, size - kPad), Scale(y, r, size - kPad, kPad),
        opt.color_b.c_str());
  }
  svg += StrFormat(
      "<text x=\"%.1f\" y=\"14\" font-size=\"11\" fill=\"#333333\">"
      "diagonal deviation %.4f</text>\n",
      kPad, data.diagonal_deviation);
  svg += "</svg>\n";
  return svg;
}

std::string RenderSvgSeasonal(const SeasonalViewData& data,
                              const SvgOptions& opt) {
  Range y;
  for (double v : data.series) y.Add(v);
  const double w = static_cast<double>(opt.width);
  const double h = static_cast<double>(opt.height);
  const double band_h = 10.0;
  const double plot_bottom =
      h - kPad - band_h * static_cast<double>(data.patterns.size());

  std::string svg = OpenSvg(opt);
  // Alternating occurrence bands, one row per pattern (Fig 4's blue/green).
  const std::size_t n = std::max<std::size_t>(1, data.series.size());
  for (std::size_t p = 0; p < data.patterns.size(); ++p) {
    const double band_y =
        plot_bottom + band_h * static_cast<double>(p) + 2.0;
    for (const SeasonalSegment& seg : data.patterns[p].segments) {
      const double x0 = kPad + static_cast<double>(seg.start) /
                                   static_cast<double>(n) * (w - 2.0 * kPad);
      const double x1 =
          kPad + static_cast<double>(seg.start + seg.length) /
                     static_cast<double>(n) * (w - 2.0 * kPad);
      svg += StrFormat(
          "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
          "fill=\"%s\" opacity=\"0.8\"/>\n",
          x0, band_y, std::max(1.0, x1 - x0), band_h - 3.0,
          (seg.color == 0 ? opt.color_a : opt.color_b).c_str());
    }
  }
  // The series itself, above the bands.
  std::string points;
  for (std::size_t i = 0; i < data.series.size(); ++i) {
    const double x = data.series.size() == 1
                         ? kPad
                         : kPad + static_cast<double>(i) /
                                      static_cast<double>(data.series.size() -
                                                          1) *
                                      (w - 2.0 * kPad);
    points += StrFormat("%.1f,%.1f ", x,
                        Scale(data.series[i], y, plot_bottom - 4.0, kPad));
  }
  svg += StrFormat(
      "<polyline fill=\"none\" stroke=\"#555555\" stroke-width=\"1.0\" "
      "points=\"%s\"/>\n",
      points.c_str());
  svg += StrFormat(
      "<text x=\"%.1f\" y=\"14\" font-size=\"11\" fill=\"#333333\">"
      "%s</text>\n",
      kPad, Escaped(data.series_name).c_str());
  svg += "</svg>\n";
  return svg;
}

std::string RenderSvgOverview(const OverviewPaneData& data,
                              const SvgOptions& opt) {
  constexpr int kCols = 4;
  constexpr double kCellH = 64.0;
  const int rows =
      static_cast<int>((data.cells.size() + kCols - 1) / kCols);
  SvgOptions grid = opt;
  grid.height = static_cast<int>(kCellH * std::max(1, rows)) + 8;
  const double cell_w = static_cast<double>(grid.width) / kCols;

  std::string svg = OpenSvg(grid);
  for (std::size_t k = 0; k < data.cells.size(); ++k) {
    const OverviewPaneData::Cell& cell = data.cells[k];
    const double ox = static_cast<double>(k % kCols) * cell_w;
    const double oy = static_cast<double>(k / kCols) * kCellH;
    Range y;
    for (double v : cell.representative) y.Add(v);
    std::string points;
    const std::size_t n = cell.representative.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double x =
          n <= 1 ? ox + 6.0
                 : ox + 6.0 + static_cast<double>(i) /
                                  static_cast<double>(n - 1) * (cell_w - 12.0);
      points += StrFormat(
          "%.1f,%.1f ", x,
          Scale(cell.representative[i], y, oy + kCellH - 18.0, oy + 6.0));
    }
    // Intensity = opacity, the demo's cardinality coding.
    svg += StrFormat(
        "<polyline fill=\"none\" stroke=\"%s\" stroke-opacity=\"%.2f\" "
        "stroke-width=\"1.5\" points=\"%s\"/>\n",
        opt.color_a.c_str(), 0.25 + 0.75 * cell.intensity, points.c_str());
    svg += StrFormat(
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"9\" fill=\"#666666\">"
        "len %zu · n=%zu</text>\n",
        ox + 6.0, oy + kCellH - 5.0, cell.length, cell.cardinality);
  }
  svg += "</svg>\n";
  return svg;
}

std::string WrapHtmlPage(
    const std::string& title,
    const std::vector<std::pair<std::string, std::string>>& titled_svgs) {
  std::string html;
  html += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  html += StrFormat("<title>%s</title>\n", Escaped(title).c_str());
  html +=
      "<style>body{font-family:sans-serif;margin:24px;background:#fafafa}"
      "h1{font-size:20px}h2{font-size:14px;margin-bottom:4px}"
      "section{background:#fff;border:1px solid #ddd;border-radius:6px;"
      "padding:12px;margin-bottom:16px;display:inline-block}</style>\n";
  html += "</head><body>\n";
  html += StrFormat("<h1>%s</h1>\n", Escaped(title).c_str());
  for (const auto& [section_title, svg] : titled_svgs) {
    html += StrFormat("<section><h2>%s</h2>\n%s</section>\n",
                      Escaped(section_title).c_str(), svg.c_str());
  }
  html += "</body></html>\n";
  return html;
}

}  // namespace onex::viz
