#include "onex/viz/chart_data.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numbers>
#include <string>
#include <utility>
#include <vector>

#include "onex/common/math_utils.h"

namespace onex::viz {
namespace {

json::Value LinksToJson(const WarpingPath& links) {
  json::Value arr = json::Value::MakeArray();
  for (const auto& [i, j] : links) {
    json::Value pair = json::Value::MakeArray();
    pair.Append(json::Value(i));
    pair.Append(json::Value(j));
    arr.Append(std::move(pair));
  }
  return arr;
}

}  // namespace

json::Value MultiLineChartData::ToJson() const {
  json::Value obj = json::Value::MakeObject();
  obj.Set("type", "multi_line");
  obj.Set("name_a", name_a);
  obj.Set("name_b", name_b);
  obj.Set("series_a", json::Value::NumberArray(series_a));
  obj.Set("series_b", json::Value::NumberArray(series_b));
  obj.Set("links", LinksToJson(links));
  return obj;
}

MultiLineChartData BuildMultiLineChart(std::string name_a,
                                       std::vector<double> series_a,
                                       std::string name_b,
                                       std::vector<double> series_b,
                                       WarpingPath links) {
  MultiLineChartData data;
  data.name_a = std::move(name_a);
  data.series_a = std::move(series_a);
  data.name_b = std::move(name_b);
  data.series_b = std::move(series_b);
  data.links = std::move(links);
  return data;
}

json::Value RadialChartData::ToJson() const {
  json::Value obj = json::Value::MakeObject();
  obj.Set("type", "radial");
  obj.Set("name_a", name_a);
  obj.Set("name_b", name_b);
  auto points_to_json = [](const std::vector<RadialPoint>& pts) {
    json::Value arr = json::Value::MakeArray();
    for (const RadialPoint& p : pts) {
      json::Value pair = json::Value::MakeArray();
      pair.Append(json::Value(p.angle));
      pair.Append(json::Value(p.radius));
      arr.Append(std::move(pair));
    }
    return arr;
  };
  obj.Set("points_a", points_to_json(points_a));
  obj.Set("points_b", points_to_json(points_b));
  return obj;
}

RadialChartData BuildRadialChart(std::string name_a,
                                 const std::vector<double>& series_a,
                                 std::string name_b,
                                 const std::vector<double>& series_b,
                                 double inner_radius) {
  RadialChartData data;
  data.name_a = std::move(name_a);
  data.name_b = std::move(name_b);
  // Shared radial scale so both traces are comparable, like the demo's
  // "consistent compression of the data".
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (double v : series_a) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : series_b) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi > lo ? hi - lo : 1.0;
  auto build = [&](const std::vector<double>& xs) {
    std::vector<RadialPoint> pts;
    pts.reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      RadialPoint p;
      p.angle = 2.0 * std::numbers::pi * static_cast<double>(i) /
                static_cast<double>(std::max<std::size_t>(1, xs.size()));
      p.radius = inner_radius + (xs[i] - lo) / span;
      pts.push_back(p);
    }
    return pts;
  };
  data.points_a = build(series_a);
  data.points_b = build(series_b);
  return data;
}

json::Value ConnectedScatterData::ToJson() const {
  json::Value obj = json::Value::MakeObject();
  obj.Set("type", "connected_scatter");
  obj.Set("name_a", name_a);
  obj.Set("name_b", name_b);
  json::Value arr = json::Value::MakeArray();
  for (const auto& [x, y] : points) {
    json::Value pair = json::Value::MakeArray();
    pair.Append(json::Value(x));
    pair.Append(json::Value(y));
    arr.Append(std::move(pair));
  }
  obj.Set("points", std::move(arr));
  obj.Set("diagonal_deviation", diagonal_deviation);
  return obj;
}

ConnectedScatterData BuildConnectedScatter(std::string name_a,
                                           const std::vector<double>& series_a,
                                           std::string name_b,
                                           const std::vector<double>& series_b,
                                           const WarpingPath& path) {
  ConnectedScatterData data;
  data.name_a = std::move(name_a);
  data.name_b = std::move(name_b);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  double dev = 0.0;
  for (const auto& [i, j] : path) {
    const double x = series_a[i];
    const double y = series_b[j];
    data.points.emplace_back(x, y);
    lo = std::min({lo, x, y});
    hi = std::max({hi, x, y});
    dev += std::abs(x - y);
  }
  if (!data.points.empty()) {
    const double span = hi > lo ? hi - lo : 1.0;
    data.diagonal_deviation =
        dev / static_cast<double>(data.points.size()) / span;
  }
  return data;
}

json::Value SeasonalViewData::ToJson() const {
  json::Value obj = json::Value::MakeObject();
  obj.Set("type", "seasonal_view");
  obj.Set("series_name", series_name);
  obj.Set("series", json::Value::NumberArray(series));
  json::Value rows = json::Value::MakeArray();
  for (const PatternRow& row : patterns) {
    json::Value r = json::Value::MakeObject();
    r.Set("length", row.length);
    r.Set("typical_gap", row.typical_gap);
    r.Set("cohesion", row.cohesion);
    r.Set("representative", json::Value::NumberArray(row.representative));
    json::Value segs = json::Value::MakeArray();
    for (const SeasonalSegment& s : row.segments) {
      json::Value seg = json::Value::MakeObject();
      seg.Set("start", s.start);
      seg.Set("length", s.length);
      seg.Set("color", s.color);
      segs.Append(std::move(seg));
    }
    r.Set("segments", std::move(segs));
    rows.Append(std::move(r));
  }
  obj.Set("patterns", std::move(rows));
  return obj;
}

SeasonalViewData BuildSeasonalView(
    std::string series_name, std::vector<double> series,
    const std::vector<SeasonalPattern>& patterns) {
  SeasonalViewData data;
  data.series_name = std::move(series_name);
  data.series = std::move(series);
  for (const SeasonalPattern& p : patterns) {
    SeasonalViewData::PatternRow row;
    row.length = p.length;
    row.typical_gap = p.typical_gap;
    row.cohesion = p.cohesion;
    row.representative = p.representative;
    int color = 0;
    for (const SubseqRef& occ : p.occurrences) {
      // "The alternating blue and green coloration ... clarify instances of
      // consecutive segments."
      row.segments.push_back({occ.start, occ.length, color});
      color ^= 1;
    }
    data.patterns.push_back(std::move(row));
  }
  return data;
}

json::Value OverviewPaneData::ToJson() const {
  json::Value obj = json::Value::MakeObject();
  obj.Set("type", "overview");
  json::Value arr = json::Value::MakeArray();
  for (const Cell& c : cells) {
    json::Value cell = json::Value::MakeObject();
    cell.Set("length", c.length);
    cell.Set("cardinality", c.cardinality);
    cell.Set("intensity", c.intensity);
    cell.Set("representative", json::Value::NumberArray(c.representative));
    arr.Append(std::move(cell));
  }
  obj.Set("cells", std::move(arr));
  return obj;
}

OverviewPaneData BuildOverviewPane(const std::vector<OverviewEntry>& entries) {
  OverviewPaneData data;
  for (const OverviewEntry& e : entries) {
    data.cells.push_back(
        {e.length, e.cardinality, e.intensity, e.representative});
  }
  return data;
}

}  // namespace onex::viz
