#ifndef ONEX_VIZ_ASCII_CANVAS_H_
#define ONEX_VIZ_ASCII_CANVAS_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace onex::viz {

/// A fixed-size character grid the terminal renderers draw onto. Origin
/// (0,0) is the top-left; x grows right, y grows down. Out-of-bounds writes
/// are clipped, so plot code never needs bounds arithmetic.
class AsciiCanvas {
 public:
  AsciiCanvas(std::size_t width, std::size_t height)
      : width_(width), height_(height),
        cells_(width * height, ' ') {}

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  void Set(std::size_t x, std::size_t y, char c) {
    if (x < width_ && y < height_) cells_[y * width_ + x] = c;
  }
  char At(std::size_t x, std::size_t y) const {
    return (x < width_ && y < height_) ? cells_[y * width_ + x] : ' ';
  }

  /// Vertical line segment (used for warped-link markers).
  void VLine(std::size_t x, std::size_t y0, std::size_t y1, char c);

  /// Plots `values` scaled into the canvas: index -> column, value -> row
  /// (row 0 = `hi`). Existing non-space cells are only overwritten when
  /// `overwrite` is set, letting two series share a canvas.
  void PlotSeries(std::span<const double> values, double lo, double hi,
                  char marker, bool overwrite = true);

  std::string Render() const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<char> cells_;
};

}  // namespace onex::viz

#endif  // ONEX_VIZ_ASCII_CANVAS_H_
