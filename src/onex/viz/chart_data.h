#ifndef ONEX_VIZ_CHART_DATA_H_
#define ONEX_VIZ_CHART_DATA_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "onex/core/overview.h"
#include "onex/core/seasonal.h"
#include "onex/distance/warping_path.h"
#include "onex/json/json.h"

namespace onex::viz {

/// Data models behind each view of the ONEX web interface (paper §3.4 and
/// Figs 2-4). The demo's D3 charts are pure functions of these structures;
/// this module builds them from engine outputs and serializes them to JSON
/// (for a web client) or ASCII (for the CLI examples).

/// "Multiple Lines Charts display dotted lines between corresponding points
/// of the sequences highlighting the role of the time-warped matching."
struct MultiLineChartData {
  std::string name_a;
  std::string name_b;
  std::vector<double> series_a;
  std::vector<double> series_b;
  /// The warped point correspondences (the dotted lines of Fig 2).
  WarpingPath links;

  json::Value ToJson() const;
};

MultiLineChartData BuildMultiLineChart(std::string name_a,
                                       std::vector<double> series_a,
                                       std::string name_b,
                                       std::vector<double> series_b,
                                       WarpingPath links);

/// "Radial Plots compact the time series to a radial display": point i of a
/// series of length n maps to angle 2*pi*i/n and radius value.
struct RadialPoint {
  double angle = 0.0;   ///< Radians, [0, 2*pi).
  double radius = 0.0;  ///< The (display-scaled) value.
};

struct RadialChartData {
  std::string name_a;
  std::string name_b;
  std::vector<RadialPoint> points_a;
  std::vector<RadialPoint> points_b;

  json::Value ToJson() const;
};

/// Radii are shifted so the minimum value sits at `inner_radius` (> 0 keeps
/// the trace off the origin, matching the demo's rendering).
RadialChartData BuildRadialChart(std::string name_a,
                                 const std::vector<double>& series_a,
                                 std::string name_b,
                                 const std::vector<double>& series_b,
                                 double inner_radius = 0.25);

/// "Connected Scatter Plots showcase the ordering of a sequence by
/// connecting consecutive points": one (x, y) point per warped pair, x from
/// the first series, y from the second. Points near the 45-degree diagonal
/// indicate a close match.
struct ConnectedScatterData {
  std::string name_a;
  std::string name_b;
  /// In warping-path order.
  std::vector<std::pair<double, double>> points;
  /// Mean |x - y| over points, normalized by the value range: 0 = every
  /// point on the diagonal (the demo's "extremely close" reading).
  double diagonal_deviation = 0.0;

  json::Value ToJson() const;
};

ConnectedScatterData BuildConnectedScatter(std::string name_a,
                                           const std::vector<double>& series_a,
                                           std::string name_b,
                                           const std::vector<double>& series_b,
                                           const WarpingPath& path);

/// Seasonal View (Fig 4): the full series plus the recurring segments,
/// alternately "colored" for display.
struct SeasonalSegment {
  std::size_t start = 0;
  std::size_t length = 0;
  /// Alternating 0/1 like the demo's blue/green.
  int color = 0;
};

struct SeasonalViewData {
  std::string series_name;
  std::vector<double> series;
  /// One entry per displayed pattern, each with its segments.
  struct PatternRow {
    std::size_t length = 0;
    std::size_t typical_gap = 0;
    double cohesion = 0.0;
    std::vector<SeasonalSegment> segments;
    std::vector<double> representative;
  };
  std::vector<PatternRow> patterns;

  json::Value ToJson() const;
};

SeasonalViewData BuildSeasonalView(std::string series_name,
                                   std::vector<double> series,
                                   const std::vector<SeasonalPattern>& patterns);

/// Overview Pane (Fig 2 top-left): group representatives with cardinality-
/// scaled intensity.
struct OverviewPaneData {
  struct Cell {
    std::size_t length = 0;
    std::size_t cardinality = 0;
    double intensity = 0.0;
    std::vector<double> representative;
  };
  std::vector<Cell> cells;

  json::Value ToJson() const;
};

OverviewPaneData BuildOverviewPane(const std::vector<OverviewEntry>& entries);

}  // namespace onex::viz

#endif  // ONEX_VIZ_CHART_DATA_H_
