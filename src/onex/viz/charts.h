#ifndef ONEX_VIZ_CHARTS_H_
#define ONEX_VIZ_CHARTS_H_

#include <cstddef>
#include <span>
#include <string>

#include "onex/viz/chart_data.h"

namespace onex::viz {

/// Terminal renderers for the chart-data models: the CLI stand-ins for the
/// demo's D3 views. All return multi-line strings ready for stdout.

/// One-row block-character sketch of a series (the Overview Pane's "small
/// graph that captures the general shape"). Uses the eight UTF-8 block
/// glyphs; width is in glyphs.
std::string RenderSparkline(std::span<const double> values,
                            std::size_t width = 32);

/// Two overlaid series ('*' = first, 'o' = second, '+' = both on one cell)
/// with a legend and the count of warped links.
std::string RenderMultiLineChart(const MultiLineChartData& data,
                                 std::size_t width = 72,
                                 std::size_t height = 16);

/// Polar scatter of both traces on a square canvas.
std::string RenderRadialChart(const RadialChartData& data,
                              std::size_t size = 33);

/// Scatter of warped value pairs with the 45-degree diagonal drawn as '.',
/// plus the diagonal-deviation readout.
std::string RenderConnectedScatter(const ConnectedScatterData& data,
                                   std::size_t size = 33);

/// The series sparkline with one occurrence-bar row per pattern, alternating
/// 'b'/'g' segment glyphs like the demo's blue/green.
std::string RenderSeasonalView(const SeasonalViewData& data,
                               std::size_t width = 72);

/// Grid of sparkline cells ordered by cardinality, intensity as a column.
std::string RenderOverviewPane(const OverviewPaneData& data,
                               std::size_t sparkline_width = 24);

}  // namespace onex::viz

#endif  // ONEX_VIZ_CHARTS_H_
